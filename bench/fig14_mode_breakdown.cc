/**
 * @file
 * Figure 14: fraction of execution time spent in coupled vs decoupled
 * mode during hybrid execution on 4 cores.
 *
 * Paper result: significant time in both modes; benchmarks with abundant
 * fine-grain TLP (epic) live mostly decoupled, while mixed benchmarks
 * (cjpeg) genuinely alternate.
 */

#include "common.hh"

using namespace voltron;
using namespace voltron::bench;

int
main()
{
    banner("Figure 14: time in coupled vs decoupled mode (hybrid, 4-core)",
           "HPCA'07 Voltron paper, Figure 14");

    label("benchmark");
    std::cout << std::setw(11) << "coupled%" << std::setw(12)
              << "decoupled%" << "\n";

    struct Row
    {
        double coupled = 0;
        bool ok = false;
    };
    const std::vector<std::string> &names = benchmark_names();
    std::vector<Row> rows(names.size());
    parallel_for(names.size(), [&](size_t i) {
        VoltronSystem &sys = shared_system(names[i]);
        RunOutcome outcome = sys.run(Strategy::Hybrid, 4);
        if (!outcome.correct())
            return;
        const double total = static_cast<double>(outcome.result.cycles);
        rows[i].coupled =
            100.0 * static_cast<double>(outcome.result.coupledCycles) /
            total;
        rows[i].ok = true;
    });

    std::vector<double> coupled_share;
    for (size_t i = 0; i < names.size(); ++i) {
        if (!rows[i].ok) {
            std::cout << names[i] << "  GOLDEN-MODEL MISMATCH\n";
            return 1;
        }
        const double coupled = rows[i].coupled;
        coupled_share.push_back(coupled);
        label(names[i]) << std::fixed << std::setprecision(1)
                        << std::setw(10) << coupled << "%" << std::setw(11)
                        << 100.0 - coupled << "%" << "\n";
    }
    label("average");
    std::cout << std::fixed << std::setprecision(1) << std::setw(10)
              << mean(coupled_share) << "%" << std::setw(11)
              << 100.0 - mean(coupled_share) << "%" << "\n";
    return 0;
}
