/**
 * @file
 * Static vs measured-feedback mode selection: for every suite benchmark
 * (plus a fuzz-corpus sample) at 4 cores, run the static §4.2 Hybrid
 * selection and the Adaptive closed loop (profile the run, re-select
 * region modes from the measured stall mix, keep strict improvements —
 * VoltronSystem::runAdaptive), and record both cycle counts.
 *
 * Because the loop starts from the Hybrid selection and only accepts
 * strictly-improving, still-correct override sets, Adaptive can never
 * lose to static Hybrid; this harness enforces that invariant per
 * workload and exits non-zero on a violation. It also cross-checks
 * trace invariance: the loop's round-0 (profiled) cycle count must
 * equal the untraced static-Hybrid run bit-for-bit.
 *
 * Writes BENCH_adaptive.json (argv[1] overrides). --quick runs a
 * 2-benchmark + 1-fuzz-seed subset for CI smoke.
 */

#include <fstream>

#include "common.hh"
#include "fuzz/generator.hh"

using namespace voltron;
using namespace voltron::bench;

namespace {

constexpr u16 kCores = 4;
constexpr u64 kFuzzSeeds[] = {0xad17'0001, 0xad17'0002, 0xad17'0003,
                              0xad17'0004};

struct Row
{
    std::string name;
    Cycle hybrid = 0;
    Cycle adaptive = 0;
    AdaptiveReport report;
    bool ok = false;      //!< both runs correct, invariants held
    std::string error;

    double
    improvementPct() const
    {
        return hybrid == 0 ? 0.0
                           : 100.0 * (1.0 - static_cast<double>(adaptive) /
                                                static_cast<double>(hybrid));
    }
};

Row
measure(const std::string &name, VoltronSystem &sys)
{
    Row row;
    row.name = name;

    RunOutcome hybrid = sys.run(Strategy::Hybrid, kCores);
    if (!hybrid.correct()) {
        row.error = "static hybrid diverged from the golden model";
        return row;
    }
    row.hybrid = hybrid.result.cycles;

    CompileOptions opts;
    opts.strategy = Strategy::Adaptive;
    opts.numCores = kCores;
    RunOutcome adaptive = sys.runAdaptive(opts, &row.report);
    if (!adaptive.correct()) {
        row.error = "adaptive final selection diverged";
        return row;
    }
    row.adaptive = adaptive.result.cycles;

    // Round 0 compiles byte-identically to Hybrid and tracing is
    // observational, so the profiled round-0 run must match the
    // untraced static run exactly.
    if (row.report.hybridCycles != row.hybrid) {
        row.error = "traced round-0 cycles diverged from untraced hybrid";
        return row;
    }
    if (row.adaptive > row.hybrid) {
        row.error = "adaptive lost to static hybrid";
        return row;
    }
    row.ok = true;
    return row;
}

void
write_row(std::ofstream &os, const Row &row)
{
    os << "    {\n"
       << "      \"name\": \"" << row.name << "\",\n"
       << "      \"hybrid_cycles\": " << row.hybrid << ",\n"
       << "      \"adaptive_cycles\": " << row.adaptive << ",\n"
       << "      \"improvement_pct\": " << row.improvementPct() << ",\n"
       << "      \"evaluations\": " << row.report.evaluations << ",\n"
       << "      \"batch_evaluations\": " << row.report.batchEvaluations
       << ",\n"
       << "      \"batch_accepts\": " << row.report.batchAccepts << ",\n"
       << "      \"converged\": "
       << (row.report.converged ? "true" : "false") << ",\n"
       << "      \"overrides\": [";
    bool first = true;
    for (const ModeSuggestion &s : row.report.accepted) {
        os << (first ? "" : ", ") << "{\"region\": " << s.region
           << ", \"from\": \"" << exec_mode_name(s.from)
           << "\", \"to\": \"" << exec_mode_name(s.to)
           << "\", \"reason\": \"" << s.reason << "\"}";
        first = false;
    }
    os << "]\n    }";
}

bool
write_json(const std::string &path, const std::vector<Row> &rows,
           bool quick)
{
    std::ofstream os(path);
    os << std::fixed << std::setprecision(4);
    os << "{\n"
       << "  \"harness\": \"static Hybrid vs Adaptive (measured-feedback "
          "mode selection) @ " << kCores << " cores\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"workloads\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        write_row(os, rows[i]);
        os << (i + 1 < rows.size() ? ",\n" : "\n");
    }

    std::vector<double> ratios;
    size_t improved = 0;
    double best = 0.0;
    for (const Row &row : rows) {
        ratios.push_back(static_cast<double>(row.hybrid) /
                         static_cast<double>(std::max<Cycle>(row.adaptive, 1)));
        improved += row.adaptive < row.hybrid;
        best = std::max(best, row.improvementPct());
    }
    os << "  ],\n"
       << "  \"improved_workloads\": " << improved << ",\n"
       << "  \"best_improvement_pct\": " << best << ",\n"
       << "  \"geomean_speedup_vs_hybrid\": " << geomean(ratios) << "\n"
       << "}\n";
    return os.good();
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_path = "BENCH_adaptive.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else
            out_path = arg;
    }

    banner("Adaptive mode selection: static Hybrid vs measured feedback, "
           "4 cores",
           "no paper figure; closes the loop on the HPCA'07 §4.2 "
           "selector");

    std::vector<std::string> names = benchmark_names();
    size_t fuzz_seeds = std::size(kFuzzSeeds);
    if (quick) {
        names.resize(std::min<size_t>(names.size(), 2));
        fuzz_seeds = 1;
    }

    const size_t total = names.size() + fuzz_seeds;
    std::vector<Row> rows(total);
    parallel_for(total, [&](size_t i) {
        if (i < names.size()) {
            rows[i] = measure(names[i], shared_system(names[i]));
        } else {
            const u64 seed = kFuzzSeeds[i - names.size()];
            VoltronSystem sys(generate_fuzz_program(seed));
            rows[i] = measure("fuzz-" + std::to_string(seed), sys);
        }
    });

    label("workload", 16);
    std::cout << "    hybrid   adaptive   gain   evals  overrides\n";
    bool failed = false;
    size_t improved = 0;
    for (const Row &row : rows) {
        if (!row.ok) {
            label(row.name, 16);
            std::cout << "  FAILED: " << row.error << "\n";
            failed = true;
            continue;
        }
        improved += row.adaptive < row.hybrid;
        label(row.name, 16);
        std::cout << std::setw(10) << row.hybrid << std::setw(11)
                  << row.adaptive << std::fixed << std::setprecision(2)
                  << std::setw(6) << row.improvementPct() << "%"
                  << std::setw(7) << row.report.evaluations << "     ";
        if (row.report.overrides.empty())
            std::cout << "-";
        for (const auto &[region, mode] : row.report.overrides)
            std::cout << "r" << region << "->" << exec_mode_name(mode)
                      << " ";
        std::cout << "\n";
    }

    std::cout << "\n" << improved << "/" << rows.size()
              << " workload(s) improved over static Hybrid\n";
    if (!write_json(out_path, rows, quick)) {
        std::cout << "FAILED to write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";

    if (failed) {
        std::cout << "FAIL: a workload violated the adaptive invariants\n";
        return 1;
    }
    // The full sweep must find at least one real win: the loop exists
    // to beat the static selector somewhere, not just to tie it.
    if (!quick && improved == 0) {
        std::cout << "FAIL: adaptive never improved on static Hybrid\n";
        return 1;
    }
    return 0;
}
