/**
 * @file
 * Shared helpers for the figure-regeneration harnesses.
 *
 * Each bench/fig* binary reproduces one figure of the paper's evaluation
 * (§5): it builds the synthetic suite, compiles it with the relevant
 * strategies, simulates, and prints the same rows/series the paper
 * reports. See EXPERIMENTS.md for the paper-vs-measured record.
 */

#ifndef VOLTRON_BENCH_COMMON_HH_
#define VOLTRON_BENCH_COMMON_HH_

#include <cmath>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/voltron.hh"
#include "workloads/suite.hh"

namespace voltron::bench {

/** Geometric mean of a series. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Print a header banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "==========================================================="
                 "=====================\n"
              << title << "\n"
              << "(reproduces " << paper_ref << ")\n"
              << "==========================================================="
                 "=====================\n";
}

/** Fixed-width left label. */
inline std::ostream &
label(const std::string &name, int width = 14)
{
    return std::cout << std::left << std::setw(width) << name << std::right;
}

/** Default scale for the figure harnesses. */
inline SuiteScale
bench_scale()
{
    SuiteScale scale;
    scale.targetOps = 120'000;
    return scale;
}

} // namespace voltron::bench

#endif // VOLTRON_BENCH_COMMON_HH_
