/**
 * @file
 * Shared helpers for the figure-regeneration harnesses.
 *
 * Each bench/fig* binary reproduces one figure of the paper's evaluation
 * (§5): it builds the synthetic suite, compiles it with the relevant
 * strategies, simulates, and prints the same rows/series the paper
 * reports. See EXPERIMENTS.md for the paper-vs-measured record.
 */

#ifndef VOLTRON_BENCH_COMMON_HH_
#define VOLTRON_BENCH_COMMON_HH_

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <functional>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/voltron.hh"
#include "workloads/suite.hh"

namespace voltron::bench {

/** Worker threads for parallel_for: VOLTRON_BENCH_THREADS, else the
 * hardware concurrency (min 1). */
inline unsigned
bench_threads()
{
    if (const char *env = std::getenv("VOLTRON_BENCH_THREADS")) {
        const long n = std::atol(env);
        if (n >= 1)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/**
 * Run @p fn(i) for every i in [0, n) on a small thread pool and wait
 * for completion. Each simulation point is independent (its own
 * VoltronSystem, Machine, caches), so the harnesses use this to fill a
 * results vector concurrently and then print rows in suite order. The
 * first exception thrown by any point is rethrown on the caller.
 */
inline void
parallel_for(size_t n, const std::function<void(size_t)> &fn)
{
    const unsigned threads =
        static_cast<unsigned>(std::min<size_t>(bench_threads(), n));
    if (threads <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&] {
        for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

/** Geometric mean of a series. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Print a header banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "==========================================================="
                 "=====================\n"
              << title << "\n"
              << "(reproduces " << paper_ref << ")\n"
              << "==========================================================="
                 "=====================\n";
}

/** Fixed-width left label. */
inline std::ostream &
label(const std::string &name, int width = 14)
{
    return std::cout << std::left << std::setw(width) << name << std::right;
}

/** Default scale for the figure harnesses. */
inline SuiteScale
bench_scale()
{
    SuiteScale scale;
    scale.targetOps = 120'000;
    return scale;
}

/**
 * Process-wide shared suite cache: one VoltronSystem per (benchmark,
 * scale), built on first use and kept alive for the process. Harness
 * points that revisit a benchmark — different strategies, core counts,
 * or figure series — share its golden run, compiles, and baseline
 * instead of constructing a fresh system per point. Construction is
 * per-entry once-guarded so parallel_for workers building *different*
 * benchmarks don't serialize on each other; VoltronSystem itself is
 * thread-safe for the subsequent run()/compile() calls.
 */
inline VoltronSystem &
shared_system(const std::string &name,
              const SuiteScale &scale = bench_scale())
{
    struct Entry
    {
        std::once_flag once;
        std::unique_ptr<VoltronSystem> sys;
    };
    static std::mutex registry_mutex;
    static std::map<std::string, Entry> registry;

    const std::string key = name + "/" + std::to_string(scale.targetOps) +
                            "/" + std::to_string(scale.seed);
    Entry *entry;
    {
        std::lock_guard<std::mutex> lock(registry_mutex);
        entry = &registry[key];
    }
    std::call_once(entry->once, [&] {
        entry->sys =
            std::make_unique<VoltronSystem>(build_benchmark(name, scale));
    });
    return *entry->sys;
}

} // namespace voltron::bench

#endif // VOLTRON_BENCH_COMMON_HH_
