/**
 * @file
 * Figure 3: breakdown of exploitable parallelism for a 4-core system —
 * the fraction of dynamic execution best accelerated by ILP, fine-grain
 * TLP, LLP, or none (single core).
 *
 * Methodology follows the paper: each benchmark is compiled to exploit
 * each form of parallelism by itself; on a region-by-region basis the
 * best-performing method wins and the region's share of dynamic
 * execution is attributed to it. A parallel technique must beat the
 * serial region time by >3% to claim a region.
 *
 * Paper result: on average 30% ILP, 32% fine-grain TLP (12% DSWP + 20%
 * strands), 31% LLP, 7% single-core; no type dominates and the mix
 * varies widely across benchmarks.
 */

#include "common.hh"

using namespace voltron;
using namespace voltron::bench;

int
main()
{
    banner("Figure 3: best-technique breakdown of dynamic execution "
           "(4-core)",
           "HPCA'07 Voltron paper, Figure 3");

    label("benchmark");
    std::cout << std::setw(8) << "ILP%" << std::setw(8) << "TLP%"
              << std::setw(8) << "LLP%" << std::setw(9) << "single%"
              << "\n";

    struct Row
    {
        double buckets[4] = {0, 0, 0, 0}; // ilp, tlp, llp, single
        bool ok = false;
    };
    const std::vector<std::string> &names = benchmark_names();
    std::vector<Row> rows(names.size());
    parallel_for(names.size(), [&](size_t row_idx) {
        const std::string &name = names[row_idx];
        VoltronSystem &sys = shared_system(name);

        SelectionReport serial_sel, llp_sel;
        CompileOptions serial_opts;
        serial_opts.strategy = Strategy::SerialOnly;
        serial_opts.numCores = 1;
        sys.compile(serial_opts, &serial_sel);

        RunOutcome serial = sys.run(Strategy::SerialOnly, 1);
        RunOutcome ilp = sys.run(Strategy::IlpOnly, 4);
        RunOutcome tlp = sys.run(Strategy::TlpOnly, 4);
        CompileOptions llp_opts;
        llp_opts.strategy = Strategy::LlpOnly;
        llp_opts.numCores = 4;
        sys.compile(llp_opts, &llp_sel);
        RunOutcome llp = sys.run(llp_opts);
        if (!(serial.correct() && ilp.correct() && tlp.correct() &&
              llp.correct()))
            return;

        // Which regions did the LLP compilation actually parallelise?
        std::map<RegionId, bool> is_doall;
        for (const auto &entry : llp_sel.entries)
            is_doall[entry.region] = entry.mode == ExecMode::Doall;

        // Region weights from the serial selection report.
        double total_ops = 0;
        for (const auto &entry : serial_sel.entries)
            total_ops += static_cast<double>(entry.profiledOps);

        double *buckets = rows[row_idx].buckets;
        for (const auto &entry : serial_sel.entries) {
            const RegionId r = entry.region;
            const double weight =
                static_cast<double>(entry.profiledOps) / total_ops;
            auto cycles = [&](const RunOutcome &o) -> double {
                auto it = o.result.regionCycles.find(r);
                return it == o.result.regionCycles.end()
                           ? 0.0
                           : static_cast<double>(it->second);
            };
            const double cs = cycles(serial);
            if (cs <= 0)
                continue;
            const double gate = cs / 1.03; // must beat serial by >3%
            double best = cs;
            int winner = 3; // single
            const double ci = cycles(ilp);
            if (ci > 0 && ci < gate && ci < best) {
                best = ci;
                winner = 0;
            }
            const double ct = cycles(tlp);
            if (ct > 0 && ct < gate && ct < best) {
                best = ct;
                winner = 1;
            }
            const double cl = cycles(llp);
            if (is_doall[r] && cl > 0 && cl < gate && cl < best) {
                best = cl;
                winner = 2;
            }
            buckets[winner] += weight;
        }
        const double covered =
            buckets[0] + buckets[1] + buckets[2] + buckets[3];
        if (covered > 0)
            for (int bucket = 0; bucket < 4; ++bucket)
                buckets[bucket] *= 100.0 / covered;
        rows[row_idx].ok = true;
    });

    std::vector<double> ilp_share, tlp_share, llp_share, single_share;
    for (size_t i = 0; i < names.size(); ++i) {
        if (!rows[i].ok) {
            std::cout << names[i] << "  GOLDEN-MODEL MISMATCH\n";
            return 1;
        }
        const double *buckets = rows[i].buckets;
        ilp_share.push_back(buckets[0]);
        tlp_share.push_back(buckets[1]);
        llp_share.push_back(buckets[2]);
        single_share.push_back(buckets[3]);
        label(names[i]) << std::fixed << std::setprecision(1)
                        << std::setw(8) << buckets[0] << std::setw(8)
                        << buckets[1] << std::setw(8) << buckets[2]
                        << std::setw(9) << buckets[3] << "\n";
    }

    label("average");
    std::cout << std::fixed << std::setprecision(1) << std::setw(8)
              << mean(ilp_share) << std::setw(8) << mean(tlp_share)
              << std::setw(8) << mean(llp_share) << std::setw(9)
              << mean(single_share) << "\n";
    std::cout << "paper:            30.0    32.0    31.0      7.0\n";
    return 0;
}
