/**
 * @file
 * Mesh-scaling benchmark: simulated speedup and host simulation
 * throughput as the machine grows past the paper's 4-core evaluation
 * point — every mode family at {4, 8, 16, 32, 64} cores across three
 * mesh shapes (flat 1xN row, closest-to-square, and a 2-row "tiled"
 * fold), with queue-depth and hop-latency distribution quantiles from
 * the network's histograms. Writes BENCH_mesh_scaling.json (argv[1]
 * overrides; --quick shrinks the grid for CI smoke).
 *
 * The bench also *enforces* the scalable-network bound: the indexed
 * queue model must simulate at least kMinThroughputRatio of the legacy
 * CAM-scan model's core-cycles/second on a queue-heavy 16-core point.
 * The two models are bit-identical by contract (tests assert it); this
 * guards the reason the indexed model exists — speed at scale.
 */

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "common.hh"
#include "fuzz/differ.hh"

using namespace voltron;
using namespace voltron::bench;

namespace {

/** Indexed model must reach this fraction of legacy throughput at 16
 * cores (it is expected to exceed 1.0 comfortably; the margin absorbs
 * host noise on small machines). */
constexpr double kMinThroughputRatio = 0.9;

const char *kBenchName = "164.gzip";

struct ModeSpec
{
    const char *name;
    Strategy strategy;
    double dswpThreshold; //!< <0 keeps the default
};

const ModeSpec kModes[] = {
    {"ilp", Strategy::IlpOnly, -1.0},
    {"strands", Strategy::TlpOnly, 1e9},
    {"dswp", Strategy::TlpOnly, 0.0},
    {"doall", Strategy::LlpOnly, -1.0},
    {"hybrid", Strategy::Hybrid, -1.0},
};

struct Shape
{
    const char *label;
    u16 rows, cols;
};

/** The three shape families for @p cores, deduplicated (at 4 cores the
 * square and the 2-row fold are both 2x2). */
std::vector<Shape>
shapes_for(u16 cores)
{
    std::vector<Shape> shapes;
    shapes.push_back({"flat", 1, cores});
    u16 cols = 1;
    for (u16 c = 2; c * c <= cores; ++c)
        if (cores % c == 0)
            cols = c;
    const Shape square{"square", static_cast<u16>(cores / cols), cols};
    shapes.push_back(square);
    if (cores >= 4) {
        const Shape tiled{"tiles2xN", 2, static_cast<u16>(cores / 2)};
        if (tiled.rows != square.rows || tiled.cols != square.cols)
            shapes.push_back(tiled);
    }
    return shapes;
}

CompileOptions
options_for(const ModeSpec &mode, u16 cores, const Shape &shape)
{
    CompileOptions opts;
    opts.strategy = mode.strategy;
    opts.numCores = cores;
    opts.meshRows = shape.rows;
    opts.meshCols = shape.cols;
    opts.minOpsPerActivation = 1;
    if (mode.strategy == Strategy::LlpOnly)
        opts.minDoallTrip = 1.0;
    if (mode.dswpThreshold >= 0.0)
        opts.dswpThreshold = mode.dswpThreshold;
    return opts;
}

struct Row
{
    std::string mode;
    u16 cores = 0;
    Shape shape{};
    u64 simCycles = 0;
    u64 simOps = 0;
    double speedup = 0;
    double wallSeconds = 0;
    bool correct = false;
    u64 hopP50 = 0, hopP95 = 0, hopP99 = 0;
    u64 depthP50 = 0, depthP95 = 0, depthP99 = 0;

    double
    coreCyclesPerSecond() const
    {
        return wallSeconds > 0 ? static_cast<double>(simCycles) * cores /
                                     wallSeconds
                               : 0.0;
    }
};

/** Simulate one point; compile/golden work stays outside the timed
 * region (the shared suite cache already holds the artifact). */
Row
run_point(const ModeSpec &mode, u16 cores, const Shape &shape)
{
    VoltronSystem &sys = shared_system(kBenchName);
    const CompileOptions opts = options_for(mode, cores, shape);
    const MachineProgram &mp = sys.compile(opts);

    Row row;
    row.mode = mode.name;
    row.cores = cores;
    row.shape = shape;

    MachineConfig config = MachineConfig::forMesh(shape.rows, shape.cols);
    const auto start = std::chrono::steady_clock::now();
    Machine machine(mp, config);
    const MachineResult result = machine.run();
    const auto end = std::chrono::steady_clock::now();
    row.wallSeconds = std::chrono::duration<double>(end - start).count();
    row.simCycles = result.cycles;
    row.simOps = result.dynamicOps;
    row.speedup = static_cast<double>(sys.baselineCycles()) /
                  static_cast<double>(result.cycles);
    row.correct = result.exitValue == sys.goldenResult().exitValue;
    const OperandNetwork &net = machine.network();
    row.hopP50 = net.hopLatency().p50();
    row.hopP95 = net.hopLatency().p95();
    row.hopP99 = net.hopLatency().p99();
    row.depthP50 = net.queueDepth().p50();
    row.depthP95 = net.queueDepth().p95();
    row.depthP99 = net.queueDepth().p99();
    return row;
}

/** Core-cycles/second for one pass of the queue-heavy 16-core bound
 * harness under one queue model. */
double
bound_pass(bool legacy_scan)
{
    VoltronSystem &sys = shared_system(kBenchName);
    const Shape square{"square", 4, 4};
    u64 cycles = 0;
    const auto start = std::chrono::steady_clock::now();
    for (const char *mode : {"dswp", "hybrid"}) {
        const ModeSpec *spec = nullptr;
        for (const ModeSpec &m : kModes)
            if (std::string(mode) == m.name)
                spec = &m;
        const MachineProgram &mp =
            sys.compile(options_for(*spec, 16, square));
        MachineConfig config = MachineConfig::forMesh(4, 4);
        config.net.legacyScanQueues = legacy_scan;
        Machine machine(mp, config);
        cycles += machine.run().cycles;
    }
    const auto end = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(end - start).count();
    return wall > 0 ? static_cast<double>(cycles) * 16 / wall : 0.0;
}

std::string
json_escape_free(const Row &row)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(6);
    os << "    {\"mode\": \"" << row.mode << "\", \"cores\": " << row.cores
       << ", \"shape\": \"" << row.shape.label << "\""
       << ", \"rows\": " << row.shape.rows
       << ", \"cols\": " << row.shape.cols
       << ", \"sim_cycles\": " << row.simCycles
       << ", \"sim_ops\": " << row.simOps
       << ", \"sim_speedup\": " << row.speedup
       << ", \"correct\": " << (row.correct ? "true" : "false")
       << ", \"wall_seconds\": " << row.wallSeconds
       << ", \"core_cycles_per_second\": " << row.coreCyclesPerSecond()
       << ", \"hop_latency\": {\"p50\": " << row.hopP50
       << ", \"p95\": " << row.hopP95 << ", \"p99\": " << row.hopP99
       << "}, \"queue_depth\": {\"p50\": " << row.depthP50
       << ", \"p95\": " << row.depthP95 << ", \"p99\": " << row.depthP99
       << "}}";
    return os.str();
}

bool
write_json(const std::string &path, const std::vector<Row> &rows,
           const std::vector<u16> &core_counts, bool quick,
           double idx_ccps, double leg_ccps)
{
    std::ofstream os(path);
    os << std::fixed << std::setprecision(6);
    os << "{\n"
       << "  \"harness\": \"" << kBenchName
       << " x {ilp,strands,dswp,doall,hybrid} x core counts x mesh "
          "shapes\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"host_cores\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"core_counts\": [";
    for (size_t i = 0; i < core_counts.size(); ++i)
        os << (i ? ", " : "") << core_counts[i];
    os << "],\n"
       << "  \"network_bound\": {\n"
       << "    \"note\": \"indexed vs legacy CAM-scan queue model, "
          "dswp+hybrid @ 4x4; the bench fails below min_ratio\",\n"
       << "    \"indexed_core_cycles_per_second\": " << idx_ccps << ",\n"
       << "    \"legacy_core_cycles_per_second\": " << leg_ccps << ",\n"
       << "    \"ratio\": " << (leg_ccps > 0 ? idx_ccps / leg_ccps : 0.0)
       << ",\n"
       << "    \"min_ratio\": " << kMinThroughputRatio << "\n"
       << "  },\n"
       << "  \"rows\": [";
    for (size_t i = 0; i < rows.size(); ++i)
        os << (i ? ",\n" : "\n") << json_escape_free(rows[i]);
    os << "\n  ]\n"
       << "}\n";
    return os.good();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_mesh_scaling.json";
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else
            out_path = arg;
    }
    banner("Mesh scaling: per-mode speedup curves and host throughput "
           "at 4..64 cores",
           "extends Fig. 10/11/13 past the paper's 4-core machine");

    const std::vector<u16> core_counts =
        quick ? std::vector<u16>{4, 16}
              : std::vector<u16>{4, 8, 16, 32, 64};

    struct Point
    {
        const ModeSpec *mode;
        u16 cores;
        Shape shape;
    };
    std::vector<Point> points;
    for (const ModeSpec &mode : kModes)
        for (u16 cores : core_counts)
            for (const Shape &shape : shapes_for(cores))
                points.push_back({&mode, cores, shape});

    // Compile every point concurrently; rows are then simulated
    // sequentially so per-row wall clocks don't fight for the host.
    parallel_for(points.size(), [&](size_t i) {
        shared_system(kBenchName)
            .compile(options_for(*points[i].mode, points[i].cores,
                                 points[i].shape));
    });
    std::vector<Row> rows;
    rows.reserve(points.size());
    for (const Point &p : points)
        rows.push_back(run_point(*p.mode, p.cores, p.shape));

    std::cout << std::left << std::setw(9) << "mode" << std::right
              << std::setw(6) << "cores" << std::setw(10) << "shape"
              << std::setw(11) << "speedup" << std::setw(14)
              << "Mcc/s" << std::setw(12) << "hop p50/p99"
              << std::setw(12) << "q p50/p99" << "\n";
    bool all_correct = true;
    for (const Row &row : rows) {
        all_correct = all_correct && row.correct;
        std::ostringstream shape_label;
        shape_label << row.shape.rows << "x" << row.shape.cols;
        std::cout << std::left << std::setw(9) << row.mode << std::right
                  << std::setw(6) << row.cores << std::setw(10)
                  << shape_label.str() << std::setw(11) << std::fixed
                  << std::setprecision(2) << row.speedup << std::setw(14)
                  << std::setprecision(2)
                  << row.coreCyclesPerSecond() / 1e6 << std::setw(7)
                  << row.hopP50 << "/" << std::left << std::setw(4)
                  << row.hopP99 << std::right << std::setw(7)
                  << row.depthP50 << "/" << std::left << std::setw(4)
                  << row.depthP99 << std::right
                  << (row.correct ? "" : "  WRONG-RESULT") << "\n";
    }
    if (!all_correct) {
        std::cout << "FAIL: a scaled point diverged from the golden "
                     "model\n";
        return 1;
    }

    // Enforced bound: the indexed model must not be slower than the
    // legacy scan it replaced (modulo host noise). Alternate the two
    // models and keep each one's best pass so a slow spell on a busy
    // host can't penalise only whichever model ran during it.
    const int reps = quick ? 2 : 5;
    double leg_ccps = 0, idx_ccps = 0;
    bound_pass(/*legacy_scan=*/true); // warm both code paths
    bound_pass(/*legacy_scan=*/false);
    for (int r = 0; r < reps; ++r) {
        leg_ccps = std::max(leg_ccps, bound_pass(/*legacy_scan=*/true));
        idx_ccps = std::max(idx_ccps, bound_pass(/*legacy_scan=*/false));
    }
    const double ratio = leg_ccps > 0 ? idx_ccps / leg_ccps : 0.0;
    std::cout << std::setprecision(2) << "network bound @ 16 cores: "
              << "indexed " << idx_ccps / 1e6 << " Mcc/s vs legacy "
              << leg_ccps / 1e6 << " Mcc/s (ratio " << ratio << ", min "
              << kMinThroughputRatio << ")\n";

    if (!write_json(out_path, rows, core_counts, quick, idx_ccps,
                    leg_ccps)) {
        std::cout << "FAILED to write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << " (" << rows.size()
              << " rows)\n";

    if (ratio < kMinThroughputRatio) {
        std::cout << "FAIL: indexed network model throughput ratio "
                  << ratio << " below " << kMinThroughputRatio << "\n";
        return 1;
    }
    return 0;
}
