/**
 * @file
 * Ablation: the compiler design choices DESIGN.md calls out.
 *
 *  1. eBUG vs plain BUG for decoupled strands (the paper's §4.1 claim:
 *     likely-missing-load weights and memory balancing matter).
 *  2. The TM resolve cost: how expensive ordered commit may get before
 *     statistical DOALL stops paying off.
 */

#include "common.hh"

using namespace voltron;
using namespace voltron::bench;

int
main()
{
    banner("Ablation: compiler and TM design choices",
           "paper §4.1 (eBUG) and §3 (low-cost TM)");

    std::cout << "TLP (strands/DSWP) 4-core speedup, eBUG vs plain BUG "
                 "weights:\n";
    label("benchmark");
    std::cout << std::setw(8) << "eBUG" << std::setw(8) << "BUG" << "\n";
    for (const std::string &name :
         {std::string("164.gzip"), std::string("179.art"),
          std::string("197.parser"), std::string("epic")}) {
        VoltronSystem &sys = shared_system(name);
        CompileOptions ebug;
        ebug.strategy = Strategy::TlpOnly;
        ebug.numCores = 4;
        CompileOptions plain = ebug;
        plain.partition.missEdgeWeight = 0;
        plain.partition.memImbalancePenalty = 0;
        RunOutcome with_ebug = sys.run(ebug);
        RunOutcome with_plain = sys.run(plain);
        label(name) << std::fixed << std::setprecision(2) << std::setw(8)
                    << sys.speedup(with_ebug) << std::setw(8)
                    << sys.speedup(with_plain)
                    << (with_ebug.correct() && with_plain.correct()
                            ? ""
                            : "  MISMATCH")
                    << "\n";
    }

    std::cout << "\nLLP 4-core speedup vs XVALIDATE base cost (cycles):\n";
    label("benchmark");
    for (u32 cost : {0, 20, 100, 400})
        std::cout << std::setw(8) << cost;
    std::cout << "\n";
    for (const std::string &name :
         {std::string("171.swim"), std::string("mpeg2enc")}) {
        VoltronSystem &sys = shared_system(name);
        label(name) << std::fixed << std::setprecision(2);
        for (u32 cost : {0, 20, 100, 400}) {
            MachineConfig config = MachineConfig::forCores(4);
            config.tmResolveBase = cost;
            CompileOptions opts;
            opts.strategy = Strategy::LlpOnly;
            opts.numCores = 4;
            RunOutcome outcome = sys.run(opts, config);
            std::cout << std::setw(8)
                      << (outcome.correct() ? sys.speedup(outcome) : -1.0);
        }
        std::cout << "\n";
    }
    return 0;
}
