/**
 * @file
 * Figure 12: breakdown of synchronization/stall cycles on a 4-core
 * system, normalised to the serial execution time. For each benchmark
 * two bars: coupled mode (ILP compilation) and decoupled mode
 * (fine-grain-TLP compilation). Categories follow the paper: I-cache
 * stalls, D-cache stalls, data receive stalls, predicate receive stalls,
 * and call/return synchronization (worker join).
 *
 * Paper result: decoupled mode always spends less time in cache-miss
 * stalls (on average less than half of coupled mode, because cores stall
 * independently), but pays extra receive/synchronization stalls.
 */

#include "common.hh"

using namespace voltron;
using namespace voltron::bench;

namespace {

struct Bar
{
    double istall = 0, dstall = 0, recv = 0, pred = 0, sync = 0;
};

Bar
stalls_of(const MachineResult &result, u16 cores, double serial_cycles)
{
    // Per-core average, normalised to the serial execution time.
    Bar bar;
    for (CoreId c = 0; c < cores; ++c) {
        bar.istall +=
            static_cast<double>(result.stallOf(c, StallCat::IFetch));
        bar.dstall +=
            static_cast<double>(result.stallOf(c, StallCat::DCache));
        bar.recv += static_cast<double>(
            result.stallOf(c, StallCat::RecvData) +
            result.stallOf(c, StallCat::MemSync));
        bar.pred +=
            static_cast<double>(result.stallOf(c, StallCat::RecvPred));
        bar.sync +=
            static_cast<double>(result.stallOf(c, StallCat::JoinSync));
    }
    const double norm = serial_cycles * cores;
    bar.istall /= norm;
    bar.dstall /= norm;
    bar.recv /= norm;
    bar.pred /= norm;
    bar.sync /= norm;
    return bar;
}

} // namespace

int
main()
{
    banner("Figure 12: stall breakdown, coupled (ILP) vs decoupled (TLP), "
           "4 cores, normalised to serial time",
           "HPCA'07 Voltron paper, Figure 12");

    label("benchmark", 14);
    std::cout << "  mode      I-stall  D-stall     recv  predRecv  "
                 "call/retSync\n";

    struct Row
    {
        Bar coupled, decoupled;
        bool ok = false;
    };
    const std::vector<std::string> &names = benchmark_names();
    std::vector<Row> rows(names.size());
    parallel_for(names.size(), [&](size_t i) {
        VoltronSystem &sys = shared_system(names[i]);
        const double serial = static_cast<double>(sys.baselineCycles());
        RunOutcome ilp = sys.run(Strategy::IlpOnly, 4);
        RunOutcome tlp = sys.run(Strategy::TlpOnly, 4);
        if (!ilp.correct() || !tlp.correct())
            return;
        rows[i].coupled = stalls_of(ilp.result, 4, serial);
        rows[i].decoupled = stalls_of(tlp.result, 4, serial);
        rows[i].ok = true;
    });

    std::vector<double> coupled_cache, decoupled_cache;
    for (size_t i = 0; i < names.size(); ++i) {
        if (!rows[i].ok) {
            std::cout << names[i] << "  GOLDEN-MODEL MISMATCH\n";
            return 1;
        }
        const Bar &cb = rows[i].coupled;
        const Bar &db = rows[i].decoupled;
        coupled_cache.push_back(cb.istall + cb.dstall);
        decoupled_cache.push_back(db.istall + db.dstall);

        auto print_bar = [&](const char *mode, const Bar &bar) {
            label(names[i], 14);
            std::cout << "  " << std::left << std::setw(8) << mode
                      << std::right << std::fixed << std::setprecision(3)
                      << std::setw(9) << bar.istall << std::setw(9)
                      << bar.dstall << std::setw(9) << bar.recv
                      << std::setw(10) << bar.pred << std::setw(14)
                      << bar.sync << "\n";
        };
        print_bar("coupled", cb);
        print_bar("decoup", db);
    }

    std::cout << "\naverage cache-miss stalls (I+D, fraction of serial "
                 "time):\n"
              << "  coupled   = " << std::fixed << std::setprecision(3)
              << mean(coupled_cache) << "\n"
              << "  decoupled = " << mean(decoupled_cache) << "\n"
              << "  ratio     = "
              << mean(decoupled_cache) / std::max(mean(coupled_cache), 1e-9)
              << "   (paper: decoupled < 0.5x coupled)\n";
    return 0;
}
