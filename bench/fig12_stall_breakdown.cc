/**
 * @file
 * Figure 12: breakdown of synchronization/stall cycles on a 4-core
 * system, normalised to the serial execution time. For each benchmark
 * two bars: coupled mode (ILP compilation) and decoupled mode
 * (fine-grain-TLP compilation). Categories follow the paper: I-cache
 * stalls, D-cache stalls, data receive stalls, predicate receive stalls,
 * and call/return synchronization (worker join).
 *
 * Paper result: decoupled mode always spends less time in cache-miss
 * stalls (on average less than half of coupled mode, because cores stall
 * independently), but pays extra receive/synchronization stalls.
 */

#include <algorithm>

#include "common.hh"
#include "trace/perfetto.hh"
#include "trace/trace.hh"

using namespace voltron;
using namespace voltron::bench;

namespace {

struct Bar
{
    double istall = 0, dstall = 0, recv = 0, pred = 0, sync = 0;
};

Bar
stalls_of(const MachineResult &result, u16 cores, double serial_cycles)
{
    // Per-core average, normalised to the serial execution time.
    Bar bar;
    for (CoreId c = 0; c < cores; ++c) {
        bar.istall +=
            static_cast<double>(result.stallOf(c, StallCat::IFetch));
        bar.dstall +=
            static_cast<double>(result.stallOf(c, StallCat::DCache));
        bar.recv += static_cast<double>(
            result.stallOf(c, StallCat::RecvData) +
            result.stallOf(c, StallCat::MemSync));
        bar.pred +=
            static_cast<double>(result.stallOf(c, StallCat::RecvPred));
        bar.sync +=
            static_cast<double>(result.stallOf(c, StallCat::JoinSync));
    }
    const double norm = serial_cycles * cores;
    bar.istall /= norm;
    bar.dstall /= norm;
    bar.recv /= norm;
    bar.pred /= norm;
    bar.sync /= norm;
    return bar;
}

/**
 * --timeline NAME [OUT_PREFIX]: trace the ILP and TLP runs of one
 * benchmark at 4 cores, print the master's per-region timeline (where
 * the stall cycles of the table above actually accrue), and write
 * Chrome trace JSON files for Perfetto next to it.
 */
int
timeline_mode(const std::string &name, const std::string &out_prefix)
{
    const std::vector<std::string> &names = benchmark_names();
    if (std::find(names.begin(), names.end(), name) == names.end()) {
        std::cerr << "fig12_stall_breakdown: unknown workload '" << name
                  << "'; known workloads:\n";
        for (const std::string &known : names)
            std::cerr << "  " << known << "\n";
        return 1;
    }
    VoltronSystem &sys = shared_system(name);
    for (Strategy strategy : {Strategy::IlpOnly, Strategy::TlpOnly}) {
        RingBufferTraceSink ring;
        MachineConfig config = MachineConfig::forCores(4);
        config.traceSink = &ring;
        CompileOptions opts;
        opts.strategy = strategy;
        opts.numCores = 4;
        const RunOutcome outcome = sys.run(opts, config);
        if (!outcome.correct()) {
            std::cout << name << "  GOLDEN-MODEL MISMATCH\n";
            return 1;
        }

        const std::vector<TraceEvent> events = ring.events();
        std::cout << "\n" << name << " / " << strategy_name(strategy)
                  << " @ 4 cores: " << outcome.result.cycles
                  << " cycles, " << events.size() << " events\n";

        // Master region timeline from the RegionEnter stream.
        std::cout << "  region timeline (master core):\n";
        RegionId open = kNoRegion;
        Cycle since = 0;
        auto close = [&](Cycle at) {
            if (open != kNoRegion)
                std::cout << "    [" << std::setw(8) << since << ", "
                          << std::setw(8) << at << ")  region " << open
                          << "  (" << at - since << " cycles)\n";
            since = at;
        };
        for (const TraceEvent &ev : events) {
            if (ev.kind != TraceEventKind::RegionEnter)
                continue;
            close(ev.cycle);
            open = ev.arg32;
        }
        close(outcome.result.cycles);
        std::cout << "  coupled " << outcome.result.coupledCycles
                  << " / decoupled " << outcome.result.decoupledCycles
                  << " cycles\n";

        TraceHeader header;
        header.numCores = 4;
        header.totalCycles = outcome.result.cycles;
        header.totalEvents = ring.total();
        header.dropped = ring.dropped();
        header.label = name + "/" + strategy_name(strategy) + "/c4";
        const std::string path = out_prefix + "." +
                                 strategy_name(strategy) + ".json";
        if (!export_chrome_trace_file(path, header, events)) {
            std::cout << "FAILED to write " << path << "\n";
            return 1;
        }
        std::cout << "  wrote " << path << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 3 && std::string(argv[1]) == "--timeline")
        return timeline_mode(argv[2],
                             argc > 3 ? argv[3]
                                      : "fig12_timeline_" +
                                            std::string(argv[2]));

    banner("Figure 12: stall breakdown, coupled (ILP) vs decoupled (TLP), "
           "4 cores, normalised to serial time",
           "HPCA'07 Voltron paper, Figure 12");

    label("benchmark", 14);
    std::cout << "  mode      I-stall  D-stall     recv  predRecv  "
                 "call/retSync\n";

    struct Row
    {
        Bar coupled, decoupled;
        bool ok = false;
    };
    const std::vector<std::string> &names = benchmark_names();
    std::vector<Row> rows(names.size());
    parallel_for(names.size(), [&](size_t i) {
        VoltronSystem &sys = shared_system(names[i]);
        const double serial = static_cast<double>(sys.baselineCycles());
        RunOutcome ilp = sys.run(Strategy::IlpOnly, 4);
        RunOutcome tlp = sys.run(Strategy::TlpOnly, 4);
        if (!ilp.correct() || !tlp.correct())
            return;
        rows[i].coupled = stalls_of(ilp.result, 4, serial);
        rows[i].decoupled = stalls_of(tlp.result, 4, serial);
        rows[i].ok = true;
    });

    std::vector<double> coupled_cache, decoupled_cache;
    for (size_t i = 0; i < names.size(); ++i) {
        if (!rows[i].ok) {
            std::cout << names[i] << "  GOLDEN-MODEL MISMATCH\n";
            return 1;
        }
        const Bar &cb = rows[i].coupled;
        const Bar &db = rows[i].decoupled;
        coupled_cache.push_back(cb.istall + cb.dstall);
        decoupled_cache.push_back(db.istall + db.dstall);

        auto print_bar = [&](const char *mode, const Bar &bar) {
            label(names[i], 14);
            std::cout << "  " << std::left << std::setw(8) << mode
                      << std::right << std::fixed << std::setprecision(3)
                      << std::setw(9) << bar.istall << std::setw(9)
                      << bar.dstall << std::setw(9) << bar.recv
                      << std::setw(10) << bar.pred << std::setw(14)
                      << bar.sync << "\n";
        };
        print_bar("coupled", cb);
        print_bar("decoup", db);
    }

    std::cout << "\naverage cache-miss stalls (I+D, fraction of serial "
                 "time):\n"
              << "  coupled   = " << std::fixed << std::setprecision(3)
              << mean(coupled_cache) << "\n"
              << "  decoupled = " << mean(decoupled_cache) << "\n"
              << "  ratio     = "
              << mean(decoupled_cache) / std::max(mean(coupled_cache), 1e-9)
              << "   (paper: decoupled < 0.5x coupled)\n";
    return 0;
}
