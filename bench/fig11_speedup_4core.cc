/**
 * @file
 * Figure 11: speedup on a 4-core Voltron exploiting ILP, fine-grain TLP
 * and LLP separately, relative to the 1-core serial baseline.
 *
 * Paper result: averages 1.33 (ILP), 1.23 (fine-grain TLP), 1.37 (LLP);
 * gains from 2 to 4 cores are larger for the decoupled techniques.
 */

#include "common.hh"

using namespace voltron;
using namespace voltron::bench;

int
main()
{
    banner("Figure 11: per-type speedup, 4-core Voltron vs 1-core baseline",
           "HPCA'07 Voltron paper, Figure 11");

    label("benchmark");
    std::cout << std::setw(8) << "ILP" << std::setw(8) << "TLP"
              << std::setw(8) << "LLP" << "\n";

    std::vector<double> ilp, tlp, llp;
    for (const std::string &name : benchmark_names()) {
        VoltronSystem sys(build_benchmark(name, bench_scale()));
        label(name) << std::fixed << std::setprecision(2);
        double row[3];
        int i = 0;
        for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly,
                           Strategy::LlpOnly}) {
            RunOutcome outcome = sys.run(s, 4);
            if (!outcome.correct()) {
                std::cout << "  GOLDEN-MODEL MISMATCH\n";
                return 1;
            }
            row[i++] = sys.speedup(outcome);
        }
        ilp.push_back(row[0]);
        tlp.push_back(row[1]);
        llp.push_back(row[2]);
        std::cout << std::setw(8) << row[0] << std::setw(8) << row[1]
                  << std::setw(8) << row[2] << "\n";
    }

    label("average");
    std::cout << std::fixed << std::setprecision(2) << std::setw(8)
              << mean(ilp) << std::setw(8) << mean(tlp) << std::setw(8)
              << mean(llp) << "\n";
    std::cout << "paper:        " << std::setw(8) << 1.33 << std::setw(8)
              << 1.23 << std::setw(8) << 1.37 << "\n";
    return 0;
}
