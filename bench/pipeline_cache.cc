/**
 * @file
 * Front-end pipeline self-benchmark: cold vs warm artifact-cache wall
 * time for the golden run + compile + serial baseline over the whole
 * suite (the fig12 point set: IlpOnly and TlpOnly at 4 cores).
 *
 * Three passes over identical inputs, each constructing fresh
 * VoltronSystems so only the ArtifactCache level under test can help:
 *
 *   cold        fresh disk dir, empty in-process cache — every artifact
 *               is computed and persisted;
 *   warm_memory same process again — artifacts come from the in-process
 *               level (the shared-suite-cache scenario inside one
 *               harness binary);
 *   warm_disk   in-process level dropped — artifacts are deserialized
 *               and hash-verified from the disk dir (the scenario of a
 *               second fig* binary re-using the first one's work).
 *
 * Writes BENCH_pipeline_cache.json (argv[1] overrides) and exits
 * non-zero if a warm pass is not at least 3x faster than cold, so CI
 * catches cache regressions. argv[2] overrides the throwaway cache dir.
 */

#include <chrono>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "common.hh"

using namespace voltron;
using namespace voltron::bench;

namespace {

struct PassResult
{
    double wallSeconds = 0;
    ArtifactCacheStats stats;
};

/** One full front-end pass: build, golden, compile both fig12
 * strategies, and measure the serial baseline, per suite benchmark. */
PassResult
front_end_pass()
{
    ArtifactCache::instance().resetStats();
    const std::vector<std::string> &names = benchmark_names();
    const auto start = std::chrono::steady_clock::now();
    parallel_for(names.size(), [&](size_t i) {
        VoltronSystem sys(build_benchmark(names[i], bench_scale()));
        for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly}) {
            CompileOptions opts;
            opts.strategy = s;
            opts.numCores = 4;
            sys.compile(opts);
        }
        sys.baselineCycles();
    });
    const auto end = std::chrono::steady_clock::now();
    PassResult pass;
    pass.wallSeconds = std::chrono::duration<double>(end - start).count();
    pass.stats = ArtifactCache::instance().stats();
    return pass;
}

void
write_pass(std::ofstream &os, const char *name, const PassResult &pass)
{
    os << "  \"" << name << "\": {\n"
       << "    \"wall_seconds\": " << pass.wallSeconds << ",\n"
       << "    \"mem_hits\": " << pass.stats.memHits() << ",\n"
       << "    \"disk_hits\": " << pass.stats.diskHits() << ",\n"
       << "    \"misses\": " << pass.stats.misses() << ",\n"
       << "    \"stores\": " << pass.stats.stores() << ",\n"
       << "    \"corrupt\": " << pass.stats.corrupt << "\n"
       << "  }";
}

bool
write_json(const std::string &path, const PassResult &cold,
           const PassResult &warm_mem, const PassResult &warm_disk,
           size_t benchmarks)
{
    std::ofstream os(path);
    os << std::fixed << std::setprecision(6);
    os << "{\n"
       << "  \"harness\": \"front-end (golden + compile + baseline) over "
          "the suite, IlpOnly+TlpOnly @ 4 cores\",\n"
       << "  \"benchmarks\": " << benchmarks << ",\n";
    write_pass(os, "cold", cold);
    os << ",\n";
    write_pass(os, "warm_memory", warm_mem);
    os << ",\n";
    write_pass(os, "warm_disk", warm_disk);
    os << ",\n"
       << "  \"warm_memory_reduction\": "
       << (warm_mem.wallSeconds > 0
               ? cold.wallSeconds / warm_mem.wallSeconds
               : 0.0)
       << ",\n"
       << "  \"warm_disk_reduction\": "
       << (warm_disk.wallSeconds > 0
               ? cold.wallSeconds / warm_disk.wallSeconds
               : 0.0)
       << ",\n"
       << "  \"note\": \"each pass constructs fresh VoltronSystems; warm "
          "passes still rebuild the Program IR and hash it, then hit the "
          "cache for golden/machine/baseline artifacts. warm_disk "
          "deserializes and hash-verifies every artifact from "
          "VOLTRON_CACHE_DIR.\",\n"
       << "  \"bench_threads\": " << bench_threads() << "\n"
       << "}\n";
    return os.good();
}

void
print_pass(const char *name, const PassResult &pass)
{
    std::cout << std::left << std::setw(12) << name << std::right
              << std::fixed << std::setprecision(3) << std::setw(9)
              << pass.wallSeconds << " s   mem_hits=" << pass.stats.memHits()
              << " disk_hits=" << pass.stats.diskHits()
              << " misses=" << pass.stats.misses() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_pipeline_cache.json";
    const std::string cache_dir =
        argc > 2 ? argv[2]
                 : "/tmp/voltron-pipeline-cache-" + std::to_string(::getpid());

    banner("Pipeline cache: cold vs warm front-end wall time",
           "self-benchmark; no paper figure");

    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);
    ArtifactCache::instance().setDiskDir(cache_dir);
    ArtifactCache::instance().clearMemory();

    const PassResult cold = front_end_pass();
    const PassResult warm_mem = front_end_pass();
    ArtifactCache::instance().clearMemory();
    const PassResult warm_disk = front_end_pass();

    ArtifactCache::instance().setDiskDir(std::nullopt);
    std::filesystem::remove_all(cache_dir, ec);

    const size_t benchmarks = benchmark_names().size();
    print_pass("cold", cold);
    print_pass("warm-memory", warm_mem);
    print_pass("warm-disk", warm_disk);
    const double mem_x =
        warm_mem.wallSeconds > 0 ? cold.wallSeconds / warm_mem.wallSeconds
                                 : 0.0;
    const double disk_x =
        warm_disk.wallSeconds > 0 ? cold.wallSeconds / warm_disk.wallSeconds
                                  : 0.0;
    std::cout << std::setprecision(1) << "front-end reduction: "
              << mem_x << "x (memory), " << disk_x << "x (disk)\n";

    if (!write_json(out_path, cold, warm_mem, warm_disk, benchmarks)) {
        std::cout << "FAILED to write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";

    if (warm_mem.stats.memHits() == 0 || warm_disk.stats.diskHits() == 0) {
        std::cout << "FAIL: warm passes did not hit the expected cache "
                     "level\n";
        return 1;
    }
    if (mem_x < 3.0 || disk_x < 3.0) {
        std::cout << "FAIL: warm front-end less than 3x faster than cold\n";
        return 1;
    }
    return 0;
}
