/**
 * @file
 * §4.2 case studies: the three kernels the paper walks through on a
 * 2-core system.
 *
 *  - Figure 7 (gsmdecode): a statistical DOALL loop, paper speedup 1.9x.
 *  - Figure 8 (164.gzip): the scan/match strand loop, paper speedup 1.2x.
 *  - Figure 9 (gsmdecode): the high-ILP recurrence loop, paper 1.78x.
 */

#include "common.hh"
#include "workloads/archetypes.hh"

using namespace voltron;
using namespace voltron::bench;

namespace {

Program
phase_program(Archetype archetype, const PhaseParams &pp, u64 seed)
{
    Rng rng(seed);
    ProgramBuilder b("case");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    FuncId f = emit_phase(b, archetype, archetype_name(archetype), pp, rng);
    Program prog = b.take();
    Function &main_fn = prog.function(0);
    main_fn.blocks.clear();
    main_fn.addBlock("entry");
    BasicBlock &bb = main_fn.block(0);
    bb.append(ops::movi(gpr(1), 3));
    RegId bt = main_fn.freshReg(RegClass::BTR);
    bb.append(ops::pbr(bt, CodeRef::to_function(f)));
    bb.append(ops::call(bt));
    bb.append(ops::halt(gpr(0)));
    return prog;
}

void
run_case(const char *title, Archetype archetype, Strategy strategy,
         const PhaseParams &pp, double paper)
{
    VoltronSystem sys(phase_program(archetype, pp, 0xCAFE));
    RunOutcome outcome = sys.run(strategy, 2);
    std::cout << std::left << std::setw(44) << title << std::right
              << std::fixed << std::setprecision(2)
              << " measured " << sys.speedup(outcome) << "x  paper "
              << paper << "x"
              << (outcome.correct() ? "" : "  GOLDEN-MODEL MISMATCH")
              << "\n";
}

} // namespace

int
main()
{
    banner("Section 4.2 kernel case studies (2-core)",
           "HPCA'07 Voltron paper, Figures 7/8/9");

    PhaseParams doall_pp;
    doall_pp.trips = 2048;
    run_case("Fig.7  gsmdecode DOALL loop (LLP)", Archetype::DoallStream,
             Strategy::LlpOnly, doall_pp, 1.9);

    PhaseParams strand_pp;
    strand_pp.trips = 16384;
    strand_pp.width = 6;
    run_case("Fig.8  164.gzip scan/match loop (strands)",
             Archetype::StrandMatch, Strategy::TlpOnly, strand_pp, 1.2);

    PhaseParams ilp_pp;
    ilp_pp.trips = 1024;
    ilp_pp.elems = 256;
    ilp_pp.width = 8;
    run_case("Fig.9  gsmdecode recurrence loop (ILP)", Archetype::IlpWide,
             Strategy::IlpOnly, ilp_pp, 1.78);
    return 0;
}
