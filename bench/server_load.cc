/**
 * @file
 * Closed-loop load replay against a live voltron-served instance.
 *
 * Boots the daemon in-process on a throwaway socket with a deliberately
 * tight disk budget, then drives it with a fleet of client threads,
 * each a closed loop (next request only after the previous response):
 *
 *   phase 1 (cold)  — every distinct request key once; all misses,
 *                     every response says "source":"cold";
 *   phase 2 (warm)  — thousands of requests, mostly replays of the hot
 *                     pool (response-cache hits) with a trickle of
 *                     never-seen seeds so the cold path stays exercised
 *                     and the disk tier keeps churning under budget.
 *
 * Every request asks for its span timeline ("timing":true) and the
 * bench checks per response that queue wait plus the service phases
 * never exceeds the request's total wall time.
 *
 * Records per-request latency tagged by the response's actual source,
 * and writes BENCH_server.json with percentiles, dedup/hit-rate stats,
 * the daemon's own per-phase p50/p95/p99 ("phases" section), and the
 * cache eviction counters. Exit status enforces the regression gates:
 * >= 90% warm hit rate, >= 5x cold-vs-warm median latency, disk tier
 * never observed over budget, evictions > 0 (the budget actually bit),
 * and zero span-accounting violations.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_cache.hh"
#include "server/client.hh"
#include "server/json.hh"
#include "server/server.hh"
#include "workloads/suite.hh"

using namespace voltron;

namespace {

constexpr size_t kClients = 4;
constexpr size_t kHotPool = 24;       // distinct hot request keys
constexpr size_t kWarmRequests = 2000;
constexpr size_t kColdTrickle = 20;   // every Nth warm request is new
// Tight enough that the suite's artifact set (several MB) churns the
// evictor constantly, but comfortably above the largest single machine
// artifact (~320 KB) — an entry bigger than the whole budget would make
// the bound unsatisfiable by construction.
constexpr u64 kDiskBudget = 1'048'576;

struct Sample
{
    u64 us;
    bool warmPhase;
    std::string source; // cold | cached | follower
};

std::string
run_line(const std::string &benchmark, u64 target_ops)
{
    JsonWriter w;
    w.beginObject();
    w.field("op", "run");
    w.field("benchmark", benchmark);
    if (target_ops != 0)
        w.field("targetOps", target_ops);
    // The per-request timeline rides along so the bench can check the
    // span accounting on every single response.
    w.field("timing", true);
    w.key("options");
    w.beginObject();
    w.field("cores", 4);
    w.endObject();
    w.endObject();
    return w.str();
}

/**
 * Per-request span-accounting check: the time queued plus the time in
 * the service phases can never exceed the request's total wall time
 * (they are disjoint spans of one timeline). False means the telemetry
 * is broken, not the server.
 */
bool
timing_accounts(const JsonValue &response)
{
    const JsonValue *timing = response.find("timing");
    if (!timing || !timing->isObject())
        return false; // requested but absent
    const JsonValue *phases = timing->find("phases");
    if (!phases || !phases->isObject())
        return false;
    const u64 total = timing->u64At("totalUs");
    const u64 queue_wait = phases->u64At("queueWait");
    const u64 service =
        phases->u64At("cacheProbe") + phases->u64At("goldenRun") +
        phases->u64At("compile") + phases->u64At("simulate");
    return queue_wait + service <= total;
}

u64
percentile(std::vector<u64> sorted, double p)
{
    if (sorted.empty())
        return 0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

u64
disk_bytes(const std::string &dir)
{
    u64 total = 0;
    for_each_cache_file(dir, [&](const std::filesystem::path &p) {
        std::error_code ec;
        const u64 size = std::filesystem::file_size(p, ec);
        if (!ec)
            total += size;
    });
    return total;
}

struct LatencyStats
{
    u64 count = 0;
    u64 p50 = 0;
    u64 p90 = 0;
    u64 p99 = 0;
    double meanUs = 0.0;
};

LatencyStats
summarize(std::vector<u64> lat)
{
    LatencyStats s;
    s.count = lat.size();
    if (lat.empty())
        return s;
    std::sort(lat.begin(), lat.end());
    s.p50 = percentile(lat, 0.50);
    s.p90 = percentile(lat, 0.90);
    s.p99 = percentile(lat, 0.99);
    double sum = 0;
    for (u64 v : lat)
        sum += static_cast<double>(v);
    s.meanUs = sum / static_cast<double>(lat.size());
    return s;
}

void
write_latency(JsonWriter &w, const std::string &key, const LatencyStats &s)
{
    w.key(key);
    w.beginObject();
    w.field("count", s.count);
    w.field("p50Us", s.p50);
    w.field("p90Us", s.p90);
    w.field("p99Us", s.p99);
    w.field("meanUs", s.meanUs);
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_server.json";

    const std::filesystem::path cache_dir =
        std::filesystem::temp_directory_path() /
        ("vserver-bench-" + std::to_string(::getpid()));
    std::filesystem::create_directories(cache_dir);
    ArtifactCache::instance().setDiskDir(cache_dir.string());
    ArtifactCache::instance().resetStats();

    ServerConfig config;
    config.socketPath = (cache_dir / "bench.sock").string();
    config.workers = 2;
    config.cacheMaxBytes = kDiskBudget;
    config.evictIntervalMs = 200;
    Server server(config);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "server_load: %s\n", err.c_str());
        return 1;
    }

    std::mutex samplesMutex;
    std::vector<Sample> samples;
    std::atomic<u64> overBudgetObservations{0};
    std::atomic<u64> maxDiskObserved{0};
    std::atomic<u64> failures{0};
    std::atomic<u64> timingViolations{0};

    auto drive = [&](const std::vector<std::string> &lines, bool warm) {
        std::atomic<size_t> next{0};
        std::atomic<size_t> live{kClients};
        std::vector<std::thread> clients;
        for (size_t c = 0; c < kClients; ++c) {
            clients.emplace_back([&] {
                struct Depart
                {
                    std::atomic<size_t> &live;
                    ~Depart() { --live; }
                } depart{live};
                Client client;
                std::string cerr2;
                if (!client.connect(config.socketPath, &cerr2)) {
                    ++failures;
                    return;
                }
                for (size_t i = next.fetch_add(1); i < lines.size();
                     i = next.fetch_add(1)) {
                    const std::string &line = lines[i];
                    const auto t0 = std::chrono::steady_clock::now();
                    std::string response;
                    if (!client.request(line, response, &cerr2)) {
                        ++failures;
                        return;
                    }
                    const u64 us = static_cast<u64>(
                        std::chrono::duration_cast<
                            std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
                    JsonValue v;
                    if (!JsonValue::parse(response, v) ||
                        v.str("status") != "ok") {
                        ++failures;
                        continue;
                    }
                    if (!timing_accounts(v))
                        ++timingViolations;
                    std::lock_guard<std::mutex> lock(samplesMutex);
                    samples.push_back({us, warm, v.str("source")});
                }
            });
        }
        // The main thread polls the disk tier while clients run: the
        // budget must hold at every observable point, not just at the
        // end.
        while (live.load() > 0) {
            const u64 bytes = disk_bytes(cache_dir.string());
            u64 seen = maxDiskObserved.load();
            while (bytes > seen &&
                   !maxDiskObserved.compare_exchange_weak(seen, bytes)) {
            }
            if (bytes > kDiskBudget)
                ++overBudgetObservations;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        for (std::thread &t : clients)
            t.join();
    };

    // The hot pool is the paper suite itself: one request key per
    // benchmark at the default scale.
    const std::vector<std::string> &names = benchmark_names();
    std::vector<std::string> hot;
    for (size_t i = 0; i < kHotPool && i < names.size(); ++i)
        hot.push_back(run_line(names[i], 0));

    // Phase 1: every hot key once, cold.
    drive(hot, /*warm=*/false);

    // Phase 2: replay the hot pool with a trickle of never-seen keys
    // (same benchmark, unique scale -> unique content hash) mixed in.
    std::vector<std::string> warm_lines;
    u64 fresh_ops = 50'000;
    for (size_t i = 0; i < kWarmRequests; ++i) {
        if (i % kColdTrickle == kColdTrickle - 1)
            warm_lines.push_back(
                run_line(names[i % names.size()], fresh_ops++));
        else
            warm_lines.push_back(hot[(i * 7) % hot.size()]);
    }
    drive(warm_lines, /*warm=*/true);

    // Final numbers straight from the daemon.
    Client statsClient;
    std::string statsLine;
    u64 evictions = 0;
    u64 evictedBytes = 0;
    u64 serverRuns = 0;
    u64 responseHits = 0;
    u64 followerHits = 0;
    JsonValue statsResult; // kept whole for the per-phase percentiles
    if (statsClient.connect(config.socketPath) &&
        statsClient.request("{\"op\":\"stats\"}", statsLine)) {
        JsonValue v;
        if (JsonValue::parse(statsLine, v)) {
            const JsonValue *result = v.find("result");
            if (result) {
                statsResult = *result;
                evictions = result->u64At("cache.evictions");
                evictedBytes = result->u64At("cache.evictedBytes");
                serverRuns = result->u64At("server.runs");
                responseHits = result->u64At("server.responseHits");
                followerHits = result->u64At("server.followerHits");
            }
        }
    }
    statsClient.close();
    server.stop();

    const u64 finalDisk = disk_bytes(cache_dir.string());

    std::vector<u64> coldLat;
    std::vector<u64> warmHitLat;
    u64 warmTotal = 0;
    u64 warmHits = 0;
    for (const Sample &s : samples) {
        if (!s.warmPhase) {
            coldLat.push_back(s.us);
            continue;
        }
        ++warmTotal;
        if (s.source == "cached" || s.source == "follower") {
            ++warmHits;
            warmHitLat.push_back(s.us);
        }
    }
    const LatencyStats cold = summarize(coldLat);
    const LatencyStats warm = summarize(warmHitLat);
    const double hitRate =
        warmTotal ? static_cast<double>(warmHits) /
                        static_cast<double>(warmTotal)
                  : 0.0;
    const double medianSpeedup =
        warm.p50 ? static_cast<double>(cold.p50) /
                       static_cast<double>(warm.p50)
                 : 0.0;

    const bool hitRateOk = hitRate >= 0.90;
    const bool latencyOk = medianSpeedup >= 5.0;
    const bool diskBoundOk =
        overBudgetObservations.load() == 0 && finalDisk <= kDiskBudget;
    const bool evictionsOk = evictions > 0;
    const bool cleanRun = failures.load() == 0;
    const bool timingOk = timingViolations.load() == 0;
    const bool pass = hitRateOk && latencyOk && diskBoundOk &&
                      evictionsOk && cleanRun && timingOk;

    JsonWriter w;
    w.beginObject();
    w.key("config");
    w.beginObject();
    w.field("clients", static_cast<u64>(kClients));
    w.field("hotPool", static_cast<u64>(kHotPool));
    w.field("warmRequests", static_cast<u64>(kWarmRequests));
    w.field("coldTrickleEvery", static_cast<u64>(kColdTrickle));
    w.field("diskBudgetBytes", kDiskBudget);
    w.field("workers", static_cast<u64>(config.workers));
    w.endObject();
    w.key("requests");
    w.beginObject();
    w.field("total", static_cast<u64>(samples.size()));
    w.field("serverRuns", serverRuns);
    w.field("responseHits", responseHits);
    w.field("followerHits", followerHits);
    w.field("warmPhase", warmTotal);
    w.field("warmPhaseHits", warmHits);
    w.field("warmHitRate", hitRate);
    w.field("failures", failures.load());
    w.field("timingViolations", timingViolations.load());
    w.endObject();
    w.key("latency");
    w.beginObject();
    write_latency(w, "cold", cold);
    write_latency(w, "warmHit", warm);
    w.field("medianColdOverWarm", medianSpeedup);
    w.endObject();
    // Daemon-side per-phase percentiles: every timed run feeds the
    // server's phase histograms, so this is the service-time breakdown
    // exactly as the daemon measured it (client latencies above include
    // the socket round-trip; these do not).
    w.key("phases");
    w.beginObject();
    {
        static const char *const kPhaseRows[] = {
            "server.latency.total",    "server.phase.parse",
            "server.phase.classify",   "server.phase.queueWait",
            "server.phase.cacheProbe", "server.phase.goldenRun",
            "server.phase.compile",    "server.phase.simulate",
            "server.phase.serialize",  "server.phase.reply",
        };
        for (const char *row : kPhaseRows) {
            const std::string base = row;
            if (!statsResult.find(base + ".count"))
                continue;
            w.key(base.substr(base.rfind('.') + 1));
            w.beginObject();
            w.field("count", statsResult.u64At(base + ".count"));
            w.field("p50Us", statsResult.u64At(base + ".p50"));
            w.field("p95Us", statsResult.u64At(base + ".p95"));
            w.field("p99Us", statsResult.u64At(base + ".p99"));
            w.endObject();
        }
    }
    w.endObject();
    w.key("disk");
    w.beginObject();
    w.field("budgetBytes", kDiskBudget);
    w.field("maxObservedBytes", maxDiskObserved.load());
    w.field("finalBytes", finalDisk);
    w.field("overBudgetObservations", overBudgetObservations.load());
    w.field("evictions", evictions);
    w.field("evictedBytes", evictedBytes);
    w.endObject();
    w.key("gates");
    w.beginObject();
    w.field("hitRateAtLeast90", hitRateOk);
    w.field("medianSpeedupAtLeast5x", latencyOk);
    w.field("diskUnderBudget", diskBoundOk);
    w.field("evictionsPositive", evictionsOk);
    w.field("noClientFailures", cleanRun);
    w.field("timingAccounting", timingOk);
    w.field("pass", pass);
    w.endObject();
    w.endObject();

    std::ofstream out(out_path);
    out << w.str() << "\n";
    out.close();

    std::printf("server_load: %zu requests, warm hit rate %.1f%%, "
                "cold p50 %llu us vs warm p50 %llu us (%.1fx), "
                "disk max %llu / budget %llu, %llu evictions, "
                "%llu timing violations -> %s\n",
                samples.size(), hitRate * 100.0,
                static_cast<unsigned long long>(cold.p50),
                static_cast<unsigned long long>(warm.p50), medianSpeedup,
                static_cast<unsigned long long>(maxDiskObserved.load()),
                static_cast<unsigned long long>(kDiskBudget),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(timingViolations.load()),
                pass ? "PASS" : "FAIL");

    ArtifactCache::instance().setDiskDir(std::nullopt);
    ArtifactCache::instance().setDiskBudget(std::nullopt);
    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);
    return pass ? 0 : 1;
}
