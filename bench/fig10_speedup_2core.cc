/**
 * @file
 * Figure 10: speedup on a 2-core Voltron exploiting ILP, fine-grain TLP
 * and LLP separately, relative to the 1-core serial baseline.
 *
 * Paper result: averages 1.23 (ILP), 1.16 (fine-grain TLP), 1.18 (LLP);
 * no single parallelism type dominates across the suite.
 */

#include "common.hh"

using namespace voltron;
using namespace voltron::bench;

int
main()
{
    banner("Figure 10: per-type speedup, 2-core Voltron vs 1-core baseline",
           "HPCA'07 Voltron paper, Figure 10");

    label("benchmark");
    std::cout << std::setw(8) << "ILP" << std::setw(8) << "TLP"
              << std::setw(8) << "LLP" << "\n";

    struct Row
    {
        double speedup[3] = {0, 0, 0};
        bool ok = false;
    };
    const std::vector<std::string> &names = benchmark_names();
    std::vector<Row> rows(names.size());
    parallel_for(names.size(), [&](size_t i) {
        VoltronSystem &sys = shared_system(names[i]);
        int col = 0;
        for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly,
                           Strategy::LlpOnly}) {
            RunOutcome outcome = sys.run(s, 2);
            if (!outcome.correct())
                return;
            rows[i].speedup[col++] = sys.speedup(outcome);
        }
        rows[i].ok = true;
    });

    std::vector<double> ilp, tlp, llp;
    for (size_t i = 0; i < names.size(); ++i) {
        if (!rows[i].ok) {
            std::cout << names[i] << "  GOLDEN-MODEL MISMATCH\n";
            return 1;
        }
        ilp.push_back(rows[i].speedup[0]);
        tlp.push_back(rows[i].speedup[1]);
        llp.push_back(rows[i].speedup[2]);
        label(names[i]) << std::fixed << std::setprecision(2)
                        << std::setw(8) << rows[i].speedup[0]
                        << std::setw(8) << rows[i].speedup[1]
                        << std::setw(8) << rows[i].speedup[2] << "\n";
    }

    label("average");
    std::cout << std::fixed << std::setprecision(2) << std::setw(8)
              << mean(ilp) << std::setw(8) << mean(tlp) << std::setw(8)
              << mean(llp) << "\n";
    std::cout << "paper:        " << std::setw(8) << 1.23 << std::setw(8)
              << 1.16 << std::setw(8) << 1.18 << "\n";
    return 0;
}
