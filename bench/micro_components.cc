/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrates: cache
 * hierarchy throughput, operand-network queue operations, the coupled
 * block scheduler, the reference interpreter, and a full machine tick.
 */

#include <benchmark/benchmark.h>

#include "compiler/schedule.hh"
#include "core/voltron.hh"
#include "ir/builder.hh"
#include "mem/hierarchy.hh"
#include "network/network.hh"
#include "support/rng.hh"

using namespace voltron;

namespace {

void
BM_CacheHitAccess(benchmark::State &state)
{
    MemHierarchy mem(4);
    mem.access(0, 0x1000, false, 0);
    Cycle now = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.access(0, 0x1000, false, now++));
    }
}
BENCHMARK(BM_CacheHitAccess);

void
BM_CacheMissStream(benchmark::State &state)
{
    MemHierarchy mem(4);
    Addr addr = 0;
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.access(0, addr, false, now++));
        addr += 64;
    }
}
BENCHMARK(BM_CacheMissStream);

void
BM_CoherenceBounce(benchmark::State &state)
{
    MemHierarchy mem(4);
    Cycle now = 0;
    CoreId core = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.access(core, 0x2000, true, now++));
        core = static_cast<CoreId>((core + 1) % 4);
    }
}
BENCHMARK(BM_CoherenceBounce);

void
BM_NetworkSendRecv(benchmark::State &state)
{
    NetworkConfig config;
    config.rows = 2;
    config.cols = 2;
    OperandNetwork net(config);
    Cycle now = 0;
    for (auto _ : state) {
        net.send(0, 3, now, now);
        benchmark::DoNotOptimize(net.tryRecv(3, 0, now + 10));
        now += 20;
    }
}
BENCHMARK(BM_NetworkSendRecv);

void
BM_ScheduleBlock(benchmark::State &state)
{
    // A representative 30-op, 4-core block with one transfer.
    std::vector<ScheduleSlot> slots;
    Rng rng(1);
    for (int i = 0; i < 30; ++i) {
        const CoreId core = static_cast<CoreId>(rng.below(4));
        slots.push_back(
            {core, ops::addi(gpr(static_cast<u16>(16 + i)),
                             gpr(static_cast<u16>(16 + i / 2)), 1)});
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(schedule_block(slots, 4));
}
BENCHMARK(BM_ScheduleBlock);

Program
interp_program()
{
    ProgramBuilder b("micro");
    b.beginFunction("main");
    RegId sum = b.emitImm(0);
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, 10000);
    b.emit(ops::add(sum, sum, i));
    RegId t = b.newGpr();
    b.emit(ops::alui(Opcode::MUL, t, i, 3));
    b.emit(ops::alu(Opcode::XOR, sum, sum, t));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();
    return b.take();
}

void
BM_InterpreterThroughput(benchmark::State &state)
{
    Program prog = interp_program();
    u64 ops = 0;
    for (auto _ : state) {
        GoldenRun run = run_golden(prog);
        ops += run.result.dynamicOps;
        benchmark::DoNotOptimize(run.result.exitValue);
    }
    state.SetItemsProcessed(static_cast<i64>(ops));
}
BENCHMARK(BM_InterpreterThroughput);

void
BM_MachineSimulationThroughput(benchmark::State &state)
{
    VoltronSystem sys(interp_program());
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 4;
    const MachineProgram &mp = sys.compile(opts);
    u64 cycles = 0;
    for (auto _ : state) {
        Machine machine(mp, MachineConfig::forCores(4));
        MachineResult result = machine.run();
        cycles += result.cycles;
        benchmark::DoNotOptimize(result.exitValue);
    }
    state.SetItemsProcessed(static_cast<i64>(cycles));
}
BENCHMARK(BM_MachineSimulationThroughput);

} // namespace

BENCHMARK_MAIN();
