/**
 * @file
 * Figure 13: speedup on 2-core and 4-core Voltron exploiting *hybrid*
 * parallelism — the compiler picks the best technique per region (§4.2)
 * and the machine switches modes at run time.
 *
 * Paper result: 2-core 1.13-1.98 (avg 1.46); 4-core 1.15-3.25
 * (avg 1.83). Hybrid beats every single-technique compilation.
 */

#include "common.hh"

using namespace voltron;
using namespace voltron::bench;

int
main()
{
    banner("Figure 13: hybrid-parallelism speedup, 2 and 4 cores",
           "HPCA'07 Voltron paper, Figure 13");

    label("benchmark");
    std::cout << std::setw(9) << "2-core" << std::setw(9) << "4-core"
              << "\n";

    struct Row
    {
        double s2 = 0, s4 = 0;
        bool ok = false;
    };
    const std::vector<std::string> &names = benchmark_names();
    std::vector<Row> rows(names.size());
    parallel_for(names.size(), [&](size_t i) {
        VoltronSystem &sys = shared_system(names[i]);
        RunOutcome o2 = sys.run(Strategy::Hybrid, 2);
        RunOutcome o4 = sys.run(Strategy::Hybrid, 4);
        if (!o2.correct() || !o4.correct())
            return;
        rows[i].s2 = sys.speedup(o2);
        rows[i].s4 = sys.speedup(o4);
        rows[i].ok = true;
    });

    std::vector<double> two, four;
    double min2 = 1e9, max2 = 0, min4 = 1e9, max4 = 0;
    for (size_t i = 0; i < names.size(); ++i) {
        if (!rows[i].ok) {
            std::cout << names[i] << "  GOLDEN-MODEL MISMATCH\n";
            return 1;
        }
        const double s2 = rows[i].s2, s4 = rows[i].s4;
        two.push_back(s2);
        four.push_back(s4);
        min2 = std::min(min2, s2);
        max2 = std::max(max2, s2);
        min4 = std::min(min4, s4);
        max4 = std::max(max4, s4);
        label(names[i]) << std::fixed << std::setprecision(2)
                        << std::setw(9) << s2 << std::setw(9) << s4 << "\n";
    }

    label("average");
    std::cout << std::fixed << std::setprecision(2) << std::setw(9)
              << mean(two) << std::setw(9) << mean(four) << "\n";
    std::cout << "range:        " << std::setprecision(2) << min2 << "-"
              << max2 << "   " << min4 << "-" << max4 << "\n";
    std::cout << "paper:            1.46     1.83   (ranges 1.13-1.98, "
                 "1.15-3.25)\n";
    return 0;
}
