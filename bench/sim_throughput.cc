/**
 * @file
 * Simulator self-benchmark: host wall-time and simulated ops/sec for
 * the stall-heaviest harness workload (the Figure 12 point set — every
 * suite benchmark compiled IlpOnly and TlpOnly at 4 cores), measured
 * with the event-driven fast-forward on and off. Writes the record as
 * JSON (argv[1], default BENCH_sim_throughput.json) so CI can track
 * simulation throughput over time. See EXPERIMENTS.md for how to read
 * the fields.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <thread>

#include "common.hh"
#include "trace/metrics.hh"

using namespace voltron;
using namespace voltron::bench;

namespace {

struct Pass
{
    double wallSeconds = 0;
    u64 simCycles = 0;
    u64 simOps = 0;

    double
    opsPerSecond() const
    {
        return wallSeconds > 0 ? static_cast<double>(simOps) / wallSeconds
                               : 0.0;
    }
    double
    cyclesPerSecond() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(simCycles) / wallSeconds
                   : 0.0;
    }
};

/** Simulate every compiled point once; simulation time only (compile
 * and golden passes are outside the timed region). */
Pass
run_pass(const std::vector<const MachineProgram *> &points, bool naive)
{
    Pass pass;
    const auto start = std::chrono::steady_clock::now();
    for (const MachineProgram *mp : points) {
        MachineConfig config = MachineConfig::forCores(4);
        config.forceNaiveStepping = naive;
        Machine machine(*mp, config);
        MachineResult result = machine.run();
        pass.simCycles += result.cycles;
        pass.simOps += result.dynamicOps;
    }
    const auto end = std::chrono::steady_clock::now();
    pass.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    return pass;
}

/** One point of the stepper-thread scaling sweep. */
struct ThreadPoint
{
    u16 threads = 0;
    Pass pass;
    unsigned hostCores = 0; //!< host cores observed when this row ran
};

/** Verdict on the "threads help at all" expectation, evaluated only on
 * hosts that can actually run two stepper threads at once. */
struct ScalingCheck
{
    double minSpeedup = 2.0;
    double bestSpeedup = 0.0;
    unsigned hostCores = 0;
    bool skipped = false;
    bool passed = false;

    const char *
    status() const
    {
        return skipped ? "skipped" : passed ? "pass" : "fail";
    }
};

/** Simulate the 8-core point set with @p threads stepper threads. */
Pass
run_threaded_pass(const std::vector<const MachineProgram *> &points,
                  u16 threads)
{
    Pass pass;
    const auto start = std::chrono::steady_clock::now();
    for (const MachineProgram *mp : points) {
        MachineConfig config = MachineConfig::forCores(8);
        config.stepperThreads = threads;
        Machine machine(*mp, config);
        MachineResult result = machine.run();
        pass.simCycles += result.cycles;
        pass.simOps += result.dynamicOps;
    }
    const auto end = std::chrono::steady_clock::now();
    pass.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    return pass;
}

bool
write_json(const std::string &path, const Pass &naive, const Pass &ff,
           size_t points, const std::vector<ThreadPoint> &scaling,
           size_t threaded_points, const ScalingCheck &check)
{
    std::ofstream os(path);
    os << std::fixed << std::setprecision(6);
    os << "{\n"
       << "  \"harness\": \"fig12_stall_breakdown points "
          "(suite x {IlpOnly,TlpOnly} @ 4 cores)\",\n"
       << "  \"cores\": 4,\n"
       << "  \"points\": " << points << ",\n"
       << "  \"naive\": {\n"
       << "    \"wall_seconds\": " << naive.wallSeconds << ",\n"
       << "    \"sim_cycles\": " << naive.simCycles << ",\n"
       << "    \"sim_ops\": " << naive.simOps << ",\n"
       << "    \"ops_per_second\": " << naive.opsPerSecond() << ",\n"
       << "    \"cycles_per_second\": " << naive.cyclesPerSecond() << "\n"
       << "  },\n"
       << "  \"fast_forward\": {\n"
       << "    \"wall_seconds\": " << ff.wallSeconds << ",\n"
       << "    \"sim_cycles\": " << ff.simCycles << ",\n"
       << "    \"sim_ops\": " << ff.simOps << ",\n"
       << "    \"ops_per_second\": " << ff.opsPerSecond() << ",\n"
       << "    \"cycles_per_second\": " << ff.cyclesPerSecond() << "\n"
       << "  },\n"
       << "  \"wall_time_reduction\": "
       << (ff.wallSeconds > 0 ? naive.wallSeconds / ff.wallSeconds : 0.0)
       << ",\n"
       << "  \"baseline_note\": \"naive = per-cycle reference stepper "
          "on the same flat hot-path state; see EXPERIMENTS.md for the "
          "end-to-end fig12_stall_breakdown comparison against the "
          "pre-optimisation tree\",\n"
       << "  \"threaded\": {\n"
       << "    \"harness\": \"representative suite subset x TlpOnly @ 8 "
          "cores, parallel stepper\",\n"
       << "    \"points\": " << threaded_points << ",\n"
       << "    \"host_cores\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "    \"note\": \"speedup is vs stepper_threads=1 (the "
          "sequential stepper); results are bit-identical at every "
          "thread count, so this is purely wall-clock. Scaling is "
          "bounded by the per-row host_cores measured at runtime — on "
          "a single-core host the barrier overhead makes threaded "
          "points slower, which is recorded honestly rather than "
          "extrapolated.\",\n"
       << "    \"sweep\": [";
    for (size_t i = 0; i < scaling.size(); ++i) {
        const ThreadPoint &tp = scaling[i];
        const double base = scaling.front().pass.wallSeconds;
        os << (i ? ",\n" : "\n")
           << "      {\"stepper_threads\": " << tp.threads
           << ", \"host_cores\": " << tp.hostCores
           << ", \"wall_seconds\": " << tp.pass.wallSeconds
           << ", \"ops_per_second\": " << tp.pass.opsPerSecond()
           << ", \"speedup\": "
           << (tp.pass.wallSeconds > 0 ? base / tp.pass.wallSeconds
                                       : 0.0)
           << "}";
    }
    os << "\n    ],\n"
       << "    \"scaling_check\": {\n"
       << "      \"expectation\": \"best threaded speedup >= "
          "min_speedup vs stepper_threads=1\",\n"
       << "      \"min_speedup\": " << check.minSpeedup << ",\n"
       << "      \"best_speedup\": " << check.bestSpeedup << ",\n"
       << "      \"host_cores\": " << check.hostCores << ",\n"
       << "      \"status\": \"" << check.status() << "\"";
    if (check.skipped) {
        os << ",\n"
           << "      \"note\": \"host has fewer than 2 cores, so "
              "threaded scaling cannot materialise; sweep rows are "
              "recorded for reference only and the expectation is not "
              "enforced\"";
    }
    os << "\n    }\n"
       << "  },\n"
       << "  \"bench_threads\": " << bench_threads() << "\n"
       << "}\n";
    return os.good();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_sim_throughput.json";
    banner("Simulator throughput: fig12 point set, fast-forward vs "
           "naive stepping",
           "self-benchmark; no paper figure");

    // Compile every point up front (concurrently); the shared suite
    // cache keeps the systems (and their MachinePrograms) alive.
    const std::vector<std::string> &names = benchmark_names();
    parallel_for(names.size(), [&](size_t i) {
        VoltronSystem &sys = shared_system(names[i]);
        for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly}) {
            CompileOptions opts;
            opts.strategy = s;
            opts.numCores = 4;
            sys.compile(opts);
        }
    });
    std::vector<const MachineProgram *> points;
    points.reserve(2 * names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly}) {
            CompileOptions opts;
            opts.strategy = s;
            opts.numCores = 4;
            points.push_back(&shared_system(names[i]).compile(opts));
        }
    }

    // Consistency guard: both steppers must agree before we publish
    // throughput numbers for them.
    {
        MachineConfig ff_config = MachineConfig::forCores(4);
        MachineConfig naive_config = MachineConfig::forCores(4);
        naive_config.forceNaiveStepping = true;
        Machine a(*points[0], ff_config), b(*points[0], naive_config);
        const MachineResult ra = a.run(), rb = b.run();
        if (ra.cycles != rb.cycles || ra.exitValue != rb.exitValue) {
            std::cout << "FAST-FORWARD / NAIVE DIVERGENCE — aborting\n";
            return 1;
        }
    }

    const Pass naive = run_pass(points, /*naive=*/true);
    const Pass ff = run_pass(points, /*naive=*/false);

    // Stepper-thread scaling: a representative benchmark per archetype
    // on the largest simulated machine (8 cores, TlpOnly — decoupled
    // execution, where the parallel stepper has work to split).
    static const char *const kThreadedNames[] = {
        "052.alvinn", "164.gzip", "197.parser",
        "epic",       "177.mesa", "256.bzip2"};
    std::vector<const MachineProgram *> points8;
    for (const char *name : kThreadedNames) {
        CompileOptions opts;
        opts.strategy = Strategy::TlpOnly;
        opts.numCores = 8;
        points8.push_back(&shared_system(name).compile(opts));
    }
    // Consistency guard: the threaded stepper must be bit-identical
    // before its wall-clock numbers are published.
    {
        MachineConfig seq_config = MachineConfig::forCores(8);
        MachineConfig par_config = MachineConfig::forCores(8);
        par_config.stepperThreads = 4;
        Machine a(*points8[0], seq_config), b(*points8[0], par_config);
        const MachineResult ra = a.run(), rb = b.run();
        if (ra.cycles != rb.cycles || ra.exitValue != rb.exitValue ||
            ra.dynamicOps != rb.dynamicOps) {
            std::cout << "THREADED / SEQUENTIAL DIVERGENCE — aborting\n";
            return 1;
        }
    }
    std::vector<ThreadPoint> scaling;
    for (u16 threads : {u16{1}, u16{2}, u16{4}, u16{8}})
        scaling.push_back({threads, run_threaded_pass(points8, threads),
                           std::thread::hardware_concurrency()});

    ScalingCheck check;
    check.hostCores = std::thread::hardware_concurrency();
    for (const ThreadPoint &tp : scaling) {
        if (tp.pass.wallSeconds <= 0)
            continue;
        check.bestSpeedup =
            std::max(check.bestSpeedup,
                     scaling.front().pass.wallSeconds / tp.pass.wallSeconds);
    }
    check.skipped = check.hostCores < 2;
    check.passed = !check.skipped && check.bestSpeedup >= check.minSpeedup;

    std::cout << std::fixed << std::setprecision(3);
    std::cout << "points simulated:     " << points.size() << "\n"
              << "naive stepping:       " << naive.wallSeconds << " s, "
              << std::setprecision(0) << naive.opsPerSecond()
              << " sim ops/s\n"
              << std::setprecision(3) << "fast-forward:         "
              << ff.wallSeconds << " s, " << std::setprecision(0)
              << ff.opsPerSecond() << " sim ops/s\n"
              << std::setprecision(2) << "wall-time reduction:  "
              << (ff.wallSeconds > 0 ? naive.wallSeconds / ff.wallSeconds
                                     : 0.0)
              << "x\n";
    std::cout << "stepper scaling (8-core machine, "
              << points8.size() << " points, host has "
              << std::thread::hardware_concurrency() << " core(s)):\n";
    for (const ThreadPoint &tp : scaling) {
        std::cout << "  threads=" << tp.threads << "  "
                  << std::setprecision(3) << tp.pass.wallSeconds
                  << " s  speedup " << std::setprecision(2)
                  << (tp.pass.wallSeconds > 0
                          ? scaling.front().pass.wallSeconds /
                                tp.pass.wallSeconds
                          : 0.0)
                  << "x\n";
    }
    if (check.skipped) {
        std::cout << "scaling check: SKIPPED (host has "
                  << check.hostCores
                  << " core(s); threaded scaling cannot materialise)\n";
    } else {
        std::cout << "scaling check: " << check.status()
                  << " (best speedup " << std::setprecision(2)
                  << check.bestSpeedup << "x, expected >= "
                  << check.minSpeedup << "x on " << check.hostCores
                  << " host cores)\n";
    }

    if (!write_json(out_path, naive, ff, points.size(), scaling,
                    points8.size(), check)) {
        std::cout << "FAILED to write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";

    // Unified counter namespace for one representative point (untimed,
    // outside both passes) so CI archives component-level metrics next
    // to the throughput record.
    {
        MachineConfig config = MachineConfig::forCores(4);
        Machine machine(*points[0], config);
        const MachineResult result = machine.run();
        const MetricsRegistry metrics = collect_metrics(machine, result);
        std::string metrics_path = out_path;
        const std::string suffix = ".json";
        if (metrics_path.size() > suffix.size() &&
            metrics_path.rfind(suffix) == metrics_path.size() - suffix.size())
            metrics_path.resize(metrics_path.size() - suffix.size());
        metrics_path += ".metrics.json";
        if (!metrics.writeJsonFile(metrics_path)) {
            std::cout << "FAILED to write " << metrics_path << "\n";
            return 1;
        }
        std::cout << "wrote " << metrics_path << " (" << metrics.size()
                  << " counters)\n";
    }
    if (!check.skipped && !check.passed) {
        std::cout << "FAIL: threaded stepper reached only "
                  << std::setprecision(2) << check.bestSpeedup
                  << "x on a " << check.hostCores << "-core host\n";
        return 1;
    }
    return 0;
}
