/**
 * @file
 * Simulator self-benchmark: host wall-time and simulated ops/sec for
 * the stall-heaviest harness workload (the Figure 12 point set — every
 * suite benchmark compiled IlpOnly and TlpOnly at 4 cores), measured
 * with the event-driven fast-forward on and off. Writes the record as
 * JSON (argv[1], default BENCH_sim_throughput.json) so CI can track
 * simulation throughput over time. See EXPERIMENTS.md for how to read
 * the fields.
 */

#include <chrono>
#include <fstream>

#include "common.hh"
#include "trace/metrics.hh"

using namespace voltron;
using namespace voltron::bench;

namespace {

struct Pass
{
    double wallSeconds = 0;
    u64 simCycles = 0;
    u64 simOps = 0;

    double
    opsPerSecond() const
    {
        return wallSeconds > 0 ? static_cast<double>(simOps) / wallSeconds
                               : 0.0;
    }
    double
    cyclesPerSecond() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(simCycles) / wallSeconds
                   : 0.0;
    }
};

/** Simulate every compiled point once; simulation time only (compile
 * and golden passes are outside the timed region). */
Pass
run_pass(const std::vector<const MachineProgram *> &points, bool naive)
{
    Pass pass;
    const auto start = std::chrono::steady_clock::now();
    for (const MachineProgram *mp : points) {
        MachineConfig config = MachineConfig::forCores(4);
        config.forceNaiveStepping = naive;
        Machine machine(*mp, config);
        MachineResult result = machine.run();
        pass.simCycles += result.cycles;
        pass.simOps += result.dynamicOps;
    }
    const auto end = std::chrono::steady_clock::now();
    pass.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    return pass;
}

bool
write_json(const std::string &path, const Pass &naive, const Pass &ff,
           size_t points)
{
    std::ofstream os(path);
    os << std::fixed << std::setprecision(6);
    os << "{\n"
       << "  \"harness\": \"fig12_stall_breakdown points "
          "(suite x {IlpOnly,TlpOnly} @ 4 cores)\",\n"
       << "  \"cores\": 4,\n"
       << "  \"points\": " << points << ",\n"
       << "  \"naive\": {\n"
       << "    \"wall_seconds\": " << naive.wallSeconds << ",\n"
       << "    \"sim_cycles\": " << naive.simCycles << ",\n"
       << "    \"sim_ops\": " << naive.simOps << ",\n"
       << "    \"ops_per_second\": " << naive.opsPerSecond() << ",\n"
       << "    \"cycles_per_second\": " << naive.cyclesPerSecond() << "\n"
       << "  },\n"
       << "  \"fast_forward\": {\n"
       << "    \"wall_seconds\": " << ff.wallSeconds << ",\n"
       << "    \"sim_cycles\": " << ff.simCycles << ",\n"
       << "    \"sim_ops\": " << ff.simOps << ",\n"
       << "    \"ops_per_second\": " << ff.opsPerSecond() << ",\n"
       << "    \"cycles_per_second\": " << ff.cyclesPerSecond() << "\n"
       << "  },\n"
       << "  \"wall_time_reduction\": "
       << (ff.wallSeconds > 0 ? naive.wallSeconds / ff.wallSeconds : 0.0)
       << ",\n"
       << "  \"baseline_note\": \"naive = per-cycle reference stepper "
          "on the same flat hot-path state; see EXPERIMENTS.md for the "
          "end-to-end fig12_stall_breakdown comparison against the "
          "pre-optimisation tree\",\n"
       << "  \"bench_threads\": " << bench_threads() << "\n"
       << "}\n";
    return os.good();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_sim_throughput.json";
    banner("Simulator throughput: fig12 point set, fast-forward vs "
           "naive stepping",
           "self-benchmark; no paper figure");

    // Compile every point up front (concurrently); the shared suite
    // cache keeps the systems (and their MachinePrograms) alive.
    const std::vector<std::string> &names = benchmark_names();
    parallel_for(names.size(), [&](size_t i) {
        VoltronSystem &sys = shared_system(names[i]);
        for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly}) {
            CompileOptions opts;
            opts.strategy = s;
            opts.numCores = 4;
            sys.compile(opts);
        }
    });
    std::vector<const MachineProgram *> points;
    points.reserve(2 * names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly}) {
            CompileOptions opts;
            opts.strategy = s;
            opts.numCores = 4;
            points.push_back(&shared_system(names[i]).compile(opts));
        }
    }

    // Consistency guard: both steppers must agree before we publish
    // throughput numbers for them.
    {
        MachineConfig ff_config = MachineConfig::forCores(4);
        MachineConfig naive_config = MachineConfig::forCores(4);
        naive_config.forceNaiveStepping = true;
        Machine a(*points[0], ff_config), b(*points[0], naive_config);
        const MachineResult ra = a.run(), rb = b.run();
        if (ra.cycles != rb.cycles || ra.exitValue != rb.exitValue) {
            std::cout << "FAST-FORWARD / NAIVE DIVERGENCE — aborting\n";
            return 1;
        }
    }

    const Pass naive = run_pass(points, /*naive=*/true);
    const Pass ff = run_pass(points, /*naive=*/false);

    std::cout << std::fixed << std::setprecision(3);
    std::cout << "points simulated:     " << points.size() << "\n"
              << "naive stepping:       " << naive.wallSeconds << " s, "
              << std::setprecision(0) << naive.opsPerSecond()
              << " sim ops/s\n"
              << std::setprecision(3) << "fast-forward:         "
              << ff.wallSeconds << " s, " << std::setprecision(0)
              << ff.opsPerSecond() << " sim ops/s\n"
              << std::setprecision(2) << "wall-time reduction:  "
              << (ff.wallSeconds > 0 ? naive.wallSeconds / ff.wallSeconds
                                     : 0.0)
              << "x\n";

    if (!write_json(out_path, naive, ff, points.size())) {
        std::cout << "FAILED to write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";

    // Unified counter namespace for one representative point (untimed,
    // outside both passes) so CI archives component-level metrics next
    // to the throughput record.
    {
        MachineConfig config = MachineConfig::forCores(4);
        Machine machine(*points[0], config);
        const MachineResult result = machine.run();
        const MetricsRegistry metrics = collect_metrics(machine, result);
        std::string metrics_path = out_path;
        const std::string suffix = ".json";
        if (metrics_path.size() > suffix.size() &&
            metrics_path.rfind(suffix) == metrics_path.size() - suffix.size())
            metrics_path.resize(metrics_path.size() - suffix.size());
        metrics_path += ".metrics.json";
        if (!metrics.writeJsonFile(metrics_path)) {
            std::cout << "FAILED to write " << metrics_path << "\n";
            return 1;
        }
        std::cout << "wrote " << metrics_path << " (" << metrics.size()
                  << " counters)\n";
    }
    return 0;
}
