/**
 * @file
 * Ablation: sensitivity of each execution mode to the scalar operand
 * network parameters — queue-mode hop latency and per-pair queue
 * capacity. The paper's design argument is that decoupled execution
 * tolerates latency while coupled execution needs the 1-cycle direct
 * mode; this harness quantifies that trade-off on our suite sample.
 */

#include "common.hh"

using namespace voltron;
using namespace voltron::bench;

namespace {

const std::vector<std::string> kSample = {"171.swim", "164.gzip",
                                          "gsmdecode", "epic"};

double
hybrid_speedup(const std::string &name, u32 hop_latency, u32 capacity)
{
    VoltronSystem &sys = shared_system(name);
    MachineConfig config = MachineConfig::forCores(4);
    config.net.hopLatency = hop_latency;
    config.net.queueCapacity = capacity;
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 4;
    RunOutcome outcome = sys.run(opts, config);
    if (!outcome.correct())
        return -1.0;
    // Baseline with the default network (serial never uses it anyway).
    return sys.speedup(outcome);
}

} // namespace

int
main()
{
    banner("Ablation: operand-network latency and buffering",
           "design discussion in §3.1 of the paper");

    std::cout << "Hybrid 4-core speedup vs queue-mode hop latency "
                 "(capacity 64):\n";
    label("benchmark");
    for (u32 lat : {1, 2, 4, 8})
        std::cout << std::setw(8) << (std::to_string(lat) + "cyc");
    std::cout << "\n";
    for (const std::string &name : kSample) {
        label(name) << std::fixed << std::setprecision(2);
        for (u32 lat : {1, 2, 4, 8})
            std::cout << std::setw(8) << hybrid_speedup(name, lat, 64);
        std::cout << "\n";
    }

    std::cout << "\nHybrid 4-core speedup vs per-pair queue capacity "
                 "(hop latency 1):\n";
    label("benchmark");
    for (u32 cap : {2, 4, 16, 64})
        std::cout << std::setw(8) << cap;
    std::cout << "\n";
    for (const std::string &name : kSample) {
        label(name) << std::fixed << std::setprecision(2);
        for (u32 cap : {2, 4, 16, 64})
            std::cout << std::setw(8) << hybrid_speedup(name, 1, cap);
        std::cout << "\n";
    }
    return 0;
}
