#!/usr/bin/env bash
# CI driver: tier-1 verify plus an artifact-cache smoke test.
#
#  1. Configure, build, and run the full test suite.
#  2. Cache smoke: run fig12_stall_breakdown twice against a fresh
#     VOLTRON_CACHE_DIR. The warm run must produce byte-identical stdout
#     and report a non-zero disk-hit count (VOLTRON_CACHE_STATS=1 prints
#     the counters on stderr at exit), and every persisted entry must
#     pass cachectl verify.
#  3. Trace smoke: record a benchmark with the ring-buffer sink, export
#     Chrome trace JSON, and validate both the trace and the metrics
#     documents with voltron-trace checkjson.
#  4. Profiler smoke: fold the recorded trace into an attributed
#     profile (voltron-prof report), re-record the same workload and
#     diff the two profiles — the simulator is deterministic, so any
#     non-zero delta (voltron-prof diff exits 1 on regression) means
#     nondeterminism crept in — then run the adaptive-selection bench
#     in --quick mode, which enforces adaptive <= static Hybrid.
#  5. Fuzz smoke: 50 fixed-seed random programs through the full
#     differential sweep (voltron-fuzz run). Any divergence from the
#     golden model — wrong exit value, wrong memory image, or an
#     invariant panic — fails the stage and leaves a replayable .vfuzz
#     repro in the log. A second, smaller batch repeats the sweep on
#     the parallel stepper (--stepper-threads 2): the bit-identity
#     contract makes any threaded-only divergence a stepper bug.
#  6. TSan smoke (when the toolchain has libtsan): rebuild the parallel
#     stepper tests under -fsanitize=thread and run the threaded
#     subset. The stepper's determinism argument rests on its
#     happens-before edges; TSan checks them mechanically.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)")

echo "== cache smoke =="
CACHE_DIR="$(mktemp -d)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR" "$SMOKE_DIR"' EXIT
export VOLTRON_CACHE_DIR="$CACHE_DIR"
export VOLTRON_CACHE_STATS=1

./build/bench/fig12_stall_breakdown \
    > "$SMOKE_DIR/cold.out" 2> "$SMOKE_DIR/cold.err"
./build/bench/fig12_stall_breakdown \
    > "$SMOKE_DIR/warm.out" 2> "$SMOKE_DIR/warm.err"

cmp "$SMOKE_DIR/cold.out" "$SMOKE_DIR/warm.out"
echo "warm fig12 output byte-identical to cold"

# Explicit capture instead of `grep | tee`: under pipefail a no-match
# grep used to abort the script mid-pipeline with no diagnostic, and
# without pipefail tee's exit 0 swallowed the failure entirely.
hits="$(grep -Eo 'disk_hits=[0-9]+' "$SMOKE_DIR/warm.err" || true)"
echo "${hits:-<no cache-stats line found>}"
if [ -z "$hits" ] || [ "$hits" = "disk_hits=0" ]; then
    echo "FAIL: warm run recorded no disk hits" >&2
    cat "$SMOKE_DIR/warm.err" >&2
    exit 1
fi
echo "warm run served from the persistent cache"

./build/tools/cachectl stats
./build/tools/cachectl verify

echo "== trace smoke =="
./build/tools/voltron-trace record epic --strategy tlp --cores 4 \
    --out "$SMOKE_DIR/trace-smoke"
./build/tools/voltron-trace summarize "$SMOKE_DIR/trace-smoke.vtrace" \
    > "$SMOKE_DIR/trace-smoke.summary"
./build/tools/voltron-trace export "$SMOKE_DIR/trace-smoke.vtrace" \
    --out "$SMOKE_DIR/trace-smoke.json"
./build/tools/voltron-trace checkjson "$SMOKE_DIR/trace-smoke.json"
./build/tools/voltron-trace checkjson "$SMOKE_DIR/trace-smoke.metrics.json"
echo "trace smoke clean: record -> export -> valid Chrome trace JSON"

echo "== profiler smoke =="
./build/tools/voltron-prof report "$SMOKE_DIR/trace-smoke.vtrace"
./build/tools/voltron-prof suggest "$SMOKE_DIR/trace-smoke.vtrace"
./build/tools/voltron-trace record epic --strategy tlp --cores 4 \
    --out "$SMOKE_DIR/trace-smoke-rerecord"
./build/tools/voltron-prof diff "$SMOKE_DIR/trace-smoke.vtrace" \
    "$SMOKE_DIR/trace-smoke-rerecord.vtrace"
./build/bench/adaptive_selection --quick "$SMOKE_DIR/BENCH_adaptive.json"
echo "profiler smoke clean: report -> deterministic re-record diff" \
     "-> adaptive quick bench"

echo "== fuzz smoke =="
FUZZ_CORPUS="$SMOKE_DIR/fuzz-corpus"
if ! ./build/tools/voltron-fuzz run --seed 1 --count 50 \
    --corpus "$FUZZ_CORPUS"; then
    echo "FAIL: differential fuzz smoke found divergences" >&2
    ls -l "$FUZZ_CORPUS" >&2 || true
    exit 1
fi
echo "fuzz smoke clean: 50 programs reproduce the golden model"

if ! ./build/tools/voltron-fuzz run --seed 42 --count 25 --no-shrink \
    --corpus "$FUZZ_CORPUS" --stepper-threads 2; then
    echo "FAIL: threaded differential fuzz smoke found divergences" >&2
    ls -l "$FUZZ_CORPUS" >&2 || true
    exit 1
fi
echo "threaded fuzz smoke clean: 25 programs bit-identical on the" \
     "parallel stepper"

echo "== corpus replay =="
# Replay every checked-in .vfuzz repro against the current build. The
# corpus starts empty — the stage is dormant until a fuzz divergence is
# found in the wild and its shrunk repro is committed to tests/corpus/;
# from then on this stage keeps the bug fixed forever.
shopt -s nullglob
REPROS=(tests/corpus/*.vfuzz)
shopt -u nullglob
if [ "${#REPROS[@]}" -gt 0 ]; then
    ./build/tools/voltron-fuzz replay "${REPROS[@]}"
    echo "corpus replay clean: ${#REPROS[@]} repro(s) stay fixed"
else
    echo "corpus replay dormant: no .vfuzz repros under tests/corpus/"
fi

echo "== mesh-scaling smoke =="
# Quick per-mode scaling sweep at {4,16} cores across mesh shapes. The
# bench itself fails on any divergence from the golden model and when
# the indexed queue model underruns the legacy scan's throughput; the
# strict validator then checks the emitted record is well-formed JSON.
./build/bench/mesh_scaling --quick "$SMOKE_DIR/BENCH_mesh_scaling.json"
./build/tools/voltron-trace checkjson "$SMOKE_DIR/BENCH_mesh_scaling.json"
echo "mesh-scaling smoke clean: quick sweep correct, JSON validates"

echo "== server smoke =="
# Boot the daemon on a throwaway socket with an isolated cache dir and
# walk the three-request lifecycle the server exists for: a cold
# compile+run, the identical request again (must be served from the
# response cache), then a full evict followed by the same request once
# more (must be cold again). Each response is captured and asserted on
# before the next request goes out; servectl itself exits non-zero on
# any "status":"error" response.
SERVER_SOCK="$SMOKE_DIR/ci-served.sock"
SERVER_CACHE="$SMOKE_DIR/ci-served-cache"
mkdir -p "$SERVER_CACHE"
# The daemon logs structured JSON lines to stderr; stdout keeps the
# human "ready"/summary lines. The log is validated as strict JSON
# lines at the end of the stage, so the plain-text atexit cache-stats
# dump (VOLTRON_CACHE_STATS, exported above) must stay off here.
VOLTRON_CACHE_STATS=0 \
VOLTRON_CACHE_DIR="$SERVER_CACHE" ./build/tools/voltron-served \
    --socket "$SERVER_SOCK" --workers 2 --log 'debug,json' \
    > "$SMOKE_DIR/ci-served.log" 2> "$SMOKE_DIR/ci-served.jsonl" &
SERVER_PID=$!
for _ in $(seq 1 100); do
    [ -S "$SERVER_SOCK" ] && break
    sleep 0.1
done
if ! [ -S "$SERVER_SOCK" ]; then
    echo "FAIL: voltron-served never created its socket" >&2
    cat "$SMOKE_DIR/ci-served.log" >&2
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
fi

SERVER_REQ='{"op":"run","id":"ci-smoke","benchmark":"epic","options":{"cores":4}}'
server_expect() {  # server_expect <label> <expected-source>
    local resp
    resp="$(./build/tools/voltron-servectl --socket "$SERVER_SOCK" \
        send "$SERVER_REQ")"
    echo "$resp" > "$SMOKE_DIR/ci-served-$1.json"
    if ! echo "$resp" | grep -q "\"source\":\"$2\""; then
        echo "FAIL: $1 request did not come back \"source\":\"$2\"" >&2
        echo "$resp" >&2
        kill "$SERVER_PID" 2>/dev/null || true
        exit 1
    fi
}
server_expect cold cold
server_expect warm cached
./build/tools/voltron-servectl --socket "$SERVER_SOCK" evict 0 > /dev/null
server_expect evicted cold

# Telemetry round-trips: a timed request must come back with a span
# timeline, the slowlog must remember the runs just served, and a
# two-snapshot watch must stream exactly two strict-JSON lines.
TIMED_REQ='{"op":"run","id":"ci-timed","benchmark":"epic","options":{"cores":4},"timing":true}'
TIMED_RESP="$(./build/tools/voltron-servectl --socket "$SERVER_SOCK" \
    send "$TIMED_REQ")"
if ! echo "$TIMED_RESP" | grep -q '"timing":{'; then
    echo "FAIL: timed request came back without a timing object" >&2
    echo "$TIMED_RESP" >&2
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
fi
./build/tools/voltron-servectl --socket "$SERVER_SOCK" slowlog \
    > "$SMOKE_DIR/ci-served-slowlog.txt"
if ! grep -q 'run/' "$SMOKE_DIR/ci-served-slowlog.txt"; then
    echo "FAIL: slowlog does not list the runs just served" >&2
    cat "$SMOKE_DIR/ci-served-slowlog.txt" >&2
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
fi
./build/tools/voltron-servectl --socket "$SERVER_SOCK" watch 2 \
    > "$SMOKE_DIR/ci-served-watch.jsonl"
if [ "$(wc -l < "$SMOKE_DIR/ci-served-watch.jsonl")" -ne 2 ]; then
    echo "FAIL: watch 2 did not stream exactly two snapshot lines" >&2
    cat "$SMOKE_DIR/ci-served-watch.jsonl" >&2
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
fi
./build/tools/voltron-trace checkjsonl "$SMOKE_DIR/ci-served-watch.jsonl"
./build/tools/voltron-servectl --socket "$SERVER_SOCK" stats \
    > "$SMOKE_DIR/ci-served-stats.txt"
grep -q '^server\.phase\.simulate\.p50 ' "$SMOKE_DIR/ci-served-stats.txt"

./build/tools/voltron-servectl --socket "$SERVER_SOCK" shutdown > /dev/null
if ! wait "$SERVER_PID"; then
    echo "FAIL: voltron-served exited non-zero after shutdown" >&2
    cat "$SMOKE_DIR/ci-served.log" >&2
    cat "$SMOKE_DIR/ci-served.jsonl" >&2
    exit 1
fi
# Every line the daemon logged must be a standalone strict-JSON object.
./build/tools/voltron-trace checkjsonl "$SMOKE_DIR/ci-served.jsonl"
if ! grep -q '"msg":"listening"' "$SMOKE_DIR/ci-served.jsonl"; then
    echo "FAIL: daemon JSON log is missing the startup line" >&2
    cat "$SMOKE_DIR/ci-served.jsonl" >&2
    exit 1
fi
echo "server smoke clean: cold -> cached -> evict -> cold, timing +" \
     "slowlog + watch round-trips, JSON log validates, clean shutdown"

echo "== tsan smoke =="
TSAN_PROBE="$SMOKE_DIR/tsan-probe"
if echo 'int main(){return 0;}' > "$TSAN_PROBE.cc" &&
    c++ -fsanitize=thread "$TSAN_PROBE.cc" -o "$TSAN_PROBE" 2>/dev/null &&
    "$TSAN_PROBE" 2>/dev/null; then
    cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
    cmake --build build-tsan -j --target test_sim_parallel --target test_log
    ./build-tsan/tests/test_sim_parallel \
        --gtest_filter='ParallelStepperTest.*:*alvinn*:*gzip*:*parser*'
    # The logger's whole-line emission contract is a concurrency claim;
    # let TSan check the lock discipline behind it.
    ./build-tsan/tests/test_log
    echo "tsan smoke clean: threaded stepper + logger races checked"
else
    echo "tsan smoke skipped: toolchain has no usable libtsan"
fi

echo "ci: OK"
