/**
 * @file
 * Trace recorder/exporter CLI.
 *
 *   voltron-trace record NAME|FILE.vfuzz [--strategy S] [--cores N]
 *                 [--out PREFIX] [--capacity N] [--naive]
 *       Run suite benchmark NAME (or replay a fuzz repro's program at
 *       its failing sweep point) with a ring-buffer trace sink and
 *       write PREFIX.vtrace plus PREFIX.metrics.json. A panicking
 *       replay still dumps the events captured up to the panic —
 *       that post-mortem tail is the point of recording repros.
 *
 *   voltron-trace export FILE.vtrace [--out FILE.json] [--issues]
 *       Convert to Chrome trace-event JSON (open in Perfetto via
 *       ui.perfetto.dev or chrome://tracing). --issues adds one
 *       instant per issued op (large).
 *
 *   voltron-trace summarize FILE.vtrace
 *       Print event counts, per-core stall breakdown, and the stream
 *       hash.
 *
 *   voltron-trace checkjson FILE.json
 *       Validate JSON syntax (used by tools/ci.sh for trace smoke).
 *
 *   voltron-trace checkjsonl FILE
 *       Validate every non-empty line as a standalone strict-JSON
 *       document — the shape of the daemon's JSON-lines log and the
 *       watch op's snapshot stream (used by tools/ci.sh).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/voltron.hh"
#include "fuzz/differ.hh"
#include "fuzz/repro.hh"
#include "support/error.hh"
#include "trace/perfetto.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

using namespace voltron;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: voltron-trace record NAME|FILE.vfuzz [--strategy S] "
        "[--cores N] [--out PREFIX] [--capacity N] [--naive]\n"
        "       voltron-trace export FILE.vtrace [--out FILE.json] "
        "[--issues]\n"
        "       voltron-trace summarize FILE.vtrace\n"
        "       voltron-trace checkjson FILE.json\n"
        "       voltron-trace checkjsonl FILE\n");
    return 2;
}

std::optional<Strategy>
strategy_from_name(const std::string &name)
{
    static const Strategy kAll[] = {
        Strategy::SerialOnly, Strategy::IlpOnly, Strategy::TlpOnly,
        Strategy::LlpOnly, Strategy::Hybrid, Strategy::Adaptive,
    };
    for (Strategy s : kAll)
        if (name == strategy_name(s))
            return s;
    return std::nullopt;
}

bool
ends_with(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** Dump the ring to PREFIX.vtrace; returns the event count written. */
bool
dump_ring(const RingBufferTraceSink &ring, const std::string &prefix,
          u16 num_cores, Cycle total_cycles, const std::string &label)
{
    const std::vector<TraceEvent> events = ring.events();
    TraceHeader header;
    header.numCores = num_cores;
    header.totalCycles = total_cycles;
    header.totalEvents = ring.total();
    header.dropped = ring.dropped();
    header.label = label;
    const std::string path = prefix + ".vtrace";
    if (!write_trace(path, header, events)) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("wrote %s: %zu event(s)", path.c_str(), events.size());
    if (header.dropped != 0)
        std::printf(" (%llu dropped; raise --capacity)",
                    static_cast<unsigned long long>(header.dropped));
    std::printf(", %llu cycle(s), hash %016llx\n",
                static_cast<unsigned long long>(total_cycles),
                static_cast<unsigned long long>(event_stream_hash(events)));
    return true;
}

int
cmd_record(const std::string &input, Strategy strategy, u16 cores,
           std::string out_prefix, size_t capacity, bool naive)
{
    Program prog;
    CompileOptions options;
    MachineConfig config = MachineConfig::forCores(cores);
    std::string label;

    if (ends_with(input, ".vfuzz")) {
        FuzzRepro repro;
        if (!read_repro(input, repro)) {
            std::fprintf(stderr, "error: cannot read repro %s\n",
                         input.c_str());
            return 1;
        }
        // Replay at the sweep point that originally diverged, so the
        // trace shows the failing configuration, not a default one.
        bool found = false;
        for (const SweepPoint &point : default_sweep()) {
            if (point.label == repro.divergence.point) {
                options = point.options;
                config = machine_config_for(point);
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "warning: sweep point '%s' not in the default "
                         "sweep; recording hybrid/c%u instead\n",
                         repro.divergence.point.c_str(), cores);
            options.strategy = strategy;
            options.numCores = cores;
        }
        prog = repro.program;
        label = input + "@" + repro.divergence.point;
        if (out_prefix.empty())
            out_prefix = input.substr(0, input.size() - 6);
    } else {
        prog = build_benchmark(input);
        options.strategy = strategy;
        options.numCores = cores;
        label = input + "/" + strategy_name(strategy) + "/c" +
                std::to_string(cores);
        if (out_prefix.empty())
            out_prefix = input + "." + strategy_name(strategy) + ".c" +
                         std::to_string(cores);
    }

    RingBufferTraceSink ring(capacity);
    config.traceSink = &ring;
    config.forceNaiveStepping = naive;

    VoltronSystem sys(std::move(prog));
    try {
        MetricsRegistry metrics;
        const RunOutcome outcome = sys.run(options, config, &metrics);
        if (!dump_ring(ring, out_prefix, config.numCores,
                       outcome.result.cycles, label))
            return 1;
        const std::string metrics_path = out_prefix + ".metrics.json";
        if (!metrics.writeJsonFile(metrics_path)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         metrics_path.c_str());
            return 1;
        }
        std::printf("wrote %s: %zu counter(s)\n", metrics_path.c_str(),
                    metrics.size());
        if (!outcome.correct())
            std::printf("note: run diverged from the golden model "
                        "(exit %s, memory %s)\n",
                        outcome.exitMatches ? "ok" : "MISMATCH",
                        outcome.memoryMatches ? "ok" : "MISMATCH");
        return 0;
    } catch (const PanicError &e) {
        std::printf("run panicked: %s\n", e.what());
    } catch (const FatalError &e) {
        std::printf("run died: %s\n", e.what());
    }
    // Post-mortem: the events up to the failure are exactly what a
    // divergence investigation needs; total cycles = last event seen.
    const std::vector<TraceEvent> events = ring.events();
    const Cycle last = events.empty() ? 0 : events.back().cycle;
    return dump_ring(ring, out_prefix, config.numCores, last,
                     label + " (failed run)")
               ? 0
               : 1;
}

int
cmd_export(const std::string &input, std::string out_path, bool issues)
{
    TraceHeader header;
    std::vector<TraceEvent> events;
    if (!read_trace(input, header, events)) {
        std::fprintf(stderr, "error: cannot read trace %s\n",
                     input.c_str());
        return 1;
    }
    if (out_path.empty())
        out_path = ends_with(input, ".vtrace")
                       ? input.substr(0, input.size() - 7) + ".json"
                       : input + ".json";
    ChromeTraceOptions opts;
    opts.issueInstants = issues;
    if (!export_chrome_trace_file(out_path, header, events, opts)) {
        std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("wrote %s (%zu event(s); open in ui.perfetto.dev)\n",
                out_path.c_str(), events.size());
    return 0;
}

int
cmd_summarize(const std::string &input)
{
    TraceHeader header;
    std::vector<TraceEvent> events;
    if (!read_trace(input, header, events)) {
        std::fprintf(stderr, "error: cannot read trace %s\n",
                     input.c_str());
        return 1;
    }
    summarize_trace(std::cout, header, events);
    return 0;
}

int
cmd_checkjson(const std::string &input)
{
    std::string error;
    if (!validate_json_file(input, &error)) {
        std::fprintf(stderr, "%s: INVALID: %s\n", input.c_str(),
                     error.c_str());
        return 1;
    }
    std::printf("%s: ok\n", input.c_str());
    return 0;
}

int
cmd_checkjsonl(const std::string &input)
{
    std::ifstream is(input);
    if (!is) {
        std::fprintf(stderr, "error: cannot read %s\n", input.c_str());
        return 1;
    }
    std::string line;
    size_t lineno = 0, checked = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string error;
        if (!validate_json(line, &error)) {
            std::fprintf(stderr, "%s:%zu: INVALID: %s\n", input.c_str(),
                         lineno, error.c_str());
            return 1;
        }
        ++checked;
    }
    std::printf("%s: ok (%zu line(s))\n", input.c_str(), checked);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();
    const std::string cmd = args[0];

    std::string input, out;
    Strategy strategy = Strategy::Hybrid;
    u16 cores = 4;
    size_t capacity = size_t{1} << 20;
    bool naive = false, issues = false;

    for (size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return args[++i];
        };
        if (arg == "--strategy") {
            auto s = strategy_from_name(value());
            if (!s) {
                std::fprintf(stderr, "error: unknown strategy\n");
                return 2;
            }
            strategy = *s;
        } else if (arg == "--cores") {
            cores = static_cast<u16>(std::stoul(value()));
        } else if (arg == "--out") {
            out = value();
        } else if (arg == "--capacity") {
            capacity = std::stoull(value());
        } else if (arg == "--naive") {
            naive = true;
        } else if (arg == "--issues") {
            issues = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
            return usage();
        } else if (input.empty()) {
            input = arg;
        } else {
            return usage();
        }
    }
    if (input.empty())
        return usage();

    if (cmd == "record")
        return cmd_record(input, strategy, cores, out, capacity, naive);
    if (cmd == "export")
        return cmd_export(input, out, issues);
    if (cmd == "summarize")
        return cmd_summarize(input);
    if (cmd == "checkjson")
        return cmd_checkjson(input);
    if (cmd == "checkjsonl")
        return cmd_checkjsonl(input);
    return usage();
}
