/**
 * @file
 * Differential fuzzer driver for the golden-model invariant.
 *
 *   voltron-fuzz run [--seed S] [--count N] [--corpus DIR]
 *                    [--no-shrink] [--max-shrink-evals K]
 *                    [--stepper-threads T]
 *       Generate N programs from seed S, diff each against the full
 *       default sweep, shrink any divergence, and write a replayable
 *       .vfuzz repro into DIR. Exit 1 if any divergence was found.
 *       --stepper-threads runs every sweep point on the parallel
 *       stepper, turning the sweep into its bit-identity acceptance
 *       harness.
 *
 *   voltron-fuzz replay FILE... [--stepper-threads T]
 *       Re-execute each repro's program against the default sweep.
 *       Exit 1 if any repro still diverges (so a fixed bug's corpus
 *       replays clean).
 *
 * Determinism: program i is generated from hash_combine(S, i), so a
 * reported seed always regenerates its program regardless of N. The
 * persistent artifact cache is disabled — fuzz programs are one-shot.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/artifact_cache.hh"
#include "core/voltron.hh"
#include "fuzz/differ.hh"
#include "fuzz/generator.hh"
#include "fuzz/repro.hh"
#include "fuzz/shrink.hh"
#include "ir/serialize.hh"
#include "support/error.hh"
#include "trace/perfetto.hh"
#include "trace/trace.hh"

using namespace voltron;
namespace fs = std::filesystem;

namespace {

size_t
op_count(const Program &prog)
{
    size_t n = 0;
    for (const Function &fn : prog.functions)
        for (const BasicBlock &bb : fn.blocks)
            n += bb.ops.size();
    return n;
}

void
print_divergence(u64 seed, const Divergence &div)
{
    std::printf("DIVERGENCE seed=0x%llx point=%s kind=%s\n  %s\n",
                static_cast<unsigned long long>(seed), div.point.c_str(),
                divergence_kind_name(div.kind), div.message.c_str());
}

/**
 * Re-run the diverging sweep point with a trace sink and write
 * <stem>.vtrace + <stem>.trace.json next to the repro, so the failure's
 * cycle-level timeline ships with the reproducer. A panicking replay
 * (the common case for lockstep violations) keeps the events captured
 * up to the panic.
 */
void
record_divergence_trace(const std::string &repro_path, const Program &prog,
                        const Divergence &div,
                        const std::vector<SweepPoint> &sweep)
{
    const SweepPoint *failing = nullptr;
    for (const SweepPoint &point : sweep)
        if (point.label == div.point)
            failing = &point;
    if (!failing)
        return;

    RingBufferTraceSink ring;
    MachineConfig config = machine_config_for(*failing);
    config.traceSink = &ring;

    Cycle cycles = 0;
    try {
        VoltronSystem sys(prog);
        const RunOutcome outcome = sys.run(failing->options, config);
        cycles = outcome.result.cycles;
    } catch (const PanicError &) {
    } catch (const FatalError &) {
    }
    const std::vector<TraceEvent> events = ring.events();
    if (cycles == 0 && !events.empty())
        cycles = events.back().cycle;

    TraceHeader header;
    header.numCores = config.numCores;
    header.totalCycles = cycles;
    header.totalEvents = ring.total();
    header.dropped = ring.dropped();
    header.label = repro_path + "@" + div.point;

    const std::string stem =
        repro_path.substr(0, repro_path.rfind(".vfuzz"));
    if (write_trace(stem + ".vtrace", header, events) &&
        export_chrome_trace_file(stem + ".trace.json", header, events))
        std::printf("  trace: %s.vtrace + %s.trace.json (%zu events)\n",
                    stem.c_str(), stem.c_str(), events.size());
    else
        std::fprintf(stderr, "  failed to record trace for %s\n",
                     repro_path.c_str());
}

/** Run the whole sweep on the parallel stepper (the bit-identity
 * acceptance harness: any divergence a threaded sweep finds that a
 * sequential one does not is a stepper bug). */
std::vector<SweepPoint>
with_stepper_threads(std::vector<SweepPoint> sweep, u16 threads)
{
    for (SweepPoint &point : sweep)
        point.stepperThreads = threads;
    return sweep;
}

int
cmd_run(u64 master_seed, u32 count, const std::string &corpus_dir,
        bool do_shrink, u32 max_shrink_evals, u16 stepper_threads)
{
    const std::vector<SweepPoint> sweep =
        with_stepper_threads(default_sweep(), stepper_threads);
    std::printf("fuzz: %u programs x %zu sweep points, master seed %llu, "
                "%u stepper thread(s)\n",
                count, sweep.size(),
                static_cast<unsigned long long>(master_seed),
                stepper_threads);

    u32 divergences = 0;
    for (u32 i = 0; i < count; ++i) {
        const u64 seed = hash_combine(master_seed, i);
        const Program prog = generate_fuzz_program(seed);
        auto div = diff_program(prog, sweep);
        if (!div) {
            if ((i + 1) % 25 == 0)
                std::printf("  %u/%u ok\n", i + 1, count);
            continue;
        }
        ++divergences;
        print_divergence(seed, *div);

        Program final_prog = prog;
        Divergence final_div = *div;
        if (do_shrink) {
            ShrinkStats stats;
            final_prog = shrink_program(
                prog,
                [&](const Program &candidate) {
                    auto d = diff_program(candidate, sweep);
                    return d && d->kind == div->kind;
                },
                max_shrink_evals, &stats);
            // Re-diff the shrunk program for the repro's point/message.
            if (auto d = diff_program(final_prog, sweep))
                final_div = *d;
            std::printf("  shrunk %zu -> %zu ops (%u/%u evals)\n",
                        op_count(prog), op_count(final_prog), stats.evals,
                        stats.accepted);
        }

        if (!corpus_dir.empty()) {
            std::error_code ec;
            fs::create_directories(corpus_dir, ec);
            char name[64];
            std::snprintf(name, sizeof(name), "fuzz-%016llx.vfuzz",
                          static_cast<unsigned long long>(seed));
            const std::string path = corpus_dir + "/" + name;
            FuzzRepro repro;
            repro.seed = seed;
            repro.divergence = final_div;
            repro.program = final_prog;
            if (write_repro(path, repro)) {
                std::printf("  repro: %s\n", path.c_str());
                record_divergence_trace(path, final_prog, final_div,
                                        sweep);
            } else {
                std::fprintf(stderr, "  failed to write %s\n",
                             path.c_str());
            }
        }
    }

    std::printf("fuzz: %u/%u programs diverged\n", divergences, count);
    return divergences ? 1 : 0;
}

int
cmd_replay(const std::vector<std::string> &files, u16 stepper_threads)
{
    const std::vector<SweepPoint> sweep =
        with_stepper_threads(default_sweep(), stepper_threads);
    u32 failing = 0;
    for (const std::string &path : files) {
        FuzzRepro repro;
        if (!read_repro(path, repro)) {
            std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
            ++failing;
            continue;
        }
        std::printf("replay %s (seed=0x%llx, recorded %s at %s)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(repro.seed),
                    divergence_kind_name(repro.divergence.kind),
                    repro.divergence.point.c_str());
        if (auto div = diff_program(repro.program, sweep)) {
            ++failing;
            print_divergence(repro.seed, *div);
        } else {
            std::printf("  clean: no divergence on the current build\n");
        }
    }
    return failing ? 1 : 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: voltron-fuzz run [--seed S] [--count N] [--corpus DIR]\n"
        "                        [--no-shrink] [--max-shrink-evals K]\n"
        "                        [--stepper-threads T]\n"
        "       voltron-fuzz replay FILE... [--stepper-threads T]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    // Fuzz programs are one-shot; never touch $VOLTRON_CACHE_DIR.
    ArtifactCache::instance().setDiskDir(std::string());

    if (cmd == "run") {
        u64 seed = 1;
        u32 count = 100;
        u32 max_shrink_evals = 300;
        std::string corpus = "fuzz-corpus";
        bool do_shrink = true;
        u16 stepper_threads = 0;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
                seed = std::strtoull(argv[++i], nullptr, 0);
            else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc)
                count = static_cast<u32>(
                    std::strtoul(argv[++i], nullptr, 0));
            else if (std::strcmp(argv[i], "--corpus") == 0 && i + 1 < argc)
                corpus = argv[++i];
            else if (std::strcmp(argv[i], "--no-shrink") == 0)
                do_shrink = false;
            else if (std::strcmp(argv[i], "--max-shrink-evals") == 0 &&
                     i + 1 < argc)
                max_shrink_evals = static_cast<u32>(
                    std::strtoul(argv[++i], nullptr, 0));
            else if (std::strcmp(argv[i], "--stepper-threads") == 0 &&
                     i + 1 < argc)
                stepper_threads = static_cast<u16>(
                    std::strtoul(argv[++i], nullptr, 0));
            else
                return usage();
        }
        return cmd_run(seed, count, corpus, do_shrink, max_shrink_evals,
                       stepper_threads);
    }
    if (cmd == "replay") {
        std::vector<std::string> files;
        u16 stepper_threads = 0;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--stepper-threads") == 0 &&
                i + 1 < argc)
                stepper_threads = static_cast<u16>(
                    std::strtoul(argv[++i], nullptr, 0));
            else
                files.emplace_back(argv[i]);
        }
        if (files.empty())
            return usage();
        return cmd_replay(files, stepper_threads);
    }
    return usage();
}
