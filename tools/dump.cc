/** @file Development tool: dump compiled per-core programs. */

#include <cstdlib>
#include <iostream>

#include "core/voltron.hh"
#include "ir/builder.hh"

using namespace voltron;

namespace {

Program
make_program()
{
    ProgramBuilder b("dump");
    const int n = 64;
    std::vector<i64> src(n), dst(n, 0);
    for (int i = 0; i < n; ++i)
        src[i] = i * 3 + 1;
    Addr a_src = b.allocArrayI64("src", src);
    Addr a_dst = b.allocArrayI64("dst", dst);
    u32 sym_src = b.symbolOf("src");
    u32 sym_dst = b.symbolOf("dst");

    b.beginFunction("main");
    RegId base_src = b.emitImm(static_cast<i64>(a_src));
    RegId base_dst = b.emitImm(static_cast<i64>(a_dst));
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, n, 1, "scale");
    {
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, i, 3));
        RegId addr_s = b.newGpr();
        b.emit(ops::add(addr_s, base_src, off));
        RegId v = b.newGpr();
        b.emitLoad(v, addr_s, 0, sym_src);
        RegId v2 = b.newGpr();
        b.emit(ops::alui(Opcode::MUL, v2, v, 5));
        b.emit(ops::addi(v2, v2, 7));
        RegId addr_d = b.newGpr();
        b.emit(ops::add(addr_d, base_dst, off));
        b.emitStore(addr_d, 0, v2, sym_dst);
    }
    b.endCountedLoop(loop);
    b.emitHalt(i);
    b.endFunction();
    return b.take();
}

} // namespace

int
main(int argc, char **argv)
{
    const u16 cores = argc > 1 ? static_cast<u16>(std::atoi(argv[1])) : 2;
    VoltronSystem sys(make_program());
    CompileOptions opts;
    opts.strategy = Strategy::IlpOnly;
    opts.numCores = cores;
    const MachineProgram &mp = sys.compile(opts);
    for (u16 c = 0; c < cores; ++c) {
        std::cout << "=== core " << c << " ===\n";
        print_program(std::cout, mp.perCore[c]);
    }
    try {
        RunOutcome out = sys.run(opts);
        std::cout << "cycles=" << out.result.cycles
                  << (out.correct() ? " OK" : " MISMATCH") << "\n";
    } catch (const std::exception &e) {
        std::cout << "EXCEPTION: " << e.what() << "\n";
    }
    return 0;
}
