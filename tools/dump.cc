/**
 * @file
 * Development tool: dump compiled per-core programs.
 *
 * Two subcommands share the compile/run/report plumbing:
 *
 *   dump compiled [cores]
 *       Compile a fixed array-scaling loop (ILP strategy) and print each
 *       core's whole program.
 *
 *   dump phase [cores] [archetype] [strategy] [trips] [seed]
 *       Emit one workload archetype phase, compile it with the given
 *       strategy, print each core's clone of the phase function, and
 *       report the run outcome with per-core stall and memory stats.
 *       archetype: ilp_wide | strand | pipe | branchy
 *       strategy:  ilp | tlp | hybrid
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/voltron.hh"
#include "ir/builder.hh"
#include "workloads/archetypes.hh"

using namespace voltron;

namespace {

/** Compile with @p opts, print each core's code via @p print_core, then
 * run and report cycles/correctness. Returns the process exit code. */
int
report(VoltronSystem &sys, const CompileOptions &opts, bool full_stats,
       FuncId phase_func = kNoFunc)
{
    const MachineProgram &mp = sys.compile(opts);
    for (u16 c = 0; c < opts.numCores; ++c) {
        std::cout << "=== core " << c << " ===\n";
        if (phase_func == kNoFunc)
            print_program(std::cout, mp.perCore[c]);
        else
            print_function(std::cout, mp.perCore[c].functions[phase_func]);
    }
    try {
        RunOutcome out = sys.run(opts);
        if (!full_stats) {
            std::cout << "cycles=" << out.result.cycles
                      << (out.correct() ? " OK" : " MISMATCH") << "\n";
            return 0;
        }
        std::cout << "serial=" << sys.baselineCycles()
                  << " cycles=" << out.result.cycles
                  << (out.correct() ? " OK" : " MISMATCH")
                  << " speedup=" << sys.speedup(out) << "\n";
        for (CoreId c = 0; c < opts.numCores; ++c) {
            std::cout << "core" << c << " issued=" << out.result.issued[c];
            for (int k = 1; k < (int)StallCat::NumCats; ++k)
                if (out.result.stallOf(c, (StallCat)k))
                    std::cout << " " << stall_cat_name((StallCat)k) << "="
                              << out.result.stallOf(c, (StallCat)k);
            std::cout << "\n";
        }
        Machine machine(mp, MachineConfig::forCores(opts.numCores));
        machine.run();
        for (const auto &[k, v] : machine.memStats().counters())
            if (v > 50)
                std::cout << k << " = " << v << "\n";
    } catch (const std::exception &e) {
        std::cout << "EXCEPTION: " << e.what() << "\n";
    }
    return 0;
}

Program
make_compiled_program()
{
    ProgramBuilder b("dump");
    const int n = 64;
    std::vector<i64> src(n), dst(n, 0);
    for (int i = 0; i < n; ++i)
        src[i] = i * 3 + 1;
    Addr a_src = b.allocArrayI64("src", src);
    Addr a_dst = b.allocArrayI64("dst", dst);
    u32 sym_src = b.symbolOf("src");
    u32 sym_dst = b.symbolOf("dst");

    b.beginFunction("main");
    RegId base_src = b.emitImm(static_cast<i64>(a_src));
    RegId base_dst = b.emitImm(static_cast<i64>(a_dst));
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, n, 1, "scale");
    {
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, i, 3));
        RegId addr_s = b.newGpr();
        b.emit(ops::add(addr_s, base_src, off));
        RegId v = b.newGpr();
        b.emitLoad(v, addr_s, 0, sym_src);
        RegId v2 = b.newGpr();
        b.emit(ops::alui(Opcode::MUL, v2, v, 5));
        b.emit(ops::addi(v2, v2, 7));
        RegId addr_d = b.newGpr();
        b.emit(ops::add(addr_d, base_dst, off));
        b.emitStore(addr_d, 0, v2, sym_dst);
    }
    b.endCountedLoop(loop);
    b.emitHalt(i);
    b.endFunction();
    return b.take();
}

int
cmd_compiled(int argc, char **argv)
{
    const u16 cores = argc > 2 ? static_cast<u16>(std::atoi(argv[2])) : 2;
    VoltronSystem sys(make_compiled_program());
    CompileOptions opts;
    opts.strategy = Strategy::IlpOnly;
    opts.numCores = cores;
    return report(sys, opts, /*full_stats=*/false);
}

int
cmd_phase(int argc, char **argv)
{
    const u16 cores = argc > 2 ? static_cast<u16>(std::atoi(argv[2])) : 4;
    const std::string arch = argc > 3 ? argv[3] : "ilp_wide";
    const std::string strat = argc > 4 ? argv[4] : "ilp";
    Rng rng(argc > 6 ? std::strtoull(argv[6], nullptr, 0) : 42);
    ProgramBuilder b("dump-phase");
    b.beginFunction("main");
    RegId z = b.emitImm(7);
    b.emit(ops::mov(gpr(1), z));
    PhaseParams pp;
    pp.trips = argc > 5 ? std::atoi(argv[5]) : 512;
    pp.elems = 256;
    pp.width = 6;
    b.emitHalt(z);
    b.endFunction();
    Archetype a = Archetype::IlpWide;
    if (arch == "strand")
        a = Archetype::StrandMatch;
    if (arch == "pipe")
        a = Archetype::DswpPipe;
    if (arch == "branchy")
        a = Archetype::BranchyIlp;
    FuncId f = emit_phase(b, a, "phase", pp, rng);
    Program prog = b.take();
    // patch main to call the phase
    Function &m = prog.function(0);
    m.blocks.clear();
    m.addBlock("entry");
    BasicBlock &bb = m.block(0);
    bb.append(ops::movi(gpr(1), 3));
    RegId bt = m.freshReg(RegClass::BTR);
    bb.append(ops::pbr(bt, CodeRef::to_function(f)));
    bb.append(ops::call(bt));
    bb.append(ops::halt(gpr(0)));

    VoltronSystem sys(std::move(prog));
    CompileOptions opts;
    opts.strategy = strat == "tlp"      ? Strategy::TlpOnly
                    : strat == "hybrid" ? Strategy::Hybrid
                                        : Strategy::IlpOnly;
    opts.numCores = cores;
    return report(sys, opts, /*full_stats=*/true, f);
}

int
usage()
{
    std::cerr << "usage: dump compiled [cores]\n"
              << "       dump phase [cores] [ilp_wide|strand|pipe|branchy]"
                 " [ilp|tlp|hybrid] [trips] [seed]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "compiled")
        return cmd_compiled(argc, argv);
    if (cmd == "phase")
        return cmd_phase(argc, argv);
    return usage();
}
