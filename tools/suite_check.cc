/** @file Development tool: run the whole suite across strategies. */

#include <cmath>
#include <iomanip>
#include <iostream>

#include "core/voltron.hh"
#include "workloads/suite.hh"

using namespace voltron;

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "quick";
    std::cout << std::left << std::setw(14) << "benchmark"
              << std::right << std::setw(10) << "serial"
              << std::setw(8) << "ilp" << std::setw(8) << "tlp"
              << std::setw(8) << "llp" << std::setw(8) << "hyb"
              << "  (4-core speedups)\n";

    double gm[4] = {0, 0, 0, 0};
    int count = 0;
    for (const std::string &name : benchmark_names()) {
        if (quick && count >= 4)
            break;
        try {
            VoltronSystem sys(build_benchmark(name));
            const Cycle base = sys.baselineCycles();
            std::cout << std::left << std::setw(14) << name << std::right
                      << std::setw(10) << base << std::fixed
                      << std::setprecision(2);
            int si = 0;
            for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly,
                               Strategy::LlpOnly, Strategy::Hybrid}) {
                RunOutcome out = sys.run(s, 4);
                const double sp = sys.speedup(out);
                std::cout << std::setw(7) << sp
                          << (out.correct() ? " " : "!");
                gm[si++] += std::log(sp);
            }
            std::cout << "\n";
            count++;
        } catch (const std::exception &e) {
            std::cout << std::left << std::setw(14) << name
                      << "  EXCEPTION: " << e.what() << "\n";
        }
    }
    if (count > 0) {
        std::cout << std::left << std::setw(14) << "geomean"
                  << std::setw(10) << "" << std::fixed
                  << std::setprecision(2);
        for (double g : gm)
            std::cout << std::setw(7) << std::exp(g / count) << " ";
        std::cout << "\n";
    }
    return 0;
}
