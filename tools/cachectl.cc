/**
 * @file
 * Inspector for the persistent artifact cache ($VOLTRON_CACHE_DIR).
 *
 *   cachectl list   [--dir DIR]            one line per entry
 *   cachectl verify [--dir DIR]            re-hash every payload; exit 1
 *                                          on any corrupt entry
 *   cachectl stats  [--dir DIR]            per-kind entry counts + bytes
 *   cachectl evict  [--dir DIR] [PREFIX]   remove entries (all, or those
 *                                          whose hex key starts PREFIX)
 *   cachectl evict  [--dir DIR] --max-bytes N
 *                                          shrink the tier to <= N bytes,
 *                                          LRU by mtime (oldest first),
 *                                          sweeping aged orphan temps —
 *                                          the same library routine
 *                                          (evict_cache_to_size) behind
 *                                          voltron-served's background
 *                                          eviction
 *
 * All subcommands see both the sharded layout (dir/<nibble>/) and
 * legacy flat entries. Corrupt entries are reported, never fatal: the
 * runtime cache treats them as misses, and `evict` is the cleanup.
 * Orphaned store temps (".vcache.tmp<pid>" left by a process killed
 * mid-publish) show up as kind "orphan" and are likewise swept by
 * `evict`. Process-level hit/miss counters come from the runtime
 * itself — run any harness with VOLTRON_CACHE_STATS=1 to print them at
 * exit, or read the cache.* namespace in any collect_metrics JSON.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/artifact_cache.hh"

using namespace voltron;
namespace fs = std::filesystem;

namespace {

struct Entry
{
    fs::path path;
    CacheEntryHeader header;
    bool headerOk = false;
    bool orphan = false; //!< unpublished .tmp<pid> from a crashed store
    u64 fileBytes = 0;
};

std::vector<Entry>
scan(const std::string &dir)
{
    std::vector<Entry> entries;
    for_each_cache_file(dir, [&](const fs::directory_entry &de) {
        const bool orphan =
            is_cache_temp_name(de.path().filename().string());
        if (!orphan && de.path().extension() != ".vcache")
            return;
        std::error_code ec;
        Entry e;
        e.path = de.path();
        e.orphan = orphan;
        e.fileBytes = de.file_size(ec);
        e.headerOk =
            !orphan && read_cache_entry(e.path.string(), e.header, nullptr);
        entries.push_back(std::move(e));
    });
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) { return a.path < b.path; });
    return entries;
}

const char *
kind_of(const Entry &e)
{
    if (e.orphan)
        return "orphan";
    return e.headerOk
               ? artifact_kind_name(static_cast<ArtifactKind>(e.header.kind))
               : "corrupt";
}

std::string
hex_key(const Entry &e)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << e.header.key;
    return os.str();
}

int
cmd_list(const std::string &dir)
{
    for (const Entry &e : scan(dir)) {
        std::cout << std::left << std::setw(10) << kind_of(e) << std::right
                  << std::setw(18) << (e.headerOk ? hex_key(e) : "-")
                  << std::setw(12) << e.fileBytes << "  "
                  << e.path.filename().string() << "\n";
    }
    return 0;
}

int
cmd_verify(const std::string &dir)
{
    size_t ok = 0, bad = 0, orphans = 0;
    for (const Entry &e : scan(dir)) {
        // Temps were never published, so they are debris, not corruption.
        if (e.orphan) {
            ++orphans;
            std::cout << "ORPHAN  " << e.path.filename().string() << "\n";
            continue;
        }
        CacheEntryHeader header;
        std::vector<u8> payload;
        if (read_cache_entry(e.path.string(), header, &payload)) {
            ++ok;
        } else {
            ++bad;
            std::cout << "CORRUPT " << e.path.filename().string() << "\n";
        }
    }
    std::cout << "verified " << ok << " ok, " << bad << " corrupt";
    if (orphans)
        std::cout << ", " << orphans << " orphan temps (run evict)";
    std::cout << "\n";
    return bad ? 1 : 0;
}

int
cmd_stats(const std::string &dir)
{
    struct Agg
    {
        u64 count = 0, bytes = 0;
    };
    std::array<Agg, static_cast<size_t>(ArtifactKind::NumKinds)> by_kind;
    Agg corrupt, orphan;
    for (const Entry &e : scan(dir)) {
        if (e.orphan) {
            ++orphan.count;
            orphan.bytes += e.fileBytes;
        } else if (e.headerOk) {
            Agg &a = by_kind[e.header.kind];
            ++a.count;
            a.bytes += e.fileBytes;
        } else {
            ++corrupt.count;
            corrupt.bytes += e.fileBytes;
        }
    }
    u64 total_count = 0, total_bytes = 0;
    for (size_t k = 0; k < by_kind.size(); ++k) {
        std::cout << std::left << std::setw(10)
                  << artifact_kind_name(static_cast<ArtifactKind>(k))
                  << std::right << std::setw(8) << by_kind[k].count
                  << " entries" << std::setw(12) << by_kind[k].bytes
                  << " bytes\n";
        total_count += by_kind[k].count;
        total_bytes += by_kind[k].bytes;
    }
    if (corrupt.count)
        std::cout << std::left << std::setw(10) << "corrupt" << std::right
                  << std::setw(8) << corrupt.count << " entries"
                  << std::setw(12) << corrupt.bytes << " bytes\n";
    if (orphan.count)
        std::cout << std::left << std::setw(10) << "orphan" << std::right
                  << std::setw(8) << orphan.count << " entries"
                  << std::setw(12) << orphan.bytes << " bytes\n";
    std::cout << std::left << std::setw(10) << "total" << std::right
              << std::setw(8) << total_count << " entries" << std::setw(12)
              << total_bytes << " bytes\n";
    return 0;
}

int
cmd_evict(const std::string &dir, const std::string &prefix)
{
    size_t removed = 0;
    std::error_code ec;
    for (const Entry &e : scan(dir)) {
        // Unreadable entries and orphaned temps always match: evict is
        // the cleanup path, and a temp's key was never published.
        if (!prefix.empty() && e.headerOk &&
            hex_key(e).rfind(prefix, 0) != 0)
            continue;
        if (fs::remove(e.path, ec) && !ec)
            ++removed;
    }
    std::cout << "evicted " << removed << " entries\n";
    return 0;
}

int
cmd_evict_max_bytes(const std::string &dir, u64 max_bytes)
{
    const CacheEvictionReport report = evict_cache_to_size(dir, max_bytes);
    std::cout << "scanned " << report.scannedEntries << " entries ("
              << report.scannedBytes << " bytes), evicted "
              << report.evictedEntries << " (" << report.evictedBytes
              << " bytes), swept " << report.orphanTemps
              << " orphan temps; " << report.remainingBytes
              << " bytes remain (bound " << max_bytes << ")\n";
    return 0;
}

int
usage()
{
    std::cerr << "usage: cachectl <list|verify|stats|evict> [--dir DIR] "
                 "[--max-bytes N] [key-prefix]\n"
              << "DIR defaults to $VOLTRON_CACHE_DIR\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string cmd, dir, prefix;
    std::optional<u64> max_bytes;
    if (const char *env = std::getenv("VOLTRON_CACHE_DIR"))
        dir = env;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc)
            dir = argv[++i];
        else if (std::strcmp(argv[i], "--max-bytes") == 0 && i + 1 < argc)
            max_bytes = std::strtoull(argv[++i], nullptr, 10);
        else
            positional.push_back(argv[i]);
    }
    if (positional.empty())
        return usage();
    cmd = positional[0];
    if (positional.size() > 1)
        prefix = positional[1];

    if (dir.empty()) {
        std::cerr << "cachectl: no cache directory (set VOLTRON_CACHE_DIR "
                     "or pass --dir)\n";
        return 2;
    }
    if (!fs::exists(dir)) {
        // An absent directory is an empty cache, not an error.
        if (cmd == "list" || cmd == "stats" || cmd == "evict" ||
            cmd == "verify") {
            std::cout << "(empty cache: " << dir << " does not exist)\n";
            return 0;
        }
    }

    if (cmd == "list")
        return cmd_list(dir);
    if (cmd == "verify")
        return cmd_verify(dir);
    if (cmd == "stats")
        return cmd_stats(dir);
    if (cmd == "evict") {
        if (max_bytes) {
            if (!prefix.empty()) {
                std::cerr << "cachectl: --max-bytes and a key prefix are "
                             "mutually exclusive\n";
                return 2;
            }
            return cmd_evict_max_bytes(dir, *max_bytes);
        }
        return cmd_evict(dir, prefix);
    }
    return usage();
}
