/**
 * @file
 * Trace profiler CLI — the reporting front-end of src/trace/profiler.hh.
 *
 *   voltron-prof report FILE.vtrace
 *       Fold the trace into an attributed profile and print it: the
 *       per-region table (shared with `voltron-trace summarize`),
 *       per-core cycle buckets, the SEND->RECV critical path, and the
 *       network/recv-wait histograms.
 *
 *   voltron-prof diff BASE.vtrace NEW.vtrace [--tolerance PCT]
 *       Compare two profiles region by region. Exit 0 when NEW is no
 *       slower than BASE (total cycles and every region within the
 *       tolerance, default 0%); exit 1 on a regression. tools/ci.sh
 *       diffs a run against a fresh re-record of the same workload,
 *       where anything but zero delta means nondeterminism.
 *
 *   voltron-prof suggest FILE.vtrace
 *       Print the measured-feedback override candidates the adaptive
 *       loop would evaluate (core/adaptive.hh rules). Advisory only:
 *       with just a trace there is no SelectionReport, so glue regions
 *       the compiler can never parallelize are not pre-filtered.
 */

#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptive.hh"
#include "sim/machineprog.hh"
#include "trace/profiler.hh"
#include "trace/trace.hh"

using namespace voltron;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: voltron-prof report FILE.vtrace\n"
        "       voltron-prof diff BASE.vtrace NEW.vtrace "
        "[--tolerance PCT]\n"
        "       voltron-prof suggest FILE.vtrace\n");
    return 2;
}

bool
load(const std::string &path, TraceProfile &out)
{
    if (!profile_trace_file(path, out)) {
        std::fprintf(stderr, "error: cannot read trace %s\n", path.c_str());
        return false;
    }
    return true;
}

void
print_histogram(const char *name, const Histogram &hist)
{
    if (hist.count() == 0)
        return;
    std::printf("  %-12s n=%-8" PRIu64
                " mean=%-8.1f p50=%-6" PRIu64 " p95=%-6" PRIu64
                " p99=%-6" PRIu64 " max=%" PRIu64 "\n",
                name, hist.count(), hist.mean(), hist.p50(), hist.p95(),
                hist.p99(), hist.max());
}

int
cmd_report(const std::string &path)
{
    TraceProfile profile;
    if (!load(path, profile))
        return 1;

    std::printf("%s: %" PRIu64 " cycle(s), %u core(s), %" PRIu64
                " event(s)%s\n",
                path.c_str(), static_cast<u64>(profile.totalCycles),
                profile.numCores, profile.totalEvents,
                profile.lossless ? "" : " [LOSSY: ring dropped events; "
                                        "totals are lower bounds]");
    std::printf("occupancy %.1f%%  critical path %" PRIu64
                " cycle(s) (%.1f%% of run) over %" PRIu64 " hop(s)\n",
                100.0 * profile.occupancy(), profile.criticalPathCycles,
                profile.totalCycles == 0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(profile.criticalPathCycles) /
                          static_cast<double>(profile.totalCycles),
                profile.criticalPathHops);
    std::printf("messages %" PRIu64 "  spawns %" PRIu64 "  wakes %" PRIu64
                "  sleeps %" PRIu64 "\n",
                profile.messages, profile.spawns, profile.wakes,
                profile.sleeps);
    if (profile.tmBegins != 0)
        std::printf("tm: begins %" PRIu64 " commits %" PRIu64
                    " aborts %" PRIu64 " resolves %" PRIu64
                    " violations %" PRIu64 "\n",
                    profile.tmBegins, profile.tmCommits, profile.tmAborts,
                    profile.tmResolves, profile.tmViolations);

    std::printf("\nregions:\n%s", format_region_table(profile).c_str());

    std::printf("\ncores:\n%8s %12s %12s %12s %12s %12s\n", "core",
                "issueCycles", "issuedOps", "stallCycles", "idleCycles",
                "slackCycles");
    for (size_t c = 0; c < profile.cores.size(); ++c) {
        const CoreProfile &core = profile.cores[c];
        std::printf("%8zu %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                    " %12" PRIu64 " %12" PRIu64 "\n",
                    c, core.issueCycles, core.issuedOps, core.stallSum(),
                    core.idleCycles, core.slackCycles);
    }

    if (profile.hopLatency.count() != 0 ||
        profile.queueDepth.count() != 0 || profile.recvWait.count() != 0) {
        std::printf("\nnetwork histograms (cycles / depth):\n");
        print_histogram("hopLatency", profile.hopLatency);
        print_histogram("queueDepth", profile.queueDepth);
        print_histogram("recvWait", profile.recvWait);
    }
    return 0;
}

int
cmd_diff(const std::string &base_path, const std::string &new_path,
         double tolerance_pct)
{
    TraceProfile base, fresh;
    if (!load(base_path, base) || !load(new_path, fresh))
        return 1;

    // A delta regresses when NEW exceeds BASE by more than the
    // tolerance (in percent of the BASE value; a growth from zero is
    // always a regression under any finite tolerance).
    auto regressed = [&](u64 was, u64 now) {
        if (now <= was)
            return false;
        const double slack =
            static_cast<double>(was) * tolerance_pct / 100.0;
        return static_cast<double>(now - was) > slack;
    };

    int regressions = 0;
    auto report = [&](const std::string &what, u64 was, u64 now) {
        if (was == now)
            return;
        const bool bad = regressed(was, now);
        regressions += bad;
        const double pct =
            was == 0 ? 100.0
                     : 100.0 * (static_cast<double>(now) -
                                static_cast<double>(was)) /
                           static_cast<double>(was);
        std::printf("  %-24s %12" PRIu64 " -> %12" PRIu64
                    "  (%+.2f%%)%s\n",
                    what.c_str(), was, now, pct,
                    bad ? "  REGRESSION" : "");
    };

    std::printf("%s -> %s (tolerance %.2f%%)\n", base_path.c_str(),
                new_path.c_str(), tolerance_pct);
    report("total cycles", base.totalCycles, fresh.totalCycles);
    report("critical path", base.criticalPathCycles,
           fresh.criticalPathCycles);
    report("messages", base.messages, fresh.messages);

    // Union of region ids; a region present on only one side compares
    // against zero cycles on the other.
    std::map<RegionId, std::pair<u64, u64>> cycles;
    for (const auto &[id, row] : base.regions)
        cycles[id].first = row.cycles;
    for (const auto &[id, row] : fresh.regions)
        cycles[id].second = row.cycles;
    for (const auto &[id, pair] : cycles) {
        char name[32];
        if (id == kNoRegion)
            std::snprintf(name, sizeof(name), "region - (glue)");
        else
            std::snprintf(name, sizeof(name), "region %u cycles", id);
        report(name, pair.first, pair.second);
    }

    if (regressions != 0) {
        std::printf("%d regression(s)\n", regressions);
        return 1;
    }
    std::printf("no regression\n");
    return 0;
}

int
cmd_suggest(const std::string &path)
{
    TraceProfile profile;
    if (!load(path, profile))
        return 1;

    const std::vector<ModeSuggestion> suggestions =
        suggest_overrides(profile, nullptr);
    if (suggestions.empty()) {
        std::printf("no override candidates (profile looks healthy or "
                    "regions are too cold)\n");
        return 0;
    }
    std::printf("%8s %-8s %-8s %s\n", "region", "from", "to", "reason");
    for (const ModeSuggestion &s : suggestions)
        std::printf("%8u %-8s %-8s %s\n", s.region,
                    exec_mode_name(s.from), exec_mode_name(s.to),
                    s.reason.c_str());
    std::printf("(candidates only: the adaptive loop keeps one when it "
                "strictly lowers measured cycles)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();
    const std::string cmd = args[0];

    std::vector<std::string> inputs;
    double tolerance = 0.0;
    for (size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--tolerance") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "error: --tolerance needs a value\n");
                return 2;
            }
            tolerance = std::stod(args[++i]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
            return usage();
        } else {
            inputs.push_back(arg);
        }
    }

    if (cmd == "report" && inputs.size() == 1)
        return cmd_report(inputs[0]);
    if (cmd == "diff" && inputs.size() == 2)
        return cmd_diff(inputs[0], inputs[1], tolerance);
    if (cmd == "suggest" && inputs.size() == 1)
        return cmd_suggest(inputs[0]);
    return usage();
}
