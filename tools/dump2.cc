/** @file Development tool: dump a compiled archetype phase. */
#include <cstdlib>
#include <iostream>
#include "core/voltron.hh"
#include "workloads/archetypes.hh"

using namespace voltron;

int main(int argc, char **argv)
{
    const u16 cores = argc > 1 ? static_cast<u16>(std::atoi(argv[1])) : 4;
    const std::string arch = argc > 2 ? argv[2] : "ilp_wide";
    const std::string strat = argc > 3 ? argv[3] : "ilp";
    Rng rng(argc > 6 ? std::strtoull(argv[6], nullptr, 0) : 42);
    ProgramBuilder b("dump2");
    b.beginFunction("main");
    RegId z = b.emitImm(7);
    b.emit(ops::mov(gpr(1), z));
    PhaseParams pp; pp.trips = argc > 4 ? std::atoi(argv[4]) : 512; pp.elems = 256; pp.width = 6;
    b.emitHalt(z);
    b.endFunction();
    Archetype a = Archetype::IlpWide;
    if (arch == "strand") a = Archetype::StrandMatch;
    if (arch == "pipe") a = Archetype::DswpPipe;
    if (arch == "branchy") a = Archetype::BranchyIlp;
    FuncId f = emit_phase(b, a, "phase", pp, rng);
    Program prog = b.take();
    // patch main to call the phase
    Function &m = prog.function(0);
    m.blocks.clear();
    m.addBlock("entry");
    BasicBlock &bb = m.block(0);
    bb.append(ops::movi(gpr(1), 3));
    RegId bt = m.freshReg(RegClass::BTR);
    bb.append(ops::pbr(bt, CodeRef::to_function(f)));
    bb.append(ops::call(bt));
    bb.append(ops::halt(gpr(0)));

    VoltronSystem sys(std::move(prog));
    CompileOptions opts;
    opts.strategy = strat == "tlp" ? Strategy::TlpOnly
                  : strat == "hybrid" ? Strategy::Hybrid : Strategy::IlpOnly;
    opts.numCores = cores;
    const MachineProgram &mp = sys.compile(opts);
    for (u16 c = 0; c < cores; ++c) {
        std::cout << "=== core " << c << " ===\n";
        print_function(std::cout, mp.perCore[c].functions[f]);
    }
    RunOutcome out = sys.run(opts);
    std::cout << "serial=" << sys.baselineCycles()
              << " cycles=" << out.result.cycles
              << (out.correct() ? " OK" : " MISMATCH")
              << " speedup=" << sys.speedup(out) << "\n";
    for (CoreId c = 0; c < cores; ++c) {
        std::cout << "core" << c << " issued=" << out.result.issued[c];
        for (int k = 1; k < (int)StallCat::NumCats; ++k)
            if (out.result.stallOf(c, (StallCat)k))
                std::cout << " " << stall_cat_name((StallCat)k) << "="
                          << out.result.stallOf(c, (StallCat)k);
        std::cout << "\n";
    }
    {
        Machine machine(mp, MachineConfig::forCores(cores));
        machine.run();
        for (const auto &[k, v] : machine.memStats().counters())
            if (v > 50)
                std::cout << k << " = " << v << "\n";
    }
    return 0;
}
// (debug helper appended at build time — see main above)
