/**
 * @file
 * The voltron-served daemon entry point.
 *
 * Binds a Unix domain socket, serves the line-delimited JSON protocol
 * (src/server/protocol.hh) until a shutdown request arrives, then
 * tears down cleanly. Typical session:
 *
 *   VOLTRON_CACHE_DIR=/tmp/vcache \
 *     voltron-served --socket /tmp/voltron.sock --workers 4 \
 *                    --max-bytes 67108864 &
 *   voltron-servectl --socket /tmp/voltron.sock \
 *     send '{"op":"run","benchmark":"djpeg","options":{"cores":8}}'
 *   voltron-servectl --socket /tmp/voltron.sock shutdown
 *
 * The daemon prints one "ready <socket>" line to stdout once it is
 * accepting, so scripts can poll for liveness without sleeping.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.hh"
#include "support/log.hh"

using namespace voltron;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: voltron-served [--socket PATH] [--workers N]\n"
                 "                      [--max-bytes N] [--trace-dir DIR]\n"
                 "                      [--evict-interval-ms N]\n"
                 "                      [--max-responses N]\n"
                 "                      [--stats-interval-ms N]\n"
                 "                      [--log SPEC]\n"
                 "\n"
                 "  --log SPEC   e.g. 'debug,cache.disk=trace,json'\n"
                 "               (default level, subtree overrides,\n"
                 "               output mode; also read from $VOLTRON_LOG)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ServerConfig config;
    config.socketPath = "/tmp/voltron-served.sock";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value) {
            config.socketPath = argv[++i];
        } else if (arg == "--workers" && has_value) {
            config.workers = std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--max-bytes" && has_value) {
            config.cacheMaxBytes = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--trace-dir" && has_value) {
            config.traceDir = argv[++i];
        } else if (arg == "--evict-interval-ms" && has_value) {
            config.evictIntervalMs =
                static_cast<u32>(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--max-responses" && has_value) {
            config.maxResponses = std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--stats-interval-ms" && has_value) {
            config.statsIntervalMs =
                static_cast<u32>(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--log" && has_value) {
            std::string log_err;
            if (!Logger::instance().configure(argv[++i], &log_err)) {
                std::fprintf(stderr, "voltron-served: --log: %s\n",
                             log_err.c_str());
                return 2;
            }
        } else {
            usage();
            return 2;
        }
    }
    if (config.workers == 0)
        config.workers = 2;

    Server server(config);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "voltron-served: %s\n", err.c_str());
        return 1;
    }
    std::printf("ready %s\n", config.socketPath.c_str());
    std::fflush(stdout);
    server.wait();
    server.stop();

    const ServerCounters c = server.counters();
    std::printf("served %llu requests (%llu runs, %llu cached, "
                "%llu coalesced, %llu errors)\n",
                static_cast<unsigned long long>(c.requests),
                static_cast<unsigned long long>(c.runs),
                static_cast<unsigned long long>(c.responseHits),
                static_cast<unsigned long long>(c.followerHits),
                static_cast<unsigned long long>(c.errors));
    return 0;
}
