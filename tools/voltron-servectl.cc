/**
 * @file
 * One-shot client for voltron-served.
 *
 *   voltron-servectl [--socket PATH] ping
 *   voltron-servectl [--socket PATH] stats
 *   voltron-servectl [--socket PATH] slowlog
 *   voltron-servectl [--socket PATH] watch [N]
 *   voltron-servectl [--socket PATH] top [N]
 *   voltron-servectl [--socket PATH] evict [MAX_BYTES]
 *   voltron-servectl [--socket PATH] shutdown
 *   voltron-servectl [--socket PATH] send '<json request line>'
 *
 * "stats" prints the counter namespace one sorted "name value" per
 * line, so two invocations diff cleanly. "slowlog" prints the daemon's
 * worst-by-latency and recent-error request timelines. "watch" streams
 * N stats-plane snapshot lines (default 1) verbatim. "top" renders the
 * same stream as a live dashboard — requests/sec, cache hit rate,
 * queue depth, per-phase p50/p95/p99 — for N ticks (default: until
 * interrupted). "send" prints the raw response line.
 *
 * Exit status is 0 when the (final) response says "status":"ok", 1
 * otherwise — so shell scripts (CI smoke) can chain on it directly.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/client.hh"
#include "server/json.hh"

using namespace voltron;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: voltron-servectl [--socket PATH] "
        "(ping|stats|slowlog|watch [N]|top [N]|shutdown|"
        "evict [MAX_BYTES]|send JSON)\n");
}

int
status_of(const std::string &response)
{
    JsonValue parsed;
    if (!JsonValue::parse(response, parsed))
        return 1;
    return parsed.str("status") == "ok" ? 0 : 1;
}

/** Print the stats result object one sorted "name value" per line.
 * JsonValue objects iterate in std::map order, so the output order is
 * stable across daemons and runs — two snapshots diff cleanly. */
int
print_stats(const std::string &response)
{
    JsonValue parsed;
    if (!JsonValue::parse(response, parsed) ||
        parsed.str("status") != "ok") {
        std::printf("%s\n", response.c_str());
        return 1;
    }
    const JsonValue *result = parsed.find("result");
    if (!result || !result->isObject()) {
        std::printf("%s\n", response.c_str());
        return 1;
    }
    for (const auto &[name, value] : result->fields())
        std::printf("%s %s\n", name.c_str(), value.text().c_str());
    return 0;
}

void
print_timeline_entry(const JsonValue &entry)
{
    std::string phases;
    if (const JsonValue *ph = entry.find("phases"); ph && ph->isObject())
        for (const auto &[name, us] : ph->fields()) {
            if (!phases.empty())
                phases += " ";
            phases += name + "=" + us.text();
        }
    std::printf("  #%llu %s",
                static_cast<unsigned long long>(entry.u64At("requestId")),
                entry.str("op", "?").c_str());
    const std::string source = entry.str("source");
    if (!source.empty())
        std::printf("/%s", source.c_str());
    std::printf(" totalUs=%llu",
                static_cast<unsigned long long>(entry.u64At("totalUs")));
    const std::string error = entry.str("error");
    if (!error.empty())
        std::printf(" error=\"%s\"", error.c_str());
    if (!phases.empty())
        std::printf("  [%s]", phases.c_str());
    std::printf("\n");
}

int
print_slowlog(const std::string &response)
{
    JsonValue parsed;
    if (!JsonValue::parse(response, parsed) ||
        parsed.str("status") != "ok") {
        std::printf("%s\n", response.c_str());
        return 1;
    }
    const JsonValue *result = parsed.find("result");
    if (!result || !result->isObject()) {
        std::printf("%s\n", response.c_str());
        return 1;
    }
    const JsonValue *worst = result->find("worst");
    std::printf("worst %zu/%llu (by total latency):\n",
                worst && worst->isArray() ? worst->items().size() : 0,
                static_cast<unsigned long long>(
                    result->u64At("worstCapacity")));
    if (worst && worst->isArray())
        for (const JsonValue &entry : worst->items())
            print_timeline_entry(entry);
    const JsonValue *errors = result->find("errors");
    std::printf("errors %zu/%llu (newest first):\n",
                errors && errors->isArray() ? errors->items().size() : 0,
                static_cast<unsigned long long>(
                    result->u64At("errorCapacity")));
    if (errors && errors->isArray())
        for (const JsonValue &entry : errors->items())
            print_timeline_entry(entry);
    return 0;
}

double
rate_per_sec(const JsonValue &deltas, const char *name, u64 interval_us)
{
    if (interval_us == 0)
        return 0.0;
    return static_cast<double>(deltas.u64At(name)) * 1e6 /
           static_cast<double>(interval_us);
}

/** Render one stats-plane snapshot as a dashboard frame. */
int
render_top_frame(const std::string &response, bool clear)
{
    JsonValue parsed;
    if (!JsonValue::parse(response, parsed) ||
        parsed.str("status") != "ok") {
        std::printf("%s\n", response.c_str());
        return 1;
    }
    const JsonValue *result = parsed.find("result");
    if (!result || !result->isObject())
        return 1;
    const JsonValue *totals = result->find("totals");
    const JsonValue *deltas = result->find("deltas");
    if (!totals || !totals->isObject())
        return 1;
    static const JsonValue empty;
    const JsonValue &d = deltas && deltas->isObject() ? *deltas : empty;

    const u64 interval_us = result->u64At("intervalUs");
    if (clear)
        std::printf("\x1b[H\x1b[2J");
    std::printf("voltron-served  up %.1fs  snapshot #%llu  interval %.2fs\n",
                static_cast<double>(result->u64At("tUs")) / 1e6,
                static_cast<unsigned long long>(result->u64At("seq")),
                static_cast<double>(interval_us) / 1e6);

    std::printf("requests/s %.1f   runs/s %.1f   errors/s %.1f   "
                "(totals: %llu req, %llu runs, %llu errors)\n",
                rate_per_sec(d, "server.requests", interval_us),
                rate_per_sec(d, "server.runs", interval_us),
                rate_per_sec(d, "server.errors", interval_us),
                static_cast<unsigned long long>(
                    totals->u64At("server.requests")),
                static_cast<unsigned long long>(
                    totals->u64At("server.runs")),
                static_cast<unsigned long long>(
                    totals->u64At("server.errors")));

    const u64 rc_hits = totals->u64At("server.response_cache.hits");
    const u64 rc_misses = totals->u64At("server.response_cache.misses");
    const double hit_pct =
        rc_hits + rc_misses
            ? 100.0 * static_cast<double>(rc_hits) /
                  static_cast<double>(rc_hits + rc_misses)
            : 0.0;
    std::printf("response cache: %llu/%llu entries  hit %.1f%%  "
                "evictions %llu (+%llu)\n",
                static_cast<unsigned long long>(
                    totals->u64At("server.response_cache.entries")),
                static_cast<unsigned long long>(
                    totals->u64At("server.response_cache.capacity")),
                hit_pct,
                static_cast<unsigned long long>(
                    totals->u64At("server.response_cache.evictions")),
                static_cast<unsigned long long>(
                    d.u64At("server.response_cache.evictions")));
    std::printf("artifact cache: hits %llu  misses %llu  "
                "evictions %llu (+%llu)\n",
                static_cast<unsigned long long>(
                    totals->u64At("cache.hits")),
                static_cast<unsigned long long>(
                    totals->u64At("cache.misses")),
                static_cast<unsigned long long>(
                    totals->u64At("cache.evictions")),
                static_cast<unsigned long long>(
                    d.u64At("cache.evictions")));
    std::printf("executor: pending %llu  workers %llu  inflight %llu\n",
                static_cast<unsigned long long>(
                    totals->u64At("server.executor.pending")),
                static_cast<unsigned long long>(
                    totals->u64At("server.executor.workers")),
                static_cast<unsigned long long>(
                    totals->u64At("server.inflight")));

    std::printf("latency us      %10s %10s %10s %10s\n", "count", "p50",
                "p95", "p99");
    static const char *const kRows[] = {
        "server.latency.total", "server.phase.parse",
        "server.phase.classify", "server.phase.queueWait",
        "server.phase.cacheProbe", "server.phase.goldenRun",
        "server.phase.compile", "server.phase.simulate",
        "server.phase.serialize", "server.phase.reply",
    };
    for (const char *row : kRows) {
        const std::string base = row;
        if (!totals->find(base + ".count"))
            continue;
        // Strip the namespace prefix for the label column.
        const size_t dot = base.rfind('.');
        std::printf("  %-13s %10llu %10llu %10llu %10llu\n",
                    base.substr(dot + 1).c_str(),
                    static_cast<unsigned long long>(
                        totals->u64At(base + ".count")),
                    static_cast<unsigned long long>(
                        totals->u64At(base + ".p50")),
                    static_cast<unsigned long long>(
                        totals->u64At(base + ".p95")),
                    static_cast<unsigned long long>(
                        totals->u64At(base + ".p99")));
    }
    std::fflush(stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path = "/tmp/voltron-served.sock";
    int i = 1;
    while (i < argc && argv[i][0] == '-') {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
            socket_path = argv[i + 1];
            i += 2;
        } else {
            usage();
            return 2;
        }
    }
    if (i >= argc) {
        usage();
        return 2;
    }

    const std::string cmd = argv[i++];
    u64 stream_count = 1;
    std::string line;
    if (cmd == "ping" || cmd == "stats" || cmd == "shutdown" ||
        cmd == "slowlog") {
        line = "{\"op\":\"" + cmd + "\"}";
    } else if (cmd == "watch" || cmd == "top") {
        if (i < argc)
            stream_count = std::strtoull(argv[i++], nullptr, 10);
        else if (cmd == "top")
            stream_count = 0; // until interrupted
        if (stream_count == 0 && cmd == "watch")
            stream_count = 1;
        // "until interrupted" is a count the daemon will never finish.
        const u64 wire_count =
            stream_count == 0 ? 1000000000ull : stream_count;
        line = "{\"op\":\"watch\",\"count\":" +
               std::to_string(wire_count) + "}";
    } else if (cmd == "evict") {
        line = "{\"op\":\"evict\"";
        if (i < argc)
            line += std::string(",\"maxBytes\":") + argv[i++];
        line += "}";
    } else if (cmd == "send" && i < argc) {
        line = argv[i++];
    } else {
        usage();
        return 2;
    }

    Client client;
    std::string err;
    if (!client.connect(socket_path, &err)) {
        std::fprintf(stderr, "voltron-servectl: %s\n", err.c_str());
        return 1;
    }
    std::string response;
    if (!client.request(line, response, &err)) {
        std::fprintf(stderr, "voltron-servectl: %s\n", err.c_str());
        return 1;
    }

    if (cmd == "stats")
        return print_stats(response);
    if (cmd == "slowlog")
        return print_slowlog(response);
    if (cmd == "watch" || cmd == "top") {
        const bool top = cmd == "top";
        const bool clear = top && ::isatty(STDOUT_FILENO);
        u64 seen = 0;
        int rc = 0;
        for (;;) {
            if (top)
                rc = render_top_frame(response, clear);
            else
                std::printf("%s\n", response.c_str());
            ++seen;
            if (stream_count != 0 && seen >= stream_count)
                break;
            if (!client.readLine(response, &err)) {
                // The daemon shut down mid-stream: what we rendered
                // stands; only an explicit error response fails.
                break;
            }
        }
        return top ? rc : status_of(response);
    }

    std::printf("%s\n", response.c_str());
    return status_of(response);
}
