/**
 * @file
 * One-shot client for voltron-served.
 *
 *   voltron-servectl [--socket PATH] ping
 *   voltron-servectl [--socket PATH] stats
 *   voltron-servectl [--socket PATH] evict [MAX_BYTES]
 *   voltron-servectl [--socket PATH] shutdown
 *   voltron-servectl [--socket PATH] send '<json request line>'
 *
 * Prints the daemon's response line on stdout. Exit status is 0 when
 * the response says "status":"ok", 1 otherwise — so shell scripts (CI
 * smoke) can chain on it directly.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/client.hh"
#include "server/json.hh"

using namespace voltron;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: voltron-servectl [--socket PATH] "
        "(ping|stats|shutdown|evict [MAX_BYTES]|send JSON)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path = "/tmp/voltron-served.sock";
    int i = 1;
    while (i < argc && argv[i][0] == '-') {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
            socket_path = argv[i + 1];
            i += 2;
        } else {
            usage();
            return 2;
        }
    }
    if (i >= argc) {
        usage();
        return 2;
    }

    const std::string cmd = argv[i++];
    std::string line;
    if (cmd == "ping" || cmd == "stats" || cmd == "shutdown") {
        line = "{\"op\":\"" + cmd + "\"}";
    } else if (cmd == "evict") {
        line = "{\"op\":\"evict\"";
        if (i < argc)
            line += std::string(",\"maxBytes\":") + argv[i++];
        line += "}";
    } else if (cmd == "send" && i < argc) {
        line = argv[i++];
    } else {
        usage();
        return 2;
    }

    Client client;
    std::string err;
    if (!client.connect(socket_path, &err)) {
        std::fprintf(stderr, "voltron-servectl: %s\n", err.c_str());
        return 1;
    }
    std::string response;
    if (!client.request(line, response, &err)) {
        std::fprintf(stderr, "voltron-servectl: %s\n", err.c_str());
        return 1;
    }
    std::printf("%s\n", response.c_str());

    JsonValue parsed;
    if (!JsonValue::parse(response, parsed))
        return 1;
    return parsed.str("status") == "ok" ? 0 : 1;
}
