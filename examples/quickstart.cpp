/**
 * @file
 * Quickstart: build a small program with the IR builder, run the golden
 * interpreter, compile it for a 4-core Voltron with hybrid parallelism
 * selection, simulate, and verify the run against the golden model.
 *
 *   $ ./build/examples/quickstart
 *
 * The program computes dst[i] = 5*src[i] + 7 (a statistical-DOALL loop)
 * followed by a sum reduction (accumulator expansion), mirroring the
 * paper's Figure 7 kernel shapes.
 */

#include <iostream>

#include "core/voltron.hh"
#include "ir/builder.hh"

using namespace voltron;

namespace {

Program
make_program()
{
    ProgramBuilder b("quickstart");

    const int n = 512;
    std::vector<i64> src(n);
    for (int i = 0; i < n; ++i)
        src[i] = i * 3 + 1;
    const Addr a_src = b.allocArrayI64("src", src);
    const Addr a_dst = b.allocArrayI64("dst", std::vector<i64>(n, 0));
    const u32 s_src = b.symbolOf("src");
    const u32 s_dst = b.symbolOf("dst");

    b.beginFunction("main");
    RegId base_src = b.emitImm(static_cast<i64>(a_src));
    RegId base_dst = b.emitImm(static_cast<i64>(a_dst));

    // Loop 1: dst[i] = 5 * src[i] + 7  — no cross-iteration dependences,
    // so the compiler speculatively chunks it across the cores (DOALL).
    RegId i = b.newGpr();
    LoopHandles scale = b.forLoop(i, 0, n, 1, "scale");
    {
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, i, 3));
        RegId addr = b.newGpr();
        b.emit(ops::add(addr, base_src, off));
        RegId v = b.newGpr();
        b.emitLoad(v, addr, 0, s_src);
        b.emit(ops::alui(Opcode::MUL, v, v, 5));
        b.emit(ops::addi(v, v, 7));
        RegId daddr = b.newGpr();
        b.emit(ops::add(daddr, base_dst, off));
        b.emitStore(daddr, 0, v, s_dst);
    }
    b.endCountedLoop(scale);

    // Loop 2: sum += dst[j] — an accumulator the compiler expands into
    // per-core partial sums combined at the join.
    RegId sum = b.newGpr();
    b.emit(ops::movi(sum, 0));
    RegId j = b.newGpr();
    LoopHandles reduce = b.forLoop(j, 0, n, 1, "reduce");
    {
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, j, 3));
        RegId addr = b.newGpr();
        b.emit(ops::add(addr, base_dst, off));
        RegId v = b.newGpr();
        b.emitLoad(v, addr, 0, s_dst);
        b.emit(ops::add(sum, sum, v));
    }
    b.endCountedLoop(reduce);

    b.emitHalt(sum);
    b.endFunction();
    return b.take();
}

} // namespace

int
main()
{
    // 1. Golden pass: the sequential interpreter runs the program once,
    //    producing the reference result and the training profile.
    VoltronSystem sys(make_program());
    std::cout << "golden exit value : " << sys.goldenResult().exitValue
              << "\n"
              << "dynamic operations: " << sys.goldenResult().dynamicOps
              << "\n\n";

    // 2. Compile + simulate with hybrid parallelism selection (§4.2) on
    //    1, 2 and 4 cores; verify each run against the golden model.
    std::cout << "cores  strategy  cycles     speedup  verified\n";
    for (u16 cores : {1, 2, 4}) {
        Strategy strategy =
            cores == 1 ? Strategy::SerialOnly : Strategy::Hybrid;
        RunOutcome outcome = sys.run(strategy, cores);
        std::cout << "  " << cores << "    " << strategy_name(strategy)
                  << "\t " << outcome.result.cycles << "\t    "
                  << sys.speedup(outcome) << "\t "
                  << (outcome.correct() ? "yes" : "NO!") << "\n";
    }

    // 3. Peek at what the compiler decided per region.
    RunOutcome outcome = sys.run(Strategy::Hybrid, 4);
    std::cout << "\nregion decisions (hybrid, 4 cores):\n";
    for (const auto &entry : outcome.selection.entries) {
        if (entry.profiledOps == 0)
            continue;
        std::cout << "  region " << entry.region << ": "
                  << exec_mode_name(entry.mode) << " ("
                  << entry.profiledOps << " profiled ops)\n";
    }
    std::cout << "\ncoupled cycles: " << outcome.result.coupledCycles
              << ", decoupled cycles: " << outcome.result.decoupledCycles
              << "\n";
    return outcome.correct() ? 0 : 1;
}
