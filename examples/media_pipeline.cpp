/**
 * @file
 * A media-decoder-shaped workload (the application class that motivates
 * the paper's introduction): an entropy-decode-like serial stage feeding
 * a transform stage and a pixel post-processing stage, run repeatedly
 * over frames.
 *
 *  - The "entropy" stage is an LCG-driven gather with a tight recurrence:
 *    the compiler pipelines it with DSWP when profitable.
 *  - The "transform" stage is a wide independent expression tree over a
 *    small table: coupled-mode ILP.
 *  - The "post" stage is an element-wise pixel loop: statistical DOALL.
 *
 * The example prints the per-region technique the compiler chose and the
 * resulting speedups — the hybrid story of the paper in one program.
 */

#include <iostream>

#include "core/voltron.hh"
#include "ir/builder.hh"
#include "support/rng.hh"

using namespace voltron;

namespace {

constexpr int kFramePixels = 1024;
constexpr int kFrames = 3;

Program
make_decoder()
{
    ProgramBuilder b("media_pipeline");
    Rng data_rng(0x5EED);

    std::vector<i64> bitstream(2048);
    for (auto &v : bitstream)
        v = data_rng.range(0, 1 << 16);
    std::vector<i64> quant_table(256);
    for (auto &v : quant_table)
        v = data_rng.range(1, 64);

    const Addr a_bits = b.allocArrayI64("bitstream", bitstream);
    const Addr a_quant = b.allocArrayI64("quant", quant_table);
    const Addr a_coeff = b.allocArrayI64(
        "coeff", std::vector<i64>(kFramePixels, 0));
    const Addr a_frame = b.allocArrayI64(
        "frame", std::vector<i64>(kFramePixels, 0));
    const u32 s_bits = b.symbolOf("bitstream");
    const u32 s_quant = b.symbolOf("quant");
    const u32 s_coeff = b.symbolOf("coeff");
    const u32 s_frame = b.symbolOf("frame");

    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();

    // --- entropy(seed): gather coefficients via a serial index chain ---
    FuncId entropy = b.beginFunction("entropy", 1, true);
    {
        RegId base_bits = b.emitImm(static_cast<i64>(a_bits));
        RegId base_coeff = b.emitImm(static_cast<i64>(a_coeff));
        RegId cursor = b.newGpr();
        b.emit(ops::mov(cursor, gpr(1)));
        RegId check = b.newGpr();
        b.emit(ops::movi(check, 0));
        RegId i = b.newGpr();
        LoopHandles loop = b.forLoop(i, 0, kFramePixels, 1, "entropy");
        {
            b.emit(ops::alui(Opcode::MUL, cursor, cursor, 1103515245));
            b.emit(ops::addi(cursor, cursor, 12345));
            b.emit(ops::alui(Opcode::AND, cursor, cursor, 2047));
            RegId off = b.newGpr();
            b.emit(ops::alui(Opcode::SHL, off, cursor, 3));
            RegId addr = b.newGpr();
            b.emit(ops::add(addr, base_bits, off));
            RegId sym = b.newGpr();
            b.emitLoad(sym, addr, 0, s_bits);
            RegId out_off = b.newGpr();
            b.emit(ops::alui(Opcode::SHL, out_off, i, 3));
            RegId out_addr = b.newGpr();
            b.emit(ops::add(out_addr, base_coeff, out_off));
            b.emitStore(out_addr, 0, sym, s_coeff);
            b.emit(ops::add(check, check, sym));
        }
        b.endCountedLoop(loop);
        b.emit(ops::mov(gpr(0), check));
        b.emit(ops::ret());
    }
    b.endFunction();

    // --- transform(frame): dequantize with a wide dataflow tree --------
    FuncId transform = b.beginFunction("transform", 1, true);
    {
        RegId base_coeff = b.emitImm(static_cast<i64>(a_coeff));
        RegId base_quant = b.emitImm(static_cast<i64>(a_quant));
        RegId carry = b.newGpr();
        b.emit(ops::mov(carry, gpr(1)));
        RegId i = b.newGpr();
        LoopHandles loop = b.forLoop(i, 0, kFramePixels / 4, 1, "xform");
        {
            RegId mix = b.newGpr();
            b.emit(ops::alui(Opcode::AND, mix, carry, 255));
            RegId z = b.newGpr();
            b.emit(ops::movi(z, 0));
            for (int k = 0; k < 4; ++k) {
                RegId idx = b.newGpr();
                b.emit(ops::alui(Opcode::MUL, idx, i, 4));
                b.emit(ops::addi(idx, idx, k));
                b.emit(ops::alui(Opcode::AND, idx, idx, 1023));
                RegId off = b.newGpr();
                b.emit(ops::alui(Opcode::SHL, off, idx, 3));
                RegId caddr = b.newGpr();
                b.emit(ops::add(caddr, base_coeff, off));
                RegId c = b.newGpr();
                b.emitLoad(c, caddr, 0, s_coeff);
                RegId qoff = b.newGpr();
                b.emit(ops::add(qoff, mix, b.emitImm(k * 8)));
                b.emit(ops::alui(Opcode::AND, qoff, qoff, 255));
                b.emit(ops::alui(Opcode::SHL, qoff, qoff, 3));
                RegId qaddr = b.newGpr();
                b.emit(ops::add(qaddr, base_quant, qoff));
                RegId q = b.newGpr();
                b.emitLoad(q, qaddr, 0, s_quant);
                RegId t = b.newGpr();
                b.emit(ops::mul(t, c, q));
                RegId u = b.newGpr();
                b.emit(ops::alui(Opcode::SHR, u, t, 4));
                b.emit(ops::alu(Opcode::XOR, t, t, u));
                b.emit(ops::add(z, z, t));
            }
            RegId half = b.newGpr();
            b.emit(ops::alui(Opcode::SHR, half, carry, 1));
            b.emit(ops::add(carry, half, z));
        }
        b.endCountedLoop(loop);
        b.emit(ops::mov(gpr(0), carry));
        b.emit(ops::ret());
    }
    b.endFunction();

    // --- post(frame): pixel clamp/shift, element-wise (DOALL) ----------
    FuncId post = b.beginFunction("post", 1, true);
    {
        RegId base_coeff = b.emitImm(static_cast<i64>(a_coeff));
        RegId base_frame = b.emitImm(static_cast<i64>(a_frame));
        RegId sum = b.newGpr();
        b.emit(ops::movi(sum, 0));
        RegId i = b.newGpr();
        LoopHandles loop = b.forLoop(i, 0, kFramePixels, 1, "post");
        {
            RegId off = b.newGpr();
            b.emit(ops::alui(Opcode::SHL, off, i, 3));
            RegId caddr = b.newGpr();
            b.emit(ops::add(caddr, base_coeff, off));
            RegId v = b.newGpr();
            b.emitLoad(v, caddr, 0, s_coeff);
            b.emit(ops::add(v, v, gpr(1)));
            RegId clamped = b.newGpr();
            b.emit(ops::alui(Opcode::MAX, clamped, v, 0));
            b.emit(ops::alui(Opcode::MIN, clamped, clamped, 255 << 8));
            RegId faddr = b.newGpr();
            b.emit(ops::add(faddr, base_frame, off));
            b.emitStore(faddr, 0, clamped, s_frame);
            b.emit(ops::add(sum, sum, clamped));
        }
        b.endCountedLoop(loop);
        b.emit(ops::mov(gpr(0), sum));
        b.emit(ops::ret());
    }
    b.endFunction();

    // --- main: decode kFrames frames ------------------------------------
    Program prog = b.take();
    Function &main_fn = prog.function(0);
    main_fn.blocks.clear();
    main_fn.addBlock("entry");
    BasicBlock &bb = main_fn.block(0);
    RegId acc = gpr(9);
    bb.append(ops::movi(acc, 0));
    for (int frame = 0; frame < kFrames; ++frame) {
        for (FuncId stage : {entropy, transform, post}) {
            bb.append(ops::movi(gpr(1), frame * 17 + 3));
            RegId bt = main_fn.freshReg(RegClass::BTR);
            bb.append(ops::pbr(bt, CodeRef::to_function(stage)));
            bb.append(ops::call(bt));
            bb.append(ops::alu(Opcode::XOR, acc, acc, gpr(0)));
        }
    }
    bb.append(ops::halt(acc));
    return prog;
}

} // namespace

int
main()
{
    VoltronSystem sys(make_decoder());
    std::cout << "media_pipeline: " << kFrames << " frames of "
              << kFramePixels << " pixels\n\n";

    std::cout << "strategy   2-core   4-core\n";
    for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly,
                       Strategy::LlpOnly, Strategy::Hybrid}) {
        std::cout << std::left;
        std::cout.width(10);
        std::cout << strategy_name(s) << std::right;
        for (u16 cores : {2, 4}) {
            RunOutcome outcome = sys.run(s, cores);
            std::cout << "   " << sys.speedup(outcome)
                      << (outcome.correct() ? "" : "!");
        }
        std::cout << "\n";
    }

    RunOutcome hybrid = sys.run(Strategy::Hybrid, 4);
    std::cout << "\nhybrid region decisions:\n";
    for (const auto &entry : hybrid.selection.entries) {
        if (entry.profiledOps < 1000)
            continue;
        std::cout << "  func " << entry.func << " region " << entry.region
                  << " -> " << exec_mode_name(entry.mode) << "\n";
    }
    return hybrid.correct() ? 0 : 1;
}
