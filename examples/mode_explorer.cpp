/**
 * @file
 * Mode explorer: pick any benchmark from the built-in suite and sweep
 * every strategy and core count, printing speedups, stall breakdowns and
 * the coupled/decoupled time split — a one-stop tour of the machine.
 *
 *   $ ./build/examples/mode_explorer [benchmark]   (default: gsmdecode)
 *   $ ./build/examples/mode_explorer --list
 */

#include <iomanip>
#include <iostream>

#include "core/voltron.hh"
#include "workloads/suite.hh"

using namespace voltron;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "gsmdecode";
    if (name == "--list") {
        for (const std::string &bench : benchmark_names())
            std::cout << bench << "\n";
        return 0;
    }

    VoltronSystem sys(build_benchmark(name));
    std::cout << "benchmark " << name << ": golden exit "
              << sys.goldenResult().exitValue << ", "
              << sys.goldenResult().dynamicOps << " dynamic ops, serial "
              << sys.baselineCycles() << " cycles\n\n";

    std::cout << std::left << std::setw(10) << "strategy" << std::right
              << std::setw(7) << "cores" << std::setw(10) << "cycles"
              << std::setw(9) << "speedup" << std::setw(10) << "coupled%"
              << std::setw(9) << "dstall%" << std::setw(9) << "recv%"
              << "  ok\n";

    for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly,
                       Strategy::LlpOnly, Strategy::Hybrid}) {
        for (u16 cores : {2, 4}) {
            RunOutcome o = sys.run(s, cores);
            const double total =
                static_cast<double>(o.result.cycles) * cores;
            u64 dstall = 0, recv = 0;
            for (CoreId c = 0; c < cores; ++c) {
                dstall += o.result.stallOf(c, StallCat::DCache);
                recv += o.result.stallOf(c, StallCat::RecvData) +
                        o.result.stallOf(c, StallCat::RecvPred) +
                        o.result.stallOf(c, StallCat::JoinSync);
            }
            std::cout << std::left << std::setw(10) << strategy_name(s)
                      << std::right << std::setw(7) << cores
                      << std::setw(10) << o.result.cycles << std::fixed
                      << std::setprecision(2) << std::setw(9)
                      << sys.speedup(o) << std::setprecision(1)
                      << std::setw(9)
                      << 100.0 * static_cast<double>(o.result.coupledCycles) /
                             static_cast<double>(o.result.cycles)
                      << "%" << std::setw(8)
                      << 100.0 * static_cast<double>(dstall) / total << "%"
                      << std::setw(8)
                      << 100.0 * static_cast<double>(recv) / total << "%"
                      << "  " << (o.correct() ? "yes" : "NO") << "\n";
        }
    }
    return 0;
}
