/**
 * @file
 * String matching with fine-grain strands — the paper's Figure 8
 * (164.gzip longest-match loop) as a standalone application.
 *
 * Two long byte-stream stand-ins (`scan` and `match`) are compared until
 * they diverge. The eBUG partitioner places each stream's loads on a
 * different core so their cache misses overlap (memory-level
 * parallelism), with the match outcome exchanged over the queue-mode
 * operand network — exactly the partition shown in the paper.
 */

#include <iostream>

#include "core/voltron.hh"
#include "ir/builder.hh"
#include "support/rng.hh"

using namespace voltron;

namespace {

Program
make_matcher(u64 match_length)
{
    ProgramBuilder b("string_match");
    Rng rng(0x6219);

    std::vector<i64> scan(match_length + 8);
    for (auto &v : scan)
        v = rng.range(0, 255);
    std::vector<i64> match = scan;
    match[match_length] ^= 0x40; // first divergence

    const Addr a_scan = b.allocArrayI64("scan", scan);
    const Addr a_match = b.allocArrayI64("match", match);
    const u32 s_scan = b.symbolOf("scan");
    const u32 s_match = b.symbolOf("match");

    b.beginFunction("main");
    RegId base_s = b.emitImm(static_cast<i64>(a_scan));
    RegId base_m = b.emitImm(static_cast<i64>(a_match));
    RegId i = b.newGpr();
    b.emit(ops::movi(i, 0));
    RegId hash = b.newGpr();
    b.emit(ops::movi(hash, 0));

    BlockId header = b.newBlock("match.header");
    BlockId cont = b.newBlock("match.cont");
    BlockId exit = b.newBlock("match.exit");
    b.fallthroughTo(header);

    // Compare 3 elements per iteration (the paper's loop compares 4
    // halfword pairs per trip); accumulate a rolling hash.
    {
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, i, 3));
        RegId addr_s = b.newGpr();
        b.emit(ops::add(addr_s, base_s, off));
        RegId addr_m = b.newGpr();
        b.emit(ops::add(addr_m, base_m, off));
        RegId diff = b.newGpr();
        b.emit(ops::movi(diff, 0));
        for (int k = 0; k < 3; ++k) {
            RegId a = b.newGpr();
            b.emitLoad(a, addr_s, 8 * k, s_scan);
            RegId m = b.newGpr();
            b.emitLoad(m, addr_m, 8 * k, s_match);
            RegId d = b.newGpr();
            b.emit(ops::sub(d, a, m));
            b.emit(ops::alu(Opcode::OR, diff, diff, d));
            RegId h = b.newGpr();
            b.emit(ops::alui(Opcode::MUL, h, a, 31));
            b.emit(ops::alu(Opcode::XOR, hash, hash, h));
        }
        RegId mismatch = b.newPr();
        b.emit(ops::cmpi(CmpCond::NE, mismatch, diff, 0));
        b.emitBranch(mismatch, exit);
        b.fallthroughTo(cont);
    }
    {
        b.emit(ops::addi(i, i, 3));
        RegId done = b.newPr();
        b.emit(ops::cmpi(CmpCond::GE, done, i,
                         static_cast<i64>(match_length + 3)));
        b.emitBranch(done, exit);
        b.emitJump(header);
    }
    b.setBlock(exit);
    RegId result = b.newGpr();
    b.emit(ops::add(result, hash, i)); // hash + matched length
    b.emitHalt(result);
    b.endFunction();
    return b.take();
}

} // namespace

int
main(int argc, char **argv)
{
    const u64 length = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                                : 12288;
    VoltronSystem sys(make_matcher(length));

    std::cout << "string_match over " << length << " elements\n"
              << "serial baseline: " << sys.baselineCycles()
              << " cycles\n\n";

    RunOutcome strands = sys.run(Strategy::TlpOnly, 2);
    std::cout << "2-core strands : " << strands.result.cycles
              << " cycles, speedup " << sys.speedup(strands)
              << (strands.correct() ? "" : "  GOLDEN MISMATCH") << "\n";

    u64 dstall = 0;
    for (CoreId c = 0; c < 2; ++c)
        dstall += strands.result.stallOf(c, StallCat::DCache);
    std::cout << "cache-miss stall cycles across both cores: " << dstall
              << " (overlapped: each core only waits for its own "
                 "stream)\n";

    RunOutcome coupled = sys.run(Strategy::IlpOnly, 2);
    std::cout << "2-core coupled : " << coupled.result.cycles
              << " cycles, speedup " << sys.speedup(coupled)
              << "  (lockstep pays for every miss on both cores)\n";
    return strands.correct() && coupled.correct() ? 0 : 1;
}
