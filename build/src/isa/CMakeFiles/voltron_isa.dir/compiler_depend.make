# Empty compiler generated dependencies file for voltron_isa.
# This may be replaced when dependencies are built.
