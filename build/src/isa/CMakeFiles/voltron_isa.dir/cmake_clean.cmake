file(REMOVE_RECURSE
  "CMakeFiles/voltron_isa.dir/opcode.cc.o"
  "CMakeFiles/voltron_isa.dir/opcode.cc.o.d"
  "CMakeFiles/voltron_isa.dir/operation.cc.o"
  "CMakeFiles/voltron_isa.dir/operation.cc.o.d"
  "libvoltron_isa.a"
  "libvoltron_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltron_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
