file(REMOVE_RECURSE
  "libvoltron_isa.a"
)
