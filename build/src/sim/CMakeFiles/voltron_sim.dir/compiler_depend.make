# Empty compiler generated dependencies file for voltron_sim.
# This may be replaced when dependencies are built.
