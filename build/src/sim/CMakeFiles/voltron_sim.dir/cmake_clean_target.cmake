file(REMOVE_RECURSE
  "libvoltron_sim.a"
)
