file(REMOVE_RECURSE
  "CMakeFiles/voltron_sim.dir/machine.cc.o"
  "CMakeFiles/voltron_sim.dir/machine.cc.o.d"
  "libvoltron_sim.a"
  "libvoltron_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltron_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
