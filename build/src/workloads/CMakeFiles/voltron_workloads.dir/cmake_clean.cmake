file(REMOVE_RECURSE
  "CMakeFiles/voltron_workloads.dir/archetypes.cc.o"
  "CMakeFiles/voltron_workloads.dir/archetypes.cc.o.d"
  "CMakeFiles/voltron_workloads.dir/suite.cc.o"
  "CMakeFiles/voltron_workloads.dir/suite.cc.o.d"
  "libvoltron_workloads.a"
  "libvoltron_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltron_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
