# Empty dependencies file for voltron_workloads.
# This may be replaced when dependencies are built.
