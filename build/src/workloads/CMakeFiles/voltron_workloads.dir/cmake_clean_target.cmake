file(REMOVE_RECURSE
  "libvoltron_workloads.a"
)
