file(REMOVE_RECURSE
  "CMakeFiles/voltron_core.dir/voltron.cc.o"
  "CMakeFiles/voltron_core.dir/voltron.cc.o.d"
  "libvoltron_core.a"
  "libvoltron_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltron_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
