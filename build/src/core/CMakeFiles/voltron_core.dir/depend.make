# Empty dependencies file for voltron_core.
# This may be replaced when dependencies are built.
