file(REMOVE_RECURSE
  "libvoltron_core.a"
)
