# Empty dependencies file for voltron_tm.
# This may be replaced when dependencies are built.
