file(REMOVE_RECURSE
  "libvoltron_tm.a"
)
