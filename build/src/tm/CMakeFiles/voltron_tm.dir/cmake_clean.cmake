file(REMOVE_RECURSE
  "CMakeFiles/voltron_tm.dir/tm.cc.o"
  "CMakeFiles/voltron_tm.dir/tm.cc.o.d"
  "libvoltron_tm.a"
  "libvoltron_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltron_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
