file(REMOVE_RECURSE
  "libvoltron_interp.a"
)
