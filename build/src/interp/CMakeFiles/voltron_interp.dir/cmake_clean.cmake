file(REMOVE_RECURSE
  "CMakeFiles/voltron_interp.dir/interp.cc.o"
  "CMakeFiles/voltron_interp.dir/interp.cc.o.d"
  "libvoltron_interp.a"
  "libvoltron_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltron_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
