# Empty compiler generated dependencies file for voltron_interp.
# This may be replaced when dependencies are built.
