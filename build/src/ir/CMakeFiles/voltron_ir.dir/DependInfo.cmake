
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/voltron_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/voltron_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/cfg.cc" "src/ir/CMakeFiles/voltron_ir.dir/cfg.cc.o" "gcc" "src/ir/CMakeFiles/voltron_ir.dir/cfg.cc.o.d"
  "/root/repo/src/ir/dom.cc" "src/ir/CMakeFiles/voltron_ir.dir/dom.cc.o" "gcc" "src/ir/CMakeFiles/voltron_ir.dir/dom.cc.o.d"
  "/root/repo/src/ir/function.cc" "src/ir/CMakeFiles/voltron_ir.dir/function.cc.o" "gcc" "src/ir/CMakeFiles/voltron_ir.dir/function.cc.o.d"
  "/root/repo/src/ir/liveness.cc" "src/ir/CMakeFiles/voltron_ir.dir/liveness.cc.o" "gcc" "src/ir/CMakeFiles/voltron_ir.dir/liveness.cc.o.d"
  "/root/repo/src/ir/loops.cc" "src/ir/CMakeFiles/voltron_ir.dir/loops.cc.o" "gcc" "src/ir/CMakeFiles/voltron_ir.dir/loops.cc.o.d"
  "/root/repo/src/ir/scc.cc" "src/ir/CMakeFiles/voltron_ir.dir/scc.cc.o" "gcc" "src/ir/CMakeFiles/voltron_ir.dir/scc.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/ir/CMakeFiles/voltron_ir.dir/verifier.cc.o" "gcc" "src/ir/CMakeFiles/voltron_ir.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/voltron_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
