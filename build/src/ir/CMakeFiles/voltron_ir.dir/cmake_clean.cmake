file(REMOVE_RECURSE
  "CMakeFiles/voltron_ir.dir/builder.cc.o"
  "CMakeFiles/voltron_ir.dir/builder.cc.o.d"
  "CMakeFiles/voltron_ir.dir/cfg.cc.o"
  "CMakeFiles/voltron_ir.dir/cfg.cc.o.d"
  "CMakeFiles/voltron_ir.dir/dom.cc.o"
  "CMakeFiles/voltron_ir.dir/dom.cc.o.d"
  "CMakeFiles/voltron_ir.dir/function.cc.o"
  "CMakeFiles/voltron_ir.dir/function.cc.o.d"
  "CMakeFiles/voltron_ir.dir/liveness.cc.o"
  "CMakeFiles/voltron_ir.dir/liveness.cc.o.d"
  "CMakeFiles/voltron_ir.dir/loops.cc.o"
  "CMakeFiles/voltron_ir.dir/loops.cc.o.d"
  "CMakeFiles/voltron_ir.dir/scc.cc.o"
  "CMakeFiles/voltron_ir.dir/scc.cc.o.d"
  "CMakeFiles/voltron_ir.dir/verifier.cc.o"
  "CMakeFiles/voltron_ir.dir/verifier.cc.o.d"
  "libvoltron_ir.a"
  "libvoltron_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltron_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
