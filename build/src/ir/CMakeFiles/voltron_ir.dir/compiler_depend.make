# Empty compiler generated dependencies file for voltron_ir.
# This may be replaced when dependencies are built.
