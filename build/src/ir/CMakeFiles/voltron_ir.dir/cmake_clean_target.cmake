file(REMOVE_RECURSE
  "libvoltron_ir.a"
)
