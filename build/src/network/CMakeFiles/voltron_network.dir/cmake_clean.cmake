file(REMOVE_RECURSE
  "CMakeFiles/voltron_network.dir/network.cc.o"
  "CMakeFiles/voltron_network.dir/network.cc.o.d"
  "libvoltron_network.a"
  "libvoltron_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltron_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
