file(REMOVE_RECURSE
  "libvoltron_network.a"
)
