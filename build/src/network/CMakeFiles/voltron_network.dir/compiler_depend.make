# Empty compiler generated dependencies file for voltron_network.
# This may be replaced when dependencies are built.
