file(REMOVE_RECURSE
  "CMakeFiles/voltron_mem.dir/cache.cc.o"
  "CMakeFiles/voltron_mem.dir/cache.cc.o.d"
  "CMakeFiles/voltron_mem.dir/hierarchy.cc.o"
  "CMakeFiles/voltron_mem.dir/hierarchy.cc.o.d"
  "libvoltron_mem.a"
  "libvoltron_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltron_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
