# Empty dependencies file for voltron_mem.
# This may be replaced when dependencies are built.
