file(REMOVE_RECURSE
  "libvoltron_mem.a"
)
