file(REMOVE_RECURSE
  "libvoltron_compiler.a"
)
