# Empty dependencies file for voltron_compiler.
# This may be replaced when dependencies are built.
