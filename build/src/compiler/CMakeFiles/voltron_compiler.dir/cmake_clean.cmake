file(REMOVE_RECURSE
  "CMakeFiles/voltron_compiler.dir/bug.cc.o"
  "CMakeFiles/voltron_compiler.dir/bug.cc.o.d"
  "CMakeFiles/voltron_compiler.dir/codegen.cc.o"
  "CMakeFiles/voltron_compiler.dir/codegen.cc.o.d"
  "CMakeFiles/voltron_compiler.dir/compile.cc.o"
  "CMakeFiles/voltron_compiler.dir/compile.cc.o.d"
  "CMakeFiles/voltron_compiler.dir/depgraph.cc.o"
  "CMakeFiles/voltron_compiler.dir/depgraph.cc.o.d"
  "CMakeFiles/voltron_compiler.dir/reassoc.cc.o"
  "CMakeFiles/voltron_compiler.dir/reassoc.cc.o.d"
  "CMakeFiles/voltron_compiler.dir/regions.cc.o"
  "CMakeFiles/voltron_compiler.dir/regions.cc.o.d"
  "CMakeFiles/voltron_compiler.dir/schedule.cc.o"
  "CMakeFiles/voltron_compiler.dir/schedule.cc.o.d"
  "libvoltron_compiler.a"
  "libvoltron_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltron_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
