# Empty compiler generated dependencies file for test_codegen_invariants.
# This may be replaced when dependencies are built.
