file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_invariants.dir/test_codegen_invariants.cc.o"
  "CMakeFiles/test_codegen_invariants.dir/test_codegen_invariants.cc.o.d"
  "test_codegen_invariants"
  "test_codegen_invariants.pdb"
  "test_codegen_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
