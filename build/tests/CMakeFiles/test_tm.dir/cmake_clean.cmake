file(REMOVE_RECURSE
  "CMakeFiles/test_tm.dir/test_tm.cc.o"
  "CMakeFiles/test_tm.dir/test_tm.cc.o.d"
  "test_tm"
  "test_tm.pdb"
  "test_tm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
