
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ir.cc" "tests/CMakeFiles/test_ir.dir/test_ir.cc.o" "gcc" "tests/CMakeFiles/test_ir.dir/test_ir.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/voltron_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/voltron_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/voltron_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/voltron_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/voltron_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/voltron_network.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/voltron_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/voltron_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/voltron_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/voltron_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
