# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_tm[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_endtoend[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_codegen_invariants[1]_include.cmake")
