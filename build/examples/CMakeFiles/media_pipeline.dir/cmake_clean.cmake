file(REMOVE_RECURSE
  "CMakeFiles/media_pipeline.dir/media_pipeline.cpp.o"
  "CMakeFiles/media_pipeline.dir/media_pipeline.cpp.o.d"
  "media_pipeline"
  "media_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
