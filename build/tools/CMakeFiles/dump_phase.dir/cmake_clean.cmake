file(REMOVE_RECURSE
  "CMakeFiles/dump_phase.dir/dump2.cc.o"
  "CMakeFiles/dump_phase.dir/dump2.cc.o.d"
  "dump_phase"
  "dump_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
