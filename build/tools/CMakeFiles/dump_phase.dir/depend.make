# Empty dependencies file for dump_phase.
# This may be replaced when dependencies are built.
