file(REMOVE_RECURSE
  "CMakeFiles/suite_check.dir/suite_check.cc.o"
  "CMakeFiles/suite_check.dir/suite_check.cc.o.d"
  "suite_check"
  "suite_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
