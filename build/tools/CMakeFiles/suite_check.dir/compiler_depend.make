# Empty compiler generated dependencies file for suite_check.
# This may be replaced when dependencies are built.
