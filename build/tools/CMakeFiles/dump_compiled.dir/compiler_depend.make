# Empty compiler generated dependencies file for dump_compiled.
# This may be replaced when dependencies are built.
