file(REMOVE_RECURSE
  "CMakeFiles/dump_compiled.dir/dump.cc.o"
  "CMakeFiles/dump_compiled.dir/dump.cc.o.d"
  "dump_compiled"
  "dump_compiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_compiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
