# Empty compiler generated dependencies file for fig11_speedup_4core.
# This may be replaced when dependencies are built.
