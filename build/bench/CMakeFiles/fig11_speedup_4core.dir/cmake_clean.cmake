file(REMOVE_RECURSE
  "CMakeFiles/fig11_speedup_4core.dir/fig11_speedup_4core.cc.o"
  "CMakeFiles/fig11_speedup_4core.dir/fig11_speedup_4core.cc.o.d"
  "fig11_speedup_4core"
  "fig11_speedup_4core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_speedup_4core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
