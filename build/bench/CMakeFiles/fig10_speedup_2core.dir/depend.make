# Empty dependencies file for fig10_speedup_2core.
# This may be replaced when dependencies are built.
