file(REMOVE_RECURSE
  "CMakeFiles/fig10_speedup_2core.dir/fig10_speedup_2core.cc.o"
  "CMakeFiles/fig10_speedup_2core.dir/fig10_speedup_2core.cc.o.d"
  "fig10_speedup_2core"
  "fig10_speedup_2core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_speedup_2core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
