file(REMOVE_RECURSE
  "CMakeFiles/abl_network.dir/abl_network.cc.o"
  "CMakeFiles/abl_network.dir/abl_network.cc.o.d"
  "abl_network"
  "abl_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
