# Empty compiler generated dependencies file for fig12_stall_breakdown.
# This may be replaced when dependencies are built.
