# Empty compiler generated dependencies file for fig03_parallelism_breakdown.
# This may be replaced when dependencies are built.
