file(REMOVE_RECURSE
  "CMakeFiles/sec42_kernel_casestudies.dir/sec42_kernel_casestudies.cc.o"
  "CMakeFiles/sec42_kernel_casestudies.dir/sec42_kernel_casestudies.cc.o.d"
  "sec42_kernel_casestudies"
  "sec42_kernel_casestudies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_kernel_casestudies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
