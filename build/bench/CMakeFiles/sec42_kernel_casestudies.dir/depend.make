# Empty dependencies file for sec42_kernel_casestudies.
# This may be replaced when dependencies are built.
