file(REMOVE_RECURSE
  "CMakeFiles/abl_compiler.dir/abl_compiler.cc.o"
  "CMakeFiles/abl_compiler.dir/abl_compiler.cc.o.d"
  "abl_compiler"
  "abl_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
