# Empty dependencies file for abl_compiler.
# This may be replaced when dependencies are built.
