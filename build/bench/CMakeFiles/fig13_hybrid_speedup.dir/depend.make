# Empty dependencies file for fig13_hybrid_speedup.
# This may be replaced when dependencies are built.
