/** @file Structural invariants of compiled per-core programs.
 *
 * These checks hold for *every* program the compiler emits, so they run
 * over real suite benchmarks under every strategy. They complement the
 * end-to-end golden-equivalence sweep: equivalence says the code is
 * functionally right; these say the code is *shaped* the way the
 * architecture requires (so e.g. a FIFO mismatch cannot hide behind a
 * lucky schedule).
 */

#include <gtest/gtest.h>

#include <map>

#include "compiler/compile.hh"
#include "interp/interp.hh"
#include "workloads/suite.hh"

namespace voltron {
namespace {

struct CompiledCase
{
    std::string benchmark;
    Strategy strategy;
};

class CodegenInvariants : public ::testing::TestWithParam<CompiledCase>
{
  protected:
    MachineProgram
    compiled()
    {
        SuiteScale scale;
        scale.targetOps = 15'000;
        Program prog = build_benchmark(GetParam().benchmark, scale);
        GoldenRun golden = run_golden(prog);
        CompileOptions opts;
        opts.strategy = GetParam().strategy;
        opts.numCores = 4;
        return compile_program(prog, golden.profile, opts);
    }
};

/**
 * Per (sender, receiver) pair, the number of SENDs emitted in a mirrored
 * block must equal the number of RECVs the peer's mirror of that block
 * expects from that sender — the static form of queue-mode FIFO
 * discipline. (Preambles/epilogues pair across different block ids and
 * are covered by the end-to-end runs.)
 */
TEST_P(CodegenInvariants, MirroredBlockSendRecvBalance)
{
    MachineProgram mp = compiled();
    for (FuncId f = 0; f < mp.original.functions.size(); ++f) {
        const size_t mirrored = mp.original.functions[f].blocks.size();
        for (size_t b = 0; b < mirrored; ++b) {
            // sends[from][to] and recvs[to][from] within this block.
            std::map<std::pair<CoreId, CoreId>, int> sends, recvs;
            for (CoreId c = 0; c < mp.numCores; ++c) {
                const BasicBlock &bb =
                    mp.perCore[c].functions[f].blocks[b];
                for (const Operation &op : bb.ops) {
                    if (op.op == Opcode::SEND)
                        sends[{c, static_cast<CoreId>(op.imm)}]++;
                    if (op.op == Opcode::RECV)
                        recvs[{static_cast<CoreId>(op.imm), c}]++;
                }
            }
            EXPECT_EQ(sends, recvs)
                << "f" << f << " bb" << b << " unbalanced queue traffic";
        }
    }
}

/** Scheduled (coupled) blocks: branches last, one op per core-cycle,
 * every op complete by block end, PUT/GET pairs in matching cycles. */
TEST_P(CodegenInvariants, CoupledBlockStructure)
{
    MachineProgram mp = compiled();
    for (CoreId c = 0; c < mp.numCores; ++c) {
        for (const Function &fn : mp.perCore[c].functions) {
            for (const BasicBlock &bb : fn.blocks) {
                if (!bb.scheduled())
                    continue;
                ASSERT_EQ(bb.ops.size(), bb.issueCycles.size());
                u32 prev = 0;
                bool seen_branch = false;
                for (size_t i = 0; i < bb.ops.size(); ++i) {
                    if (i > 0) {
                        EXPECT_GT(bb.issueCycles[i], prev)
                            << fn.name << "/" << bb.name
                            << ": double issue";
                    }
                    prev = bb.issueCycles[i];
                    EXPECT_LT(bb.issueCycles[i], bb.schedLen);
                    const bool is_branch = bb.ops[i].op == Opcode::BR ||
                                           bb.ops[i].op == Opcode::BRU;
                    if (seen_branch)
                        EXPECT_TRUE(is_branch)
                            << fn.name << "/" << bb.name
                            << ": op after branch";
                    seen_branch |= is_branch;
                    // No decoupled-only ops inside lockstep blocks.
                    EXPECT_NE(bb.ops[i].op, Opcode::SEND);
                    EXPECT_NE(bb.ops[i].op, Opcode::RECV);
                    EXPECT_NE(bb.ops[i].op, Opcode::SPAWN);
                }
            }
        }
    }
}

/** Direct-mode transfer groups meet in one cycle across cores. */
TEST_P(CodegenInvariants, TransferGroupsShareCycles)
{
    MachineProgram mp = compiled();
    for (FuncId f = 0; f < mp.original.functions.size(); ++f) {
        const size_t mirrored = mp.original.functions[f].blocks.size();
        for (size_t b = 0; b < mirrored; ++b) {
            std::map<u32, std::set<u32>> group_cycles;
            std::map<u32, int> group_size;
            for (CoreId c = 0; c < mp.numCores; ++c) {
                const BasicBlock &bb =
                    mp.perCore[c].functions[f].blocks[b];
                if (!bb.scheduled())
                    continue;
                for (size_t i = 0; i < bb.ops.size(); ++i) {
                    const Operation &op = bb.ops[i];
                    if (!is_comm(op.op) || op.seqId < (1u << 20))
                        continue;
                    group_cycles[op.seqId].insert(bb.issueCycles[i]);
                    group_size[op.seqId]++;
                }
            }
            for (const auto &[group, cycles] : group_cycles) {
                EXPECT_EQ(cycles.size(), 1u)
                    << "transfer group " << group << " split across cycles";
                EXPECT_GE(group_size[group], 2)
                    << "transfer group " << group << " has no partner";
            }
        }
    }
}

/** Workers never contain master-only ops; the master never sleeps. */
TEST_P(CodegenInvariants, RoleDiscipline)
{
    MachineProgram mp = compiled();
    for (const Function &fn : mp.perCore[0].functions) {
        for (const BasicBlock &bb : fn.blocks)
            for (const Operation &op : bb.ops)
                EXPECT_NE(op.op, Opcode::SLEEP) << "master sleeps";
    }
    for (CoreId c = 1; c < mp.numCores; ++c) {
        for (const Function &fn : mp.perCore[c].functions) {
            for (const BasicBlock &bb : fn.blocks) {
                for (const Operation &op : bb.ops) {
                    EXPECT_NE(op.op, Opcode::CALL) << "worker calls";
                    EXPECT_NE(op.op, Opcode::RET) << "worker returns";
                    EXPECT_NE(op.op, Opcode::HALT) << "worker halts";
                    EXPECT_NE(op.op, Opcode::XVALIDATE)
                        << "worker validates";
                    EXPECT_NE(op.op, Opcode::SPAWN) << "worker spawns";
                }
            }
        }
    }
}

/** Every SPAWN has a BTR defined by a block-local PBR pointing at a
 * block that exists in the *target* core's clone. */
TEST_P(CodegenInvariants, SpawnTargetsExist)
{
    MachineProgram mp = compiled();
    const Function *master_fn = nullptr;
    for (const Function &fn : mp.perCore[0].functions) {
        master_fn = &fn;
        for (const BasicBlock &bb : fn.blocks) {
            for (size_t i = 0; i < bb.ops.size(); ++i) {
                const Operation &op = bb.ops[i];
                if (op.op != Opcode::SPAWN)
                    continue;
                const CoreId target = static_cast<CoreId>(op.imm);
                ASSERT_LT(target, mp.numCores);
                ASSERT_NE(target, 0);
                // Find the defining PBR.
                bool found = false;
                for (size_t j = i; j-- > 0;) {
                    if (bb.ops[j].op == Opcode::PBR &&
                        bb.ops[j].dst == op.src1) {
                        CodeRef ref = bb.ops[j].codeRef();
                        ASSERT_EQ(ref.kind, CodeRef::Kind::Block);
                        const Function &worker =
                            mp.perCore[target].functions.at(ref.func);
                        ASSERT_LT(ref.block, worker.blocks.size());
                        // The spawn entry must do something and not be a
                        // scheduled lockstep block.
                        EXPECT_FALSE(
                            worker.block(ref.block).scheduled());
                        found = true;
                        break;
                    }
                }
                EXPECT_TRUE(found) << master_fn->name
                                   << ": spawn without local PBR";
            }
        }
    }
}

/** MODE_SWITCH(coupled) must terminate its block (barrier semantics). */
TEST_P(CodegenInvariants, CoupledSwitchTerminatesBlock)
{
    MachineProgram mp = compiled();
    for (CoreId c = 0; c < mp.numCores; ++c) {
        for (const Function &fn : mp.perCore[c].functions) {
            for (const BasicBlock &bb : fn.blocks) {
                for (size_t i = 0; i < bb.ops.size(); ++i) {
                    if (bb.ops[i].op == Opcode::MODE_SWITCH &&
                        bb.ops[i].imm == 0) {
                        EXPECT_EQ(i + 1, bb.ops.size())
                            << fn.name << "/" << bb.name;
                        EXPECT_NE(bb.fallthrough, kNoBlock);
                    }
                }
            }
        }
    }
}

std::vector<CompiledCase>
invariant_cases()
{
    std::vector<CompiledCase> cases;
    for (const char *name : {"gsmdecode", "164.gzip", "171.swim", "epic",
                             "197.parser", "256.bzip2"}) {
        for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly,
                           Strategy::LlpOnly, Strategy::Hybrid}) {
            cases.push_back({name, s});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, CodegenInvariants, ::testing::ValuesIn(invariant_cases()),
    [](const ::testing::TestParamInfo<CompiledCase> &info) {
        std::string name = info.param.benchmark;
        for (char &ch : name)
            if (ch == '.' || ch == '-')
                ch = '_';
        return name + "_" + strategy_name(info.param.strategy);
    });

} // namespace
} // namespace voltron
