/** @file Unit tests for the machine simulator: configs, timing sanity,
 * lockstep invariants, stall accounting. */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "core/voltron.hh"
#include "ir/builder.hh"

namespace voltron {
namespace {

Program
tiny_program(i64 exit_value = 7)
{
    ProgramBuilder b("tiny");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(exit_value));
    b.endFunction();
    return b.take();
}

Program
loop_program(u64 trips)
{
    ProgramBuilder b("loop");
    Addr arr = b.allocArrayI64("a", std::vector<i64>(trips, 2));
    u32 sym = b.symbolOf("a");
    b.beginFunction("main");
    RegId base = b.emitImm(static_cast<i64>(arr));
    RegId sum = b.emitImm(0);
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, static_cast<i64>(trips));
    RegId off = b.newGpr();
    b.emit(ops::alui(Opcode::SHL, off, i, 3));
    RegId addr = b.newGpr();
    b.emit(ops::add(addr, base, off));
    RegId v = b.newGpr();
    b.emitLoad(v, addr, 0, sym);
    b.emit(ops::add(sum, sum, v));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();
    return b.take();
}

MachineProgram
compile_for(const Program &prog, Strategy strategy, u16 cores)
{
    GoldenRun golden = run_golden(prog);
    CompileOptions opts;
    opts.strategy = strategy;
    opts.numCores = cores;
    return compile_program(prog, golden.profile, opts);
}

TEST(MachineConfigTest, MeshShapes)
{
    EXPECT_EQ(MachineConfig::forCores(1).net.cols, 1);
    EXPECT_EQ(MachineConfig::forCores(2).net.cols, 2);
    EXPECT_EQ(MachineConfig::forCores(2).net.rows, 1);
    EXPECT_EQ(MachineConfig::forCores(4).net.rows, 2);
    EXPECT_EQ(MachineConfig::forCores(8).net.rows, 4);
    EXPECT_EQ(MachineConfig::forCores(8).net.cols, 2);
    EXPECT_EQ(MachineConfig::forCores(16).net.rows, 8);
    // Non-power-of-two and large counts take the generic default shape:
    // closest-to-square with rows >= cols, primes degenerate to a row.
    EXPECT_EQ(MachineConfig::forCores(3).net.rows, 3);
    EXPECT_EQ(MachineConfig::forCores(3).net.cols, 1);
    EXPECT_EQ(MachineConfig::forCores(32).net.rows, 8);
    EXPECT_EQ(MachineConfig::forCores(32).net.cols, 4);
    EXPECT_EQ(MachineConfig::forCores(64).net.rows, 8);
    EXPECT_EQ(MachineConfig::forCores(64).net.cols, 8);
    EXPECT_THROW(MachineConfig::forCores(0), FatalError);
    EXPECT_THROW(MachineConfig::forCores(kMaxCores + 1), FatalError);
    // Explicit geometry: any rows x cols factorization up to kMaxCores.
    EXPECT_EQ(MachineConfig::forMesh(2, 8).numCores, 16);
    EXPECT_EQ(MachineConfig::forMesh(1, 64).net.cols, 64);
    EXPECT_THROW(MachineConfig::forMesh(0, 4), FatalError);
    EXPECT_THROW(MachineConfig::forMesh(9, 8), FatalError);
}

TEST(MachineTest, CoreCountMismatchIsFatal)
{
    Program prog = tiny_program();
    MachineProgram mp = compile_for(prog, Strategy::SerialOnly, 1);
    EXPECT_THROW(Machine(mp, MachineConfig::forCores(4)), FatalError);
}

TEST(MachineTest, TinyProgramRuns)
{
    Program prog = tiny_program(42);
    MachineProgram mp = compile_for(prog, Strategy::SerialOnly, 1);
    Machine machine(mp, MachineConfig::forCores(1));
    MachineResult result = machine.run();
    EXPECT_EQ(result.exitValue, 42u);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_EQ(result.issued[0], 2u); // movi + halt
}

TEST(MachineTest, SerialTimingIncludesMissPenalties)
{
    // 64 iterations x ~8 ops: the first-load misses all the way to
    // memory, so cycles must exceed the pure issue count.
    Program prog = loop_program(64);
    MachineProgram mp = compile_for(prog, Strategy::SerialOnly, 1);
    Machine machine(mp, MachineConfig::forCores(1));
    MachineResult result = machine.run();
    EXPECT_GT(result.cycles, result.issued[0]);
    EXPECT_GT(result.stallOf(0, StallCat::DCache), 0u);
    EXPECT_GT(result.stallOf(0, StallCat::IFetch), 0u);
}

TEST(MachineTest, MaxCyclesGuards)
{
    Program prog = loop_program(512);
    MachineProgram mp = compile_for(prog, Strategy::SerialOnly, 1);
    MachineConfig config = MachineConfig::forCores(1);
    config.maxCycles = 100;
    Machine machine(mp, config);
    EXPECT_THROW(machine.run(), FatalError);
}

TEST(MachineTest, WorkersIdleUnderSerialCompilation)
{
    Program prog = loop_program(64);
    GoldenRun golden = run_golden(prog);
    CompileOptions opts;
    opts.strategy = Strategy::SerialOnly;
    opts.numCores = 4;
    MachineProgram mp = compile_program(prog, golden.profile, opts);
    Machine machine(mp, MachineConfig::forCores(4));
    MachineResult result = machine.run();
    EXPECT_EQ(result.exitValue, golden.result.exitValue);
    for (CoreId c = 1; c < 4; ++c) {
        EXPECT_EQ(result.issued[c], 0u);
        EXPECT_EQ(result.idleCycles[c], result.cycles);
    }
    EXPECT_EQ(result.coupledCycles, 0u);
}

TEST(MachineTest, CoupledRunSpendsCoupledCycles)
{
    Program prog = loop_program(256);
    MachineProgram mp = compile_for(prog, Strategy::IlpOnly, 2);
    Machine machine(mp, MachineConfig::forCores(2));
    MachineResult result = machine.run();
    EXPECT_GT(result.coupledCycles, result.cycles / 2);
    EXPECT_EQ(result.coupledCycles + result.decoupledCycles, result.cycles);
}

TEST(MachineTest, MemoryMatchesAfterParallelRun)
{
    Program prog = loop_program(256);
    GoldenRun golden = run_golden(prog);
    MachineProgram mp = compile_for(prog, Strategy::LlpOnly, 4);
    Machine machine(mp, MachineConfig::forCores(4));
    MachineResult result = machine.run();
    EXPECT_EQ(result.exitValue, golden.result.exitValue);
    for (const DataObject &obj : prog.data) {
        for (u64 off = 0; off < obj.size; off += 8) {
            EXPECT_EQ(machine.memory().read(obj.base + off, 8),
                      golden.memory->read(obj.base + off, 8));
        }
    }
}

TEST(MachineTest, NetworkAndTmStatsExposed)
{
    Program prog = loop_program(512);
    MachineProgram mp = compile_for(prog, Strategy::LlpOnly, 4);
    Machine machine(mp, MachineConfig::forCores(4));
    machine.run();
    EXPECT_GT(machine.netStats().get("net.messages"), 0u);
    EXPECT_GT(machine.netStats().get("net.spawns"), 0u);
    EXPECT_GT(machine.tmStats().get("tm.begins"), 0u);
    EXPECT_GT(machine.memStats().get("core0.l1d.reads"), 0u);
}

TEST(MachineTest, WatchdogReportsDeadlock)
{
    // Hand-craft a per-core program where the master waits on a message
    // no one sends.
    Program prog = tiny_program();
    MachineProgram mp = compile_for(prog, Strategy::SerialOnly, 2);
    Function &master = mp.perCore[0].functions[0];
    BasicBlock &bb = master.blocks[0];
    Operation recv = ops::recv(1, gpr(30));
    bb.ops.insert(bb.ops.begin(), recv);
    MachineConfig config = MachineConfig::forCores(2);
    config.watchdogCycles = 2000;
    Machine machine(mp, config);
    try {
        machine.run();
        FAIL() << "expected a deadlock fatal";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("deadlock"),
                  std::string::npos);
    }
}

TEST(MachineTest, StallCategoryNamesAreStable)
{
    EXPECT_STREQ(stall_cat_name(StallCat::IFetch), "ifetch");
    EXPECT_STREQ(stall_cat_name(StallCat::DCache), "dcache");
    EXPECT_STREQ(stall_cat_name(StallCat::RecvPred), "recvPred");
    EXPECT_STREQ(stall_cat_name(StallCat::JoinSync), "joinSync");
    EXPECT_STREQ(stall_cat_name(StallCat::TmResolve), "tmResolve");
}

TEST(MachineTest, ExecModeNames)
{
    EXPECT_STREQ(exec_mode_name(ExecMode::Serial), "serial");
    EXPECT_STREQ(exec_mode_name(ExecMode::Coupled), "coupled");
    EXPECT_STREQ(exec_mode_name(ExecMode::Strands), "strands");
    EXPECT_STREQ(exec_mode_name(ExecMode::Dswp), "dswp");
    EXPECT_STREQ(exec_mode_name(ExecMode::Doall), "doall");
    EXPECT_TRUE(is_decoupled(ExecMode::Doall));
    EXPECT_FALSE(is_decoupled(ExecMode::Coupled));
}

TEST(MachineTest, RegionCyclesAttributedToRegions)
{
    Program prog = loop_program(256);
    GoldenRun golden = run_golden(prog);
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 2;
    MachineProgram mp = compile_program(prog, golden.profile, opts);
    Machine machine(mp, MachineConfig::forCores(2));
    MachineResult result = machine.run();
    u64 total = 0;
    for (const auto &[region, cycles] : result.regionCycles) {
        EXPECT_LT(region, mp.regions.size());
        total += cycles;
    }
    EXPECT_GT(total, 0u);
    EXPECT_LE(total, result.cycles);
}

TEST(MachineTest, DeterministicAcrossRuns)
{
    Program prog = loop_program(128);
    MachineProgram mp = compile_for(prog, Strategy::Hybrid, 4);
    Machine a(mp, MachineConfig::forCores(4));
    Machine c(mp, MachineConfig::forCores(4));
    MachineResult ra = a.run();
    MachineResult rc = c.run();
    EXPECT_EQ(ra.cycles, rc.cycles);
    EXPECT_EQ(ra.exitValue, rc.exitValue);
    EXPECT_EQ(ra.dynamicOps, rc.dynamicOps);
}

} // namespace
} // namespace voltron
