/**
 * @file
 * The server stack, bottom-up: JSON parse/emit round-trips, request
 * parsing and content-hash identity, the work-stealing executor, and
 * the whole protocol brain via Server::handleLine — dedup levels
 * (cold / cached / follower), evict-then-miss, stats — plus one real
 * socket loopback through Client.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/artifact_cache.hh"
#include "ir/serialize.hh"
#include "server/client.hh"
#include "server/json.hh"
#include "server/protocol.hh"
#include "server/server.hh"
#include "support/serialize.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

using namespace voltron;

namespace {

/** Fresh cache dir per test; restores the env on destruction. */
class ScopedCacheDir
{
  public:
    ScopedCacheDir()
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("vserver-test-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter_++));
        std::filesystem::create_directories(dir_);
        ::setenv("VOLTRON_CACHE_DIR", dir_.c_str(), 1);
        ArtifactCache::instance().setDiskDir(dir_.string());
        ArtifactCache::instance().clearMemory();
        ArtifactCache::instance().resetStats();
    }

    ~ScopedCacheDir()
    {
        ArtifactCache::instance().setDiskDir(std::nullopt);
        ArtifactCache::instance().setDiskBudget(std::nullopt);
        ::unsetenv("VOLTRON_CACHE_DIR");
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    const std::filesystem::path &path() const { return dir_; }

  private:
    static inline int counter_ = 0;
    std::filesystem::path dir_;
};

} // namespace

// --- JSON -----------------------------------------------------------------

TEST(ServerJson, ParsesScalarsObjectsAndArrays)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(
        R"({"a":1,"b":-2.5,"c":"x\ny","d":[true,false,null],"e":{"f":18446744073709551615}})",
        v, &err))
        << err;
    EXPECT_EQ(v.u64At("a"), 1u);
    EXPECT_DOUBLE_EQ(v.find("b")->asF64(), -2.5);
    EXPECT_EQ(v.str("c"), "x\ny");
    ASSERT_TRUE(v.find("d")->isArray());
    EXPECT_EQ(v.find("d")->items().size(), 3u);
    EXPECT_TRUE(v.find("d")->items()[0].boolean());
    // u64 keys survive without a double mantissa truncating them.
    EXPECT_EQ(v.find("e")->u64At("f"), 0xffffffffffffffffULL);
}

TEST(ServerJson, RejectsMalformedInput)
{
    JsonValue v;
    EXPECT_FALSE(JsonValue::parse("", v));
    EXPECT_FALSE(JsonValue::parse("{", v));
    EXPECT_FALSE(JsonValue::parse("{\"a\":}", v));
    EXPECT_FALSE(JsonValue::parse("[1,]", v));
    EXPECT_FALSE(JsonValue::parse("{} trailing", v));
    EXPECT_FALSE(JsonValue::parse("\"unterminated", v));
}

TEST(ServerJson, WriterRoundTripsThroughParser)
{
    JsonWriter w;
    w.beginObject();
    w.field("s", std::string("quote\"back\\slash"));
    w.field("n", u64{1234567890123456789ULL});
    w.field("f", 2.5);
    w.field("b", true);
    w.key("arr");
    w.beginArray();
    w.value(1).value(2).value(3);
    w.endArray();
    w.key("nested");
    w.beginObject();
    w.field("x", 7);
    w.endObject();
    w.endObject();

    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(w.str(), v, &err)) << w.str() << " " << err;
    EXPECT_EQ(v.str("s"), "quote\"back\\slash");
    EXPECT_EQ(v.u64At("n"), 1234567890123456789ULL);
    EXPECT_TRUE(v.boolAt("b"));
    EXPECT_EQ(v.find("arr")->items().size(), 3u);
    EXPECT_EQ(v.find("nested")->u64At("x"), 7u);
}

// --- Protocol -------------------------------------------------------------

TEST(ServerProtocol, HexRoundTrips)
{
    const std::vector<u8> bytes = {0x00, 0x0f, 0xf0, 0xab, 0xff};
    const std::string hex = hex_encode(bytes);
    EXPECT_EQ(hex, "000ff0abff");
    std::vector<u8> back;
    ASSERT_TRUE(hex_decode(hex, back));
    EXPECT_EQ(back, bytes);
    EXPECT_FALSE(hex_decode("abc", back));  // odd length
    EXPECT_FALSE(hex_decode("zz", back));   // bad digit
}

TEST(ServerProtocol, ParsesRunRequestWithOptions)
{
    ServerRequest req;
    std::string err;
    ASSERT_TRUE(ServerRequest::parse(
        R"({"op":"run","id":"r1","benchmark":"djpeg","targetOps":50000,)"
        R"("options":{"strategy":"llp","cores":16,"meshRows":4,"meshCols":4,)"
        R"("minDoallTrip":2.0,"minOpsPerActivation":10},"trace":true})",
        req, &err))
        << err;
    EXPECT_EQ(req.op, "run");
    EXPECT_EQ(req.id, "r1");
    EXPECT_EQ(req.source, ProgramSource::Benchmark);
    EXPECT_EQ(req.benchmark, "djpeg");
    EXPECT_EQ(req.targetOps, 50000u);
    EXPECT_EQ(req.options.strategy, Strategy::LlpOnly);
    EXPECT_EQ(req.options.numCores, 16);
    EXPECT_EQ(req.options.meshRows, 4);
    EXPECT_EQ(req.options.meshCols, 4);
    EXPECT_DOUBLE_EQ(req.options.minDoallTrip, 2.0);
    EXPECT_EQ(req.options.minOpsPerActivation, 10u);
    EXPECT_TRUE(req.trace);
    EXPECT_FALSE(req.metrics);
}

TEST(ServerProtocol, RejectsBadRequests)
{
    ServerRequest req;
    std::string err;
    EXPECT_FALSE(ServerRequest::parse("not json", req, &err));
    EXPECT_FALSE(ServerRequest::parse(R"({"op":"frobnicate"})", req, &err));
    // run with no source, with two sources, with a bad strategy, with a
    // mesh that does not cover the cores.
    EXPECT_FALSE(ServerRequest::parse(R"({"op":"run"})", req, &err));
    EXPECT_FALSE(ServerRequest::parse(
        R"({"op":"run","benchmark":"djpeg","seed":1})", req, &err));
    EXPECT_FALSE(ServerRequest::parse(
        R"({"op":"run","seed":1,"options":{"strategy":"warp"}})", req,
        &err));
    EXPECT_FALSE(ServerRequest::parse(
        R"({"op":"run","seed":1,"options":{"cores":8,"meshRows":3,"meshCols":2}})",
        req, &err));
    EXPECT_FALSE(ServerRequest::parse(
        R"({"op":"run","program":"abc"})", req, &err)); // odd hex
}

TEST(ServerProtocol, ContentHashSeparatesProgramOptionsAndTrace)
{
    auto parse = [](const std::string &line) {
        ServerRequest req;
        std::string err;
        EXPECT_TRUE(ServerRequest::parse(line, req, &err)) << err;
        return req;
    };
    const ServerRequest a =
        parse(R"({"op":"run","seed":7,"options":{"cores":4}})");
    const ServerRequest same =
        parse(R"({"op":"run","id":"other","seed":7,"options":{"cores":4}})");
    const ServerRequest cores =
        parse(R"({"op":"run","seed":7,"options":{"cores":8}})");
    const ServerRequest seed =
        parse(R"({"op":"run","seed":8,"options":{"cores":4}})");
    const ServerRequest traced =
        parse(R"({"op":"run","seed":7,"options":{"cores":4},"trace":true})");

    // The id is a correlation tag, not identity.
    EXPECT_EQ(a.contentHash(), same.contentHash());
    EXPECT_NE(a.contentHash(), cores.contentHash());
    EXPECT_NE(a.contentHash(), seed.contentHash());
    EXPECT_NE(a.contentHash(), traced.contentHash());
    // Options do not change which program it is.
    EXPECT_EQ(a.programIdentityHash(), cores.programIdentityHash());
    EXPECT_NE(a.programIdentityHash(), seed.programIdentityHash());
}

TEST(ServerProtocol, HexProgramIdentityMatchesContentHash)
{
    const Program prog = build_benchmark("djpeg");
    ByteWriter w;
    serialize(w, prog);
    const std::string hex = hex_encode(w.bytes());

    ServerRequest req;
    std::string err;
    ASSERT_TRUE(ServerRequest::parse(
        R"({"op":"run","program":")" + hex + R"("})", req, &err))
        << err;
    EXPECT_EQ(req.source, ProgramSource::ProgramHex);
    // Two hex submissions of the same program dedup to one identity.
    ServerRequest again;
    ASSERT_TRUE(ServerRequest::parse(
        R"({"op":"run","id":"x","program":")" + hex + R"("})", again,
        &err));
    EXPECT_EQ(req.programIdentityHash(), again.programIdentityHash());
}

// --- Executor -------------------------------------------------------------

TEST(ServerExecutor, RunsEverySubmittedTask)
{
    Executor pool(4);
    std::atomic<u64> sum{0};
    for (u64 i = 1; i <= 200; ++i)
        pool.submit([&sum, i] { sum.fetch_add(i); });
    pool.stop();
    EXPECT_EQ(sum.load(), 200u * 201u / 2);
    const ExecutorStats stats = pool.stats();
    EXPECT_EQ(stats.submitted, 200u);
    EXPECT_EQ(stats.executed, 200u);
}

TEST(ServerExecutor, SubmitAfterStopRunsInline)
{
    Executor pool(2);
    pool.stop();
    bool ran = false;
    pool.submit([&] { ran = true; });
    EXPECT_TRUE(ran);
    EXPECT_EQ(pool.stats().inline_, 1u);
}

TEST(ServerExecutor, ParallelSubmittersDontLoseWork)
{
    Executor pool(3);
    std::atomic<u64> count{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t)
        producers.emplace_back([&] {
            for (int i = 0; i < 50; ++i)
                pool.submit([&count] { count.fetch_add(1); });
        });
    for (std::thread &t : producers)
        t.join();
    pool.stop();
    EXPECT_EQ(count.load(), 200u);
}

// --- Server (socket-free, via handleLine) ---------------------------------

namespace {

JsonValue
handle(Server &server, const std::string &line)
{
    const std::string response = server.handleLine(line);
    JsonValue v;
    std::string err;
    EXPECT_TRUE(JsonValue::parse(response, v, &err))
        << response << " " << err;
    return v;
}

/** A small-but-real run request (tiny benchmark scale keeps it fast). */
std::string
run_line(const std::string &id, u64 seed, int cores)
{
    JsonWriter w;
    w.beginObject();
    w.field("op", "run");
    w.field("id", id);
    w.field("seed", seed);
    w.key("options");
    w.beginObject();
    w.field("cores", cores);
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace

TEST(ServerBrain, ColdThenCachedThenEvictThenCold)
{
    ScopedCacheDir cache;
    Server server(ServerConfig{});

    JsonValue cold = handle(server, run_line("c1", 11, 4));
    ASSERT_EQ(cold.str("status"), "ok");
    EXPECT_EQ(cold.str("source"), "cold");
    const JsonValue *result = cold.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->boolAt("correct"));
    const u64 cycles = result->u64At("cycles");
    EXPECT_GT(cycles, 0u);

    JsonValue warm = handle(server, run_line("c2", 11, 4));
    EXPECT_EQ(warm.str("source"), "cached");
    EXPECT_EQ(warm.find("result")->u64At("cycles"), cycles);

    JsonValue evict = handle(server, R"({"op":"evict","maxBytes":0})");
    ASSERT_EQ(evict.str("status"), "ok");
    EXPECT_GT(evict.find("result")->u64At("evictedEntries"), 0u);

    JsonValue cold2 = handle(server, run_line("c3", 11, 4));
    EXPECT_EQ(cold2.str("source"), "cold");
    EXPECT_EQ(cold2.find("result")->u64At("cycles"), cycles);

    const ServerCounters counters = server.counters();
    EXPECT_EQ(counters.runs, 2u);
    EXPECT_EQ(counters.responseHits, 1u);
    EXPECT_EQ(counters.errors, 0u);
}

TEST(ServerBrain, ConcurrentIdenticalRequestsCoalesceOntoOneLeader)
{
    ScopedCacheDir cache;
    ServerConfig config;
    config.workers = 2;
    Server server(config);

    constexpr int kClients = 6;
    std::vector<std::string> responses(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            responses[i] = server.handleLine(
                run_line("t" + std::to_string(i), 77, 4));
        });
    for (std::thread &t : clients)
        t.join();

    u64 cycles = 0;
    for (const std::string &response : responses) {
        JsonValue v;
        ASSERT_TRUE(JsonValue::parse(response, v)) << response;
        ASSERT_EQ(v.str("status"), "ok") << response;
        const u64 c = v.find("result")->u64At("cycles");
        if (cycles == 0)
            cycles = c;
        EXPECT_EQ(c, cycles);
    }
    // However the threads interleaved, the simulation ran exactly once
    // per *distinct* content hash: every non-leader either coalesced
    // in-flight or hit the response cache.
    const ServerCounters counters = server.counters();
    EXPECT_EQ(counters.runs, 1u);
    EXPECT_EQ(counters.followerHits + counters.responseHits,
              static_cast<u64>(kClients - 1));
    EXPECT_EQ(counters.errors, 0u);
}

TEST(ServerBrain, ErrorsAreReportedNotCached)
{
    ScopedCacheDir cache;
    Server server(ServerConfig{});

    JsonValue bad = handle(server, R"({"op":"run","id":"e1",)"
                                   R"("benchmark":"no-such-benchmark"})");
    EXPECT_EQ(bad.str("status"), "error");
    EXPECT_NE(bad.str("error"), "");

    JsonValue malformed = handle(server, "{{{{");
    EXPECT_EQ(malformed.str("status"), "error");

    EXPECT_EQ(server.counters().errors, 2u);
}

TEST(ServerBrain, StatsExposeServerAndCacheNamespaces)
{
    ScopedCacheDir cache;
    Server server(ServerConfig{});
    handle(server, run_line("s1", 5, 2));
    handle(server, run_line("s2", 5, 2));

    JsonValue stats = handle(server, R"({"op":"stats"})");
    ASSERT_EQ(stats.str("status"), "ok");
    const JsonValue *result = stats.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->u64At("server.requests"), 3u);
    EXPECT_EQ(result->u64At("server.runs"), 1u);
    EXPECT_EQ(result->u64At("server.responseHits"), 1u);
    // "submitted" is bumped synchronously at submit time; "executed"
    // lands after the worker's post-task bookkeeping and may lag.
    EXPECT_GE(result->u64At("server.executor.submitted"), 1u);
    // The cache.* namespace rides along (satellite: collect_cache_metrics).
    EXPECT_GT(result->u64At("cache.stores"), 0u);
    EXPECT_EQ(result->u64At("cache.disk.enabled"), 1u);
}

TEST(ServerBrain, TraceRequestWritesAReadableHandle)
{
    ScopedCacheDir cache;
    ServerConfig config;
    config.traceDir = (cache.path() / "traces").string();
    Server server(config);

    JsonValue v = handle(
        server,
        R"({"op":"run","id":"tr","seed":3,"options":{"cores":4},"trace":true})");
    ASSERT_EQ(v.str("status"), "ok");
    const std::string path = v.find("result")->str("trace");
    ASSERT_NE(path, "");
    TraceHeader header;
    std::vector<TraceEvent> events;
    ASSERT_TRUE(read_trace(path, header, events));
    EXPECT_EQ(header.numCores, 4);
    EXPECT_GT(events.size(), 0u);
}

// --- Telemetry ------------------------------------------------------------

namespace {

/** run_line plus the per-request timeline flag. */
std::string
timed_run_line(const std::string &id, u64 seed, int cores)
{
    JsonWriter w;
    w.beginObject();
    w.field("op", "run");
    w.field("id", id);
    w.field("seed", seed);
    w.field("timing", true);
    w.key("options");
    w.beginObject();
    w.field("cores", cores);
    w.endObject();
    w.endObject();
    return w.str();
}

/**
 * The tiling property marks-as-transitions guarantees by construction:
 * the first span starts at 0, each span ends exactly where the next
 * begins, and the last span ends exactly at totalUs. No gaps, no
 * overlaps, no unaccounted wall time.
 */
void
expect_spans_tile(const JsonValue &timing)
{
    const JsonValue *spans = timing.find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_TRUE(spans->isArray());
    const std::vector<JsonValue> &items = spans->items();
    ASSERT_FALSE(items.empty());
    EXPECT_EQ(items.front().u64At("startUs"), 0u);
    for (size_t i = 0; i + 1 < items.size(); ++i)
        EXPECT_EQ(items[i].u64At("endUs"), items[i + 1].u64At("startUs"))
            << "gap/overlap between span " << i << " and " << i + 1;
    EXPECT_EQ(items.back().u64At("endUs"), timing.u64At("totalUs"));
}

bool
spans_contain(const JsonValue &timing, const std::string &phase)
{
    const JsonValue *spans = timing.find("spans");
    if (!spans || !spans->isArray())
        return false;
    for (const JsonValue &span : spans->items())
        if (span.str("phase") == phase)
            return true;
    return false;
}

} // namespace

TEST(ServerTiming, ColdRunSpansTileTotalWallTime)
{
    ScopedCacheDir cache;
    Server server(ServerConfig{});

    JsonValue v = handle(server, timed_run_line("t1", 21, 4));
    ASSERT_EQ(v.str("status"), "ok");
    EXPECT_EQ(v.str("source"), "cold");
    const JsonValue *timing = v.find("timing");
    ASSERT_NE(timing, nullptr);
    ASSERT_TRUE(timing->isObject());
    EXPECT_GT(timing->u64At("requestId"), 0u);
    EXPECT_EQ(timing->str("op"), "run");
    expect_spans_tile(*timing);
    // A cold run walks the whole service pipeline.
    EXPECT_TRUE(spans_contain(*timing, "queueWait"));
    EXPECT_TRUE(spans_contain(*timing, "goldenRun"));
    EXPECT_TRUE(spans_contain(*timing, "compile"));
    EXPECT_TRUE(spans_contain(*timing, "simulate"));
    EXPECT_TRUE(spans_contain(*timing, "serialize"));
}

TEST(ServerTiming, TimingFlagNeitherChangesIdentityNorLeaksUnrequested)
{
    ScopedCacheDir cache;
    Server server(ServerConfig{});

    // No flag: no timing object on the wire.
    JsonValue cold = handle(server, run_line("p1", 33, 4));
    ASSERT_EQ(cold.str("status"), "ok");
    EXPECT_EQ(cold.find("timing"), nullptr);

    // The flag is excluded from the content hash, so a timed replay of
    // the same work dedups against the untimed original — and its
    // timeline describes the cached path (no simulation re-ran).
    JsonValue warm = handle(server, timed_run_line("p2", 33, 4));
    EXPECT_EQ(warm.str("source"), "cached");
    const JsonValue *timing = warm.find("timing");
    ASSERT_NE(timing, nullptr);
    expect_spans_tile(*timing);
    EXPECT_FALSE(spans_contain(*timing, "simulate"));
}

TEST(ServerTiming, StatsExposePhaseHistogramsAndResponseCacheCounters)
{
    ScopedCacheDir cache;
    Server server(ServerConfig{});
    handle(server, timed_run_line("h1", 66, 2));

    JsonValue stats = handle(server, R"({"op":"stats"})");
    ASSERT_EQ(stats.str("status"), "ok");
    const JsonValue *r = stats.find("result");
    ASSERT_NE(r, nullptr);
    EXPECT_GE(r->u64At("server.latency.total.count"), 1u);
    EXPECT_GE(r->u64At("server.phase.compile.count"), 1u);
    EXPECT_GE(r->u64At("server.phase.simulate.count"), 1u);
    EXPECT_NE(r->find("server.phase.simulate.p50"), nullptr);
    EXPECT_NE(r->find("server.phase.simulate.p99"), nullptr);
    EXPECT_EQ(r->u64At("server.response_cache.entries"), 1u);
    EXPECT_EQ(r->u64At("server.response_cache.capacity"),
              ServerConfig{}.maxResponses);
    EXPECT_NE(r->find("server.log.lines"), nullptr);
    EXPECT_GE(r->u64At("server.slowlog.worstEntries"), 1u);
}

TEST(ServerBrain, SlowlogKeepsWorstRequestsAndRecentErrors)
{
    ScopedCacheDir cache;
    Server server(ServerConfig{});
    handle(server, run_line("s1", 44, 2));
    JsonValue bad = handle(server, R"({"op":"run","id":"oops",)"
                                   R"("benchmark":"no-such-benchmark"})");
    EXPECT_EQ(bad.str("status"), "error");

    JsonValue slow = handle(server, R"({"op":"slowlog"})");
    ASSERT_EQ(slow.str("status"), "ok");
    const JsonValue *result = slow.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_GT(result->u64At("worstCapacity"), 0u);

    const JsonValue *worst = result->find("worst");
    ASSERT_NE(worst, nullptr);
    ASSERT_TRUE(worst->isArray());
    ASSERT_FALSE(worst->items().empty());
    bool sawRun = false;
    for (const JsonValue &entry : worst->items())
        if (entry.str("op") == "run" && entry.u64At("totalUs") > 0)
            sawRun = true;
    EXPECT_TRUE(sawRun);

    const JsonValue *errors = result->find("errors");
    ASSERT_NE(errors, nullptr);
    ASSERT_TRUE(errors->isArray());
    ASSERT_FALSE(errors->items().empty());
    EXPECT_NE(errors->items()[0].str("error"), "");
}

TEST(ServerBrain, ResponseCacheEvictsLruAndReDerivesEvictedKeys)
{
    ScopedCacheDir cache;
    ServerConfig config;
    config.maxResponses = 2;
    Server server(config);

    JsonValue a = handle(server, run_line("a", 1, 2));
    ASSERT_EQ(a.str("status"), "ok");
    const u64 cyclesA = a.find("result")->u64At("cycles");
    handle(server, run_line("b", 2, 2));
    handle(server, run_line("c", 3, 2)); // capacity 2: evicts "a"

    JsonValue stats = handle(server, R"({"op":"stats"})");
    const JsonValue *r = stats.find("result");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->u64At("server.response_cache.entries"), 2u);
    EXPECT_EQ(r->u64At("server.response_cache.capacity"), 2u);
    EXPECT_GE(r->u64At("server.response_cache.evictions"), 1u);

    // The evicted key re-derives cold — and deterministically: the
    // re-derived response carries the same cycle count.
    JsonValue again = handle(server, run_line("a2", 1, 2));
    EXPECT_EQ(again.str("source"), "cold");
    EXPECT_EQ(again.find("result")->u64At("cycles"), cyclesA);
    // The most-recent key survived both evictions and still hits.
    EXPECT_EQ(handle(server, run_line("c2", 3, 2)).str("source"),
              "cached");
}

TEST(ServerBrain, WatchReturnsOneSnapshotAndStreamsWithASink)
{
    ScopedCacheDir cache;
    ServerConfig config;
    config.statsIntervalMs = 0; // no background snapshotter: self-sample
    Server server(config);
    handle(server, run_line("w1", 55, 2));

    // Without a sink there is nowhere to stream, so any count degrades
    // to one immediate snapshot.
    JsonValue one = handle(server, R"({"op":"watch","count":5})");
    ASSERT_EQ(one.str("status"), "ok");
    const JsonValue *result = one.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_GE(result->u64At("seq"), 1u);
    ASSERT_NE(result->find("deltas"), nullptr);
    const JsonValue *totals = result->find("totals");
    ASSERT_NE(totals, nullptr);
    ASSERT_TRUE(totals->isObject());
    EXPECT_GE(totals->u64At("server.requests"), 1u);

    // With a sink: count-1 streamed lines plus the returned final one,
    // each a complete response, sequence strictly increasing.
    std::vector<std::string> streamed;
    const std::string last = server.handleLine(
        R"({"op":"watch","count":3})", [&](const std::string &line) {
            streamed.push_back(line);
            return true;
        });
    ASSERT_EQ(streamed.size(), 2u);
    u64 prevSeq = 0;
    for (const std::string &line : streamed) {
        JsonValue v;
        ASSERT_TRUE(JsonValue::parse(line, v)) << line;
        ASSERT_EQ(v.str("status"), "ok");
        const u64 seq = v.find("result")->u64At("seq");
        EXPECT_GT(seq, prevSeq);
        prevSeq = seq;
    }
    JsonValue fin;
    ASSERT_TRUE(JsonValue::parse(last, fin));
    ASSERT_EQ(fin.str("status"), "ok");
    EXPECT_GT(fin.find("result")->u64At("seq"), prevSeq);
}

// --- Socket loopback ------------------------------------------------------

TEST(ServerSocket, ClientRoundTripsOverAUnixSocket)
{
    ScopedCacheDir cache;
    ServerConfig config;
    config.socketPath =
        (cache.path() / "loopback.sock").string();
    config.workers = 2;
    Server server(config);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &err)) << err;
    std::string response;
    ASSERT_TRUE(client.request(R"({"op":"ping"})", response, &err)) << err;
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse(response, v));
    EXPECT_EQ(v.str("status"), "ok");

    ASSERT_TRUE(client.request(run_line("sock1", 9, 4), response, &err));
    ASSERT_TRUE(JsonValue::parse(response, v));
    ASSERT_EQ(v.str("status"), "ok");
    EXPECT_EQ(v.str("source"), "cold");

    // Second connection sees the warm response cache.
    Client second;
    ASSERT_TRUE(second.connect(config.socketPath, &err)) << err;
    ASSERT_TRUE(second.request(run_line("sock2", 9, 4), response, &err));
    ASSERT_TRUE(JsonValue::parse(response, v));
    EXPECT_EQ(v.str("source"), "cached");

    ASSERT_TRUE(client.request(R"({"op":"shutdown"})", response, &err));
    server.stop();
    EXPECT_FALSE(std::filesystem::exists(config.socketPath));
}
