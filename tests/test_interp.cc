/** @file Unit tests for the reference interpreter and its profiler. */

#include <gtest/gtest.h>

#include "interp/interp.hh"
#include "interp/semantics.hh"
#include "ir/builder.hh"

namespace voltron {
namespace {

// --- Scalar semantics (shared with the simulator) -----------------------

struct IntCase
{
    Opcode op;
    i64 a, b, expect;
};

class IntSemantics : public ::testing::TestWithParam<IntCase>
{
};

TEST_P(IntSemantics, Evaluates)
{
    const IntCase &c = GetParam();
    EXPECT_EQ(static_cast<i64>(eval_int(c.op, static_cast<u64>(c.a),
                                        static_cast<u64>(c.b))),
              c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, IntSemantics,
    ::testing::Values(
        IntCase{Opcode::ADD, 3, 4, 7},
        IntCase{Opcode::ADD, -3, 1, -2},
        IntCase{Opcode::SUB, 3, 4, -1},
        IntCase{Opcode::MUL, -3, 4, -12},
        IntCase{Opcode::DIV, 7, 2, 3},
        IntCase{Opcode::DIV, -7, 2, -3},
        IntCase{Opcode::REM, 7, 3, 1},
        IntCase{Opcode::REM, -7, 3, -1},
        IntCase{Opcode::AND, 0b1100, 0b1010, 0b1000},
        IntCase{Opcode::OR, 0b1100, 0b1010, 0b1110},
        IntCase{Opcode::XOR, 0b1100, 0b1010, 0b0110},
        IntCase{Opcode::SHL, 3, 4, 48},
        IntCase{Opcode::SHR, -1, 60, 15},
        IntCase{Opcode::SRA, -16, 2, -4},
        IntCase{Opcode::MIN, -5, 3, -5},
        IntCase{Opcode::MAX, -5, 3, 3},
        IntCase{Opcode::MOV, 42, 0, 42}));

TEST(Semantics, DivisionByZeroIsFatal)
{
    EXPECT_THROW(eval_int(Opcode::DIV, 1, 0), FatalError);
    EXPECT_THROW(eval_int(Opcode::REM, 1, 0), FatalError);
}

struct CmpCase
{
    CmpCond cond;
    i64 a, b;
    bool expect;
};

class CmpSemantics : public ::testing::TestWithParam<CmpCase>
{
};

TEST_P(CmpSemantics, Evaluates)
{
    const CmpCase &c = GetParam();
    EXPECT_EQ(eval_cmp(c.cond, static_cast<u64>(c.a), static_cast<u64>(c.b)),
              c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllConds, CmpSemantics,
    ::testing::Values(
        CmpCase{CmpCond::EQ, 3, 3, true}, CmpCase{CmpCond::EQ, 3, 4, false},
        CmpCase{CmpCond::NE, 3, 4, true},
        CmpCase{CmpCond::LT, -1, 0, true},
        CmpCase{CmpCond::LE, 0, 0, true},
        CmpCase{CmpCond::GT, 1, -1, true},
        CmpCase{CmpCond::GE, -2, -1, false},
        CmpCase{CmpCond::ULT, -1, 0, false}, // unsigned: -1 is huge
        CmpCase{CmpCond::ULE, 0, 0, true},
        CmpCase{CmpCond::UGT, -1, 1, true},
        CmpCase{CmpCond::UGE, 1, 2, false}));

TEST(Semantics, FpOps)
{
    auto bits = [](double d) { return std::bit_cast<u64>(d); };
    EXPECT_EQ(eval_fp(Opcode::FADD, bits(1.5), bits(2.25)), bits(3.75));
    EXPECT_EQ(eval_fp(Opcode::FSUB, bits(1.5), bits(2.0)), bits(-0.5));
    EXPECT_EQ(eval_fp(Opcode::FMUL, bits(1.5), bits(2.0)), bits(3.0));
    EXPECT_EQ(eval_fp(Opcode::FDIV, bits(3.0), bits(2.0)), bits(1.5));
    EXPECT_TRUE(eval_fcmp(CmpCond::LT, bits(1.0), bits(2.0)));
    EXPECT_FALSE(eval_fcmp(CmpCond::GE, bits(1.0), bits(2.0)));
}

// --- Whole-program interpretation ---------------------------------------

TEST(Interp, ArithmeticAndHalt)
{
    ProgramBuilder b("arith");
    b.beginFunction("main");
    RegId x = b.emitImm(6);
    RegId y = b.emitImm(7);
    RegId z = b.newGpr();
    b.emit(ops::mul(z, x, y));
    b.emitHalt(z);
    b.endFunction();
    GoldenRun run = run_golden(b.take());
    EXPECT_EQ(run.result.exitValue, 42u);
}

TEST(Interp, LoopSumsCorrectly)
{
    ProgramBuilder b("sum");
    b.beginFunction("main");
    RegId sum = b.emitImm(0);
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, 100);
    b.emit(ops::add(sum, sum, i));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();
    GoldenRun run = run_golden(b.take());
    EXPECT_EQ(run.result.exitValue, 4950u);
}

TEST(Interp, ZeroTripLoopSkipsBody)
{
    ProgramBuilder b("zero");
    b.beginFunction("main");
    RegId sum = b.emitImm(9);
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 5, 5);
    b.emit(ops::addi(sum, sum, 100));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();
    GoldenRun run = run_golden(b.take());
    EXPECT_EQ(run.result.exitValue, 9u);
}

TEST(Interp, NegativeStepLoop)
{
    ProgramBuilder b("down");
    b.beginFunction("main");
    RegId sum = b.emitImm(0);
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 10, 0, -1);
    b.emit(ops::add(sum, sum, i));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();
    GoldenRun run = run_golden(b.take());
    EXPECT_EQ(run.result.exitValue, 55u); // 10+9+...+1
}

TEST(Interp, MemoryRoundTrip)
{
    ProgramBuilder b("mem");
    Addr arr = b.allocArrayI64("xs", {10, 20, 30});
    u32 sym = b.symbolOf("xs");
    b.beginFunction("main");
    RegId base = b.emitImm(static_cast<i64>(arr));
    RegId v = b.newGpr();
    b.emitLoad(v, base, 8, sym);
    b.emit(ops::addi(v, v, 1));
    b.emitStore(base, 16, v, sym);
    RegId w = b.newGpr();
    b.emitLoad(w, base, 16, sym);
    b.emitHalt(w);
    b.endFunction();
    GoldenRun run = run_golden(b.take());
    EXPECT_EQ(run.result.exitValue, 21u);
    EXPECT_EQ(run.memory->read(arr + 16, 8), 21u);
}

TEST(Interp, SubWordSignExtension)
{
    ProgramBuilder b("subword");
    Addr arr = b.allocData("bytes", 8);
    u32 sym = b.symbolOf("bytes");
    b.beginFunction("main");
    RegId base = b.emitImm(static_cast<i64>(arr));
    RegId v = b.emitImm(-1);
    b.emitStore(base, 0, v, sym, 1);
    RegId sx = b.newGpr();
    b.emitLoad(sx, base, 0, sym, 1, true);
    RegId zx = b.newGpr();
    b.emitLoad(zx, base, 0, sym, 1, false);
    RegId diff = b.newGpr();
    b.emit(ops::sub(diff, zx, sx)); // 255 - (-1) = 256
    b.emitHalt(diff);
    b.endFunction();
    GoldenRun run = run_golden(b.take());
    EXPECT_EQ(run.result.exitValue, 256u);
}

TEST(Interp, FloatingPointProgram)
{
    ProgramBuilder b("fp");
    b.beginFunction("main");
    RegId fa = b.newFpr(), fb = b.newFpr(), fc = b.newFpr();
    b.emit(ops::fmovi(fa, 1.5));
    b.emit(ops::fmovi(fb, 2.5));
    b.emit(ops::falu(Opcode::FMUL, fc, fa, fb));
    RegId out = b.newGpr();
    b.emit(ops::ftoi(out, fc));
    b.emitHalt(out);
    b.endFunction();
    GoldenRun run = run_golden(b.take());
    EXPECT_EQ(run.result.exitValue, 3u); // trunc(3.75)
}

TEST(Interp, CallsNestAndReturnValues)
{
    ProgramBuilder b("calls");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0)); // placeholder main; rebuilt below
    b.endFunction();
    FuncId square = b.beginFunction("square", 1, true);
    b.emit(ops::mul(gpr(0), gpr(1), gpr(1)));
    b.emit(ops::ret());
    b.endFunction();
    FuncId sumsq = b.beginFunction("sumsq", 2, true);
    {
        RegId a = b.newGpr(), c = b.newGpr();
        b.emit(ops::mov(a, gpr(1)));
        b.emit(ops::mov(c, gpr(2)));
        RegId s1 = b.emitCall(square, {a});
        RegId s2 = b.emitCall(square, {c});
        b.emit(ops::add(gpr(0), s1, s2));
        b.emit(ops::ret());
    }
    b.endFunction();
    Program prog = b.take();
    // Rebuild main to call sumsq(3, 4).
    Function &main_fn = prog.function(0);
    main_fn.blocks.clear();
    main_fn.addBlock("entry");
    BasicBlock &bb = main_fn.block(0);
    bb.append(ops::movi(gpr(1), 3));
    bb.append(ops::movi(gpr(2), 4));
    RegId bt = main_fn.freshReg(RegClass::BTR);
    bb.append(ops::pbr(bt, CodeRef::to_function(sumsq)));
    bb.append(ops::call(bt));
    bb.append(ops::halt(gpr(0)));
    GoldenRun run = run_golden(prog);
    EXPECT_EQ(run.result.exitValue, 25u);
}

TEST(Interp, RegisterFramesIsolateCallers)
{
    // Callee clobbers a high register; the caller's copy must survive.
    ProgramBuilder b("frames");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    FuncId clobber = b.beginFunction("clobber", 0, false);
    b.emit(ops::movi(gpr(40), 999));
    b.emit(ops::ret());
    b.endFunction();
    b.beginFunction("caller", 0, true);
    b.emit(ops::movi(gpr(40), 7));
    b.emitCall(clobber, {});
    b.emit(ops::mov(gpr(0), gpr(40)));
    b.emit(ops::ret());
    b.endFunction();
    Program prog = b.take();
    Function &main_fn = prog.function(0);
    main_fn.blocks.clear();
    main_fn.addBlock("entry");
    BasicBlock &bb = main_fn.block(0);
    RegId bt = main_fn.freshReg(RegClass::BTR);
    bb.append(ops::pbr(bt, CodeRef::to_function(prog.findFunction("caller"))));
    bb.append(ops::call(bt));
    bb.append(ops::halt(gpr(0)));
    GoldenRun run = run_golden(prog);
    EXPECT_EQ(run.result.exitValue, 7u);
}

TEST(Interp, RunawayProgramIsFatal)
{
    ProgramBuilder b("forever");
    b.beginFunction("main");
    BlockId spin = b.newBlock("spin");
    b.fallthroughTo(spin);
    b.emitJump(spin);
    b.endFunction();
    Program prog = b.take();
    MemoryImage mem;
    Interpreter interp(prog, mem);
    EXPECT_THROW(interp.run(10'000), FatalError);
}

// --- Profiling -----------------------------------------------------------

TEST(Profile, BlockCountsAndTripCounts)
{
    ProgramBuilder b("prof");
    b.beginFunction("main");
    RegId sum = b.emitImm(0);
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, 25);
    b.emit(ops::add(sum, sum, i));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();
    GoldenRun run = run_golden(b.take());

    EXPECT_EQ(run.profile.blockExecs(0, loop.bodyEntry), 25u);
    EXPECT_EQ(run.profile.blockExecs(0, 0), 1u);
    EXPECT_NEAR(run.profile.avgTripCount(0, loop.header), 25.0, 1.1);
    const LoopProfile *lp = run.profile.loop(0, loop.header);
    ASSERT_NE(lp, nullptr);
    EXPECT_EQ(lp->activations, 1u);
}

TEST(Profile, BranchBias)
{
    ProgramBuilder b("bias");
    b.beginFunction("main");
    RegId i = b.newGpr();
    RegId sum = b.emitImm(0);
    LoopHandles loop = b.forLoop(i, 0, 100);
    {
        RegId bit = b.newGpr();
        b.emit(ops::alui(Opcode::AND, bit, i, 3));
        RegId p = b.newPr();
        b.emit(ops::cmpi(CmpCond::EQ, p, bit, 0));
        IfHandles diamond = b.beginIf(p);
        b.emit(ops::addi(sum, sum, 1));
        b.endIf(diamond);
    }
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();
    Program prog = b.take();
    GoldenRun run = run_golden(prog);
    EXPECT_EQ(run.result.exitValue, 25u);

    // Find the diamond's BR and check its taken rate is ~25%.
    bool checked = false;
    for (const auto &bb : prog.functions[0].blocks) {
        for (const auto &op : bb.ops) {
            if (op.op == Opcode::BR &&
                run.profile.branchExec.count(profile_key(0, op.seqId))) {
                double rate = run.profile.takenRate(0, op.seqId);
                if (run.profile.branchExec.at(profile_key(0, op.seqId)) ==
                    100) {
                    EXPECT_GT(rate, 0.0);
                    checked = true;
                }
            }
        }
    }
    EXPECT_TRUE(checked);
}

TEST(Profile, CrossIterationDependenceDetected)
{
    // a[i+1] = a[i] + 1 carries a dependence; a[i] = i does not.
    ProgramBuilder b("dep");
    Addr arr = b.allocArrayI64("a", std::vector<i64>(64, 0));
    u32 sym = b.symbolOf("a");
    b.beginFunction("main");
    RegId base = b.emitImm(static_cast<i64>(arr));

    RegId i = b.newGpr();
    LoopHandles dep_loop = b.forLoop(i, 0, 32, 1, "dep");
    {
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, i, 3));
        RegId addr = b.newGpr();
        b.emit(ops::add(addr, base, off));
        RegId v = b.newGpr();
        b.emitLoad(v, addr, 0, sym);
        b.emit(ops::addi(v, v, 1));
        b.emitStore(addr, 8, v, sym); // writes a[i+1]
    }
    b.endCountedLoop(dep_loop);

    RegId j = b.newGpr();
    LoopHandles indep_loop = b.forLoop(j, 0, 32, 1, "indep");
    {
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, j, 3));
        RegId addr = b.newGpr();
        b.emit(ops::add(addr, base, off));
        b.emitStore(addr, 0, j, sym);
    }
    b.endCountedLoop(indep_loop);

    b.emitHalt(j);
    b.endFunction();
    GoldenRun run = run_golden(b.take());

    const LoopProfile *dep = run.profile.loop(0, dep_loop.header);
    const LoopProfile *indep = run.profile.loop(0, indep_loop.header);
    ASSERT_NE(dep, nullptr);
    ASSERT_NE(indep, nullptr);
    EXPECT_TRUE(dep->crossIterDep);
    EXPECT_FALSE(indep->crossIterDep);
}

TEST(Profile, MissRatesHighForBigStrides)
{
    // Streaming a large array misses; re-reading one element hits.
    ProgramBuilder b("miss");
    const u64 n = 4096; // 32 KB >> 4 KB L1
    Addr arr = b.allocData("big", n * 8);
    u32 sym = b.symbolOf("big");
    b.beginFunction("main");
    RegId base = b.emitImm(static_cast<i64>(arr));
    RegId i = b.newGpr();
    RegId sum = b.emitImm(0);
    LoopHandles loop = b.forLoop(i, 0, static_cast<i64>(n));
    RegId off = b.newGpr();
    b.emit(ops::alui(Opcode::SHL, off, i, 3));
    RegId addr = b.newGpr();
    b.emit(ops::add(addr, base, off));
    RegId v = b.newGpr();
    Operation load = ops::load(v, addr, 0, 8);
    load.memSym = sym;
    u32 stream_seq;
    {
        b.emit(load);
        // The builder stamped a fresh seqId; recover it from the block.
        const Function &fn = b.program().functions[0];
        stream_seq = fn.block(b.currentBlock()).ops.back().seqId;
    }
    b.emit(ops::add(sum, sum, v));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();
    GoldenRun run = run_golden(b.take());
    const double rate = run.profile.missRate(0, stream_seq);
    // One miss per 8 accesses (64B line / 8B stride).
    EXPECT_NEAR(rate, 0.125, 0.02);
}

} // namespace
} // namespace voltron
