/** @file Unit tests for the workload archetypes and benchmark suite. */

#include <gtest/gtest.h>

#include "core/voltron.hh"
#include "interp/interp.hh"
#include "ir/verifier.hh"
#include "workloads/suite.hh"

namespace voltron {
namespace {

TEST(Suite, HasTwentyFiveBenchmarks)
{
    EXPECT_EQ(benchmark_names().size(), 25u);
    EXPECT_EQ(benchmark_names().front(), "052.alvinn");
    EXPECT_EQ(benchmark_names().back(), "unepic");
}

TEST(Suite, SpecsAreWellFormed)
{
    for (const std::string &name : benchmark_names()) {
        const BenchmarkSpec &spec = benchmark_spec(name);
        EXPECT_EQ(spec.name, name);
        EXPECT_FALSE(spec.phases.empty());
        double total = 0;
        for (const PhaseSpec &phase : spec.phases) {
            EXPECT_GT(phase.fraction, 0.0);
            EXPECT_LE(phase.fraction, 1.0);
            total += phase.fraction;
        }
        EXPECT_LE(total, 1.001);
        EXPECT_GT(total, 0.5);
    }
}

TEST(Suite, UnknownBenchmarkIsFatal)
{
    EXPECT_THROW(benchmark_spec("999.nonesuch"), FatalError);
}

TEST(Suite, ProgramsVerifyAndRun)
{
    SuiteScale scale;
    scale.targetOps = 10'000;
    for (const std::string &name : benchmark_names()) {
        Program prog = build_benchmark(name, scale);
        VerifyResult vr = verify_program(prog);
        EXPECT_TRUE(vr.ok()) << name << ": " << vr.joined();
        GoldenRun run = run_golden(prog);
        EXPECT_GT(run.result.dynamicOps, 1000u) << name;
    }
}

TEST(Suite, DeterministicForFixedSeed)
{
    SuiteScale scale;
    scale.targetOps = 10'000;
    GoldenRun a = run_golden(build_benchmark("cjpeg", scale));
    GoldenRun c = run_golden(build_benchmark("cjpeg", scale));
    EXPECT_EQ(a.result.exitValue, c.result.exitValue);
    EXPECT_EQ(a.result.dynamicOps, c.result.dynamicOps);
}

TEST(Suite, SeedChangesData)
{
    SuiteScale a, c;
    a.targetOps = c.targetOps = 10'000;
    c.seed = a.seed + 1;
    GoldenRun ra = run_golden(build_benchmark("cjpeg", a));
    GoldenRun rc = run_golden(build_benchmark("cjpeg", c));
    EXPECT_NE(ra.result.exitValue, rc.result.exitValue);
}

TEST(Suite, ScaleControlsWork)
{
    SuiteScale small, big;
    small.targetOps = 10'000;
    big.targetOps = 80'000;
    GoldenRun rs = run_golden(build_benchmark("171.swim", small));
    GoldenRun rb = run_golden(build_benchmark("171.swim", big));
    EXPECT_GT(rb.result.dynamicOps, rs.result.dynamicOps * 4);
}

TEST(Archetypes, Names)
{
    EXPECT_STREQ(archetype_name(Archetype::DoallStream), "doall_stream");
    EXPECT_STREQ(archetype_name(Archetype::PointerChase), "pointer_chase");
    EXPECT_STREQ(archetype_name(Archetype::BranchyIlp), "branchy_ilp");
}

/**
 * Signature check: each archetype's profile exhibits the parallelism
 * signature it exists to model (this is what makes the suite a valid
 * Fig. 3 stand-in).
 */
TEST(Archetypes, ProfileSignatures)
{
    Rng rng(77);
    ProgramBuilder b("sig");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    PhaseParams pp;
    pp.trips = 256;
    pp.elems = 512;
    FuncId f_stream = emit_phase(b, Archetype::DoallStream, "s", pp, rng);
    FuncId f_chase = emit_phase(b, Archetype::PointerChase, "c", pp, rng);
    Program prog = b.take();
    Function &main_fn = prog.function(0);
    main_fn.blocks.clear();
    main_fn.addBlock("entry");
    BasicBlock &bb = main_fn.block(0);
    for (FuncId f : {f_stream, f_chase}) {
        bb.append(ops::movi(gpr(1), 1));
        RegId bt = main_fn.freshReg(RegClass::BTR);
        bb.append(ops::pbr(bt, CodeRef::to_function(f)));
        bb.append(ops::call(bt));
    }
    bb.append(ops::halt(gpr(0)));

    GoldenRun run = run_golden(prog);

    // The stream loop shows no cross-iteration dependence; the chase's
    // loop has an unresolvable recurrence (its header loop profile may
    // be dependence-free since it only reads, but its loop-carried
    // register defeats DOALL — checked in test_compiler).
    bool stream_checked = false;
    for (const auto &[key, lp] : run.profile.loops) {
        const FuncId func = static_cast<FuncId>(key >> 32);
        if (func == f_stream && lp.totalIterations > 100) {
            EXPECT_FALSE(lp.crossIterDep);
            stream_checked = true;
        }
    }
    EXPECT_TRUE(stream_checked);
}

TEST(Archetypes, StrandMatchTripCountIsDeterministic)
{
    Rng rng(5);
    ProgramBuilder b("sm");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    PhaseParams pp;
    pp.trips = 128;
    pp.width = 4; // unroll 2
    FuncId f = emit_phase(b, Archetype::StrandMatch, "m", pp, rng);
    Program prog = b.take();
    Function &main_fn = prog.function(0);
    main_fn.blocks.clear();
    main_fn.addBlock("entry");
    BasicBlock &bb = main_fn.block(0);
    bb.append(ops::movi(gpr(1), 0));
    RegId bt = main_fn.freshReg(RegClass::BTR);
    bb.append(ops::pbr(bt, CodeRef::to_function(f)));
    bb.append(ops::call(bt));
    bb.append(ops::halt(gpr(0)));
    GoldenRun run = run_golden(prog);
    // The loop runs ~trips/unroll iterations and terminates.
    EXPECT_GT(run.result.dynamicOps, 500u);
    EXPECT_LT(run.result.dynamicOps, 5000u);
}

TEST(VoltronSystemTest, CompileCacheReturnsSameObject)
{
    SuiteScale scale;
    scale.targetOps = 10'000;
    VoltronSystem sys(build_benchmark("gsmdecode", scale));
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 2;
    const MachineProgram &a = sys.compile(opts);
    const MachineProgram &c = sys.compile(opts);
    EXPECT_EQ(&a, &c);
}

TEST(VoltronSystemTest, SpeedupUsesSerialBaseline)
{
    SuiteScale scale;
    scale.targetOps = 10'000;
    VoltronSystem sys(build_benchmark("171.swim", scale));
    RunOutcome outcome = sys.run(Strategy::SerialOnly, 1);
    EXPECT_NEAR(sys.speedup(outcome), 1.0, 1e-9);
}

TEST(VoltronSystemTest, MemoryMismatchDetected)
{
    SuiteScale scale;
    scale.targetOps = 10'000;
    VoltronSystem sys(build_benchmark("gsmencode", scale));
    // A scribbled memory image must not match the golden data segment.
    MemoryImage scribbled;
    scribbled.loadProgram(sys.program());
    scribbled.write(sys.program().data.front().base, 0xDEAD, 8);
    EXPECT_FALSE(sys.memoryMatchesGolden(scribbled));
}

} // namespace
} // namespace voltron
