/** @file Equivalence tests for the idle-cycle fast-forward: every
 * MachineResult field must be bit-identical with the event-driven fast
 * path enabled vs. naive cycle-by-cycle stepping, across the workload
 * suite and core counts. A divergence means a wake-up source is missing
 * or batch attribution drifted from the per-cycle stepper. */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "core/voltron.hh"
#include "ir/builder.hh"
#include "workloads/suite.hh"

namespace voltron {
namespace {

/** Small scale keeps the full (suite x strategy x cores) sweep fast. */
SuiteScale
test_scale()
{
    SuiteScale scale;
    scale.targetOps = 20'000;
    return scale;
}

void
expect_identical(const MachineResult &ff, const MachineResult &naive,
                 const std::string &what)
{
    EXPECT_EQ(ff.exitValue, naive.exitValue) << what;
    EXPECT_EQ(ff.cycles, naive.cycles) << what;
    EXPECT_EQ(ff.dynamicOps, naive.dynamicOps) << what;
    EXPECT_EQ(ff.coupledCycles, naive.coupledCycles) << what;
    EXPECT_EQ(ff.decoupledCycles, naive.decoupledCycles) << what;
    EXPECT_EQ(ff.regionCycles, naive.regionCycles) << what;
    ASSERT_EQ(ff.issued.size(), naive.issued.size()) << what;
    for (CoreId c = 0; c < ff.issued.size(); ++c) {
        EXPECT_EQ(ff.issued[c], naive.issued[c]) << what << " core " << c;
        EXPECT_EQ(ff.idleCycles[c], naive.idleCycles[c])
            << what << " core " << c;
        for (size_t cat = 0;
             cat < static_cast<size_t>(StallCat::NumCats); ++cat) {
            EXPECT_EQ(ff.stalls[c][cat], naive.stalls[c][cat])
                << what << " core " << c << " stall "
                << stall_cat_name(static_cast<StallCat>(cat));
        }
    }
}

/** Run @p mp both ways on @p cores cores and compare everything. */
void
check_equivalence(const MachineProgram &mp, u16 cores,
                  const std::string &what)
{
    MachineConfig ff_config = MachineConfig::forCores(cores);
    Machine ff_machine(mp, ff_config);
    MachineResult ff = ff_machine.run();

    MachineConfig naive_config = MachineConfig::forCores(cores);
    naive_config.forceNaiveStepping = true;
    Machine naive_machine(mp, naive_config);
    MachineResult naive = naive_machine.run();

    expect_identical(ff, naive, what);
}

struct SweepPoint
{
    std::string bench;
    Strategy strategy;
    u16 cores;
};

std::string
point_name(const SweepPoint &p)
{
    return p.bench + "/" + std::to_string(static_cast<int>(p.strategy)) +
           "c" + std::to_string(p.cores);
}

class FastForwardSuite : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(FastForwardSuite, ResultsMatchNaiveStepping)
{
    const SweepPoint &p = GetParam();
    VoltronSystem sys(build_benchmark(p.bench, test_scale()));
    CompileOptions opts;
    opts.strategy = p.strategy;
    opts.numCores = p.cores;
    const MachineProgram &mp = sys.compile(opts);
    check_equivalence(mp, p.cores, point_name(p));
}

std::vector<SweepPoint>
sweep_points()
{
    std::vector<SweepPoint> points;
    for (const std::string &name : benchmark_names()) {
        points.push_back({name, Strategy::SerialOnly, 1});
        for (u16 cores : {static_cast<u16>(2), static_cast<u16>(4)}) {
            points.push_back({name, Strategy::IlpOnly, cores});
            points.push_back({name, Strategy::TlpOnly, cores});
            points.push_back({name, Strategy::LlpOnly, cores});
            points.push_back({name, Strategy::Hybrid, cores});
        }
    }
    return points;
}

INSTANTIATE_TEST_SUITE_P(Suite, FastForwardSuite,
                         ::testing::ValuesIn(sweep_points()),
                         [](const auto &info) {
                             std::string name = point_name(info.param);
                             for (char &ch : name)
                                 if (ch == '.' || ch == '/' || ch == '-')
                                     ch = '_';
                             return name;
                         });

/** The deadlock watchdog must fire either way — the fast-forward is
 * capped at the watchdog trip cycle, so a wait with no pending event
 * still produces the same fatal instead of spinning to maxCycles. */
TEST(FastForwardTest, WatchdogFiresUnderFastForward)
{
    // A master that waits forever on a message nobody sends.
    ProgramBuilder b("wedge");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(7));
    b.endFunction();
    Program prog = b.take();
    GoldenRun golden = run_golden(prog);
    CompileOptions opts;
    opts.strategy = Strategy::SerialOnly;
    opts.numCores = 2;
    MachineProgram mp = compile_program(prog, golden.profile, opts);
    BasicBlock &bb = mp.perCore[0].functions[0].blocks[0];
    bb.ops.insert(bb.ops.begin(), ops::recv(1, gpr(30)));

    for (bool naive : {false, true}) {
        MachineConfig config = MachineConfig::forCores(2);
        config.watchdogCycles = 2000;
        config.forceNaiveStepping = naive;
        Machine machine(mp, config);
        try {
            machine.run();
            FAIL() << "expected a deadlock fatal (naive=" << naive << ")";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("deadlock"),
                      std::string::npos);
            // The improved dump names the wait category and the state.
            EXPECT_NE(std::string(e.what()).find("recvData"),
                      std::string::npos);
            EXPECT_NE(std::string(e.what()).find("running"),
                      std::string::npos);
        }
    }
}

} // namespace
} // namespace voltron
