/** @file Unit tests for the dual-mode scalar operand network. */

#include <gtest/gtest.h>

#include "network/network.hh"

namespace voltron {
namespace {

NetworkConfig
mesh2x2()
{
    NetworkConfig config;
    config.rows = 2;
    config.cols = 2;
    return config;
}

TEST(Network, Topology2x2)
{
    OperandNetwork net(mesh2x2());
    EXPECT_EQ(net.numCores(), 4);
    EXPECT_EQ(net.neighbor(0, Dir::East), 1);
    EXPECT_EQ(net.neighbor(0, Dir::South), 2);
    EXPECT_EQ(net.neighbor(3, Dir::West), 2);
    EXPECT_EQ(net.neighbor(3, Dir::North), 1);
    EXPECT_EQ(net.neighbor(0, Dir::West), kNoCore);
    EXPECT_EQ(net.neighbor(1, Dir::East), kNoCore);
}

TEST(Network, ManhattanHops)
{
    OperandNetwork net(mesh2x2());
    EXPECT_EQ(net.hops(0, 0), 0u);
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.hops(0, 2), 1u);
    EXPECT_EQ(net.hops(0, 3), 2u); // diagonal
    EXPECT_EQ(net.hops(1, 2), 2u);
}

TEST(Network, QueueLatencyMatchesPaper)
{
    // 2 cycles + 1 per hop: send at 0 to a neighbour arrives so that a
    // RECV at cycle 2 can consume it (1 queue write + 1 hop).
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 42, 0);
    EXPECT_FALSE(net.tryRecv(1, 0, 1).has_value());
    auto v = net.tryRecv(1, 0, 2);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42u);
}

TEST(Network, DiagonalTakesLonger)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 3, 7, 0);
    EXPECT_FALSE(net.tryRecv(3, 0, 2).has_value());
    EXPECT_TRUE(net.tryRecv(3, 0, 3).has_value());
}

TEST(Network, FifoPerSenderPair)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 1, 0);
    net.send(0, 1, 2, 1);
    net.send(0, 1, 3, 2);
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 1u);
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 2u);
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 3u);
    EXPECT_FALSE(net.tryRecv(1, 0, 10).has_value());
}

TEST(Network, CamSelectsBySender)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 3, 100, 0);
    net.send(1, 3, 200, 0);
    net.send(2, 3, 300, 0);
    EXPECT_EQ(*net.tryRecv(3, 1, 10), 200u);
    EXPECT_EQ(*net.tryRecv(3, 2, 10), 300u);
    EXPECT_EQ(*net.tryRecv(3, 0, 10), 100u);
}

TEST(Network, FifoStallsOnInFlightHead)
{
    // The head message for a pair is still in flight: later-queued
    // messages from the same sender must not overtake it.
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 1, 100); // arrives at 102
    auto v = net.tryRecv(1, 0, 101);
    EXPECT_FALSE(v.has_value());
}

TEST(Network, PerPairBackpressure)
{
    NetworkConfig config = mesh2x2();
    config.queueCapacity = 2;
    OperandNetwork net(config);
    net.send(0, 1, 1, 0);
    net.send(0, 1, 2, 0);
    EXPECT_TRUE(net.sendWouldStall(0, 1));
    // A different sender to the same receiver is NOT blocked.
    EXPECT_FALSE(net.sendWouldStall(2, 1));
    net.tryRecv(1, 0, 100);
    EXPECT_FALSE(net.sendWouldStall(0, 1));
}

TEST(Network, SpawnSeparateFromDataMessages)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 55, 0, /*is_spawn=*/true);
    net.send(0, 1, 66, 0);
    // Data RECV skips the spawn message.
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 66u);
    EXPECT_EQ(*net.trySpawn(1, 10), 55u);
    EXPECT_FALSE(net.trySpawn(1, 10).has_value());
}

TEST(Network, SpawnDeliveryLatency)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 2, 9, 5, true);
    EXPECT_FALSE(net.trySpawn(2, 6).has_value());
    EXPECT_TRUE(net.trySpawn(2, 7).has_value());
}

TEST(Network, DirectModePutGetSameCycle)
{
    OperandNetwork net(mesh2x2());
    net.putDirect(0, Dir::East, 77, 10);
    EXPECT_EQ(net.getDirect(1, Dir::West, 10), 77u);
}

TEST(Network, DirectModeMismatchedCyclePanics)
{
    OperandNetwork net(mesh2x2());
    net.putDirect(0, Dir::East, 77, 10);
    EXPECT_THROW(net.getDirect(1, Dir::West, 11), PanicError);
}

TEST(Network, DirectModeNoPutPanics)
{
    OperandNetwork net(mesh2x2());
    EXPECT_THROW(net.getDirect(1, Dir::West, 0), PanicError);
}

TEST(Network, PutOffMeshEdgePanics)
{
    OperandNetwork net(mesh2x2());
    EXPECT_THROW(net.putDirect(0, Dir::West, 1, 0), PanicError);
    EXPECT_THROW(net.getDirect(0, Dir::West, 0), PanicError);
}

TEST(Network, BroadcastReachesEveryOtherCore)
{
    OperandNetwork net(mesh2x2());
    net.broadcast(2, 0xbeef, 4);
    EXPECT_EQ(net.getBroadcast(0, 4), 0xbeefu);
    EXPECT_EQ(net.getBroadcast(1, 4), 0xbeefu);
    EXPECT_EQ(net.getBroadcast(3, 4), 0xbeefu);
    // The broadcaster itself must not consume it.
    EXPECT_THROW(net.getBroadcast(2, 4), PanicError);
    // Next cycle it is gone.
    EXPECT_THROW(net.getBroadcast(0, 5), PanicError);
}

TEST(Network, RowMesh1x2)
{
    NetworkConfig config;
    config.rows = 1;
    config.cols = 2;
    OperandNetwork net(config);
    EXPECT_EQ(net.numCores(), 2);
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.neighbor(0, Dir::South), kNoCore);
}

TEST(Network, SendToSelfPanics)
{
    OperandNetwork net(mesh2x2());
    EXPECT_THROW(net.send(1, 1, 0, 0), PanicError);
}

TEST(Network, StatsCountTraffic)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 1, 0);
    net.tryRecv(1, 0, 5);
    net.putDirect(0, Dir::East, 2, 0);
    net.getDirect(1, Dir::West, 0);
    net.broadcast(0, 3, 1);
    EXPECT_EQ(net.stats().get("net.messages"), 1u);
    EXPECT_EQ(net.stats().get("net.receives"), 1u);
    EXPECT_EQ(net.stats().get("net.puts"), 1u);
    EXPECT_EQ(net.stats().get("net.gets"), 1u);
    EXPECT_EQ(net.stats().get("net.bcasts"), 1u);
}

} // namespace
} // namespace voltron
