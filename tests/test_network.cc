/** @file Unit tests for the dual-mode scalar operand network. */

#include <gtest/gtest.h>

#include "network/network.hh"

namespace voltron {
namespace {

NetworkConfig
mesh2x2()
{
    NetworkConfig config;
    config.rows = 2;
    config.cols = 2;
    return config;
}

TEST(Network, Topology2x2)
{
    OperandNetwork net(mesh2x2());
    EXPECT_EQ(net.numCores(), 4);
    EXPECT_EQ(net.neighbor(0, Dir::East), 1);
    EXPECT_EQ(net.neighbor(0, Dir::South), 2);
    EXPECT_EQ(net.neighbor(3, Dir::West), 2);
    EXPECT_EQ(net.neighbor(3, Dir::North), 1);
    EXPECT_EQ(net.neighbor(0, Dir::West), kNoCore);
    EXPECT_EQ(net.neighbor(1, Dir::East), kNoCore);
}

TEST(Network, ManhattanHops)
{
    OperandNetwork net(mesh2x2());
    EXPECT_EQ(net.hops(0, 0), 0u);
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.hops(0, 2), 1u);
    EXPECT_EQ(net.hops(0, 3), 2u); // diagonal
    EXPECT_EQ(net.hops(1, 2), 2u);
}

TEST(Network, QueueLatencyMatchesPaper)
{
    // 2 cycles + 1 per hop: send at 0 to a neighbour arrives so that a
    // RECV at cycle 2 can consume it (1 queue write + 1 hop).
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 42, 0);
    EXPECT_FALSE(net.tryRecv(1, 0, 1).has_value());
    auto v = net.tryRecv(1, 0, 2);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42u);
}

TEST(Network, DiagonalTakesLonger)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 3, 7, 0);
    EXPECT_FALSE(net.tryRecv(3, 0, 2).has_value());
    EXPECT_TRUE(net.tryRecv(3, 0, 3).has_value());
}

TEST(Network, FifoPerSenderPair)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 1, 0);
    net.send(0, 1, 2, 1);
    net.send(0, 1, 3, 2);
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 1u);
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 2u);
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 3u);
    EXPECT_FALSE(net.tryRecv(1, 0, 10).has_value());
}

TEST(Network, CamSelectsBySender)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 3, 100, 0);
    net.send(1, 3, 200, 0);
    net.send(2, 3, 300, 0);
    EXPECT_EQ(*net.tryRecv(3, 1, 10), 200u);
    EXPECT_EQ(*net.tryRecv(3, 2, 10), 300u);
    EXPECT_EQ(*net.tryRecv(3, 0, 10), 100u);
}

TEST(Network, FifoStallsOnInFlightHead)
{
    // The head message for a pair is still in flight: later-queued
    // messages from the same sender must not overtake it.
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 1, 100); // arrives at 102
    auto v = net.tryRecv(1, 0, 101);
    EXPECT_FALSE(v.has_value());
}

TEST(Network, PerPairBackpressure)
{
    NetworkConfig config = mesh2x2();
    config.queueCapacity = 2;
    OperandNetwork net(config);
    net.send(0, 1, 1, 0);
    net.send(0, 1, 2, 0);
    EXPECT_TRUE(net.sendWouldStall(0, 1));
    // A different sender to the same receiver is NOT blocked.
    EXPECT_FALSE(net.sendWouldStall(2, 1));
    net.tryRecv(1, 0, 100);
    EXPECT_FALSE(net.sendWouldStall(0, 1));
}

TEST(Network, SpawnSeparateFromDataMessages)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 55, 0, /*is_spawn=*/true);
    net.send(0, 1, 66, 0);
    // Data RECV skips the spawn message.
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 66u);
    EXPECT_EQ(*net.trySpawn(1, 10), 55u);
    EXPECT_FALSE(net.trySpawn(1, 10).has_value());
}

TEST(Network, SpawnDeliveryLatency)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 2, 9, 5, true);
    EXPECT_FALSE(net.trySpawn(2, 6).has_value());
    EXPECT_TRUE(net.trySpawn(2, 7).has_value());
}

TEST(Network, DirectModePutGetSameCycle)
{
    OperandNetwork net(mesh2x2());
    net.putDirect(0, Dir::East, 77, 10);
    EXPECT_EQ(net.getDirect(1, Dir::West, 10), 77u);
}

TEST(Network, DirectModeMismatchedCyclePanics)
{
    OperandNetwork net(mesh2x2());
    net.putDirect(0, Dir::East, 77, 10);
    EXPECT_THROW(net.getDirect(1, Dir::West, 11), PanicError);
}

TEST(Network, DirectModeNoPutPanics)
{
    OperandNetwork net(mesh2x2());
    EXPECT_THROW(net.getDirect(1, Dir::West, 0), PanicError);
}

TEST(Network, PutOffMeshEdgePanics)
{
    OperandNetwork net(mesh2x2());
    EXPECT_THROW(net.putDirect(0, Dir::West, 1, 0), PanicError);
    EXPECT_THROW(net.getDirect(0, Dir::West, 0), PanicError);
}

TEST(Network, BroadcastReachesEveryOtherCore)
{
    OperandNetwork net(mesh2x2());
    net.broadcast(2, 0xbeef, 4);
    EXPECT_EQ(net.getBroadcast(0, 4), 0xbeefu);
    EXPECT_EQ(net.getBroadcast(1, 4), 0xbeefu);
    EXPECT_EQ(net.getBroadcast(3, 4), 0xbeefu);
    // The broadcaster itself must not consume it.
    EXPECT_THROW(net.getBroadcast(2, 4), PanicError);
    // Next cycle it is gone.
    EXPECT_THROW(net.getBroadcast(0, 5), PanicError);
}

TEST(Network, SpawnDoesNotConsumeDataSlotAtCapacityOne)
{
    // Regression: an in-flight SPAWN (which tryRecv can never drain) must
    // not count toward the per-(sender,receiver) data-queue capacity. At
    // queueCapacity=1 a data SEND racing an undelivered SPAWN used to
    // stall spuriously and could wedge the pair for good.
    NetworkConfig config = mesh2x2();
    config.queueCapacity = 1;
    OperandNetwork net(config);
    net.send(0, 1, 0xcafe, 0, /*is_spawn=*/true);
    EXPECT_FALSE(net.sendWouldStall(0, 1));
    net.send(0, 1, 42, 0);
    // Each class now holds its one slot.
    EXPECT_TRUE(net.sendWouldStall(0, 1));
    EXPECT_TRUE(net.sendWouldStall(0, 1, /*is_spawn=*/true));
    // Draining the data message frees the data slot but not the spawn
    // slot, and vice versa.
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 42u);
    EXPECT_FALSE(net.sendWouldStall(0, 1));
    EXPECT_TRUE(net.sendWouldStall(0, 1, /*is_spawn=*/true));
    EXPECT_EQ(*net.trySpawn(1, 10), 0xcafeu);
    EXPECT_FALSE(net.sendWouldStall(0, 1, /*is_spawn=*/true));
}

TEST(Network, SpawnBackpressureIsPerClass)
{
    NetworkConfig config = mesh2x2();
    config.queueCapacity = 1;
    OperandNetwork net(config);
    net.send(0, 1, 7, 0);
    EXPECT_TRUE(net.sendWouldStall(0, 1));
    // A spawn still fits: it has its own slot.
    EXPECT_FALSE(net.sendWouldStall(0, 1, /*is_spawn=*/true));
    net.send(0, 1, 0x1234, 0, /*is_spawn=*/true);
    // A second spawn from the same sender is back-pressured.
    EXPECT_TRUE(net.sendWouldStall(0, 1, /*is_spawn=*/true));
    // ... but another sender's spawn is not.
    EXPECT_FALSE(net.sendWouldStall(2, 1, /*is_spawn=*/true));
}

TEST(Network, RowMesh1x2)
{
    NetworkConfig config;
    config.rows = 1;
    config.cols = 2;
    OperandNetwork net(config);
    EXPECT_EQ(net.numCores(), 2);
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.neighbor(0, Dir::South), kNoCore);
}

TEST(Network, RowMesh1x4Neighbors)
{
    // A 1x4 row mesh holds the same four cores as a 2x2 square but with
    // entirely different edge geometry: no vertical links at all, and
    // core ids advance east along the single row.
    NetworkConfig config;
    config.rows = 1;
    config.cols = 4;
    OperandNetwork net(config);
    EXPECT_EQ(net.numCores(), 4);
    for (CoreId c = 0; c < 4; ++c) {
        EXPECT_EQ(net.neighbor(c, Dir::North), kNoCore);
        EXPECT_EQ(net.neighbor(c, Dir::South), kNoCore);
    }
    EXPECT_EQ(net.neighbor(0, Dir::East), 1);
    EXPECT_EQ(net.neighbor(1, Dir::East), 2);
    EXPECT_EQ(net.neighbor(2, Dir::East), 3);
    EXPECT_EQ(net.neighbor(3, Dir::East), kNoCore);
    EXPECT_EQ(net.neighbor(0, Dir::West), kNoCore);
    EXPECT_EQ(net.neighbor(3, Dir::West), 2);
}

TEST(Network, ColumnMesh4x1Neighbors)
{
    NetworkConfig config;
    config.rows = 4;
    config.cols = 1;
    OperandNetwork net(config);
    EXPECT_EQ(net.numCores(), 4);
    for (CoreId c = 0; c < 4; ++c) {
        EXPECT_EQ(net.neighbor(c, Dir::East), kNoCore);
        EXPECT_EQ(net.neighbor(c, Dir::West), kNoCore);
    }
    EXPECT_EQ(net.neighbor(0, Dir::South), 1);
    EXPECT_EQ(net.neighbor(2, Dir::South), 3);
    EXPECT_EQ(net.neighbor(3, Dir::South), kNoCore);
    EXPECT_EQ(net.neighbor(3, Dir::North), 2);
    EXPECT_EQ(net.neighbor(0, Dir::North), kNoCore);
}

TEST(Network, XyDistanceDiffersBetween1x4And2x2)
{
    // Cores 0 and 3 are 3 XY hops apart on the row mesh but only 2 on
    // the square — the routing distance depends on the fold.
    NetworkConfig row;
    row.rows = 1;
    row.cols = 4;
    OperandNetwork rnet(row);
    EXPECT_EQ(rnet.hops(0, 3), 3u);
    EXPECT_EQ(rnet.hops(3, 0), 3u);
    EXPECT_EQ(rnet.hops(1, 2), 1u);

    OperandNetwork snet(mesh2x2());
    EXPECT_EQ(snet.hops(0, 3), 2u);
    EXPECT_EQ(snet.hops(1, 2), 2u);
}

TEST(Network, HopLatencyAcrossTheRowMeshBoundary)
{
    // Queue-mode latency is base + hops * hopLatency. End-to-end across
    // the full 1x4 row (3 hops) with non-default latencies: send at cycle
    // 10, base 2, hop 3 -> arrival at 10 + 2 + 3*3 = 21.
    NetworkConfig config;
    config.rows = 1;
    config.cols = 4;
    config.queueBaseLatency = 2;
    config.hopLatency = 3;
    OperandNetwork net(config);
    net.send(0, 3, 99, 10);
    EXPECT_FALSE(net.tryRecv(3, 0, 20).has_value());
    auto v = net.tryRecv(3, 0, 21);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 99u);
    // The same endpoints on a 2x2 mesh are one hop closer: 2 + 2*3 = 18.
    NetworkConfig square = mesh2x2();
    square.queueBaseLatency = 2;
    square.hopLatency = 3;
    OperandNetwork snet(square);
    snet.send(0, 3, 7, 10);
    EXPECT_FALSE(snet.tryRecv(3, 0, 17).has_value());
    EXPECT_TRUE(snet.tryRecv(3, 0, 18).has_value());
}

TEST(Network, EdgeCoreDirectModeOnRowMesh)
{
    // Direct-mode PUT/GET across the interior links of a 1x4 mesh; the
    // boundary links must panic in both directions.
    NetworkConfig config;
    config.rows = 1;
    config.cols = 4;
    OperandNetwork net(config);
    net.putDirect(1, Dir::East, 5, 3);
    EXPECT_EQ(net.getDirect(2, Dir::West, 3), 5u);
    EXPECT_THROW(net.putDirect(3, Dir::East, 1, 0), PanicError);
    EXPECT_THROW(net.putDirect(0, Dir::South, 1, 0), PanicError);
    EXPECT_THROW(net.getDirect(0, Dir::North, 0), PanicError);
}

TEST(Network, SendToSelfPanics)
{
    OperandNetwork net(mesh2x2());
    EXPECT_THROW(net.send(1, 1, 0, 0), PanicError);
}

TEST(Network, StatsCountTraffic)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 1, 0);
    net.tryRecv(1, 0, 5);
    net.putDirect(0, Dir::East, 2, 0);
    net.getDirect(1, Dir::West, 0);
    net.broadcast(0, 3, 1);
    EXPECT_EQ(net.stats().get("net.messages"), 1u);
    EXPECT_EQ(net.stats().get("net.receives"), 1u);
    EXPECT_EQ(net.stats().get("net.puts"), 1u);
    EXPECT_EQ(net.stats().get("net.gets"), 1u);
    EXPECT_EQ(net.stats().get("net.bcasts"), 1u);
}

} // namespace
} // namespace voltron
