/** @file Unit tests for the dual-mode scalar operand network. */

#include <gtest/gtest.h>

#include <random>
#include <utility>

#include "network/network.hh"

namespace voltron {
namespace {

NetworkConfig
mesh2x2()
{
    NetworkConfig config;
    config.rows = 2;
    config.cols = 2;
    return config;
}

TEST(Network, Topology2x2)
{
    OperandNetwork net(mesh2x2());
    EXPECT_EQ(net.numCores(), 4);
    EXPECT_EQ(net.neighbor(0, Dir::East), 1);
    EXPECT_EQ(net.neighbor(0, Dir::South), 2);
    EXPECT_EQ(net.neighbor(3, Dir::West), 2);
    EXPECT_EQ(net.neighbor(3, Dir::North), 1);
    EXPECT_EQ(net.neighbor(0, Dir::West), kNoCore);
    EXPECT_EQ(net.neighbor(1, Dir::East), kNoCore);
}

TEST(Network, ManhattanHops)
{
    OperandNetwork net(mesh2x2());
    EXPECT_EQ(net.hops(0, 0), 0u);
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.hops(0, 2), 1u);
    EXPECT_EQ(net.hops(0, 3), 2u); // diagonal
    EXPECT_EQ(net.hops(1, 2), 2u);
}

TEST(Network, QueueLatencyMatchesPaper)
{
    // 2 cycles + 1 per hop: send at 0 to a neighbour arrives so that a
    // RECV at cycle 2 can consume it (1 queue write + 1 hop).
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 42, 0);
    EXPECT_FALSE(net.tryRecv(1, 0, 1).has_value());
    auto v = net.tryRecv(1, 0, 2);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42u);
}

TEST(Network, DiagonalTakesLonger)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 3, 7, 0);
    EXPECT_FALSE(net.tryRecv(3, 0, 2).has_value());
    EXPECT_TRUE(net.tryRecv(3, 0, 3).has_value());
}

TEST(Network, FifoPerSenderPair)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 1, 0);
    net.send(0, 1, 2, 1);
    net.send(0, 1, 3, 2);
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 1u);
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 2u);
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 3u);
    EXPECT_FALSE(net.tryRecv(1, 0, 10).has_value());
}

TEST(Network, CamSelectsBySender)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 3, 100, 0);
    net.send(1, 3, 200, 0);
    net.send(2, 3, 300, 0);
    EXPECT_EQ(*net.tryRecv(3, 1, 10), 200u);
    EXPECT_EQ(*net.tryRecv(3, 2, 10), 300u);
    EXPECT_EQ(*net.tryRecv(3, 0, 10), 100u);
}

TEST(Network, FifoStallsOnInFlightHead)
{
    // The head message for a pair is still in flight: later-queued
    // messages from the same sender must not overtake it.
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 1, 100); // arrives at 102
    auto v = net.tryRecv(1, 0, 101);
    EXPECT_FALSE(v.has_value());
}

TEST(Network, PerPairBackpressure)
{
    NetworkConfig config = mesh2x2();
    config.queueCapacity = 2;
    OperandNetwork net(config);
    net.send(0, 1, 1, 0);
    net.send(0, 1, 2, 0);
    EXPECT_TRUE(net.sendWouldStall(0, 1));
    // A different sender to the same receiver is NOT blocked.
    EXPECT_FALSE(net.sendWouldStall(2, 1));
    net.tryRecv(1, 0, 100);
    EXPECT_FALSE(net.sendWouldStall(0, 1));
}

TEST(Network, SpawnSeparateFromDataMessages)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 55, 0, /*is_spawn=*/true);
    net.send(0, 1, 66, 0);
    // Data RECV skips the spawn message.
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 66u);
    EXPECT_EQ(*net.trySpawn(1, 10), 55u);
    EXPECT_FALSE(net.trySpawn(1, 10).has_value());
}

TEST(Network, SpawnDeliveryLatency)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 2, 9, 5, true);
    EXPECT_FALSE(net.trySpawn(2, 6).has_value());
    EXPECT_TRUE(net.trySpawn(2, 7).has_value());
}

TEST(Network, DirectModePutGetSameCycle)
{
    OperandNetwork net(mesh2x2());
    net.putDirect(0, Dir::East, 77, 10);
    EXPECT_EQ(net.getDirect(1, Dir::West, 10), 77u);
}

TEST(Network, DirectModeMismatchedCyclePanics)
{
    OperandNetwork net(mesh2x2());
    net.putDirect(0, Dir::East, 77, 10);
    EXPECT_THROW(net.getDirect(1, Dir::West, 11), PanicError);
}

TEST(Network, DirectModeNoPutPanics)
{
    OperandNetwork net(mesh2x2());
    EXPECT_THROW(net.getDirect(1, Dir::West, 0), PanicError);
}

TEST(Network, PutOffMeshEdgePanics)
{
    OperandNetwork net(mesh2x2());
    EXPECT_THROW(net.putDirect(0, Dir::West, 1, 0), PanicError);
    EXPECT_THROW(net.getDirect(0, Dir::West, 0), PanicError);
}

TEST(Network, BroadcastReachesEveryOtherCore)
{
    OperandNetwork net(mesh2x2());
    net.broadcast(2, 0xbeef, 4);
    EXPECT_EQ(net.getBroadcast(0, 4), 0xbeefu);
    EXPECT_EQ(net.getBroadcast(1, 4), 0xbeefu);
    EXPECT_EQ(net.getBroadcast(3, 4), 0xbeefu);
    // The broadcaster itself must not consume it.
    EXPECT_THROW(net.getBroadcast(2, 4), PanicError);
    // Next cycle it is gone.
    EXPECT_THROW(net.getBroadcast(0, 5), PanicError);
}

TEST(Network, SameCycleBroadcastCollisionPanics)
{
    // One shared wire: a second BCAST in the same cycle from a
    // different core would silently overwrite the first, so the
    // network treats it as a compiler scheduling bug.
    OperandNetwork net(mesh2x2());
    net.broadcast(0, 0x111, 7);
    EXPECT_THROW(net.broadcast(1, 0x222, 7), PanicError);
    // A different cycle is fine.
    net.broadcast(1, 0x222, 8);
    EXPECT_EQ(net.getBroadcast(0, 8), 0x222u);
}

TEST(Network, SpawnDoesNotConsumeDataSlotAtCapacityOne)
{
    // Regression: an in-flight SPAWN (which tryRecv can never drain) must
    // not count toward the per-(sender,receiver) data-queue capacity. At
    // queueCapacity=1 a data SEND racing an undelivered SPAWN used to
    // stall spuriously and could wedge the pair for good.
    NetworkConfig config = mesh2x2();
    config.queueCapacity = 1;
    OperandNetwork net(config);
    net.send(0, 1, 0xcafe, 0, /*is_spawn=*/true);
    EXPECT_FALSE(net.sendWouldStall(0, 1));
    net.send(0, 1, 42, 0);
    // Each class now holds its one slot.
    EXPECT_TRUE(net.sendWouldStall(0, 1));
    EXPECT_TRUE(net.sendWouldStall(0, 1, /*is_spawn=*/true));
    // Draining the data message frees the data slot but not the spawn
    // slot, and vice versa.
    EXPECT_EQ(*net.tryRecv(1, 0, 10), 42u);
    EXPECT_FALSE(net.sendWouldStall(0, 1));
    EXPECT_TRUE(net.sendWouldStall(0, 1, /*is_spawn=*/true));
    EXPECT_EQ(*net.trySpawn(1, 10), 0xcafeu);
    EXPECT_FALSE(net.sendWouldStall(0, 1, /*is_spawn=*/true));
}

TEST(Network, SpawnBackpressureIsPerClass)
{
    NetworkConfig config = mesh2x2();
    config.queueCapacity = 1;
    OperandNetwork net(config);
    net.send(0, 1, 7, 0);
    EXPECT_TRUE(net.sendWouldStall(0, 1));
    // A spawn still fits: it has its own slot.
    EXPECT_FALSE(net.sendWouldStall(0, 1, /*is_spawn=*/true));
    net.send(0, 1, 0x1234, 0, /*is_spawn=*/true);
    // A second spawn from the same sender is back-pressured.
    EXPECT_TRUE(net.sendWouldStall(0, 1, /*is_spawn=*/true));
    // ... but another sender's spawn is not.
    EXPECT_FALSE(net.sendWouldStall(2, 1, /*is_spawn=*/true));
}

TEST(Network, RowMesh1x2)
{
    NetworkConfig config;
    config.rows = 1;
    config.cols = 2;
    OperandNetwork net(config);
    EXPECT_EQ(net.numCores(), 2);
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.neighbor(0, Dir::South), kNoCore);
}

TEST(Network, RowMesh1x4Neighbors)
{
    // A 1x4 row mesh holds the same four cores as a 2x2 square but with
    // entirely different edge geometry: no vertical links at all, and
    // core ids advance east along the single row.
    NetworkConfig config;
    config.rows = 1;
    config.cols = 4;
    OperandNetwork net(config);
    EXPECT_EQ(net.numCores(), 4);
    for (CoreId c = 0; c < 4; ++c) {
        EXPECT_EQ(net.neighbor(c, Dir::North), kNoCore);
        EXPECT_EQ(net.neighbor(c, Dir::South), kNoCore);
    }
    EXPECT_EQ(net.neighbor(0, Dir::East), 1);
    EXPECT_EQ(net.neighbor(1, Dir::East), 2);
    EXPECT_EQ(net.neighbor(2, Dir::East), 3);
    EXPECT_EQ(net.neighbor(3, Dir::East), kNoCore);
    EXPECT_EQ(net.neighbor(0, Dir::West), kNoCore);
    EXPECT_EQ(net.neighbor(3, Dir::West), 2);
}

TEST(Network, ColumnMesh4x1Neighbors)
{
    NetworkConfig config;
    config.rows = 4;
    config.cols = 1;
    OperandNetwork net(config);
    EXPECT_EQ(net.numCores(), 4);
    for (CoreId c = 0; c < 4; ++c) {
        EXPECT_EQ(net.neighbor(c, Dir::East), kNoCore);
        EXPECT_EQ(net.neighbor(c, Dir::West), kNoCore);
    }
    EXPECT_EQ(net.neighbor(0, Dir::South), 1);
    EXPECT_EQ(net.neighbor(2, Dir::South), 3);
    EXPECT_EQ(net.neighbor(3, Dir::South), kNoCore);
    EXPECT_EQ(net.neighbor(3, Dir::North), 2);
    EXPECT_EQ(net.neighbor(0, Dir::North), kNoCore);
}

TEST(Network, XyDistanceDiffersBetween1x4And2x2)
{
    // Cores 0 and 3 are 3 XY hops apart on the row mesh but only 2 on
    // the square — the routing distance depends on the fold.
    NetworkConfig row;
    row.rows = 1;
    row.cols = 4;
    OperandNetwork rnet(row);
    EXPECT_EQ(rnet.hops(0, 3), 3u);
    EXPECT_EQ(rnet.hops(3, 0), 3u);
    EXPECT_EQ(rnet.hops(1, 2), 1u);

    OperandNetwork snet(mesh2x2());
    EXPECT_EQ(snet.hops(0, 3), 2u);
    EXPECT_EQ(snet.hops(1, 2), 2u);
}

TEST(Network, HopLatencyAcrossTheRowMeshBoundary)
{
    // Queue-mode latency is base + hops * hopLatency. End-to-end across
    // the full 1x4 row (3 hops) with non-default latencies: send at cycle
    // 10, base 2, hop 3 -> arrival at 10 + 2 + 3*3 = 21.
    NetworkConfig config;
    config.rows = 1;
    config.cols = 4;
    config.queueBaseLatency = 2;
    config.hopLatency = 3;
    OperandNetwork net(config);
    net.send(0, 3, 99, 10);
    EXPECT_FALSE(net.tryRecv(3, 0, 20).has_value());
    auto v = net.tryRecv(3, 0, 21);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 99u);
    // The same endpoints on a 2x2 mesh are one hop closer: 2 + 2*3 = 18.
    NetworkConfig square = mesh2x2();
    square.queueBaseLatency = 2;
    square.hopLatency = 3;
    OperandNetwork snet(square);
    snet.send(0, 3, 7, 10);
    EXPECT_FALSE(snet.tryRecv(3, 0, 17).has_value());
    EXPECT_TRUE(snet.tryRecv(3, 0, 18).has_value());
}

TEST(Network, EdgeCoreDirectModeOnRowMesh)
{
    // Direct-mode PUT/GET across the interior links of a 1x4 mesh; the
    // boundary links must panic in both directions.
    NetworkConfig config;
    config.rows = 1;
    config.cols = 4;
    OperandNetwork net(config);
    net.putDirect(1, Dir::East, 5, 3);
    EXPECT_EQ(net.getDirect(2, Dir::West, 3), 5u);
    EXPECT_THROW(net.putDirect(3, Dir::East, 1, 0), PanicError);
    EXPECT_THROW(net.putDirect(0, Dir::South, 1, 0), PanicError);
    EXPECT_THROW(net.getDirect(0, Dir::North, 0), PanicError);
}

TEST(Network, SendToSelfPanics)
{
    OperandNetwork net(mesh2x2());
    EXPECT_THROW(net.send(1, 1, 0, 0), PanicError);
}

TEST(Network, StatsCountTraffic)
{
    OperandNetwork net(mesh2x2());
    net.send(0, 1, 1, 0);
    net.tryRecv(1, 0, 5);
    net.putDirect(0, Dir::East, 2, 0);
    net.getDirect(1, Dir::West, 0);
    net.broadcast(0, 3, 1);
    EXPECT_EQ(net.stats().get("net.messages"), 1u);
    EXPECT_EQ(net.stats().get("net.receives"), 1u);
    EXPECT_EQ(net.stats().get("net.puts"), 1u);
    EXPECT_EQ(net.stats().get("net.gets"), 1u);
    EXPECT_EQ(net.stats().get("net.bcasts"), 1u);
}

NetworkConfig
mesh(u16 rows, u16 cols)
{
    NetworkConfig config;
    config.rows = rows;
    config.cols = cols;
    return config;
}

TEST(Network, LargeMeshHopCounts)
{
    // 4x4: corner to corner is 3 + 3 hops; XY distance is symmetric.
    OperandNetwork m4x4(mesh(4, 4));
    EXPECT_EQ(m4x4.numCores(), 16);
    EXPECT_EQ(m4x4.hops(0, 15), 6u);
    EXPECT_EQ(m4x4.hops(15, 0), 6u);
    EXPECT_EQ(m4x4.hops(0, 5), 2u);  // one east, one south
    EXPECT_EQ(m4x4.hops(3, 12), 6u); // opposite corners

    // 2x8: the wide fold stretches the row distance.
    OperandNetwork m2x8(mesh(2, 8));
    EXPECT_EQ(m2x8.numCores(), 16);
    EXPECT_EQ(m2x8.hops(0, 15), 8u); // 7 cols + 1 row
    EXPECT_EQ(m2x8.hops(7, 8), 8u);  // row end to next row start

    // 8x8: the largest supported machine.
    OperandNetwork m8x8(mesh(8, 8));
    EXPECT_EQ(m8x8.numCores(), 64);
    EXPECT_EQ(m8x8.hops(0, 63), 14u);
    EXPECT_EQ(m8x8.hops(63, 0), 14u);
    EXPECT_EQ(m8x8.hops(0, 8), 1u); // straight south
}

TEST(Network, XyRoutingSymmetryAcrossShapes)
{
    // hops(a, b) == hops(b, a) for every pair on every shape — XY
    // routing turns the corner in one direction but the Manhattan
    // distance cannot depend on it.
    for (const auto &[rows, cols] :
         {std::pair<u16, u16>{4, 4}, {2, 8}, {8, 8}, {3, 5}}) {
        OperandNetwork net(mesh(rows, cols));
        const u16 n = net.numCores();
        for (CoreId a = 0; a < n; ++a)
            for (CoreId b = 0; b < n; ++b)
                EXPECT_EQ(net.hops(a, b), net.hops(b, a))
                    << rows << "x" << cols << " cores " << int(a) << ","
                    << int(b);
    }
}

TEST(Network, LargeMeshHopLatencyAccounting)
{
    // Queue latency = base + hops * hopLatency on a 4x4 mesh with
    // non-default timing: 0 -> 15 is 6 hops, base 2, hop 3 -> send at
    // 100 arrives at 100 + 2 + 18 = 120.
    NetworkConfig config = mesh(4, 4);
    config.queueBaseLatency = 2;
    config.hopLatency = 3;
    OperandNetwork net(config);
    net.send(0, 15, 1234, 100);
    EXPECT_FALSE(net.tryRecv(15, 0, 119).has_value());
    auto v = net.tryRecv(15, 0, 120);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1234u);
    // The latency histogram recorded exactly send-to-arrival.
    EXPECT_EQ(net.hopLatency().count(), 1u);
    EXPECT_EQ(net.hopLatency().max(), 20u);
}

TEST(Network, EdgePanicsOnNonSquareMesh)
{
    // 2x8: north edge spans 8 cores, west edge only 2.
    OperandNetwork net(mesh(2, 8));
    EXPECT_THROW(net.putDirect(3, Dir::North, 1, 0), PanicError);
    EXPECT_THROW(net.putDirect(8, Dir::West, 1, 0), PanicError);
    EXPECT_THROW(net.putDirect(15, Dir::East, 1, 0), PanicError);
    net.putDirect(0, Dir::South, 5, 7);
    EXPECT_EQ(net.getDirect(8, Dir::North, 7), 5u);
}

TEST(Network, CapacityOneWedgeRegressionOn16CoreMesh)
{
    // The PR-4 wedge scenario replayed on a 16-core mesh: an in-flight
    // SPAWN must not consume the single data slot of any pair, on any
    // shape that holds 16 cores.
    for (const auto &[rows, cols] :
         {std::pair<u16, u16>{4, 4}, {2, 8}, {8, 2}}) {
        NetworkConfig config = mesh(rows, cols);
        config.queueCapacity = 1;
        OperandNetwork net(config);
        const CoreId far = static_cast<CoreId>(net.numCores() - 1);
        net.send(0, far, 0xcafe, 0, /*is_spawn=*/true);
        EXPECT_FALSE(net.sendWouldStall(0, far));
        net.send(0, far, 42, 0);
        EXPECT_TRUE(net.sendWouldStall(0, far));
        EXPECT_TRUE(net.sendWouldStall(0, far, /*is_spawn=*/true));
        // Other pairs to the same receiver are independent.
        EXPECT_FALSE(net.sendWouldStall(5, far));
        EXPECT_EQ(*net.tryRecv(far, 0, 1000), 42u);
        EXPECT_FALSE(net.sendWouldStall(0, far));
        EXPECT_EQ(*net.trySpawn(far, 1000), 0xcafeu);
        EXPECT_FALSE(net.sendWouldStall(0, far, /*is_spawn=*/true));
    }
}

/**
 * Drive the indexed model and the legacy CAM-scan model with the same
 * randomized queue-mode workload and require bit-identical observable
 * behaviour at every step: operation results, due-ness, queue depths,
 * nextArrival, counters, and both histograms. This is the unit-level
 * face of the bit-identity contract (the machine-level face is the
 * fuzz sweep diffing both models against the golden run).
 */
TEST(Network, IndexedModelMatchesLegacyScanExactly)
{
    for (const auto &[rows, cols] :
         {std::pair<u16, u16>{2, 2}, {1, 4}, {4, 4}, {2, 8}}) {
        NetworkConfig base = mesh(rows, cols);
        base.queueCapacity = 2; // tight: exercise back-pressure often
        NetworkConfig legacy = base;
        legacy.legacyScanQueues = true;
        OperandNetwork a(base);
        OperandNetwork b(legacy);
        const u16 n = a.numCores();

        std::mt19937_64 rng(0x5ca1ab1eULL + rows * 100 + cols);
        std::uniform_int_distribution<u32> core(0, n - 1);
        std::uniform_int_distribution<u32> op(0, 5);
        for (Cycle now = 0; now < 2000; ++now) {
            for (int k = 0; k < 4; ++k) {
                const CoreId from = static_cast<CoreId>(core(rng));
                const CoreId to = static_cast<CoreId>(core(rng));
                if (from == to)
                    continue;
                switch (op(rng)) {
                  case 0: case 1: {
                    const bool spawn = (op(rng) == 0);
                    const bool sa = a.sendWouldStall(from, to, spawn);
                    const bool sb = b.sendWouldStall(from, to, spawn);
                    ASSERT_EQ(sa, sb);
                    if (!sa) {
                        a.send(from, to, now * 16 + k, now, spawn);
                        b.send(from, to, now * 16 + k, now, spawn);
                    }
                    break;
                  }
                  case 2: {
                    ASSERT_EQ(a.recvDue(to, from, now),
                              b.recvDue(to, from, now));
                    auto va = a.tryRecv(to, from, now);
                    auto vb = b.tryRecv(to, from, now);
                    ASSERT_EQ(va, vb);
                    break;
                  }
                  case 3: {
                    ASSERT_EQ(a.spawnDue(to, now), b.spawnDue(to, now));
                    auto va = a.trySpawn(to, now);
                    auto vb = b.trySpawn(to, now);
                    ASSERT_EQ(va, vb);
                    break;
                  }
                  case 4:
                    ASSERT_EQ(a.queuedFor(to), b.queuedFor(to));
                    break;
                  case 5:
                    ASSERT_EQ(a.nextArrival(now), b.nextArrival(now));
                    break;
                }
            }
        }
        // Drain everything still queued and compare the totals.
        for (CoreId me = 0; me < n; ++me) {
            for (Cycle now = 2000; now < 2100; ++now) {
                for (CoreId from = 0; from < n; ++from) {
                    if (from == me)
                        continue;
                    auto va = a.tryRecv(me, from, now);
                    auto vb = b.tryRecv(me, from, now);
                    ASSERT_EQ(va, vb);
                }
                auto sa = a.trySpawn(me, now);
                auto sb = b.trySpawn(me, now);
                ASSERT_EQ(sa, sb);
            }
            ASSERT_EQ(a.queuedFor(me), b.queuedFor(me));
        }
        EXPECT_EQ(a.stats().get("net.messages"),
                  b.stats().get("net.messages"));
        EXPECT_EQ(a.stats().get("net.receives"),
                  b.stats().get("net.receives"));
        EXPECT_EQ(a.hopLatency().count(), b.hopLatency().count());
        EXPECT_EQ(a.hopLatency().sum(), b.hopLatency().sum());
        EXPECT_EQ(a.queueDepth().count(), b.queueDepth().count());
        EXPECT_EQ(a.queueDepth().sum(), b.queueDepth().sum());
        EXPECT_EQ(a.queueDepth().max(), b.queueDepth().max());
    }
}

} // namespace
} // namespace voltron
