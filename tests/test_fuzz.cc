/**
 * @file
 * Differential fuzzing harness: generator determinism and legality,
 * repro round-trips, shrinker contracts, and the tier-1 fixed-seed
 * smoke batch (every generated program must reproduce its golden run
 * across the full sweep).
 */

#include <gtest/gtest.h>

#include "core/artifact_cache.hh"
#include "fuzz/differ.hh"
#include "fuzz/generator.hh"
#include "fuzz/repro.hh"
#include "fuzz/shrink.hh"
#include "interp/interp.hh"
#include "ir/serialize.hh"
#include "ir/verifier.hh"

namespace voltron {
namespace {

/** The cache is process-global; fuzz programs are one-shot. */
class ScopedNoDiskCache
{
  public:
    ScopedNoDiskCache()
    {
        ArtifactCache::instance().setDiskDir(std::string());
        ArtifactCache::instance().clearMemory();
    }
    ~ScopedNoDiskCache()
    {
        ArtifactCache::instance().setDiskDir(std::nullopt);
        ArtifactCache::instance().clearMemory();
    }
};

size_t
op_count(const Program &prog)
{
    size_t n = 0;
    for (const Function &fn : prog.functions)
        for (const BasicBlock &bb : fn.blocks)
            n += bb.ops.size();
    return n;
}

size_t
store_count(const Program &prog)
{
    size_t n = 0;
    for (const Function &fn : prog.functions)
        for (const BasicBlock &bb : fn.blocks)
            for (const Operation &op : bb.ops)
                if (is_store(op.op))
                    ++n;
    return n;
}

TEST(FuzzGenerator, DeterministicBySeed)
{
    const Program a = generate_fuzz_program(42);
    const Program b = generate_fuzz_program(42);
    EXPECT_EQ(program_content_hash(a), program_content_hash(b));

    const Program c = generate_fuzz_program(43);
    EXPECT_NE(program_content_hash(a), program_content_hash(c));
}

TEST(FuzzGenerator, ProgramsVerifyAndTerminate)
{
    for (u64 seed = 1; seed <= 15; ++seed) {
        const Program prog = generate_fuzz_program(seed);
        EXPECT_TRUE(verify_program(prog).ok()) << "seed " << seed;
        EXPECT_EQ(prog.function(0).name, "main");
        EXPECT_EQ(prog.function(0).numArgs, 0);
        // Terminates well inside the differ's budget.
        const GoldenRun golden = run_golden(prog, 50'000'000);
        EXPECT_GT(golden.result.dynamicOps, 0u) << "seed " << seed;
    }
}

TEST(FuzzGenerator, ExercisesTheTargetedShapes)
{
    // Across a handful of seeds the generator must produce calls,
    // loops (back-branches), stores, and at least one wildcard-alias op.
    size_t calls = 0, stores = 0, branches = 0, wildcards = 0;
    for (u64 seed = 1; seed <= 10; ++seed) {
        const Program prog = generate_fuzz_program(seed);
        for (const Function &fn : prog.functions)
            for (const BasicBlock &bb : fn.blocks)
                for (const Operation &op : bb.ops) {
                    calls += op.op == Opcode::CALL;
                    stores += is_store(op.op);
                    branches += op.op == Opcode::BR;
                    wildcards += is_memory(op.op) && op.memSym == 0;
                }
    }
    EXPECT_GT(calls, 0u);
    EXPECT_GT(stores, 0u);
    EXPECT_GT(branches, 0u);
    EXPECT_GT(wildcards, 0u);
}

TEST(FuzzRepro, RoundTripsThroughBytes)
{
    FuzzRepro repro;
    repro.seed = 0xdeadbeef;
    repro.divergence.kind = Divergence::Kind::MemoryMismatch;
    repro.divergence.point = "dswp/c4/qcap1";
    repro.divergence.message = "final data segment differs";
    repro.program = generate_fuzz_program(7);

    FuzzRepro back;
    ASSERT_TRUE(decode_repro(encode_repro(repro), back));
    EXPECT_EQ(back.seed, repro.seed);
    EXPECT_EQ(back.divergence.kind, repro.divergence.kind);
    EXPECT_EQ(back.divergence.point, repro.divergence.point);
    EXPECT_EQ(back.divergence.message, repro.divergence.message);
    EXPECT_EQ(program_content_hash(back.program),
              program_content_hash(repro.program));
}

TEST(FuzzRepro, RejectsCorruptBytes)
{
    FuzzRepro repro;
    repro.program = generate_fuzz_program(9);
    std::vector<u8> bytes = encode_repro(repro);

    std::vector<u8> bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    FuzzRepro out;
    EXPECT_FALSE(decode_repro(bad_magic, out));

    std::vector<u8> truncated(bytes.begin(),
                              bytes.begin() + bytes.size() / 2);
    EXPECT_FALSE(decode_repro(truncated, out));
}

TEST(FuzzShrink, ReducesWhilePreservingTheOracle)
{
    const Program orig = generate_fuzz_program(11);
    ASSERT_GT(store_count(orig), 0u);

    // Stand-in oracle (no real bug needed): "still contains a store".
    const ShrinkOracle oracle = [](const Program &p) {
        return store_count(p) > 0;
    };
    ShrinkStats stats;
    const Program shrunk = shrink_program(orig, oracle, 400, &stats);

    EXPECT_TRUE(oracle(shrunk));
    EXPECT_TRUE(verify_program(shrunk).ok());
    EXPECT_LT(op_count(shrunk), op_count(orig));
    EXPECT_GT(stats.accepted, 0u);
    EXPECT_NO_THROW(run_golden(shrunk, 10'000'000));
}

TEST(FuzzSmoke, FixedSeedBatchHasNoDivergences)
{
    ScopedNoDiskCache no_disk;
    const std::vector<SweepPoint> sweep = default_sweep();
    ASSERT_GE(sweep.size(), 30u);
    const u64 master_seed = 1; // mirrors the ci.sh fuzz-smoke stage
    for (u32 i = 0; i < 25; ++i) {
        const u64 seed = hash_combine(master_seed, i);
        const Program prog = generate_fuzz_program(seed);
        const auto div = diff_program(prog, sweep);
        ASSERT_FALSE(div.has_value())
            << "seed 0x" << std::hex << seed << std::dec << " diverged at "
            << div->point << " (" << divergence_kind_name(div->kind)
            << "): " << div->message;
    }
}

} // namespace
} // namespace voltron
