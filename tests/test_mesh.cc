/** @file Geometry-aware codegen and scalable-network acceptance tests.
 *
 * Two contracts from the mesh-scaling work:
 *
 *  1. **Bit-identity of the indexed queue model.** The Virtual-Link
 *     style indexed FIFOs must reproduce the legacy CAM-scan model's
 *     MachineResult and trace stream exactly, event for event, across
 *     real compiled workloads (the unit-level randomized face lives in
 *     test_network.cc).
 *
 *  2. **Geometry-correct codegen.** A program compiled for an explicit
 *     mesh shape routes its coupled-mode hop chains against that shape
 *     and still reproduces the golden model; a shape-bound program
 *     refuses to run on a machine with different geometry.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "core/voltron.hh"
#include "ir/builder.hh"
#include "workloads/archetypes.hh"
#include "workloads/suite.hh"

namespace voltron {
namespace {

SuiteScale
test_scale()
{
    SuiteScale scale;
    scale.targetOps = 20'000;
    return scale;
}

void
expect_identical(const MachineResult &a, const MachineResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.exitValue, b.exitValue) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.dynamicOps, b.dynamicOps) << what;
    EXPECT_EQ(a.coupledCycles, b.coupledCycles) << what;
    EXPECT_EQ(a.decoupledCycles, b.decoupledCycles) << what;
    EXPECT_EQ(a.regionCycles, b.regionCycles) << what;
    ASSERT_EQ(a.issued.size(), b.issued.size()) << what;
    for (CoreId c = 0; c < a.issued.size(); ++c) {
        EXPECT_EQ(a.issued[c], b.issued[c]) << what << " core " << c;
        EXPECT_EQ(a.idleCycles[c], b.idleCycles[c])
            << what << " core " << c;
        for (size_t cat = 0;
             cat < static_cast<size_t>(StallCat::NumCats); ++cat) {
            EXPECT_EQ(a.stalls[c][cat], b.stalls[c][cat])
                << what << " core " << c << " stall "
                << stall_cat_name(static_cast<StallCat>(cat));
        }
    }
}

/** Run @p mp under both queue models (same config otherwise, shaped by
 * @p mutate) and require identical results, memory, and trace events. */
template <typename Mutate>
void
check_models_identical(const MachineProgram &mp, const MachineConfig &base,
                       const std::string &what, Mutate mutate)
{
    RingBufferTraceSink idx_ring;
    MachineConfig idx_config = base;
    mutate(idx_config);
    idx_config.net.legacyScanQueues = false;
    idx_config.traceSink = &idx_ring;
    Machine idx_machine(mp, idx_config);
    const MachineResult idx = idx_machine.run();

    RingBufferTraceSink leg_ring;
    MachineConfig leg_config = base;
    mutate(leg_config);
    leg_config.net.legacyScanQueues = true;
    leg_config.traceSink = &leg_ring;
    Machine leg_machine(mp, leg_config);
    const MachineResult leg = leg_machine.run();

    expect_identical(idx, leg, what);
    for (const DataObject &obj : mp.original.data) {
        for (u64 off = 0; off < obj.size; off += 8) {
            ASSERT_EQ(idx_machine.memory().read(obj.base + off, 8),
                      leg_machine.memory().read(obj.base + off, 8))
                << what << " @" << obj.base + off;
        }
    }

    const std::vector<TraceEvent> idx_events = idx_ring.events();
    const std::vector<TraceEvent> leg_events = leg_ring.events();
    ASSERT_EQ(idx_events.size(), leg_events.size()) << what;
    EXPECT_EQ(idx_ring.dropped(), leg_ring.dropped()) << what;
    for (size_t i = 0; i < idx_events.size(); ++i)
        ASSERT_TRUE(idx_events[i] == leg_events[i])
            << what << " event " << i;

    // The network's own observables agree too.
    const OperandNetwork &in = idx_machine.network();
    const OperandNetwork &ln = leg_machine.network();
    EXPECT_EQ(in.stats().get("net.messages"),
              ln.stats().get("net.messages"))
        << what;
    EXPECT_EQ(in.stats().get("net.receives"),
              ln.stats().get("net.receives"))
        << what;
    EXPECT_EQ(in.hopLatency().count(), ln.hopLatency().count()) << what;
    EXPECT_EQ(in.hopLatency().sum(), ln.hopLatency().sum()) << what;
    EXPECT_EQ(in.queueDepth().count(), ln.queueDepth().count()) << what;
    EXPECT_EQ(in.queueDepth().sum(), ln.queueDepth().sum()) << what;
    EXPECT_EQ(in.queueDepth().max(), ln.queueDepth().max()) << what;
}

TEST(MeshBitIdentity, IndexedMatchesLegacyAcrossSuiteAndModes)
{
    static const char *const kBenches[] = {"164.gzip", "197.parser",
                                           "052.alvinn"};
    static const Strategy kStrategies[] = {
        Strategy::IlpOnly, Strategy::TlpOnly, Strategy::LlpOnly,
        Strategy::Hybrid};
    for (const char *bench : kBenches) {
        VoltronSystem sys(build_benchmark(bench, test_scale()));
        for (Strategy strategy : kStrategies) {
            CompileOptions opts;
            opts.strategy = strategy;
            opts.numCores = 4;
            opts.minOpsPerActivation = 1;
            const MachineProgram &mp = sys.compile(opts);
            const std::string what = std::string(bench) + "/" +
                                     strategy_name(strategy) + "/c4";
            check_models_identical(mp, MachineConfig::forCores(4), what,
                                   [](MachineConfig &) {});
        }
    }
}

TEST(MeshBitIdentity, IndexedMatchesLegacyOnAdversarialNetworks)
{
    VoltronSystem sys(build_benchmark("197.parser", test_scale()));
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 4;
    const MachineProgram &mp = sys.compile(opts);
    check_models_identical(mp, MachineConfig::forCores(4), "qcap1",
                           [](MachineConfig &config) {
                               config.net.queueCapacity = 1;
                           });
    check_models_identical(mp, MachineConfig::forCores(4), "slownet",
                           [](MachineConfig &config) {
                               config.net.queueCapacity = 2;
                               config.net.queueBaseLatency = 3;
                               config.net.hopLatency = 3;
                           });
}

TEST(MeshBitIdentity, IndexedMatchesLegacyOn16CoreMesh)
{
    VoltronSystem sys(build_benchmark("164.gzip", test_scale()));
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 16;
    opts.minOpsPerActivation = 1;
    const MachineProgram &mp = sys.compile(opts);
    check_models_identical(mp, MachineConfig::forCores(16), "hybrid/c16",
                           [](MachineConfig &) {});
}

/** Every suite benchmark, compiled for non-default shapes, still
 * reproduces the golden interpreter run — hop chains route correctly
 * on wide, flat, and square geometries. */
TEST(MeshCodegen, ExplicitShapesReproduceGoldenAcrossSuite)
{
    struct Shape
    {
        u16 rows, cols;
    };
    static const Shape kShapes[] = {{2, 4}, {1, 8}, {4, 4}};
    for (const std::string &bench : benchmark_names()) {
        VoltronSystem sys(build_benchmark(bench, test_scale()));
        for (const Shape &shape : kShapes) {
            CompileOptions opts;
            opts.strategy = Strategy::Hybrid;
            opts.numCores = static_cast<u16>(shape.rows * shape.cols);
            opts.meshRows = shape.rows;
            opts.meshCols = shape.cols;
            opts.minOpsPerActivation = 1;
            const RunOutcome outcome = sys.run(opts);
            EXPECT_TRUE(outcome.exitMatches)
                << bench << " " << shape.rows << "x" << shape.cols;
            EXPECT_TRUE(outcome.memoryMatches)
                << bench << " " << shape.rows << "x" << shape.cols;
        }
    }
}

/** Coupled-mode ILP at 8+ cores regression: wide schedules used to
 * place two BCASTs in the same cycle, so half the broadcast GETs read
 * the other transfer's value off the single wire — a silent wrong
 * result (early loop exits via a corrupted exit predicate). The
 * scheduler now serialises broadcasts and the network panics on a
 * same-cycle collision; these runs diverged before that fix. */
TEST(MeshCodegen, CoupledIlpReproducesGoldenAtScale)
{
    static const char *const kBenches[] = {"164.gzip", "197.parser",
                                           "179.art"};
    for (const char *bench : kBenches) {
        VoltronSystem sys(build_benchmark(bench, test_scale()));
        for (u16 cores : {8, 16}) {
            CompileOptions opts;
            opts.strategy = Strategy::IlpOnly;
            opts.numCores = cores;
            opts.minOpsPerActivation = 1;
            const RunOutcome outcome = sys.run(opts);
            EXPECT_TRUE(outcome.exitMatches) << bench << " c" << cores;
            EXPECT_TRUE(outcome.memoryMatches) << bench << " c" << cores;
        }
    }
}

TEST(MeshCodegen, LargestMachineReproducesGolden)
{
    VoltronSystem sys(build_benchmark("164.gzip", test_scale()));
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 64;
    opts.minOpsPerActivation = 1;
    const RunOutcome outcome = sys.run(opts);
    EXPECT_TRUE(outcome.exitMatches);
    EXPECT_TRUE(outcome.memoryMatches);
}

/** One long embarrassingly parallel counted loop (a DOALL stream
 * phase), called directly from main. */
Program
doall_stream_program(u64 trips, u64 elems)
{
    Rng rng(4242);
    ProgramBuilder b("doall_scaling");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    PhaseParams pp;
    pp.trips = trips;
    pp.elems = elems;
    pp.width = 5;
    const FuncId f =
        emit_phase(b, Archetype::DoallStream, "stream", pp, rng);
    Program prog = b.take();
    Function &main_fn = prog.function(0);
    main_fn.blocks.clear();
    main_fn.addBlock("entry");
    BasicBlock &bb = main_fn.block(0);
    bb.append(ops::movi(gpr(1), 1));
    RegId bt = main_fn.freshReg(RegClass::BTR);
    bb.append(ops::pbr(bt, CodeRef::to_function(f)));
    bb.append(ops::call(bt));
    bb.append(ops::halt(gpr(0)));
    return prog;
}

/**
 * DOALL chunking must widen with the machine: on an embarrassingly
 * parallel loop, a 16-core mesh has to beat the 4-core mesh strictly,
 * and the largest machine must never fall behind the 4-core number
 * (the historical failure mode: chunking split numCores ways with a
 * flat per-worker spawn/parameterise cost, so 16–64-core meshes ran
 * *slower* than 4-core ones — 64 cores dipped below serial).
 */
TEST(MeshCodegen, DoallSpeedupWidensWithTheMachine)
{
    VoltronSystem sys(doall_stream_program(4096, 512));
    const Cycle serial = sys.baselineCycles();
    ASSERT_GT(serial, 0u);

    const auto speedup_at = [&](u16 cores) {
        CompileOptions opts;
        opts.strategy = Strategy::LlpOnly;
        opts.numCores = cores;
        opts.minOpsPerActivation = 1;
        opts.minDoallTrip = 1.0;
        const RunOutcome outcome = sys.run(opts);
        EXPECT_TRUE(outcome.correct()) << cores << " cores";
        return static_cast<double>(serial) /
               static_cast<double>(outcome.result.cycles);
    };

    const double s4 = speedup_at(4);
    const double s16 = speedup_at(16);
    const double s64 = speedup_at(64);
    EXPECT_GT(s4, 1.5) << "4-core DOALL barely parallelises";
    EXPECT_GT(s16, s4) << "16-core mesh must strictly beat 4-core";
    EXPECT_GT(s64, s4) << "64-core mesh fell behind the 4-core number";
}

/** A shape-bound program (coupled hop chains routed for 2x4) must not
 * run on an 8-core machine with different geometry, while the same
 * options on the matching mesh run fine. */
TEST(MeshCodegen, ShapeBoundProgramRejectsMismatchedMachine)
{
    VoltronSystem sys(build_benchmark("164.gzip", test_scale()));
    CompileOptions opts;
    opts.strategy = Strategy::IlpOnly; // coupled: geometry-routed
    opts.numCores = 8;
    opts.meshRows = 2;
    opts.meshCols = 4;
    opts.minOpsPerActivation = 1;
    const MachineProgram &mp = sys.compile(opts);
    ASSERT_EQ(mp.meshRows, 2);
    ASSERT_EQ(mp.meshCols, 4);
    EXPECT_NO_THROW(Machine(mp, MachineConfig::forMesh(2, 4)));
    EXPECT_THROW(Machine(mp, MachineConfig::forMesh(1, 8)), FatalError);
    EXPECT_THROW(Machine(mp, MachineConfig::forMesh(4, 2)), FatalError);
}

} // namespace
} // namespace voltron
