/** @file Sharded disk tier, LRU eviction, and the concurrent-writer
 * publish protocol.
 *
 * The disk tier's contracts under a long-lived server:
 *
 *  1. **Shard fan-out.** Entries land in dir/<top-nibble>/ and legacy
 *     flat entries written before sharding are still found.
 *  2. **LRU-by-mtime eviction.** evict_cache_to_size removes oldest
 *     entries first, sweeps aged orphan temps without counting them
 *     against the bound, and never touches a fresh (in-flight) temp.
 *  3. **Budget enforcement.** With a disk budget set, the tier stays
 *     under the bound at every observable point across stores.
 *  4. **Publish protocol under concurrency.** Overlapping put/get/evict
 *     from many threads — and from forked processes — never produce a
 *     torn read: every hit is hash-verified, the corrupt counter stays
 *     zero, and every surviving entry re-verifies byte-for-byte.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/artifact_cache.hh"
#include "trace/metrics.hh"

namespace voltron {
namespace {

namespace fs = std::filesystem;

class ScopedCacheDir
{
  public:
    explicit ScopedCacheDir(const std::string &tag)
    {
        dir_ = fs::temp_directory_path() /
               ("voltron-test-" + tag + "-" + std::to_string(::getpid()));
        fs::remove_all(dir_);
        ArtifactCache::instance().setDiskDir(dir_.string());
        ArtifactCache::instance().clearMemory();
        ArtifactCache::instance().resetStats();
    }

    ~ScopedCacheDir()
    {
        ArtifactCache::instance().setDiskBudget(std::nullopt);
        ArtifactCache::instance().setDiskDir(std::nullopt);
        ArtifactCache::instance().clearMemory();
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    const fs::path &path() const { return dir_; }

  private:
    fs::path dir_;
};

/** Deterministic key/value pairs so any reader can verify any entry. */
u64
key_of(u64 i)
{
    return (i + 1) * 0x9e3779b97f4a7c15ULL;
}

Cycle
value_of(u64 key)
{
    return key ^ 0x5bd1e995u;
}

u64
disk_bytes(const fs::path &dir)
{
    u64 total = 0;
    for_each_cache_file(dir.string(), [&](const fs::directory_entry &de) {
        if (de.path().extension() != ".vcache")
            return;
        std::error_code ec;
        const u64 sz = de.file_size(ec);
        if (!ec)
            total += sz;
    });
    return total;
}

size_t
published_entries(const fs::path &dir)
{
    size_t n = 0;
    for_each_cache_file(dir.string(), [&](const fs::directory_entry &de) {
        if (de.path().extension() == ".vcache")
            ++n;
    });
    return n;
}

TEST(CacheSharding, EntriesFanOutByTopNibble)
{
    ScopedCacheDir cache("shards");
    ArtifactCache &ac = ArtifactCache::instance();

    for (u64 i = 0; i < 64; ++i)
        ac.putBaseline(key_of(i), value_of(key_of(i)));

    // Every published entry sits in the shard its key names; multiple
    // shards are populated (the multiplier spreads top nibbles).
    size_t seen = 0;
    std::array<bool, kCacheShards> used{};
    for_each_cache_file(cache.path().string(),
                        [&](const fs::directory_entry &de) {
        if (de.path().extension() != ".vcache")
            return;
        CacheEntryHeader header;
        ASSERT_TRUE(
            read_cache_entry(de.path().string(), header, nullptr));
        const size_t shard = cache_shard_of(header.key);
        EXPECT_EQ(de.path().parent_path().filename().string(),
                  cache_shard_name(shard))
            << de.path();
        used[shard] = true;
        ++seen;
    });
    EXPECT_EQ(seen, 64u);
    size_t populated = 0;
    for (bool u : used)
        populated += u;
    EXPECT_GE(populated, 4u);

    // Per-shard store counters tile the total.
    const ArtifactCacheStats stats = ac.stats();
    u64 shard_stores = 0;
    for (const auto &sh : stats.byShard)
        shard_stores += sh.stores;
    EXPECT_EQ(shard_stores, 64u);
}

TEST(CacheSharding, LegacyFlatEntryIsStillFound)
{
    ScopedCacheDir cache("legacy");
    ArtifactCache &ac = ArtifactCache::instance();

    const u64 key = key_of(7);
    ac.putBaseline(key, value_of(key));

    // Demote the entry to the pre-sharding flat layout.
    const std::string name =
        cache_entry_filename(ArtifactKind::Baseline, key);
    const fs::path sharded =
        cache.path() / cache_shard_name(cache_shard_of(key)) / name;
    ASSERT_TRUE(fs::exists(sharded));
    fs::rename(sharded, cache.path() / name);

    ac.clearMemory();
    ac.resetStats();
    const std::optional<Cycle> hit = ac.getBaseline(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, value_of(key));
    EXPECT_EQ(ac.stats().diskHits(), 1u);
    EXPECT_EQ(ac.stats().misses(), 0u);
}

TEST(CacheEviction, EvictToSizeIsLruByMtime)
{
    ScopedCacheDir cache("lru");
    ArtifactCache &ac = ArtifactCache::instance();

    // 16 entries; age the first 8 so they are the LRU victims.
    constexpr u64 kEntries = 16;
    for (u64 i = 0; i < kEntries; ++i)
        ac.putBaseline(key_of(i), value_of(key_of(i)));
    const u64 total = disk_bytes(cache.path());
    const u64 per_entry = total / kEntries;
    const auto old_time = fs::file_time_type::clock::now() -
                          std::chrono::hours(24);
    for (u64 i = 0; i < kEntries / 2; ++i) {
        const fs::path p =
            cache.path() / cache_shard_name(cache_shard_of(key_of(i))) /
            cache_entry_filename(ArtifactKind::Baseline, key_of(i));
        ASSERT_TRUE(fs::exists(p));
        fs::last_write_time(p, old_time - std::chrono::minutes(i));
    }

    // Shrink to half: exactly the aged half goes, oldest first.
    const CacheEvictionReport report =
        evict_cache_to_size(cache.path().string(), total - 8 * per_entry);
    EXPECT_EQ(report.scannedEntries, kEntries);
    EXPECT_EQ(report.evictedEntries, 8u);
    EXPECT_LE(report.remainingBytes, total - 8 * per_entry);
    ac.clearMemory();
    for (u64 i = 0; i < kEntries; ++i) {
        const bool expect_alive = i >= kEntries / 2;
        EXPECT_EQ(ac.getBaseline(key_of(i)).has_value(), expect_alive)
            << "entry " << i;
    }
}

TEST(CacheEviction, OrphanTempsSweptButFreshTempsSpared)
{
    ScopedCacheDir cache("temps");
    ArtifactCache &ac = ArtifactCache::instance();
    ac.putBaseline(key_of(0), value_of(key_of(0)));

    const std::string name =
        cache_entry_filename(ArtifactKind::Baseline, 0xabcdULL);
    const fs::path aged = cache.path() / (name + ".tmp11111");
    const fs::path fresh = cache.path() / (name + ".tmp22222");
    std::ofstream(aged, std::ios::binary) << "old-partial";
    std::ofstream(fresh, std::ios::binary) << "live-publish";
    fs::last_write_time(
        aged, fs::file_time_type::clock::now() -
                  std::chrono::seconds(2 * kCacheTempSweepAgeSeconds));

    // A pass with an unreachable bound still sweeps the aged orphan —
    // and only it; the published entry and the fresh temp survive.
    const CacheEvictionReport report =
        evict_cache_to_size(cache.path().string(), u64(1) << 40);
    EXPECT_EQ(report.orphanTemps, 1u);
    EXPECT_EQ(report.evictedEntries, 0u);
    EXPECT_FALSE(fs::exists(aged));
    EXPECT_TRUE(fs::exists(fresh));
    EXPECT_EQ(published_entries(cache.path()), 1u);
}

TEST(CacheEviction, BudgetHoldsAcrossStoresAndCountsEvictions)
{
    ScopedCacheDir cache("budget");
    ArtifactCache &ac = ArtifactCache::instance();

    // Budget sized for ~8 baseline entries (44 bytes each).
    constexpr u64 kBudget = 360;
    ac.setDiskBudget(kBudget);
    EXPECT_EQ(ac.diskBudget(), kBudget);

    for (u64 i = 0; i < 40; ++i) {
        ac.putBaseline(key_of(i), value_of(key_of(i)));
        // The bound holds at *every* observable point, not just at the
        // end: makeRoom evicts before the temp is even written.
        ASSERT_LE(disk_bytes(cache.path()), kBudget) << "after store " << i;
    }
    const ArtifactCacheStats stats = ac.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.evictedBytes, 0u);
    u64 shard_evicted = 0;
    for (const auto &sh : stats.byShard)
        shard_evicted += sh.evicted;
    EXPECT_EQ(shard_evicted, stats.evictions);

    // The most recent stores survived (LRU evicts from the old end).
    ac.clearMemory();
    EXPECT_TRUE(ac.getBaseline(key_of(39)).has_value());

    // enforceBudget with a tighter budget shrinks further.
    ac.setDiskBudget(u64(100));
    const CacheEvictionReport report = ac.enforceBudget();
    EXPECT_GT(report.evictedEntries, 0u);
    EXPECT_LE(disk_bytes(cache.path()), 100u);
    ac.setDiskBudget(std::nullopt);
}

TEST(CacheMetrics, CountersPublishUnderDottedNamespace)
{
    ScopedCacheDir cache("metrics");
    ArtifactCache &ac = ArtifactCache::instance();
    ac.putBaseline(key_of(1), value_of(key_of(1)));
    ac.clearMemory();
    ASSERT_TRUE(ac.getBaseline(key_of(1)).has_value()); // disk hit
    ASSERT_TRUE(ac.getBaseline(key_of(1)).has_value()); // mem hit
    ASSERT_FALSE(ac.getBaseline(key_of(2)).has_value()); // miss

    MetricsRegistry metrics;
    collect_cache_metrics(metrics);
    EXPECT_EQ(metrics.get("cache.diskHits"), 1u);
    EXPECT_EQ(metrics.get("cache.memHits"), 1u);
    EXPECT_EQ(metrics.get("cache.hits"), 2u);
    EXPECT_EQ(metrics.get("cache.misses"), 1u);
    EXPECT_EQ(metrics.get("cache.stores"), 1u);
    EXPECT_EQ(metrics.get("cache.corrupt"), 0u);
    EXPECT_EQ(metrics.get("cache.baseline.stores"), 1u);
    EXPECT_EQ(metrics.get("cache.disk.enabled"), 1u);
    // The touched shard reports; untouched shards are skipped.
    const std::string shard =
        cache_shard_name(cache_shard_of(key_of(1)));
    EXPECT_EQ(metrics.get("cache.shard" + shard + ".stores"), 1u);
}

TEST(CacheConcurrency, ThreadsHammerOneDirectoryWithoutTornReads)
{
    ScopedCacheDir cache("threads");
    ArtifactCache &ac = ArtifactCache::instance();
    constexpr u64 kKeys = 48;
    constexpr u64 kBudget = 44 * 24; // room for half the key space
    ac.setDiskBudget(kBudget);

    constexpr int kThreads = 6;
    constexpr int kRounds = 120;
    std::atomic<u64> bad_hits{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int r = 0; r < kRounds; ++r) {
                const u64 i = static_cast<u64>((r * 7 + t * 13) % kKeys);
                const u64 key = key_of(i);
                switch ((r + t) % 4) {
                  case 0:
                    ac.putBaseline(key, value_of(key));
                    break;
                  case 1: {
                    const std::optional<Cycle> got = ac.getBaseline(key);
                    if (got && *got != value_of(key))
                        bad_hits.fetch_add(1);
                    break;
                  }
                  case 2:
                    // Force the next get to the disk tier.
                    ac.clearMemory();
                    break;
                  default:
                    // A concurrent evictor racing the writers, as the
                    // server's background sweep does.
                    evict_cache_to_size(cache.path().string(), kBudget);
                    break;
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    // No torn read surfaced as a wrong value or a corrupt entry.
    EXPECT_EQ(bad_hits.load(), 0u);
    EXPECT_EQ(ac.stats().corrupt, 0u);

    // Everything still on disk re-verifies byte-for-byte.
    size_t survivors = 0;
    for_each_cache_file(cache.path().string(),
                        [&](const fs::directory_entry &de) {
        if (de.path().extension() != ".vcache")
            return;
        CacheEntryHeader header;
        std::vector<u8> payload;
        EXPECT_TRUE(
            read_cache_entry(de.path().string(), header, &payload))
            << de.path();
        ++survivors;
    });
    EXPECT_GT(survivors, 0u);
    EXPECT_LE(disk_bytes(cache.path()), kBudget);

    // No lost entries below the bound: re-publishing the whole key
    // space under the budget leaves every recent key readable.
    for (u64 i = 0; i < 20; ++i)
        ac.putBaseline(key_of(i), value_of(key_of(i)));
    ac.clearMemory();
    for (u64 i = 12; i < 20; ++i) {
        const std::optional<Cycle> got = ac.getBaseline(key_of(i));
        ASSERT_TRUE(got.has_value()) << "entry " << i;
        EXPECT_EQ(*got, value_of(key_of(i)));
    }
}

TEST(CacheConcurrency, ForkedProcessesShareOneDirectory)
{
    ScopedCacheDir cache("fork");
    constexpr int kChildren = 4;
    constexpr u64 kKeys = 24;

    std::vector<pid_t> children;
    for (int c = 0; c < kChildren; ++c) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: its own process-level cache against the shared
            // dir (fork duplicated the singleton; the dir override
            // carried over). Mixed put/get/evict, then verify.
            ArtifactCache &ac = ArtifactCache::instance();
            bool ok = true;
            for (int r = 0; r < 200; ++r) {
                const u64 i = static_cast<u64>((r * 5 + c * 11) % kKeys);
                const u64 key = key_of(i);
                if ((r + c) % 3 == 0) {
                    ac.putBaseline(key, value_of(key));
                } else if ((r + c) % 3 == 1) {
                    ac.clearMemory();
                    const std::optional<Cycle> got = ac.getBaseline(key);
                    if (got && *got != value_of(key))
                        ok = false;
                } else if (r % 50 == 0) {
                    evict_cache_to_size(cache.path().string(),
                                        44 * kKeys / 2);
                }
            }
            if (ac.stats().corrupt != 0)
                ok = false;
            ::_exit(ok ? 0 : 1);
        }
        children.push_back(pid);
    }

    for (const pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0) << "child " << pid;
    }

    // The parent sees a consistent tier: every survivor hash-verifies
    // and no temp debris is older than the run itself.
    for_each_cache_file(cache.path().string(),
                        [&](const fs::directory_entry &de) {
        if (de.path().extension() != ".vcache")
            return;
        CacheEntryHeader header;
        std::vector<u8> payload;
        EXPECT_TRUE(
            read_cache_entry(de.path().string(), header, &payload))
            << de.path();
        EXPECT_EQ(header.payloadSize, payload.size());
    });
    ArtifactCache::instance().clearMemory();
    ArtifactCache::instance().resetStats();
    size_t readable = 0;
    for (u64 i = 0; i < kKeys; ++i) {
        const std::optional<Cycle> got =
            ArtifactCache::instance().getBaseline(key_of(i));
        if (got) {
            EXPECT_EQ(*got, value_of(key_of(i))) << "entry " << i;
            ++readable;
        }
    }
    EXPECT_GT(readable, 0u);
    EXPECT_EQ(ArtifactCache::instance().stats().corrupt, 0u);
}

} // namespace
} // namespace voltron
