/** @file Unit tests for the transactional memory. */

#include <gtest/gtest.h>

#include "support/rng.hh"
#include "tm/tm.hh"

namespace voltron {
namespace {

class Tm : public ::testing::Test
{
  protected:
    MemoryImage mem;
    TransactionalMemory tm{4, 64};
};

TEST_F(Tm, BufferedWritesInvisibleUntilResolve)
{
    mem.write(0x100, 1, 8);
    tm.begin(0, 0);
    tm.write(0, 0x100, 99, 8);
    EXPECT_EQ(mem.read(0x100, 8), 1u); // still old value
    EXPECT_EQ(tm.read(0, mem, 0x100, 8, false), 99u); // own write visible
    tm.close(0);
    TmResolution res = tm.resolve(mem);
    EXPECT_FALSE(res.violated);
    EXPECT_EQ(mem.read(0x100, 8), 99u);
}

TEST_F(Tm, ReadSeesMemoryWhenNotWritten)
{
    mem.write(0x200, 7, 8);
    tm.begin(1, 0);
    EXPECT_EQ(tm.read(1, mem, 0x200, 8, false), 7u);
    tm.close(1);
    tm.resolve(mem);
}

TEST_F(Tm, PartialByteMergeOfOwnWrites)
{
    mem.write(0x300, 0x1111111111111111ULL, 8);
    tm.begin(0, 0);
    tm.write(0, 0x302, 0xab, 1);
    EXPECT_EQ(tm.read(0, mem, 0x300, 8, false), 0x1111111111ab1111ULL);
    tm.close(0);
    tm.resolve(mem);
    EXPECT_EQ(mem.read(0x300, 8), 0x1111111111ab1111ULL);
}

TEST_F(Tm, EarlierWriteLaterReadViolates)
{
    tm.begin(0, 0); // chunk 0
    tm.begin(1, 1); // chunk 1
    tm.write(0, 0x400, 5, 8);          // chunk 0 writes
    tm.read(1, mem, 0x400, 8, false);  // chunk 1 reads stale
    tm.close(0);
    tm.close(1);
    TmResolution res = tm.resolve(mem);
    EXPECT_TRUE(res.violated);
    EXPECT_EQ(mem.read(0x400, 8), 0u); // nothing committed
}

TEST_F(Tm, LaterWriteEarlierReadIsFine)
{
    // Anti-dependence: serial order reads before the later chunk writes.
    tm.begin(0, 0);
    tm.begin(1, 1);
    tm.read(0, mem, 0x500, 8, false); // chunk 0 reads
    tm.write(1, 0x500, 9, 8);         // chunk 1 writes
    tm.close(0);
    tm.close(1);
    TmResolution res = tm.resolve(mem);
    EXPECT_FALSE(res.violated);
    EXPECT_EQ(mem.read(0x500, 8), 9u);
}

TEST_F(Tm, WriteWriteCommitsInChunkOrder)
{
    tm.begin(0, 1); // core 0 runs chunk 1 (later)
    tm.begin(1, 0); // core 1 runs chunk 0 (earlier)
    tm.write(0, 0x600, 111, 8);
    tm.write(1, 0x600, 222, 8);
    tm.close(0);
    tm.close(1);
    TmResolution res = tm.resolve(mem);
    EXPECT_FALSE(res.violated);
    // Chunk 1's write is serially later and must win.
    EXPECT_EQ(mem.read(0x600, 8), 111u);
}

TEST_F(Tm, FalseSharingAtLineGranularityAborts)
{
    // Different bytes of the same 64B line: a coherence-based detector
    // (and therefore this model) conservatively aborts.
    tm.begin(0, 0);
    tm.begin(1, 1);
    tm.write(0, 0x700, 1, 8);
    tm.read(1, mem, 0x738, 8, false); // same line, different word
    tm.close(0);
    tm.close(1);
    EXPECT_TRUE(tm.resolve(mem).violated);
}

TEST_F(Tm, DisjointLinesCommit)
{
    tm.begin(0, 0);
    tm.begin(1, 1);
    tm.write(0, 0x800, 1, 8);
    tm.read(1, mem, 0x840, 8, false); // next line
    tm.write(1, 0x880, 2, 8);
    tm.close(0);
    tm.close(1);
    TmResolution res = tm.resolve(mem);
    EXPECT_FALSE(res.violated);
    EXPECT_EQ(res.chunks, 2u);
    EXPECT_EQ(res.linesCommitted, 2u);
}

TEST_F(Tm, AbortDiscardsTransaction)
{
    tm.begin(0, 0);
    tm.write(0, 0x900, 1, 8);
    tm.abort(0);
    EXPECT_FALSE(tm.inFlight(0));
    TmResolution res = tm.resolve(mem);
    EXPECT_EQ(res.chunks, 0u);
    EXPECT_EQ(mem.read(0x900, 8), 0u);
}

TEST_F(Tm, StateMachineChecks)
{
    EXPECT_FALSE(tm.active(0));
    tm.begin(0, 0);
    EXPECT_TRUE(tm.active(0));
    EXPECT_THROW(tm.begin(0, 1), PanicError); // nested begin
    tm.close(0);
    EXPECT_FALSE(tm.active(0));
    EXPECT_TRUE(tm.inFlight(0));
    EXPECT_THROW(tm.close(0), PanicError); // double close
    tm.resolve(mem);
    EXPECT_FALSE(tm.inFlight(0));
}

TEST_F(Tm, ResolveWithOpenTransactionPanics)
{
    tm.begin(0, 0);
    EXPECT_THROW(tm.resolve(mem), PanicError);
    tm.close(0);
    tm.resolve(mem);
}

TEST_F(Tm, SpeculativeAccessOutsideTransactionPanics)
{
    EXPECT_THROW(tm.read(0, mem, 0x10, 8, false), PanicError);
    EXPECT_THROW(tm.write(0, 0x10, 1, 8), PanicError);
}

/**
 * Property: for random disjoint per-chunk index ranges (a DOALL-shaped
 * access pattern), resolution never violates and memory equals the
 * serial result; for overlapping read/write ranges between ordered
 * chunks (cross-iteration flow), it aborts.
 */
TEST_F(Tm, PropertyDoallPatternsCommitSerially)
{
    Rng rng(99);
    for (int trial = 0; trial < 30; ++trial) {
        MemoryImage m;
        TransactionalMemory t(4, 64);
        const Addr base = 0x10000;
        for (CoreId c = 0; c < 4; ++c) {
            t.begin(c, c);
            // Chunk c owns elements [c*16, c*16+16), one line apart per
            // element to keep chunks line-disjoint.
            for (int k = 0; k < 16; ++k) {
                const Addr addr = base + (c * 16 + k) * 64;
                const u64 value = rng.next();
                t.write(c, addr, value, 8);
                EXPECT_EQ(t.read(c, m, addr, 8, false), value);
            }
            t.close(c);
        }
        TmResolution res = t.resolve(m);
        EXPECT_FALSE(res.violated);
        EXPECT_EQ(res.chunks, 4u);
    }
}

TEST_F(Tm, PropertyCrossChunkFlowAborts)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        MemoryImage m;
        TransactionalMemory t(4, 64);
        const CoreId writer = static_cast<CoreId>(rng.below(3));
        const CoreId reader = static_cast<CoreId>(
            writer + 1 + rng.below(3 - writer));
        for (CoreId c = 0; c < 4; ++c)
            t.begin(c, c);
        const Addr addr = 0x20000 + rng.below(8) * 64;
        t.write(writer, addr, 1, 8);
        t.read(reader, m, addr, 8, false);
        for (CoreId c = 0; c < 4; ++c)
            t.close(c);
        EXPECT_TRUE(t.resolve(m).violated)
            << "writer " << writer << " reader " << reader;
    }
}

} // namespace
} // namespace voltron
