/**
 * @file
 * Logger coverage: level filtering, dotted-subtree overrides
 * (longest-prefix-at-a-boundary), spec parsing and its all-or-nothing
 * commit, JSON-lines strictness (validated with the same parser CI
 * uses on the daemon's log), text-mode shape, and concurrent-writer
 * line atomicity.
 */

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/log.hh"
#include "trace/perfetto.hh"

using namespace voltron;

namespace {

/**
 * Point the process-wide logger at a local buffer for one test and
 * restore the defaults on the way out — the Logger is a singleton, so
 * every test must leave it the way the next expects to find it.
 */
class LogCapture
{
  public:
    LogCapture()
    {
        Logger::instance().configure("info,text");
        Logger::instance().setSink(&buffer_);
    }
    ~LogCapture()
    {
        Logger::instance().setSink(nullptr);
        Logger::instance().configure("info,text");
    }

    std::string text() const { return buffer_.str(); }

    std::vector<std::string>
    lines() const
    {
        std::vector<std::string> out;
        std::istringstream is(buffer_.str());
        std::string line;
        while (std::getline(is, line))
            out.push_back(line);
        return out;
    }

  private:
    std::ostringstream buffer_;
};

TEST(Log, ParseLevelRoundTrips)
{
    for (LogLevel level :
         {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
          LogLevel::Error, LogLevel::Off}) {
        LogLevel parsed;
        ASSERT_TRUE(parse_log_level(log_level_name(level), parsed));
        EXPECT_EQ(parsed, level);
    }
    LogLevel parsed;
    EXPECT_FALSE(parse_log_level("verbose", parsed));
    EXPECT_FALSE(parse_log_level("", parsed));
    EXPECT_FALSE(parse_log_level("INFO", parsed)); // spec is lowercase
}

TEST(Log, DefaultLevelFiltersLowerSeverities)
{
    LogCapture capture;
    ASSERT_TRUE(Logger::instance().configure("warn"));

    log_trace("server.test", "t");
    log_debug("server.test", "d");
    log_info("server.test", "i");
    log_warn("server.test", "w");
    log_error("server.test", "e");

    const std::vector<std::string> lines = capture.lines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("WARN"), std::string::npos);
    EXPECT_NE(lines[1].find("ERROR"), std::string::npos);
}

TEST(Log, SubtreeOverrideLongestDottedPrefixWins)
{
    LogCapture capture;
    ASSERT_TRUE(Logger::instance().configure(
        "info,server=debug,server.executor=trace,cache.disk=trace"));

    Logger &log = Logger::instance();
    EXPECT_EQ(log.levelFor("server"), LogLevel::Debug);
    EXPECT_EQ(log.levelFor("server.request"), LogLevel::Debug);
    EXPECT_EQ(log.levelFor("server.executor"), LogLevel::Trace);
    EXPECT_EQ(log.levelFor("server.executor.queue"), LogLevel::Trace);
    EXPECT_EQ(log.levelFor("cache.disk"), LogLevel::Trace);
    EXPECT_EQ(log.levelFor("cache.disk.evict"), LogLevel::Trace);
    // Prefix matches bind only at a '.' boundary.
    EXPECT_EQ(log.levelFor("serverx"), LogLevel::Info);
    EXPECT_EQ(log.levelFor("cache.diskette"), LogLevel::Info);
    // No override at all: the default applies.
    EXPECT_EQ(log.levelFor("mesh"), LogLevel::Info);

    EXPECT_TRUE(log.enabled(LogLevel::Trace, "server.executor"));
    EXPECT_FALSE(log.enabled(LogLevel::Trace, "server.request"));
    EXPECT_FALSE(log.enabled(LogLevel::Debug, "mesh"));
}

TEST(Log, ConfigureRejectsBadSpecsWithoutPartialCommit)
{
    LogCapture capture;
    ASSERT_TRUE(Logger::instance().configure("debug,server=trace"));

    std::string err;
    EXPECT_FALSE(Logger::instance().configure("verbose", &err));
    EXPECT_NE(err.find("verbose"), std::string::npos);
    EXPECT_FALSE(Logger::instance().configure("server=", &err));
    EXPECT_FALSE(Logger::instance().configure("=debug", &err));
    EXPECT_FALSE(Logger::instance().configure("server=loud", &err));

    // A rejected spec leaves the previous configuration untouched.
    EXPECT_EQ(Logger::instance().levelFor("mesh"), LogLevel::Debug);
    EXPECT_EQ(Logger::instance().levelFor("server.request"),
              LogLevel::Trace);
}

TEST(Log, JsonModeEmitsOneStrictJsonObjectPerLine)
{
    LogCapture capture;
    ASSERT_TRUE(Logger::instance().configure("info,json"));

    log_info("server.request", "done",
             {{"id", "r1"}, {"totalUs", u64{532}}, {"ok", true}});
    log_warn("cache.disk", "corrupt \"entry\"\nrecovered",
             {{"delta", i64{-3}}, {"ratio", 0.25}});

    const std::vector<std::string> lines = capture.lines();
    ASSERT_EQ(lines.size(), 2u);
    for (const std::string &line : lines) {
        std::string error;
        EXPECT_TRUE(validate_json(line, &error))
            << line << ": " << error;
    }
    EXPECT_NE(lines[0].find("\"sub\":\"server.request\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"totalUs\":532"), std::string::npos);
    EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
    // Quotes and newlines in the message arrive escaped, not raw.
    EXPECT_NE(lines[1].find("corrupt \\\"entry\\\"\\nrecovered"),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"delta\":-3"), std::string::npos);
}

TEST(Log, TextModeCarriesLevelSubsystemAndFields)
{
    LogCapture capture;
    ASSERT_TRUE(Logger::instance().configure("info,text"));

    log_info("server.request", "done", {{"id", "r1"}, {"totalUs", 532}});

    const std::vector<std::string> lines = capture.lines();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("INFO"), std::string::npos);
    EXPECT_NE(lines[0].find("server.request: done"), std::string::npos);
    EXPECT_NE(lines[0].find("id=r1"), std::string::npos);
    EXPECT_NE(lines[0].find("totalUs=532"), std::string::npos);
}

TEST(Log, LinesWrittenCountsOnlyEmittedLines)
{
    LogCapture capture;
    ASSERT_TRUE(Logger::instance().configure("warn"));

    const u64 before = Logger::instance().linesWritten();
    log_debug("server.test", "suppressed");
    log_info("server.test", "suppressed");
    log_warn("server.test", "emitted");
    log_error("server.test", "emitted");
    EXPECT_EQ(Logger::instance().linesWritten() - before, 2u);
}

TEST(Log, ConcurrentWritersNeverInterleaveBytes)
{
    LogCapture capture;
    ASSERT_TRUE(Logger::instance().configure("info,json"));

    constexpr size_t kThreads = 8;
    constexpr size_t kPerThread = 200;
    std::vector<std::thread> writers;
    for (size_t t = 0; t < kThreads; ++t)
        writers.emplace_back([t] {
            for (size_t i = 0; i < kPerThread; ++i)
                log_info("server.test", "w",
                         {{"thread", static_cast<u64>(t)},
                          {"seq", static_cast<u64>(i)}});
        });
    for (std::thread &t : writers)
        t.join();

    // Whole-line emission under the lock means exactly thread*count
    // lines, each one a complete JSON document — a torn line fails
    // validation, a merged pair changes the count.
    const std::vector<std::string> lines = capture.lines();
    ASSERT_EQ(lines.size(), kThreads * kPerThread);
    for (const std::string &line : lines) {
        std::string error;
        ASSERT_TRUE(validate_json(line, &error)) << line << ": " << error;
        ASSERT_NE(line.find("\"msg\":\"w\""), std::string::npos);
    }
}

} // namespace
