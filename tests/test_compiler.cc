/** @file Unit tests for the compiler: regions, dependence graph,
 * partitioners, scheduler, DOALL analysis, selection. */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "compiler/schedule.hh"
#include "interp/interp.hh"
#include "ir/scc.hh"
#include "ir/builder.hh"
#include "workloads/archetypes.hh"

namespace voltron {
namespace {

/** Loop-with-glue program: entry -> loop (region) -> halt. */
Program
loop_glue_program(u64 trips = 64)
{
    ProgramBuilder b("lg");
    Addr arr = b.allocArrayI64("a", std::vector<i64>(trips, 3));
    u32 sym = b.symbolOf("a");
    b.beginFunction("main");
    RegId base = b.emitImm(static_cast<i64>(arr));
    RegId sum = b.emitImm(0);
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, static_cast<i64>(trips));
    RegId off = b.newGpr();
    b.emit(ops::alui(Opcode::SHL, off, i, 3));
    RegId addr = b.newGpr();
    b.emit(ops::add(addr, base, off));
    RegId v = b.newGpr();
    b.emitLoad(v, addr, 0, sym);
    b.emit(ops::add(sum, sum, v));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();
    return b.take();
}

TEST(Regions, LoopBecomesRegionEntryStaysGlue)
{
    Program prog = loop_glue_program();
    const Function &fn = prog.functions[0];
    FuncAnalyses fa(fn);
    auto regions = form_regions(fn, fa);

    int loops = 0, glue = 0;
    for (const auto &region : regions) {
        if (region.kind == RegionKind::Loop)
            loops++;
        if (region.kind == RegionKind::Glue)
            glue++;
        // Every region has an entry inside itself.
        EXPECT_TRUE(region.contains(region.entry));
    }
    EXPECT_EQ(loops, 1);
    EXPECT_GE(glue, 1);

    // Blocks are tiled exactly once.
    std::set<BlockId> covered;
    for (const auto &region : regions)
        for (BlockId bb : region.blocks)
            EXPECT_TRUE(covered.insert(bb).second);
    EXPECT_EQ(covered.size(), fn.blocks.size());
}

TEST(Regions, CallForcesGlue)
{
    ProgramBuilder b("callglue");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    FuncId helper = b.beginFunction("helper", 0, true);
    b.emit(ops::movi(gpr(0), 1));
    b.emit(ops::ret());
    b.endFunction();
    b.beginFunction("caller");
    RegId i = b.newGpr();
    RegId sum = b.emitImm(0);
    LoopHandles loop = b.forLoop(i, 0, 8);
    RegId r = b.emitCall(helper, {}); // call inside the loop
    b.emit(ops::add(sum, sum, r));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();
    Program prog = b.take();

    const Function &fn = prog.functions[2];
    FuncAnalyses fa(fn);
    auto regions = form_regions(fn, fa);
    for (const auto &region : regions)
        EXPECT_NE(region.kind, RegionKind::Loop)
            << "loop containing a CALL must not become a loop region";
}

TEST(Regions, ExitEdgesPointOutside)
{
    Program prog = loop_glue_program();
    const Function &fn = prog.functions[0];
    FuncAnalyses fa(fn);
    for (const auto &region : form_regions(fn, fa)) {
        for (const auto &[from, to] : region.exitEdges) {
            EXPECT_TRUE(region.contains(from));
            EXPECT_FALSE(region.contains(to));
        }
    }
}

TEST(DepGraphTest, RegisterFlowEdges)
{
    Program prog = loop_glue_program();
    const Function &fn = prog.functions[0];
    FuncAnalyses fa(fn);
    auto regions = form_regions(fn, fa);
    const CompilerRegion *loop = nullptr;
    for (const auto &region : regions)
        if (region.kind == RegionKind::Loop)
            loop = &region;
    ASSERT_NE(loop, nullptr);

    GoldenRun run = run_golden(prog);
    DepGraph g = build_dep_graph(fn, *loop, run.profile, false);
    EXPECT_GT(g.nodes.size(), 5u);
    EXPECT_GT(g.totalWeight(), 0u);

    // The load's def feeds the accumulator add.
    bool load_feeds_add = false;
    for (u32 i = 0; i < g.nodes.size(); ++i) {
        if (!is_load(g.nodes[i].op->op))
            continue;
        for (const DepEdge &e : g.succs[i])
            if (g.nodes[e.to].op->op == Opcode::ADD &&
                e.kind == DepKind::RegFlow)
                load_feeds_add = true;
    }
    EXPECT_TRUE(load_feeds_add);
}

TEST(DepGraphTest, LoopCarriedModeAddsControlRecurrence)
{
    Program prog = loop_glue_program();
    const Function &fn = prog.functions[0];
    FuncAnalyses fa(fn);
    auto regions = form_regions(fn, fa);
    const CompilerRegion *loop = nullptr;
    for (const auto &region : regions)
        if (region.kind == RegionKind::Loop)
            loop = &region;
    ASSERT_NE(loop, nullptr);
    GoldenRun run = run_golden(prog);
    DepGraph g = build_dep_graph(fn, *loop, run.profile, true);
    SccResult scc = tarjan_scc(g.adjacency());
    // The control recurrence merges the compare, branch and ivar update.
    EXPECT_LT(scc.numComponents, g.nodes.size());
}

TEST(Bug, AssignsEveryNonReplicatedOp)
{
    Program prog = loop_glue_program();
    const Function &fn = prog.functions[0];
    FuncAnalyses fa(fn);
    auto regions = form_regions(fn, fa);
    GoldenRun run = run_golden(prog);
    for (const auto &region : regions) {
        DepGraph g = build_dep_graph(fn, region, run.profile, false);
        PartitionOptions opts;
        opts.numCores = 4;
        Assignment assign = partition_bug(g, opts);
        for (const DepNode &node : g.nodes) {
            const Opcode op = node.op->op;
            if (op == Opcode::BR || op == Opcode::BRU || op == Opcode::PBR)
                EXPECT_EQ(assign.count(node.ref), 0u);
            else {
                ASSERT_EQ(assign.count(node.ref), 1u);
                EXPECT_LT(assign.at(node.ref), 4);
            }
        }
    }
}

TEST(Bug, SingleCoreAssignsEverythingToZero)
{
    Program prog = loop_glue_program();
    const Function &fn = prog.functions[0];
    FuncAnalyses fa(fn);
    auto regions = form_regions(fn, fa);
    GoldenRun run = run_golden(prog);
    DepGraph g = build_dep_graph(fn, regions[0], run.profile, false);
    PartitionOptions opts;
    opts.numCores = 1;
    for (const auto &[ref, core] : partition_bug(g, opts))
        EXPECT_EQ(core, 0);
}

TEST(Ebug, PinsAliasClassesToOneCore)
{
    Rng rng(3);
    ProgramBuilder b("pin");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    PhaseParams pp;
    pp.trips = 64;
    pp.elems = 4096;
    emit_phase(b, Archetype::DswpPipe, "pipe", pp, rng);
    Program prog = b.take();
    const Function &fn = prog.functions[1];
    FuncAnalyses fa(fn);
    auto regions = form_regions(fn, fa);
    GoldenRun run = run_golden(prog);

    for (const auto &region : regions) {
        if (region.kind != RegionKind::Loop)
            continue;
        DepGraph g = build_dep_graph(fn, region, run.profile, false);
        PartitionOptions opts;
        opts.numCores = 4;
        opts.enhanced = true;
        Assignment assign = partition_bug(g, opts);
        // All stores of one symbol land on one core.
        std::map<u32, std::set<CoreId>> store_cores;
        for (const DepNode &node : g.nodes)
            if (is_store(node.op->op))
                store_cores[node.op->memSym].insert(assign.at(node.ref));
        for (const auto &[sym, cores] : store_cores)
            EXPECT_EQ(cores.size(), 1u) << "symbol " << sym;
    }
}

TEST(Dswp, PipelineLoopSplitsIntoStages)
{
    Rng rng(4);
    ProgramBuilder b("dswp");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    PhaseParams pp;
    pp.trips = 256;
    pp.elems = 1024;
    emit_phase(b, Archetype::DswpPipe, "pipe", pp, rng);
    Program prog = b.take();
    const Function &fn = prog.functions[1];
    FuncAnalyses fa(fn);
    auto regions = form_regions(fn, fa);
    GoldenRun run = run_golden(prog);

    bool found = false;
    for (const auto &region : regions) {
        if (region.kind != RegionKind::Loop)
            continue;
        DepGraph g = build_dep_graph(fn, region, run.profile, true);
        PartitionOptions opts;
        opts.numCores = 2;
        DswpResult result = partition_dswp(g, opts);
        EXPECT_TRUE(result.feasible);
        EXPECT_GE(result.stagesUsed, 2u);
        EXPECT_GT(result.estimatedSpeedup, 1.0);
        found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Dswp, SerialChainIsUnprofitable)
{
    Rng rng(5);
    ProgramBuilder b("chase");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    PhaseParams pp;
    pp.trips = 64;
    pp.elems = 256;
    pp.width = 6;
    emit_phase(b, Archetype::IlpWide, "wide", pp, rng);
    Program prog = b.take();
    const Function &fn = prog.functions[1];
    FuncAnalyses fa(fn);
    auto regions = form_regions(fn, fa);
    GoldenRun run = run_golden(prog);
    for (const auto &region : regions) {
        if (region.kind != RegionKind::Loop)
            continue;
        DepGraph g = build_dep_graph(fn, region, run.profile, true);
        PartitionOptions opts;
        opts.numCores = 4;
        DswpResult result = partition_dswp(g, opts);
        // The carry feeds the loads and every chain, so any cut ships
        // the recurrence across stages: the estimate must fall below
        // the paper's 1.25 profitability gate.
        EXPECT_LT(result.estimatedSpeedup, 1.25);
    }
}

// --- Scheduler -------------------------------------------------------------

std::vector<ScheduleSlot>
slots_of(std::vector<std::pair<CoreId, Operation>> raw)
{
    std::vector<ScheduleSlot> slots;
    for (auto &[c, op] : raw)
        slots.push_back({c, op});
    return slots;
}

TEST(Scheduler, RespectsLatency)
{
    auto slots = slots_of({
        {0, ops::mul(gpr(1), gpr(2), gpr(3))},   // lat 3
        {0, ops::addi(gpr(4), gpr(1), 1)},       // needs r1
    });
    BlockSchedule sched = schedule_block(slots, 2);
    ASSERT_EQ(sched.perCore[0].ops.size(), 2u);
    EXPECT_EQ(sched.perCore[0].issueCycles[0], 0u);
    EXPECT_GE(sched.perCore[0].issueCycles[1], 3u);
    // Every op completes by block end.
    EXPECT_GE(sched.schedLen, 4u);
}

TEST(Scheduler, IndependentOpsIssueTogether)
{
    auto slots = slots_of({
        {0, ops::movi(gpr(1), 1)},
        {1, ops::movi(gpr(1), 2)},
    });
    BlockSchedule sched = schedule_block(slots, 2);
    EXPECT_EQ(sched.perCore[0].issueCycles[0], 0u);
    EXPECT_EQ(sched.perCore[1].issueCycles[0], 0u);
    EXPECT_EQ(sched.schedLen, 1u);
}

TEST(Scheduler, TransferGroupSharesCycle)
{
    Operation put = ops::put(Dir::East, gpr(1));
    put.seqId = kTransferIdBase;
    Operation get = ops::get(Dir::West, gpr(1));
    get.seqId = kTransferIdBase;
    auto slots = slots_of({
        {0, ops::movi(gpr(1), 5)},
        {0, put},
        {1, get},
        {1, ops::addi(gpr(2), gpr(1), 1)},
    });
    BlockSchedule sched = schedule_block(slots, 2);
    // Find the put and get cycles.
    u32 put_cycle = 999, get_cycle = 998, use_cycle = 0;
    for (size_t i = 0; i < sched.perCore[0].ops.size(); ++i)
        if (sched.perCore[0].ops[i].op == Opcode::PUT)
            put_cycle = sched.perCore[0].issueCycles[i];
    for (size_t i = 0; i < sched.perCore[1].ops.size(); ++i) {
        if (sched.perCore[1].ops[i].op == Opcode::GET)
            get_cycle = sched.perCore[1].issueCycles[i];
        if (sched.perCore[1].ops[i].op == Opcode::ADD)
            use_cycle = sched.perCore[1].issueCycles[i];
    }
    EXPECT_EQ(put_cycle, get_cycle);
    EXPECT_GT(use_cycle, get_cycle);
}

TEST(Scheduler, BranchesLastAndOrdered)
{
    ProgramBuilder b("br");
    b.beginFunction("main");
    BlockId t1 = b.newBlock("t1");
    RegId p = b.newPr();
    b.emit(ops::cmpi(CmpCond::LT, p, gpr(1), 0));
    b.emitBranch(p, t1);
    b.emitJump(t1);
    b.setBlock(t1);
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    Program prog = b.take();
    const BasicBlock &bb = prog.functions[0].blocks[0];

    std::vector<ScheduleSlot> slots;
    for (const Operation &op : bb.ops)
        slots.push_back({0, op});
    BlockSchedule sched = schedule_block(slots, 1);
    const auto &cs = sched.perCore[0];
    // BR immediately before BRU, both at the end.
    ASSERT_GE(cs.ops.size(), 2u);
    EXPECT_EQ(cs.ops[cs.ops.size() - 2].op, Opcode::BR);
    EXPECT_EQ(cs.ops.back().op, Opcode::BRU);
    EXPECT_EQ(cs.issueCycles.back(), sched.schedLen - 1);
    EXPECT_EQ(cs.issueCycles[cs.ops.size() - 2] + 1,
              cs.issueCycles.back());
}

TEST(Scheduler, MemoryDependenceOrdered)
{
    Operation store = ops::store(gpr(1), 0, gpr(2));
    store.memSym = 5;
    Operation load = ops::load(gpr(3), gpr(1), 0);
    load.memSym = 5;
    auto slots = slots_of({{0, store}, {1, load}});
    BlockSchedule sched = schedule_block(slots, 2);
    EXPECT_GT(sched.perCore[1].issueCycles[0],
              sched.perCore[0].issueCycles[0]);
}

TEST(Scheduler, DifferentSymbolsMayReorder)
{
    Operation store = ops::store(gpr(1), 0, gpr(2));
    store.memSym = 5;
    Operation load = ops::load(gpr(3), gpr(4), 0);
    load.memSym = 6;
    auto slots = slots_of({{0, store}, {1, load}});
    BlockSchedule sched = schedule_block(slots, 2);
    EXPECT_EQ(sched.perCore[1].issueCycles[0], 0u);
}

// --- DOALL analysis ---------------------------------------------------------

struct DoallProbe
{
    Program prog;
    DoallPlan plan;
};

DoallPlan
probe_first_loop(const Program &prog, FuncId func)
{
    const Function &fn = prog.functions[func];
    FuncAnalyses fa(fn);
    Liveness live(prog, fn, *fa.cfg);
    auto regions = form_regions(fn, fa);
    for (const auto &region : regions)
        if (region.kind == RegionKind::Loop)
            return analyze_doall(fn, region, fa, live);
    DoallPlan none;
    none.reason = "no loop region";
    return none;
}

TEST(Doall, StreamLoopFeasibleWithAccumulator)
{
    Rng rng(6);
    ProgramBuilder b("ds");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    PhaseParams pp;
    pp.trips = 64;
    emit_phase(b, Archetype::DoallStream, "s", pp, rng);
    Program prog = b.take();
    DoallPlan plan = probe_first_loop(prog, 1);
    EXPECT_TRUE(plan.feasible) << plan.reason;
    EXPECT_EQ(plan.accumulators.size(), 1u);
    EXPECT_EQ(plan.accumulators[0].op, Opcode::ADD);
    EXPECT_EQ(plan.accumulators[0].identity, 0);
}

TEST(Doall, CarryLoopInfeasible)
{
    Rng rng(6);
    ProgramBuilder b("iw");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    PhaseParams pp;
    pp.trips = 64;
    pp.elems = 256;
    emit_phase(b, Archetype::IlpWide, "w", pp, rng);
    Program prog = b.take();
    DoallPlan plan = probe_first_loop(prog, 1);
    EXPECT_FALSE(plan.feasible);
    EXPECT_NE(plan.reason.find("loop-carried"), std::string::npos);
}

TEST(Doall, UncountedLoopInfeasible)
{
    Rng rng(6);
    ProgramBuilder b("sm");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    PhaseParams pp;
    pp.trips = 64;
    emit_phase(b, Archetype::StrandMatch, "m", pp, rng);
    Program prog = b.take();
    DoallPlan plan = probe_first_loop(prog, 1);
    EXPECT_FALSE(plan.feasible);
}

// --- Selection ---------------------------------------------------------------

TEST(Selection, HybridPicksExpectedModes)
{
    Rng rng(8);
    ProgramBuilder b("sel");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    PhaseParams stream_pp;
    stream_pp.trips = 512;
    FuncId f_stream =
        emit_phase(b, Archetype::DoallStream, "s", stream_pp, rng);
    PhaseParams wide_pp;
    wide_pp.trips = 256;
    wide_pp.elems = 256;
    wide_pp.width = 6;
    FuncId f_wide = emit_phase(b, Archetype::IlpWide, "w", wide_pp, rng);
    Program prog = b.take();
    // Call both phases from main.
    Function &main_fn = prog.function(0);
    main_fn.blocks.clear();
    main_fn.addBlock("entry");
    BasicBlock &bb = main_fn.block(0);
    bb.append(ops::movi(gpr(1), 1));
    RegId b1 = main_fn.freshReg(RegClass::BTR);
    bb.append(ops::pbr(b1, CodeRef::to_function(f_stream)));
    bb.append(ops::call(b1));
    bb.append(ops::movi(gpr(1), 2));
    RegId b2 = main_fn.freshReg(RegClass::BTR);
    bb.append(ops::pbr(b2, CodeRef::to_function(f_wide)));
    bb.append(ops::call(b2));
    bb.append(ops::halt(gpr(0)));

    GoldenRun run = run_golden(prog);
    CompileOptions opts;
    opts.numCores = 4;
    opts.strategy = Strategy::Hybrid;
    SelectionReport report;
    compile_program(prog, run.profile, opts, &report);

    bool saw_doall = false, saw_coupled = false;
    for (const auto &entry : report.entries) {
        if (entry.mode == ExecMode::Doall && entry.func == f_stream)
            saw_doall = true;
        if (entry.mode == ExecMode::Coupled && entry.func == f_wide)
            saw_coupled = true;
    }
    EXPECT_TRUE(saw_doall);
    EXPECT_TRUE(saw_coupled);
}

TEST(Selection, SerialOnlyNeverParallelises)
{
    Program prog = loop_glue_program();
    GoldenRun run = run_golden(prog);
    CompileOptions opts;
    opts.numCores = 4;
    opts.strategy = Strategy::SerialOnly;
    SelectionReport report;
    compile_program(prog, run.profile, opts, &report);
    for (const auto &entry : report.entries)
        EXPECT_EQ(entry.mode, ExecMode::Serial);
}

TEST(Selection, TinyRegionsStaySerial)
{
    // A 3-trip loop is not worth a spawn.
    Program prog = loop_glue_program(3);
    GoldenRun run = run_golden(prog);
    CompileOptions opts;
    opts.numCores = 4;
    opts.strategy = Strategy::Hybrid;
    SelectionReport report;
    compile_program(prog, run.profile, opts, &report);
    for (const auto &entry : report.entries)
        EXPECT_EQ(entry.mode, ExecMode::Serial);
}

TEST(Compile, RejectsUnsupportedCoreCounts)
{
    Program prog = loop_glue_program();
    GoldenRun run = run_golden(prog);
    CompileOptions opts;
    opts.numCores = kMaxCores + 1;
    EXPECT_THROW(compile_program(prog, run.profile, opts), FatalError);
    opts.numCores = 0;
    EXPECT_THROW(compile_program(prog, run.profile, opts), FatalError);
    // A mesh that does not hold numCores is rejected up front.
    opts.numCores = 4;
    opts.meshRows = 2;
    opts.meshCols = 3;
    EXPECT_THROW(compile_program(prog, run.profile, opts), FatalError);
}

TEST(Compile, PerCoreProgramsVerify)
{
    Program prog = loop_glue_program(128);
    GoldenRun run = run_golden(prog);
    for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly,
                       Strategy::LlpOnly, Strategy::Hybrid}) {
        CompileOptions opts;
        opts.numCores = 4;
        opts.strategy = s;
        // compile_program verifies per-core clones internally (fatal on
        // failure), so a clean return is the assertion.
        MachineProgram mp = compile_program(prog, run.profile, opts);
        EXPECT_EQ(mp.perCore.size(), 4u);
        EXPECT_EQ(mp.numCores, 4);
        EXPECT_FALSE(mp.regions.empty());
    }
}

TEST(Compile, RegionMetadataConsistent)
{
    Program prog = loop_glue_program(128);
    GoldenRun run = run_golden(prog);
    CompileOptions opts;
    opts.numCores = 2;
    opts.strategy = Strategy::Hybrid;
    MachineProgram mp = compile_program(prog, run.profile, opts);
    for (size_t i = 0; i < mp.regions.size(); ++i) {
        EXPECT_EQ(mp.regions[i].id, i);
        EXPECT_NE(mp.regions[i].entry, kNoBlock);
    }
    // Every master block is stamped with a valid region.
    for (const BasicBlock &bb : mp.perCore[0].functions[0].blocks)
        EXPECT_LT(bb.region, mp.regions.size());
}

} // namespace
} // namespace voltron

// Appended: reassociation pass tests (see compiler/reassoc.hh).
#include "compiler/reassoc.hh"
#include "ir/verifier.hh"
#include "workloads/suite.hh"
#include "core/voltron.hh"

namespace voltron {
namespace {

TEST(Reassoc, BalancesLongAddChain)
{
    ProgramBuilder b("chain");
    b.beginFunction("main");
    RegId acc = b.emitImm(100);
    std::vector<RegId> xs;
    for (int k = 0; k < 6; ++k) {
        RegId x = b.emitImm(k + 1);
        xs.push_back(x);
    }
    for (RegId x : xs)
        b.emit(ops::add(acc, acc, x));
    b.emitHalt(acc);
    b.endFunction();
    Program prog = b.take();
    const u64 golden = run_golden(prog).result.exitValue;

    ReassocStats stats = reassociate_program(prog);
    EXPECT_EQ(stats.chainsRewritten, 1u);
    EXPECT_EQ(stats.opsRebalanced, 6u);
    EXPECT_TRUE(verify_program(prog).ok());
    EXPECT_EQ(run_golden(prog).result.exitValue, golden);

    // The rewritten block's dependence height through acc is shorter:
    // count ops writing acc (must be exactly one now).
    int acc_defs = 0;
    for (const Operation &op : prog.functions[0].blocks[0].ops)
        if (op.def() == acc)
            acc_defs++;
    EXPECT_EQ(acc_defs, 1 + 1); // initial movi + final combine
}

TEST(Reassoc, ShortChainsUntouched)
{
    ProgramBuilder b("short");
    b.beginFunction("main");
    RegId acc = b.emitImm(0);
    RegId x = b.emitImm(1), y = b.emitImm(2);
    b.emit(ops::add(acc, acc, x));
    b.emit(ops::add(acc, acc, y));
    b.emitHalt(acc);
    b.endFunction();
    Program prog = b.take();
    EXPECT_EQ(reassociate_program(prog).chainsRewritten, 0u);
}

TEST(Reassoc, InterveningReadBreaksChain)
{
    ProgramBuilder b("read");
    b.beginFunction("main");
    RegId acc = b.emitImm(0);
    RegId x = b.emitImm(1);
    RegId snapshot = b.newGpr();
    b.emit(ops::add(acc, acc, x));
    b.emit(ops::add(acc, acc, x));
    b.emit(ops::mov(snapshot, acc)); // reads acc mid-chain
    b.emit(ops::add(acc, acc, x));
    b.emit(ops::add(acc, acc, x));
    RegId out = b.newGpr();
    b.emit(ops::add(out, acc, snapshot));
    b.emitHalt(out);
    b.endFunction();
    Program prog = b.take();
    const u64 golden = run_golden(prog).result.exitValue;
    reassociate_program(prog);
    EXPECT_EQ(run_golden(prog).result.exitValue, golden);
    EXPECT_EQ(golden, 6u); // 4*1 + snapshot(2)
}

TEST(Reassoc, RedefinedValueTruncatesChain)
{
    ProgramBuilder b("redef");
    b.beginFunction("main");
    RegId acc = b.emitImm(0);
    RegId x = b.emitImm(1);
    b.emit(ops::add(acc, acc, x)); // uses x=1
    b.emit(ops::movi(x, 10));      // redefines x mid-chain
    b.emit(ops::add(acc, acc, x)); // uses x=10
    RegId y = b.emitImm(5), z = b.emitImm(7);
    b.emit(ops::add(acc, acc, y));
    b.emit(ops::add(acc, acc, z));
    b.emitHalt(acc);
    b.endFunction();
    Program prog = b.take();
    const u64 golden = run_golden(prog).result.exitValue;
    EXPECT_EQ(golden, 23u);
    reassociate_program(prog);
    EXPECT_EQ(run_golden(prog).result.exitValue, golden);
    EXPECT_TRUE(verify_program(prog).ok());
}

TEST(Reassoc, MinMaxAndMulChains)
{
    for (Opcode op : {Opcode::MUL, Opcode::MIN, Opcode::MAX, Opcode::XOR}) {
        ProgramBuilder b("ops");
        b.beginFunction("main");
        RegId acc = b.emitImm(op == Opcode::MUL ? 1 : 9);
        for (int k = 2; k <= 5; ++k)
            b.emit(ops::alu(op, acc, acc, b.emitImm(k)));
        b.emitHalt(acc);
        b.endFunction();
        Program prog = b.take();
        const u64 golden = run_golden(prog).result.exitValue;
        ReassocStats stats = reassociate_program(prog);
        EXPECT_EQ(stats.chainsRewritten, 1u) << opcode_name(op);
        EXPECT_EQ(run_golden(prog).result.exitValue, golden)
            << opcode_name(op);
    }
}

TEST(Reassoc, EndToEndEquivalenceOnSuiteBenchmark)
{
    SuiteScale scale;
    scale.targetOps = 20'000;
    VoltronSystem sys(build_benchmark("gsmdecode", scale));
    CompileOptions with, without;
    with.numCores = without.numCores = 4;
    with.strategy = without.strategy = Strategy::IlpOnly;
    without.reassociate = false;
    RunOutcome a = sys.run(with);
    EXPECT_TRUE(a.correct());
    // The cache key does not include `reassociate`; compile directly.
    GoldenRun golden = run_golden(sys.program());
    MachineProgram mp =
        compile_program(sys.program(), golden.profile, without);
    Machine machine(mp, MachineConfig::forCores(4));
    MachineResult r = machine.run();
    EXPECT_EQ(r.exitValue, golden.result.exitValue);
    // Reassociation must not be slower.
    EXPECT_LE(a.result.cycles, r.cycles + r.cycles / 10);
}

} // namespace
} // namespace voltron
