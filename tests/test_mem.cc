/** @file Unit tests for the memory system: image, cache array, MOESI
 * hierarchy. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "mem/memimage.hh"
#include "support/rng.hh"

namespace voltron {
namespace {

TEST(MemImage, ZeroInitialised)
{
    MemoryImage mem;
    EXPECT_EQ(mem.read(0x1234, 8), 0u);
    EXPECT_EQ(mem.residentPages(), 0u);
}

TEST(MemImage, ReadWriteAllSizes)
{
    MemoryImage mem;
    mem.write(0x100, 0x1122334455667788ULL, 8);
    EXPECT_EQ(mem.read(0x100, 8), 0x1122334455667788ULL);
    EXPECT_EQ(mem.read(0x100, 4), 0x55667788u);
    EXPECT_EQ(mem.read(0x100, 2), 0x7788u);
    EXPECT_EQ(mem.read(0x100, 1), 0x88u);
}

TEST(MemImage, SignExtension)
{
    MemoryImage mem;
    mem.write(0x10, 0xff, 1);
    EXPECT_EQ(static_cast<i64>(mem.read(0x10, 1, true)), -1);
    EXPECT_EQ(mem.read(0x10, 1, false), 0xffu);
    mem.write(0x20, 0x8000, 2);
    EXPECT_EQ(static_cast<i64>(mem.read(0x20, 2, true)), -32768);
}

TEST(MemImage, CrossPageAccess)
{
    MemoryImage mem;
    const Addr edge = MemoryImage::kPageSize - 4;
    mem.write(edge, 0xaabbccdd11223344ULL, 8);
    EXPECT_EQ(mem.read(edge, 8), 0xaabbccdd11223344ULL);
    EXPECT_EQ(mem.residentPages(), 2u);
}

TEST(MemImage, LoadProgramInstallsData)
{
    Program prog;
    DataObject obj;
    obj.name = "x";
    obj.base = 0x4000;
    obj.size = 16;
    obj.init = {1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0};
    prog.data.push_back(obj);
    MemoryImage mem;
    mem.loadProgram(prog);
    EXPECT_EQ(mem.read(0x4000, 8), 1u);
    EXPECT_EQ(mem.read(0x4008, 8), 2u);
}

TEST(CacheArrayTest, GeometryValidation)
{
    EXPECT_NO_THROW(CacheArray(CacheGeometry{4096, 2, 64}));
    EXPECT_THROW(CacheArray(CacheGeometry{4096, 2, 48}), FatalError);
    EXPECT_THROW(CacheArray(CacheGeometry{5000, 2, 64}), FatalError);
}

TEST(CacheArrayTest, FillThenProbeHits)
{
    CacheArray cache(CacheGeometry{4096, 2, 64});
    EXPECT_EQ(cache.probe(0x1000), nullptr);
    cache.fill(0x1000);
    EXPECT_NE(cache.probe(0x1000), nullptr);
    EXPECT_NE(cache.probe(0x1038), nullptr); // same line
    EXPECT_EQ(cache.probe(0x1040), nullptr); // next line
}

TEST(CacheArrayTest, LruEvictsOldest)
{
    // 2-way: three lines mapping to the same set evict the LRU one.
    CacheGeometry geom{4096, 2, 64};
    CacheArray cache(geom);
    const Addr set_stride = geom.numSets() * geom.lineBytes;
    cache.fill(0x0);
    cache.fill(set_stride);
    cache.probe(0x0); // touch: 0x0 is now MRU
    CacheLine victim;
    Addr victim_addr = 0;
    cache.fill(2 * set_stride, &victim, &victim_addr);
    EXPECT_TRUE(victim.valid);
    EXPECT_EQ(victim_addr, set_stride);
    EXPECT_NE(cache.probe(0x0), nullptr);
    EXPECT_EQ(cache.probe(set_stride), nullptr);
}

TEST(CacheArrayTest, InvalidateRemoves)
{
    CacheArray cache(CacheGeometry{4096, 2, 64});
    cache.fill(0x80)->state = 3;
    u8 old_state = 0;
    EXPECT_TRUE(cache.invalidate(0x80, &old_state));
    EXPECT_EQ(old_state, 3);
    EXPECT_EQ(cache.probe(0x80), nullptr);
    EXPECT_FALSE(cache.invalidate(0x80));
}

TEST(CacheArrayTest, DoubleFillPanics)
{
    CacheArray cache(CacheGeometry{4096, 2, 64});
    cache.fill(0x100);
    EXPECT_THROW(cache.fill(0x100), PanicError);
}

TEST(CacheArrayTest, ForEachLineVisitsValid)
{
    CacheArray cache(CacheGeometry{4096, 2, 64});
    cache.fill(0x0);
    cache.fill(0x40);
    int count = 0;
    cache.forEachLine([&](Addr, const CacheLine &) { count++; });
    EXPECT_EQ(count, 2);
}

// --- MOESI hierarchy ------------------------------------------------------

class Hierarchy : public ::testing::Test
{
  protected:
    MemHierarchy mem{4};
};

TEST_F(Hierarchy, ColdReadMissesToMemoryThenHits)
{
    AccessOutcome first = mem.access(0, 0x1000, false, 0);
    EXPECT_TRUE(first.l1Miss);
    EXPECT_TRUE(first.l2Miss);
    EXPECT_GE(first.latency, mem.config().timings.memAccess);
    EXPECT_EQ(mem.l1dState(0, 0x1000), Moesi::Exclusive);

    AccessOutcome second = mem.access(0, 0x1008, false, 10);
    EXPECT_FALSE(second.l1Miss);
    EXPECT_EQ(second.latency, 0u);
}

TEST_F(Hierarchy, WriteMakesModified)
{
    mem.access(0, 0x2000, true, 0);
    EXPECT_EQ(mem.l1dState(0, 0x2000), Moesi::Modified);
}

TEST_F(Hierarchy, ReadSnoopDowngradesModifiedToOwned)
{
    mem.access(0, 0x3000, true, 0);
    AccessOutcome peer = mem.access(1, 0x3000, false, 10);
    EXPECT_TRUE(peer.cacheToCache);
    EXPECT_EQ(mem.l1dState(0, 0x3000), Moesi::Owned);
    EXPECT_EQ(mem.l1dState(1, 0x3000), Moesi::Shared);
}

TEST_F(Hierarchy, ReadSnoopDowngradesExclusiveToShared)
{
    mem.access(0, 0x4000, false, 0);
    EXPECT_EQ(mem.l1dState(0, 0x4000), Moesi::Exclusive);
    mem.access(1, 0x4000, false, 10);
    EXPECT_EQ(mem.l1dState(0, 0x4000), Moesi::Shared);
    EXPECT_EQ(mem.l1dState(1, 0x4000), Moesi::Shared);
}

TEST_F(Hierarchy, WriteInvalidatesPeers)
{
    mem.access(0, 0x5000, false, 0);
    mem.access(1, 0x5000, false, 5);
    mem.access(2, 0x5000, true, 10);
    EXPECT_EQ(mem.l1dState(0, 0x5000), Moesi::Invalid);
    EXPECT_EQ(mem.l1dState(1, 0x5000), Moesi::Invalid);
    EXPECT_EQ(mem.l1dState(2, 0x5000), Moesi::Modified);
}

TEST_F(Hierarchy, UpgradeFromSharedCostsBusRound)
{
    mem.access(0, 0x6000, false, 0);
    mem.access(1, 0x6000, false, 5);
    AccessOutcome up = mem.access(0, 0x6000, true, 10);
    EXPECT_FALSE(up.l1Miss);
    EXPECT_GE(up.latency, mem.config().timings.upgrade);
    EXPECT_EQ(mem.l1dState(0, 0x6000), Moesi::Modified);
    EXPECT_EQ(mem.l1dState(1, 0x6000), Moesi::Invalid);
}

TEST_F(Hierarchy, SecondCoreMissFilledFromL2)
{
    // Core 0 brings the line into L1+L2, evict it from core 0's L1 by
    // filling conflicting lines, then core 1 should hit in the L2.
    mem.access(0, 0x7000, false, 0);
    const Addr stride =
        mem.config().l1d.numSets() * mem.config().l1d.lineBytes;
    mem.access(0, 0x7000 + stride, false, 1);
    mem.access(0, 0x7000 + 2 * stride, false, 2);
    EXPECT_EQ(mem.l1dState(0, 0x7000), Moesi::Invalid);
    AccessOutcome peer = mem.access(1, 0x7000, false, 20);
    EXPECT_TRUE(peer.l1Miss);
    EXPECT_FALSE(peer.l2Miss);
    EXPECT_FALSE(peer.cacheToCache);
    EXPECT_LT(peer.latency, mem.config().timings.memAccess);
}

TEST_F(Hierarchy, BusSerialisesConcurrentMisses)
{
    AccessOutcome a = mem.access(0, 0x8000, false, 0);
    AccessOutcome c = mem.access(1, 0x9000, false, 0);
    // Same-cycle second transaction waits for the bus.
    EXPECT_GT(c.latency, a.latency - 5);
    EXPECT_GT(mem.stats().get("bus.waitCycles"), 0u);
}

TEST_F(Hierarchy, FetchPathUsesL1i)
{
    AccessOutcome first = mem.fetch(0, 0x40000000, 0);
    EXPECT_TRUE(first.l1Miss);
    AccessOutcome second = mem.fetch(0, 0x40000004, 1);
    EXPECT_FALSE(second.l1Miss);
    EXPECT_EQ(mem.stats().get("core0.l1i.fetches"), 2u);
}

TEST_F(Hierarchy, ResetClearsEverything)
{
    mem.access(0, 0xa000, true, 0);
    mem.reset();
    EXPECT_EQ(mem.l1dState(0, 0xa000), Moesi::Invalid);
    AccessOutcome again = mem.access(0, 0xa000, false, 100);
    EXPECT_TRUE(again.l1Miss);
}

TEST_F(Hierarchy, MoesiNames)
{
    EXPECT_STREQ(moesi_name(Moesi::Modified), "M");
    EXPECT_STREQ(moesi_name(Moesi::Owned), "O");
    EXPECT_STREQ(moesi_name(Moesi::Exclusive), "E");
    EXPECT_STREQ(moesi_name(Moesi::Shared), "S");
    EXPECT_STREQ(moesi_name(Moesi::Invalid), "I");
}

/**
 * Coherence single-writer/multi-reader invariant under random traffic:
 * at most one core holds M or E; if any holds M/E no other core holds a
 * valid copy... (M/E excludes all, O allows S peers).
 */
TEST_F(Hierarchy, RandomTrafficPreservesInvariants)
{
    Rng rng(2024);
    const std::vector<Addr> lines = {0x100, 0x140, 0x180, 0x1c0, 0x200};
    for (int step = 0; step < 4000; ++step) {
        const CoreId core = static_cast<CoreId>(rng.below(4));
        const Addr addr = lines[rng.below(lines.size())] + rng.below(64);
        mem.access(core, addr, rng.chance(0.4), step);

        for (Addr line : lines) {
            int m_or_e = 0, valid = 0, owned = 0;
            for (CoreId c = 0; c < 4; ++c) {
                Moesi state = mem.l1dState(c, line);
                if (state == Moesi::Modified || state == Moesi::Exclusive)
                    m_or_e++;
                if (state != Moesi::Invalid)
                    valid++;
                if (state == Moesi::Owned)
                    owned++;
            }
            EXPECT_LE(m_or_e, 1);
            EXPECT_LE(owned, 1);
            if (m_or_e == 1)
                EXPECT_EQ(valid, 1);
        }
    }
}

} // namespace
} // namespace voltron
