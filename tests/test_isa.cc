/** @file Unit tests for the ISA layer. */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/coderef.hh"
#include "isa/latencies.hh"
#include "isa/operation.hh"

namespace voltron {
namespace {

TEST(Reg, ConstructorsAndValidity)
{
    EXPECT_FALSE(RegId{}.valid());
    EXPECT_TRUE(gpr(3).valid());
    EXPECT_EQ(gpr(3).cls, RegClass::GPR);
    EXPECT_EQ(fpr(1).cls, RegClass::FPR);
    EXPECT_EQ(pr(2).cls, RegClass::PR);
    EXPECT_EQ(btr(0).cls, RegClass::BTR);
}

TEST(Reg, EqualityAndOrdering)
{
    EXPECT_EQ(gpr(1), gpr(1));
    EXPECT_NE(gpr(1), gpr(2));
    EXPECT_NE(gpr(1), fpr(1));
    EXPECT_LT(gpr(1), gpr(2));
    EXPECT_LT(gpr(9), fpr(0)); // class dominates
}

TEST(Reg, Printing)
{
    std::ostringstream os;
    os << gpr(5) << " " << pr(1) << " " << btr(2) << " " << RegId{};
    EXPECT_EQ(os.str(), "r5 p1 b2 _");
}

TEST(Reg, HashDistinguishesClasses)
{
    std::hash<RegId> h;
    EXPECT_NE(h(gpr(1)), h(fpr(1)));
    EXPECT_EQ(h(gpr(1)), h(gpr(1)));
}

TEST(CodeRefTest, EncodeDecodeBlock)
{
    CodeRef ref = CodeRef::to_block(12, 345);
    CodeRef back = CodeRef::decode(ref.encode());
    EXPECT_EQ(back, ref);
    EXPECT_EQ(back.kind, CodeRef::Kind::Block);
    EXPECT_EQ(back.func, 12u);
    EXPECT_EQ(back.block, 345u);
}

TEST(CodeRefTest, EncodeDecodeFunction)
{
    CodeRef ref = CodeRef::to_function(7);
    CodeRef back = CodeRef::decode(ref.encode());
    EXPECT_EQ(back.kind, CodeRef::Kind::Function);
    EXPECT_EQ(back.func, 7u);
}

TEST(CodeRefTest, InvalidByDefault)
{
    EXPECT_FALSE(CodeRef{}.valid());
    EXPECT_TRUE(CodeRef::to_function(0).valid());
}

TEST(CodeRefTest, OutOfRangePanics)
{
    EXPECT_THROW(CodeRef::to_block(1u << 24, 0).encode(), PanicError);
}

TEST(Opcode, Names)
{
    EXPECT_STREQ(opcode_name(Opcode::ADD), "add");
    EXPECT_STREQ(opcode_name(Opcode::MODE_SWITCH), "mode_switch");
    EXPECT_STREQ(opcode_name(Opcode::XVALIDATE), "xvalidate");
}

TEST(Opcode, Classification)
{
    EXPECT_TRUE(is_load(Opcode::LOAD));
    EXPECT_TRUE(is_load(Opcode::LOADF));
    EXPECT_FALSE(is_load(Opcode::STORE));
    EXPECT_TRUE(is_store(Opcode::STOREF));
    EXPECT_TRUE(is_memory(Opcode::STORE));
    EXPECT_FALSE(is_memory(Opcode::ADD));
    EXPECT_TRUE(is_control(Opcode::BR));
    EXPECT_TRUE(is_control(Opcode::HALT));
    EXPECT_FALSE(is_control(Opcode::PBR));
    EXPECT_TRUE(is_comm(Opcode::SEND));
    EXPECT_TRUE(is_comm(Opcode::BCAST));
    EXPECT_FALSE(is_comm(Opcode::SPAWN));
    EXPECT_TRUE(is_compute(Opcode::FMUL));
    EXPECT_FALSE(is_compute(Opcode::LOAD));
}

TEST(Opcode, OppositeDirections)
{
    EXPECT_EQ(opposite(Dir::East), Dir::West);
    EXPECT_EQ(opposite(Dir::West), Dir::East);
    EXPECT_EQ(opposite(Dir::North), Dir::South);
    EXPECT_EQ(opposite(Dir::South), Dir::North);
}

TEST(OperationTest, UsesAndDefs)
{
    Operation add = ops::add(gpr(1), gpr(2), gpr(3));
    EXPECT_EQ(add.def(), gpr(1));
    ASSERT_EQ(add.uses().size(), 2u);
    EXPECT_EQ(add.uses()[0], gpr(2));
    EXPECT_EQ(add.uses()[1], gpr(3));

    Operation addi = ops::addi(gpr(1), gpr(2), 5);
    EXPECT_EQ(addi.uses().size(), 1u);
    EXPECT_TRUE(addi.immSrc1);

    Operation store = ops::store(gpr(1), 8, gpr(2));
    EXPECT_FALSE(store.def().valid());
    EXPECT_EQ(store.uses().size(), 2u);
}

TEST(OperationTest, FactoryFieldsRoundTrip)
{
    Operation load = ops::load(gpr(1), gpr(2), 16, 4, true);
    EXPECT_EQ(load.op, Opcode::LOAD);
    EXPECT_EQ(load.memSize, 4);
    EXPECT_TRUE(load.memSigned);
    EXPECT_EQ(load.imm, 16);

    Operation send = ops::send(3, gpr(9));
    EXPECT_EQ(send.imm, 3);
    EXPECT_EQ(send.src0, gpr(9));

    Operation spawn = ops::spawn(2, btr(1));
    EXPECT_EQ(spawn.imm, 2);
    EXPECT_EQ(spawn.src1, btr(1));

    Operation ms = ops::mode_switch(true);
    EXPECT_EQ(ms.imm, 1);
}

TEST(OperationTest, FmoviPreservesDoubleBits)
{
    Operation op = ops::fmovi(fpr(0), 3.25);
    EXPECT_EQ(std::bit_cast<double>(static_cast<u64>(op.imm)), 3.25);
}

TEST(OperationTest, PbrCarriesCodeRef)
{
    Operation op = ops::pbr(btr(2), CodeRef::to_block(1, 9));
    EXPECT_EQ(op.codeRef().block, 9u);
    EXPECT_EQ(op.codeRef().func, 1u);
}

TEST(OperationTest, Printing)
{
    std::ostringstream os;
    os << ops::addi(gpr(1), gpr(2), 7);
    EXPECT_EQ(os.str(), "add r1, r2, #7");

    std::ostringstream os2;
    os2 << ops::cmp(CmpCond::LT, pr(0), gpr(1), gpr(2));
    EXPECT_EQ(os2.str(), "cmp.lt p0, r1, r2");

    std::ostringstream os3;
    os3 << ops::put(Dir::North, gpr(4));
    EXPECT_EQ(os3.str(), "put.north r4");
}

TEST(Latencies, MatchItaniumAssumptions)
{
    EXPECT_EQ(op_latency(Opcode::ADD), 1u);
    EXPECT_EQ(op_latency(Opcode::MUL), 3u);
    EXPECT_EQ(op_latency(Opcode::DIV), 16u);
    EXPECT_EQ(op_latency(Opcode::FADD), 4u);
    EXPECT_EQ(op_latency(Opcode::FDIV), 16u);
    EXPECT_EQ(op_latency(Opcode::LOAD), 2u);
    EXPECT_EQ(op_latency(Opcode::STORE), 1u);
    EXPECT_EQ(op_latency(Opcode::BR), 1u);
}

TEST(Latencies, EveryOpcodeAtLeastOne)
{
    for (u8 i = 0; i < static_cast<u8>(Opcode::NumOpcodes); ++i)
        EXPECT_GE(op_latency(static_cast<Opcode>(i)), 1u);
}

} // namespace
} // namespace voltron
