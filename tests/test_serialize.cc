/**
 * @file
 * Serialization round-trips and artifact-cache behaviour: Profile /
 * MachineProgram / golden-image encodings, corruption fallback, the
 * missPenalty cache-key regression, and warm-vs-cold determinism.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include <unistd.h>

#include "core/voltron.hh"
#include "interp/serialize.hh"
#include "ir/serialize.hh"
#include "workloads/suite.hh"

namespace voltron {
namespace {

SuiteScale
small_scale()
{
    SuiteScale scale;
    scale.targetOps = 20'000;
    return scale;
}

Program
test_program()
{
    return build_benchmark("epic", small_scale());
}

/** RAII: point the cache at a fresh temp dir, restore on destruction. */
class ScopedCacheDir
{
  public:
    explicit ScopedCacheDir(const std::string &tag)
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("voltron-test-" + tag + "-" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        ArtifactCache::instance().setDiskDir(dir_.string());
        ArtifactCache::instance().clearMemory();
        ArtifactCache::instance().resetStats();
    }

    ~ScopedCacheDir()
    {
        ArtifactCache::instance().setDiskDir(std::nullopt);
        ArtifactCache::instance().clearMemory();
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    const std::filesystem::path &path() const { return dir_; }

  private:
    std::filesystem::path dir_;
};

/** Disable both cache levels for the scope (cold-path reference). */
class ScopedNoCache
{
  public:
    ScopedNoCache()
    {
        ArtifactCache::instance().setDiskDir(std::string());
        ArtifactCache::instance().clearMemory();
    }
    ~ScopedNoCache()
    {
        ArtifactCache::instance().setDiskDir(std::nullopt);
        ArtifactCache::instance().clearMemory();
    }
};

TEST(ByteCodec, PrimitivesRoundTrip)
{
    ByteWriter w;
    w.u8v(0xab);
    w.u16v(0x1234);
    w.u32v(0xdeadbeef);
    w.u64v(0x0123456789abcdefULL);
    w.i64v(-42);
    w.f64v(3.5);
    w.boolean(true);
    w.str("hello");
    w.blob({1, 2, 3});

    ByteReader r(w.bytes());
    EXPECT_EQ(r.u8v(), 0xab);
    EXPECT_EQ(r.u16v(), 0x1234);
    EXPECT_EQ(r.u32v(), 0xdeadbeefu);
    EXPECT_EQ(r.u64v(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i64v(), -42);
    EXPECT_EQ(r.f64v(), 3.5);
    EXPECT_TRUE(r.boolean());
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.blob(), (std::vector<u8>{1, 2, 3}));
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(ByteCodec, ReaderSticksOnTruncation)
{
    ByteWriter w;
    w.u64v(7);
    std::vector<u8> bytes = w.bytes();
    bytes.resize(4);
    ByteReader r(bytes);
    (void)r.u64v();
    EXPECT_FALSE(r.ok());
    // Every later read stays failed and returns zeroes.
    EXPECT_EQ(r.u32v(), 0u);
    EXPECT_EQ(r.str(), "");
}

TEST(ByteCodec, CorruptLengthDoesNotAllocate)
{
    ByteWriter w;
    w.u64v(~0ULL); // absurd element count
    ByteReader r(w.bytes());
    EXPECT_EQ(r.count(8), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, ProgramRoundTripsAndHashIsStable)
{
    const Program prog = test_program();
    ByteWriter w;
    serialize(w, prog);

    Program back;
    ByteReader r(w.bytes());
    ASSERT_TRUE(deserialize(r, back));
    EXPECT_TRUE(r.atEnd());

    // Canonical: re-serialization is byte-identical, hashes agree.
    ByteWriter w2;
    serialize(w2, back);
    EXPECT_EQ(w.bytes(), w2.bytes());
    EXPECT_EQ(program_content_hash(prog), program_content_hash(back));

    // Distinct programs get distinct hashes.
    const Program other = build_benchmark("epic", SuiteScale{});
    EXPECT_NE(program_content_hash(prog), program_content_hash(other));
}

TEST(Serialize, ProfileRoundTrips)
{
    const Program prog = test_program();
    GoldenRun golden = run_golden(prog);

    ByteWriter w;
    serialize(w, golden.profile);
    Profile back;
    ByteReader r(w.bytes());
    ASSERT_TRUE(deserialize(r, back));
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(golden.profile.blockCount, back.blockCount);
    EXPECT_EQ(golden.profile.branchExec, back.branchExec);
    EXPECT_EQ(golden.profile.branchTaken, back.branchTaken);
    EXPECT_EQ(golden.profile.memAccess, back.memAccess);
    EXPECT_EQ(golden.profile.memMiss, back.memMiss);
    EXPECT_EQ(golden.profile.dynamicOps, back.dynamicOps);
    ASSERT_EQ(golden.profile.loops.size(), back.loops.size());
    for (const auto &[key, lp] : golden.profile.loops) {
        const auto it = back.loops.find(key);
        ASSERT_NE(it, back.loops.end());
        EXPECT_EQ(lp.activations, it->second.activations);
        EXPECT_EQ(lp.totalIterations, it->second.totalIterations);
        EXPECT_EQ(lp.crossIterDep, it->second.crossIterDep);
        EXPECT_EQ(lp.dynamicOps, it->second.dynamicOps);
    }
}

TEST(Serialize, GoldenImageRoundTrips)
{
    const Program prog = test_program();
    GoldenRun golden = run_golden(prog);
    const GoldenImage image = extract_golden_image(prog, *golden.memory);
    ASSERT_EQ(image.size(), prog.data.size());

    ByteWriter w;
    serialize(w, image);
    GoldenImage back;
    ByteReader r(w.bytes());
    ASSERT_TRUE(deserialize(r, back));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(image, back);
}

TEST(Serialize, MachineProgramRoundTripsAndSimulatesIdentically)
{
    ScopedNoCache guard;
    VoltronSystem sys(test_program());
    CompileOptions opts;
    opts.strategy = Strategy::TlpOnly;
    opts.numCores = 4;
    const MachineProgram &mp = sys.compile(opts);

    ByteWriter w;
    serialize(w, mp);
    MachineProgram back;
    ByteReader r(w.bytes());
    ASSERT_TRUE(deserialize(r, back));
    EXPECT_TRUE(r.atEnd());

    ByteWriter w2;
    serialize(w2, back);
    EXPECT_EQ(w.bytes(), w2.bytes());

    Machine a(mp, MachineConfig::forCores(4));
    Machine b(back, MachineConfig::forCores(4));
    const MachineResult ra = a.run(), rb = b.run();
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.exitValue, rb.exitValue);
    EXPECT_EQ(ra.dynamicOps, rb.dynamicOps);
    EXPECT_EQ(ra.stalls, rb.stalls);
    EXPECT_EQ(ra.issued, rb.issued);
    EXPECT_EQ(ra.regionCycles, rb.regionCycles);
}

TEST(Serialize, CorruptOperationStreamFailsCleanly)
{
    const Program prog = test_program();
    ByteWriter w;
    serialize(w, prog);
    std::vector<u8> bytes = w.bytes();
    bytes.resize(bytes.size() / 2); // truncate mid-stream
    Program back;
    ByteReader r(bytes);
    EXPECT_FALSE(deserialize(r, back));
    EXPECT_FALSE(r.ok());
}

TEST(OptionsHash, MissPenaltyChangesTheKey)
{
    // Regression: the old string cacheKey dropped missPenalty, aliasing
    // two different option sets to one compiled artifact.
    CompileOptions a, b;
    a.missPenalty = 30;
    b.missPenalty = 60;
    EXPECT_NE(options_hash(a), options_hash(b));

    // Every other field still participates.
    CompileOptions c = a;
    c.partition.missEdgeWeight += 1;
    EXPECT_NE(options_hash(a), options_hash(c));
}

TEST(OptionsHash, MissPenaltyGetsDistinctCacheEntries)
{
    ScopedNoCache guard;
    VoltronSystem sys(test_program());
    CompileOptions a;
    a.strategy = Strategy::TlpOnly;
    a.numCores = 4;
    CompileOptions b = a;
    b.missPenalty = a.missPenalty * 4;

    SelectionReport ra, rb;
    const MachineProgram &ma = sys.compile(a, &ra);
    const MachineProgram &mb = sys.compile(b, &rb);
    EXPECT_EQ(sys.compiledVariants(), 2u);
    // Distinct entries: the two references must not alias.
    EXPECT_NE(&ma, &mb);
    ASSERT_EQ(ra.entries.size(), rb.entries.size());
}

TEST(ArtifactCache, DiskRoundTripAndStats)
{
    ScopedCacheDir cache("disk-roundtrip");
    const Program prog = test_program();
    const u64 prog_hash = program_content_hash(prog);

    {
        VoltronSystem sys(test_program());
        sys.run(Strategy::TlpOnly, 2);
        sys.baselineCycles();
        EXPECT_EQ(sys.programHash(), prog_hash);
    }
    const ArtifactCacheStats cold = ArtifactCache::instance().stats();
    EXPECT_GE(cold.stores(), 3u); // golden + >=1 machine + baseline
    EXPECT_EQ(cold.diskHits(), 0u);

    // Same program again, in-process level dropped: everything must be
    // served from disk, nothing recomputed.
    ArtifactCache::instance().clearMemory();
    ArtifactCache::instance().resetStats();
    {
        VoltronSystem sys(test_program());
        sys.run(Strategy::TlpOnly, 2);
        sys.baselineCycles();
    }
    const ArtifactCacheStats warm = ArtifactCache::instance().stats();
    EXPECT_EQ(warm.misses(), 0u);
    EXPECT_GE(warm.diskHits(), 3u);

    // The entries verify via the tool-facing reader (walking the shard
    // fan-out, like cachectl does).
    size_t entries = 0;
    for_each_cache_file(cache.path().string(), [&](const auto &de) {
        CacheEntryHeader header;
        std::vector<u8> payload;
        EXPECT_TRUE(read_cache_entry(de.path().string(), header, &payload))
            << de.path();
        ++entries;
    });
    EXPECT_GE(entries, 3u);
}

TEST(ArtifactCache, OrphanedStoreTempIsDebrisNotAnEntry)
{
    ScopedCacheDir cache("orphan");
    {
        VoltronSystem sys(test_program());
        sys.run(Strategy::IlpOnly, 2);
    }
    // Simulate a writer killed between writing its temp and the rename:
    // a half-written ".tmp<pid>" next to the published entries.
    const std::string entry =
        cache_entry_filename(ArtifactKind::Golden, 0x1234abcdULL);
    const std::filesystem::path orphan =
        cache.path() / (entry + ".tmp99999");
    {
        std::ofstream os(orphan, std::ios::binary);
        os << "partial";
    }
    EXPECT_TRUE(is_cache_temp_name(orphan.filename().string()));
    EXPECT_FALSE(is_cache_temp_name(entry));
    EXPECT_FALSE(is_cache_temp_name(entry + ".tmp"));    // no pid digits
    EXPECT_FALSE(is_cache_temp_name(entry + ".tmp12x")); // junk suffix

    // The runtime never reads temps: a warm run is served entirely from
    // the published entries, and the temp is not counted as corrupt.
    ArtifactCache::instance().clearMemory();
    ArtifactCache::instance().resetStats();
    {
        VoltronSystem sys(test_program());
        sys.run(Strategy::IlpOnly, 2);
    }
    const ArtifactCacheStats warm = ArtifactCache::instance().stats();
    EXPECT_EQ(warm.misses(), 0u);
    EXPECT_EQ(warm.corrupt, 0u);

    // The sweep removes the temp and nothing else.
    const auto count_published = [&] {
        size_t published = 0;
        for_each_cache_file(cache.path().string(), [&](const auto &de) {
            if (de.path().extension() == ".vcache")
                ++published;
        });
        return published;
    };
    const size_t published = count_published();
    ASSERT_GT(published, 0u);
    EXPECT_EQ(sweep_cache_temps(cache.path().string()), 1u);
    EXPECT_FALSE(std::filesystem::exists(orphan));
    EXPECT_EQ(count_published(), published);
}

TEST(ArtifactCache, CorruptedEntryFallsBackToColdCompile)
{
    ScopedCacheDir cache("corrupt");
    Cycle cold_cycles = 0;
    {
        VoltronSystem sys(test_program());
        cold_cycles = sys.run(Strategy::IlpOnly, 2).result.cycles;
    }
    // Flip a byte in the middle of every payload on disk.
    for_each_cache_file(cache.path().string(), [&](const auto &de) {
        std::fstream f(de.path(),
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(0, std::ios::end);
        const auto size = static_cast<long>(f.tellg());
        ASSERT_GT(size, 40);
        f.seekp(size / 2 + 18, std::ios::beg);
        char byte = 0;
        f.seekg(f.tellp());
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5a);
        f.seekp(size / 2 + 18, std::ios::beg);
        f.write(&byte, 1);
    });
    ArtifactCache::instance().clearMemory();
    ArtifactCache::instance().resetStats();
    {
        VoltronSystem sys(test_program());
        RunOutcome outcome = sys.run(Strategy::IlpOnly, 2);
        // Never a crash or a wrong figure: the cold path reproduces the
        // exact result.
        EXPECT_TRUE(outcome.correct());
        EXPECT_EQ(outcome.result.cycles, cold_cycles);
    }
    const ArtifactCacheStats stats = ArtifactCache::instance().stats();
    EXPECT_GT(stats.corrupt, 0u);
    EXPECT_EQ(stats.diskHits(), 0u);
    EXPECT_GT(stats.misses(), 0u);
}

TEST(ArtifactCache, VersionMismatchIsAMiss)
{
    ScopedCacheDir cache("version");
    {
        VoltronSystem sys(test_program());
        sys.compile(CompileOptions{});
    }
    // Bump the version field (offset 4) in every entry.
    for_each_cache_file(cache.path().string(), [&](const auto &de) {
        std::fstream f(de.path(),
                       std::ios::in | std::ios::out | std::ios::binary);
        u32 version = kCacheFormatVersion + 1;
        f.seekp(4, std::ios::beg);
        f.write(reinterpret_cast<const char *>(&version), 4);
    });
    ArtifactCache::instance().clearMemory();
    ArtifactCache::instance().resetStats();
    {
        VoltronSystem sys(test_program());
        sys.compile(CompileOptions{});
    }
    const ArtifactCacheStats stats = ArtifactCache::instance().stats();
    EXPECT_EQ(stats.diskHits(), 0u);
    EXPECT_GT(stats.misses(), 0u);
}

/** Field-by-field MachineResult equality (bit-identical warm runs). */
void
expect_identical(const MachineResult &a, const MachineResult &b)
{
    EXPECT_EQ(a.exitValue, b.exitValue);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dynamicOps, b.dynamicOps);
    EXPECT_EQ(a.stalls, b.stalls);
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.idleCycles, b.idleCycles);
    EXPECT_EQ(a.regionCycles, b.regionCycles);
    EXPECT_EQ(a.coupledCycles, b.coupledCycles);
    EXPECT_EQ(a.decoupledCycles, b.decoupledCycles);
}

TEST(ArtifactCache, StartupSweepRemovesAgedTempsOnly)
{
    ScopedCacheDir cache("agesweep");
    std::filesystem::create_directories(cache.path());
    const std::string entry =
        cache_entry_filename(ArtifactKind::Golden, 0xfeedULL);
    const std::filesystem::path aged = cache.path() / (entry + ".tmp11111");
    const std::filesystem::path fresh =
        cache.path() / (entry + ".tmp22222");
    {
        std::ofstream(aged, std::ios::binary) << "old-partial";
        std::ofstream(fresh, std::ios::binary) << "new-partial";
    }
    // Pre-age one temp well past the auto-sweep threshold.
    std::filesystem::last_write_time(
        aged, std::filesystem::file_time_type::clock::now() -
                  std::chrono::seconds(2 * kCacheTempSweepAgeSeconds));

    // First disk access auto-sweeps the dir: the orphan goes, the fresh
    // temp (a live writer mid-publish, as far as we can tell) stays.
    {
        VoltronSystem sys(test_program());
        sys.compile(CompileOptions{});
    }
    EXPECT_FALSE(std::filesystem::exists(aged));
    EXPECT_TRUE(std::filesystem::exists(fresh));

    // Explicit sweep with no age floor (cachectl sweep) takes the rest.
    EXPECT_EQ(sweep_cache_temps(cache.path().string()), 1u);
    EXPECT_FALSE(std::filesystem::exists(fresh));
}

TEST(ArtifactCache, WarmRunIsBitIdenticalToCold)
{
    // Cold reference: cache fully disabled.
    RunOutcome cold_ilp, cold_tlp;
    Cycle cold_baseline = 0;
    {
        ScopedNoCache guard;
        VoltronSystem sys(test_program());
        cold_ilp = sys.run(Strategy::IlpOnly, 4);
        cold_tlp = sys.run(Strategy::TlpOnly, 4);
        cold_baseline = sys.baselineCycles();
    }

    ScopedCacheDir cache("determinism");
    {
        // Populate the disk level.
        VoltronSystem sys(test_program());
        sys.run(Strategy::IlpOnly, 4);
        sys.run(Strategy::TlpOnly, 4);
        sys.baselineCycles();
    }
    ArtifactCache::instance().clearMemory();
    ArtifactCache::instance().resetStats();
    {
        // Warm run: every front-end artifact comes from disk.
        VoltronSystem sys(test_program());
        RunOutcome warm_ilp = sys.run(Strategy::IlpOnly, 4);
        RunOutcome warm_tlp = sys.run(Strategy::TlpOnly, 4);
        const Cycle warm_baseline = sys.baselineCycles();

        EXPECT_GT(ArtifactCache::instance().stats().diskHits(), 0u);
        EXPECT_EQ(ArtifactCache::instance().stats().misses(), 0u);

        EXPECT_EQ(warm_ilp.exitMatches, cold_ilp.exitMatches);
        EXPECT_EQ(warm_ilp.memoryMatches, cold_ilp.memoryMatches);
        expect_identical(warm_ilp.result, cold_ilp.result);
        expect_identical(warm_tlp.result, cold_tlp.result);
        EXPECT_EQ(warm_baseline, cold_baseline);

        ASSERT_EQ(warm_ilp.selection.entries.size(),
                  cold_ilp.selection.entries.size());
        for (size_t i = 0; i < warm_ilp.selection.entries.size(); ++i) {
            const auto &w = warm_ilp.selection.entries[i];
            const auto &c = cold_ilp.selection.entries[i];
            EXPECT_EQ(w.region, c.region);
            EXPECT_EQ(w.mode, c.mode);
            EXPECT_EQ(w.profiledOps, c.profiledOps);
        }
    }
}

} // namespace
} // namespace voltron
