/** @file End-to-end golden-equivalence property suite.
 *
 * The master invariant of this reproduction (DESIGN.md §5): every
 * compiled configuration — any strategy, any core count — must reproduce
 * the sequential interpreter's exit value and final memory image. The
 * parameterised sweep below covers every archetype x strategy x core
 * count combination, which exercises every compiler path (BUG, eBUG,
 * DSWP, DOALL incl. accumulator expansion, branch replication, both
 * network modes, mode switching, the TM) against the golden model.
 */

#include <gtest/gtest.h>

#include "core/voltron.hh"
#include "workloads/archetypes.hh"
#include "workloads/suite.hh"

namespace voltron {
namespace {

struct E2eCase
{
    Archetype archetype;
    Strategy strategy;
    u16 cores;
    u64 trips;
    u64 elems;
};

std::string
case_name(const ::testing::TestParamInfo<E2eCase> &info)
{
    const E2eCase &c = info.param;
    std::string name = archetype_name(c.archetype);
    name += "_";
    name += strategy_name(c.strategy);
    name += "_" + std::to_string(c.cores) + "c";
    return name;
}

Program
phase_program(Archetype archetype, u64 trips, u64 elems)
{
    Rng rng(1234 + static_cast<u64>(archetype));
    ProgramBuilder b("e2e");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    PhaseParams pp;
    pp.trips = trips;
    pp.elems = elems;
    pp.width = 5;
    FuncId f = emit_phase(b, archetype,
                          archetype_name(archetype), pp, rng);
    Program prog = b.take();
    Function &main_fn = prog.function(0);
    main_fn.blocks.clear();
    main_fn.addBlock("entry");
    BasicBlock &bb = main_fn.block(0);
    // Call the phase twice with different reps to exercise region
    // re-entry (spawn/sleep cycles, repeated mode switches).
    RegId acc = gpr(9);
    bb.append(ops::movi(acc, 0));
    for (i64 rep = 1; rep <= 2; ++rep) {
        bb.append(ops::movi(gpr(1), rep));
        RegId bt = main_fn.freshReg(RegClass::BTR);
        bb.append(ops::pbr(bt, CodeRef::to_function(f)));
        bb.append(ops::call(bt));
        bb.append(ops::alu(Opcode::XOR, acc, acc, gpr(0)));
    }
    bb.append(ops::halt(acc));
    return prog;
}

class EndToEnd : public ::testing::TestWithParam<E2eCase>
{
};

TEST_P(EndToEnd, MatchesGoldenModel)
{
    const E2eCase &c = GetParam();
    VoltronSystem sys(phase_program(c.archetype, c.trips, c.elems));
    RunOutcome outcome = sys.run(c.strategy, c.cores);
    EXPECT_TRUE(outcome.exitMatches)
        << "exit value diverged: " << outcome.result.exitValue << " vs "
        << sys.goldenResult().exitValue;
    EXPECT_TRUE(outcome.memoryMatches) << "final memory diverged";
    EXPECT_GT(outcome.result.cycles, 0u);
    // Stall accounting sanity: no core stalls longer than the run.
    for (CoreId core = 0; core < c.cores; ++core)
        EXPECT_LE(outcome.result.stallSum(core), outcome.result.cycles);
}

std::vector<E2eCase>
all_cases()
{
    std::vector<E2eCase> cases;
    for (Archetype archetype :
         {Archetype::DoallStream, Archetype::DoallReduction,
          Archetype::IlpWide, Archetype::StrandMatch, Archetype::DswpPipe,
          Archetype::PointerChase, Archetype::BranchyIlp}) {
        for (Strategy strategy :
             {Strategy::IlpOnly, Strategy::TlpOnly, Strategy::LlpOnly,
              Strategy::Hybrid}) {
            for (u16 cores : {2, 4})
                cases.push_back({archetype, strategy, cores, 200, 512});
        }
        cases.push_back({archetype, Strategy::SerialOnly, 1, 200, 512});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EndToEnd, ::testing::ValuesIn(all_cases()),
                         [](const auto &info) {
                             std::string n = case_name(info);
                             return n + "_" + std::to_string(info.index);
                         });

// --- Targeted end-to-end scenarios ----------------------------------------

TEST(E2eScenario, DoallZeroTripLoop)
{
    // The chunked loop's zero-trip path must leave state untouched.
    ProgramBuilder b("zt");
    Addr arr = b.allocArrayI64("a", std::vector<i64>(64, 2));
    u32 sym = b.symbolOf("a");
    b.beginFunction("main");
    RegId base = b.emitImm(static_cast<i64>(arr));
    RegId bound = b.emitImm(0); // dynamic zero bound
    RegId sum = b.emitImm(123);
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoopReg(i, 0, bound);
    RegId off = b.newGpr();
    b.emit(ops::alui(Opcode::SHL, off, i, 3));
    RegId addr = b.newGpr();
    b.emit(ops::add(addr, base, off));
    RegId v = b.newGpr();
    b.emitLoad(v, addr, 0, sym);
    b.emit(ops::add(sum, sum, v));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();

    VoltronSystem sys(b.take());
    EXPECT_EQ(sys.goldenResult().exitValue, 123u);
    // With a zero-trip profile the loop is not worth parallelising, so
    // force LLP selection off the profile is moot — what matters is the
    // run still matches.
    RunOutcome outcome = sys.run(Strategy::LlpOnly, 4);
    EXPECT_TRUE(outcome.correct());
}

TEST(E2eScenario, DoallMisspeculationRollsBack)
{
    // A loop with a *rare* cross-iteration dependence that the training
    // profile does not see: train on a small array region without the
    // dependence... Our profile always sees the dependence since it runs
    // the same input, so instead we force LLP compilation of a loop the
    // profiler believes is independent but whose TM run aborts due to
    // line-granularity false sharing: adjacent 8-byte elements in one
    // cache line written by different chunks.
    ProgramBuilder b("fs");
    // 8 elements: one line. Chunks share the line -> violation at run
    // time, serial recovery must produce the correct result.
    Addr arr = b.allocArrayI64("a", std::vector<i64>(8, 1));
    u32 sym = b.symbolOf("a");
    b.beginFunction("main");
    RegId base = b.emitImm(static_cast<i64>(arr));
    RegId sum = b.emitImm(0);
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, 8);
    RegId off = b.newGpr();
    b.emit(ops::alui(Opcode::SHL, off, i, 3));
    RegId addr = b.newGpr();
    b.emit(ops::add(addr, base, off));
    RegId v = b.newGpr();
    b.emitLoad(v, addr, 0, sym);
    b.emit(ops::alui(Opcode::MUL, v, v, 3));
    b.emitStore(addr, 0, v, sym);
    b.emit(ops::add(sum, sum, v));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();

    VoltronSystem sys(b.take());
    CompileOptions opts;
    opts.strategy = Strategy::LlpOnly;
    opts.numCores = 4;
    opts.minOpsPerActivation = 1; // force parallelisation of the tiny loop
    opts.minDoallTrip = 2;
    RunOutcome outcome = sys.run(opts);
    EXPECT_TRUE(outcome.correct());
}

TEST(E2eScenario, NestedLoopsWithInnerDoall)
{
    // An outer loop with a call makes the inner loops the regions.
    ProgramBuilder b("nest");
    const u64 n = 128;
    Addr arr = b.allocArrayI64("a", std::vector<i64>(n, 5));
    u32 sym = b.symbolOf("a");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    FuncId phase = b.beginFunction("phase", 1, true);
    {
        RegId base = b.emitImm(static_cast<i64>(arr));
        RegId sum = b.emitImm(0);
        RegId i = b.newGpr();
        LoopHandles loop = b.forLoop(i, 0, static_cast<i64>(n));
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, i, 3));
        RegId addr = b.newGpr();
        b.emit(ops::add(addr, base, off));
        RegId v = b.newGpr();
        b.emitLoad(v, addr, 0, sym);
        b.emit(ops::add(v, v, gpr(1)));
        b.emitStore(addr, 0, v, sym);
        b.emit(ops::add(sum, sum, v));
        b.endCountedLoop(loop);
        b.emit(ops::mov(gpr(0), sum));
        b.emit(ops::ret());
    }
    b.endFunction();
    Program prog = b.take();
    Function &main_fn = prog.function(0);
    main_fn.blocks.clear();
    main_fn.addBlock("entry");
    {
        BasicBlock &bb = main_fn.block(0);
        RegId total = gpr(9);
        bb.append(ops::movi(total, 0));
        bb.append(ops::movi(gpr(8), 0));
    }
    // outer loop calling phase: use builder-less manual loop via blocks.
    // Simpler: three straight-line calls.
    {
        BasicBlock &bb = main_fn.block(0);
        for (i64 rep = 0; rep < 3; ++rep) {
            bb.append(ops::movi(gpr(1), rep));
            RegId bt = main_fn.freshReg(RegClass::BTR);
            bb.append(ops::pbr(bt, CodeRef::to_function(phase)));
            bb.append(ops::call(bt));
            bb.append(ops::add(gpr(9), gpr(9), gpr(0)));
        }
        bb.append(ops::halt(gpr(9)));
    }

    VoltronSystem sys(std::move(prog));
    for (Strategy s : {Strategy::LlpOnly, Strategy::Hybrid}) {
        RunOutcome outcome = sys.run(s, 4);
        EXPECT_TRUE(outcome.correct()) << strategy_name(s);
    }
}

TEST(E2eScenario, WholeBenchmarksMatchGolden)
{
    // A couple of full suite benchmarks through every strategy.
    for (const char *name : {"gsmdecode", "179.art"}) {
        SuiteScale scale;
        scale.targetOps = 30'000; // keep the test fast
        VoltronSystem sys(build_benchmark(name, scale));
        for (Strategy s : {Strategy::IlpOnly, Strategy::TlpOnly,
                           Strategy::LlpOnly, Strategy::Hybrid}) {
            RunOutcome outcome = sys.run(s, 4);
            EXPECT_TRUE(outcome.correct())
                << name << " diverged under " << strategy_name(s);
        }
    }
}

TEST(E2eScenario, HybridBeatsSerialOnMixedProgram)
{
    SuiteScale scale;
    scale.targetOps = 60'000;
    VoltronSystem sys(build_benchmark("171.swim", scale));
    RunOutcome outcome = sys.run(Strategy::Hybrid, 4);
    EXPECT_TRUE(outcome.correct());
    EXPECT_GT(sys.speedup(outcome), 1.5);
}

TEST(E2eScenario, ModeCyclesPartitionTotal)
{
    SuiteScale scale;
    scale.targetOps = 30'000;
    VoltronSystem sys(build_benchmark("cjpeg", scale));
    RunOutcome outcome = sys.run(Strategy::Hybrid, 4);
    EXPECT_EQ(outcome.result.coupledCycles + outcome.result.decoupledCycles,
              outcome.result.cycles);
    EXPECT_GT(outcome.result.coupledCycles, 0u);
    EXPECT_GT(outcome.result.decoupledCycles, 0u);
}

TEST(E2eScenario, RegionCyclesCoverMostOfTheRun)
{
    SuiteScale scale;
    scale.targetOps = 30'000;
    VoltronSystem sys(build_benchmark("gsmencode", scale));
    RunOutcome outcome = sys.run(Strategy::Hybrid, 4);
    u64 attributed = 0;
    for (const auto &[region, cycles] : outcome.result.regionCycles)
        attributed += cycles;
    EXPECT_GT(attributed, outcome.result.cycles * 9 / 10);
    EXPECT_LE(attributed, outcome.result.cycles);
}

} // namespace
} // namespace voltron
