/**
 * @file
 * Trace-layer tests: name round-trips, ring-buffer semantics, the
 * traced-vs-untraced bit-identity guarantee, event-stream determinism
 * (including fast-forward vs naive stepping), .vtrace file round-trips,
 * Chrome trace-event export validity, and the MetricsRegistry's
 * agreement with the MachineResult it was collected from.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include <unistd.h>

#include "core/voltron.hh"
#include "sim/machine.hh"
#include "trace/metrics.hh"
#include "trace/perfetto.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace voltron {
namespace {

/** Small scale keeps the traced sweeps fast. */
SuiteScale
test_scale()
{
    SuiteScale scale;
    scale.targetOps = 20'000;
    return scale;
}

Program
test_program(const std::string &name = "epic")
{
    return build_benchmark(name, test_scale());
}

void
expect_identical(const MachineResult &a, const MachineResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.exitValue, b.exitValue) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.dynamicOps, b.dynamicOps) << what;
    EXPECT_EQ(a.coupledCycles, b.coupledCycles) << what;
    EXPECT_EQ(a.decoupledCycles, b.decoupledCycles) << what;
    EXPECT_EQ(a.regionCycles, b.regionCycles) << what;
    ASSERT_EQ(a.issued.size(), b.issued.size()) << what;
    for (CoreId c = 0; c < a.issued.size(); ++c) {
        EXPECT_EQ(a.issued[c], b.issued[c]) << what << " core " << c;
        EXPECT_EQ(a.idleCycles[c], b.idleCycles[c])
            << what << " core " << c;
        for (size_t cat = 0;
             cat < static_cast<size_t>(StallCat::NumCats); ++cat) {
            EXPECT_EQ(a.stalls[c][cat], b.stalls[c][cat])
                << what << " core " << c << " stall "
                << stall_cat_name(static_cast<StallCat>(cat));
        }
    }
}

/** Run @p mp traced on @p cores cores, returning events + result. */
struct TracedRun
{
    MachineResult result;
    std::vector<TraceEvent> events;
    u64 dropped = 0;
};

TracedRun
run_traced(const MachineProgram &mp, u16 cores, bool naive = false)
{
    RingBufferTraceSink ring(size_t{1} << 21);
    MachineConfig config = MachineConfig::forCores(cores);
    config.traceSink = &ring;
    config.forceNaiveStepping = naive;
    Machine machine(mp, config);
    TracedRun run;
    run.result = machine.run();
    run.events = ring.events();
    run.dropped = ring.dropped();
    return run;
}

TEST(TraceNames, StallCatRoundTripsEveryValue)
{
    std::set<std::string> seen;
    for (size_t i = 0; i < static_cast<size_t>(StallCat::NumCats); ++i) {
        const StallCat cat = static_cast<StallCat>(i);
        const std::string name = stall_cat_name(cat);
        EXPECT_NE(name, "?") << i;
        EXPECT_FALSE(name.empty()) << i;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate stall name " << name;
        EXPECT_EQ(stall_cat_from_name(name), cat) << name;
    }
    EXPECT_EQ(stall_cat_from_name("no-such-category"), StallCat::NumCats);
    EXPECT_EQ(stall_cat_from_name(""), StallCat::NumCats);
}

TEST(TraceNames, EventKindRoundTripsEveryValue)
{
    std::set<std::string> seen;
    for (size_t i = 0; i < static_cast<size_t>(TraceEventKind::NumKinds);
         ++i) {
        const TraceEventKind kind = static_cast<TraceEventKind>(i);
        const std::string name = trace_event_kind_name(kind);
        EXPECT_NE(name, "?") << i;
        EXPECT_FALSE(name.empty()) << i;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate event-kind name " << name;
        EXPECT_EQ(trace_event_kind_from_name(name), kind) << name;
    }
    EXPECT_EQ(trace_event_kind_from_name("no-such-kind"),
              TraceEventKind::NumKinds);
}

TEST(RingBufferTraceSink, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(RingBufferTraceSink(1).capacity(), 16u);
    EXPECT_EQ(RingBufferTraceSink(16).capacity(), 16u);
    EXPECT_EQ(RingBufferTraceSink(17).capacity(), 32u);
    EXPECT_EQ(RingBufferTraceSink(1000).capacity(), 1024u);
}

TEST(RingBufferTraceSink, OverflowKeepsNewestAndCountsDrops)
{
    RingBufferTraceSink ring(16);
    for (u64 i = 0; i < 40; ++i) {
        TraceEvent ev;
        ev.cycle = i;
        ev.kind = TraceEventKind::Issue;
        ring.emit(ev);
    }
    EXPECT_EQ(ring.total(), 40u);
    EXPECT_EQ(ring.dropped(), 24u);
    const std::vector<TraceEvent> events = ring.events();
    ASSERT_EQ(events.size(), 16u);
    // Oldest first, and exactly the newest 16 offered.
    for (size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].cycle, 24 + i);

    ring.clear();
    EXPECT_EQ(ring.total(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_TRUE(ring.events().empty());
}

TEST(Trace, TracedRunIsBitIdenticalToUntraced)
{
    VoltronSystem sys(test_program());
    for (Strategy strategy :
         {Strategy::IlpOnly, Strategy::TlpOnly, Strategy::Hybrid}) {
        CompileOptions opts;
        opts.strategy = strategy;
        opts.numCores = 4;
        const MachineProgram &mp = sys.compile(opts);

        Machine untraced(mp, MachineConfig::forCores(4));
        const MachineResult plain = untraced.run();
        const TracedRun traced = run_traced(mp, 4);

        expect_identical(traced.result, plain,
                         std::string("traced vs untraced, ") +
                             strategy_name(strategy));
        EXPECT_FALSE(traced.events.empty());
    }
}

TEST(Trace, NullSinkMatchesNoSink)
{
    VoltronSystem sys(test_program());
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 4;
    const MachineProgram &mp = sys.compile(opts);

    Machine bare(mp, MachineConfig::forCores(4));
    const MachineResult plain = bare.run();

    NullTraceSink null_sink;
    MachineConfig config = MachineConfig::forCores(4);
    config.traceSink = &null_sink;
    Machine nulled(mp, config);
    expect_identical(nulled.run(), plain, "null sink vs no sink");
}

TEST(Trace, StreamIsDeterministicAcrossRunsAndSteppers)
{
    VoltronSystem sys(test_program());
    for (Strategy strategy : {Strategy::TlpOnly, Strategy::Hybrid}) {
        CompileOptions opts;
        opts.strategy = strategy;
        opts.numCores = 4;
        const MachineProgram &mp = sys.compile(opts);

        const TracedRun a = run_traced(mp, 4);
        const TracedRun b = run_traced(mp, 4);
        const TracedRun naive = run_traced(mp, 4, /*naive=*/true);
        ASSERT_EQ(a.dropped, 0u) << "raise the test ring capacity";

        // Same build, same program, same config: byte-identical streams,
        // in both repeated runs and fast-forward vs naive stepping.
        EXPECT_EQ(event_stream_hash(a.events), event_stream_hash(b.events))
            << strategy_name(strategy);
        ASSERT_EQ(a.events.size(), naive.events.size())
            << strategy_name(strategy);
        EXPECT_EQ(event_stream_hash(a.events),
                  event_stream_hash(naive.events))
            << strategy_name(strategy);
        EXPECT_TRUE(a.events == naive.events) << strategy_name(strategy);
        expect_identical(a.result, naive.result,
                         std::string("traced ff vs traced naive, ") +
                             strategy_name(strategy));
    }
}

TEST(Trace, StallSpansAccountForStallCounters)
{
    // Every StallEnd carries its span length; summing spans per (core,
    // category) must reproduce the MachineResult stall counters exactly
    // (stall() charges one cycle per stalled cycle, spans cover them).
    VoltronSystem sys(test_program());
    CompileOptions opts;
    opts.strategy = Strategy::TlpOnly;
    opts.numCores = 4;
    const MachineProgram &mp = sys.compile(opts);
    const TracedRun run = run_traced(mp, 4);
    ASSERT_EQ(run.dropped, 0u);

    std::vector<std::array<u64, static_cast<size_t>(StallCat::NumCats)>>
        spans(4);
    for (auto &arr : spans)
        arr.fill(0);
    for (const TraceEvent &ev : run.events)
        if (ev.kind == TraceEventKind::StallEnd)
            spans[ev.core][ev.arg8] += ev.arg64;
    for (CoreId c = 0; c < 4; ++c)
        for (size_t cat = 1;
             cat < static_cast<size_t>(StallCat::NumCats); ++cat)
            EXPECT_EQ(spans[c][cat], run.result.stalls[c][cat])
                << "core " << c << " "
                << stall_cat_name(static_cast<StallCat>(cat));
}

TEST(Trace, VtraceFileRoundTrips)
{
    VoltronSystem sys(test_program());
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 2;
    const TracedRun run = run_traced(sys.compile(opts), 2);

    TraceHeader header;
    header.numCores = 2;
    header.totalCycles = run.result.cycles;
    header.totalEvents = run.events.size();
    header.dropped = 0;
    header.label = "test/hybrid/c2";

    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("voltron-test-trace-" + std::to_string(::getpid()) + ".vtrace"))
            .string();
    ASSERT_TRUE(write_trace(path, header, run.events));

    TraceHeader back;
    std::vector<TraceEvent> events;
    ASSERT_TRUE(read_trace(path, back, events));
    EXPECT_EQ(back.numCores, header.numCores);
    EXPECT_EQ(back.totalCycles, header.totalCycles);
    EXPECT_EQ(back.totalEvents, header.totalEvents);
    EXPECT_EQ(back.dropped, header.dropped);
    EXPECT_EQ(back.label, header.label);
    ASSERT_EQ(events.size(), run.events.size());
    EXPECT_TRUE(events == run.events);
    EXPECT_EQ(event_stream_hash(events), event_stream_hash(run.events));

    // A truncated file must fail cleanly, not crash or half-load.
    {
        std::ifstream is(path, std::ios::binary);
        std::stringstream ss;
        ss << is.rdbuf();
        std::string bytes = ss.str();
        bytes.resize(bytes.size() / 2);
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << bytes;
    }
    EXPECT_FALSE(read_trace(path, back, events));
    std::filesystem::remove(path);
}

TEST(Trace, ChromeExportIsValidJson)
{
    VoltronSystem sys(test_program());
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 4;
    const TracedRun run = run_traced(sys.compile(opts), 4);

    TraceHeader header;
    header.numCores = 4;
    header.totalCycles = run.result.cycles;
    header.totalEvents = run.events.size();
    header.label = "test/hybrid/c4";

    std::ostringstream os;
    export_chrome_trace(os, header, run.events);
    const std::string json = os.str();
    std::string error;
    EXPECT_TRUE(validate_json(json, &error)) << error;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"stall\""), std::string::npos);

    // The summary never crashes on a real stream and mentions the hash.
    std::ostringstream summary;
    summarize_trace(summary, header, run.events);
    EXPECT_NE(summary.str().find("hash"), std::string::npos);
}

TEST(Trace, ValidatorRejectsMalformedJson)
{
    EXPECT_TRUE(validate_json("{\"a\": [1, 2.5e3, \"x\\n\", true, null]}"));
    EXPECT_FALSE(validate_json(""));
    EXPECT_FALSE(validate_json("{\"a\": }"));
    EXPECT_FALSE(validate_json("{\"a\": 1} trailing"));
    EXPECT_FALSE(validate_json("[1, 2,"));
    std::string error;
    EXPECT_FALSE(validate_json("{bad}", &error));
    EXPECT_FALSE(error.empty());
}

TEST(Metrics, RegistryMatchesMachineResult)
{
    VoltronSystem sys(test_program());
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 4;
    const MachineProgram &mp = sys.compile(opts);
    Machine machine(mp, MachineConfig::forCores(4));
    const MachineResult result = machine.run();
    const MetricsRegistry metrics = collect_metrics(machine, result);

    EXPECT_EQ(metrics.get("sim.cycles"), result.cycles);
    EXPECT_EQ(metrics.get("sim.dynamicOps"), result.dynamicOps);
    EXPECT_EQ(metrics.get("sim.coupledCycles"), result.coupledCycles);
    EXPECT_EQ(metrics.get("sim.decoupledCycles"), result.decoupledCycles);
    for (CoreId c = 0; c < 4; ++c) {
        const std::string core = "sim.core" + std::to_string(c);
        EXPECT_EQ(metrics.get(core + ".issued"), result.issued[c]) << core;
        EXPECT_EQ(metrics.get(core + ".idleCycles"), result.idleCycles[c])
            << core;
        for (size_t cat = 1;
             cat < static_cast<size_t>(StallCat::NumCats); ++cat) {
            const u64 count = result.stalls[c][cat];
            const std::string name =
                core + ".stall." +
                stall_cat_name(static_cast<StallCat>(cat));
            // Zero stalls are omitted to keep the JSON small.
            EXPECT_EQ(metrics.get(name), count) << name;
            if (count == 0)
                EXPECT_FALSE(metrics.has(name)) << name;
        }
    }
    // The component namespaces came along.
    bool has_mem = false, has_net = false;
    for (const auto &[name, value] : metrics.counters()) {
        has_mem = has_mem || name.rfind("mem.", 0) == 0;
        has_net = has_net || name.rfind("net.", 0) == 0;
    }
    EXPECT_TRUE(has_mem);
    EXPECT_TRUE(has_net);

    // The JSON document is valid and carries every counter.
    std::ostringstream os;
    metrics.writeJson(os);
    std::string error;
    EXPECT_TRUE(validate_json(os.str(), &error)) << error;
    EXPECT_NE(os.str().find("\"sim.cycles\""), std::string::npos);
}

TEST(Metrics, MergeAndAccessors)
{
    MetricsRegistry a, b;
    a.add("x", 2);
    a.add("x", 3);
    a.set("y", 7);
    b.add("x", 10);
    b.add("z", 1);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 15u);
    EXPECT_EQ(a.get("y"), 7u);
    EXPECT_EQ(a.get("z"), 1u);
    EXPECT_EQ(a.get("missing"), 0u);
    EXPECT_FALSE(a.has("missing"));
    EXPECT_EQ(a.size(), 3u);
}

} // namespace
} // namespace voltron
