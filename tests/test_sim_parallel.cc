/** @file Bit-identity tests for the conservative-window parallel
 * stepper: every MachineResult field and every trace event must be
 * byte-equal with stepperThreads >= 2 vs. the sequential stepper,
 * across the workload suite, mesh shapes, adversarial network
 * configurations, TM-abort-heavy fuzz programs, and traced runs. A
 * divergence means the per-cycle classification let a step touch
 * shared state outside the serial section. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "compiler/compile.hh"
#include "core/voltron.hh"
#include "fuzz/differ.hh"
#include "fuzz/generator.hh"
#include "ir/builder.hh"
#include "workloads/suite.hh"

namespace voltron {
namespace {

/** Small scale keeps the full (suite x strategy x threads) sweep fast. */
SuiteScale
test_scale()
{
    SuiteScale scale;
    scale.targetOps = 20'000;
    return scale;
}

void
expect_identical(const MachineResult &par, const MachineResult &seq,
                 const std::string &what)
{
    EXPECT_EQ(par.exitValue, seq.exitValue) << what;
    EXPECT_EQ(par.cycles, seq.cycles) << what;
    EXPECT_EQ(par.dynamicOps, seq.dynamicOps) << what;
    EXPECT_EQ(par.coupledCycles, seq.coupledCycles) << what;
    EXPECT_EQ(par.decoupledCycles, seq.decoupledCycles) << what;
    EXPECT_EQ(par.regionCycles, seq.regionCycles) << what;
    ASSERT_EQ(par.issued.size(), seq.issued.size()) << what;
    for (CoreId c = 0; c < par.issued.size(); ++c) {
        EXPECT_EQ(par.issued[c], seq.issued[c]) << what << " core " << c;
        EXPECT_EQ(par.idleCycles[c], seq.idleCycles[c])
            << what << " core " << c;
        for (size_t cat = 0;
             cat < static_cast<size_t>(StallCat::NumCats); ++cat) {
            EXPECT_EQ(par.stalls[c][cat], seq.stalls[c][cat])
                << what << " core " << c << " stall "
                << stall_cat_name(static_cast<StallCat>(cat));
        }
    }
}

/** Run @p mp sequentially and with @p threads stepper threads (same
 * config otherwise, shaped by @p mutate) and compare everything,
 * including final architectural memory. */
template <typename Mutate>
void
check_threaded(const MachineProgram &mp, u16 cores, u16 threads,
               const std::string &what, Mutate mutate)
{
    MachineConfig seq_config = MachineConfig::forCores(cores);
    mutate(seq_config);
    Machine seq_machine(mp, seq_config);
    MachineResult seq = seq_machine.run();

    MachineConfig par_config = MachineConfig::forCores(cores);
    mutate(par_config);
    par_config.stepperThreads = threads;
    Machine par_machine(mp, par_config);
    MachineResult par = par_machine.run();

    expect_identical(par, seq, what);
    for (const DataObject &obj : mp.original.data) {
        for (u64 off = 0; off < obj.size; off += 8) {
            ASSERT_EQ(par_machine.memory().read(obj.base + off, 8),
                      seq_machine.memory().read(obj.base + off, 8))
                << what << " @" << obj.base + off;
        }
    }
}

void
check_threaded(const MachineProgram &mp, u16 cores, u16 threads,
               const std::string &what)
{
    check_threaded(mp, cores, threads, what, [](MachineConfig &) {});
}

struct GridPoint
{
    std::string bench;
    Strategy strategy;
    u16 cores;
    u16 threads;
};

std::string
point_name(const GridPoint &p)
{
    return p.bench + "/" + std::string(strategy_name(p.strategy)) + "c" +
           std::to_string(p.cores) + "t" + std::to_string(p.threads);
}

class ParallelStepperSuite : public ::testing::TestWithParam<GridPoint>
{
};

TEST_P(ParallelStepperSuite, ResultsMatchSequentialStepper)
{
    const GridPoint &p = GetParam();
    VoltronSystem sys(build_benchmark(p.bench, test_scale()));
    CompileOptions opts;
    opts.strategy = p.strategy;
    opts.numCores = p.cores;
    const MachineProgram &mp = sys.compile(opts);
    check_threaded(mp, p.cores, p.threads, point_name(p));
}

std::vector<GridPoint>
sweep_points()
{
    std::vector<GridPoint> points;
    // Every suite benchmark at the paper's machine size with a split
    // partition.
    for (const std::string &name : benchmark_names())
        points.push_back({name, Strategy::Hybrid, 4, 2});
    // A representative benchmark per archetype gets the wider grid:
    // every strategy, uneven splits (3 threads over 4 cores),
    // one-core-per-thread, and the smallest/largest meshes.
    static const char *const kWide[] = {"052.alvinn", "164.gzip",
                                        "197.parser", "epic",
                                        "177.mesa",   "256.bzip2"};
    for (const char *name : kWide) {
        points.push_back({name, Strategy::IlpOnly, 4, 2});
        points.push_back({name, Strategy::TlpOnly, 4, 3});
        points.push_back({name, Strategy::LlpOnly, 4, 4});
        points.push_back({name, Strategy::Hybrid, 2, 2});
        points.push_back({name, Strategy::Hybrid, 8, 4});
    }
    return points;
}

INSTANTIATE_TEST_SUITE_P(Suite, ParallelStepperSuite,
                         ::testing::ValuesIn(sweep_points()),
                         [](const auto &info) {
                             std::string name = point_name(info.param);
                             for (char &ch : name)
                                 if (ch == '.' || ch == '/' || ch == '-')
                                     ch = '_';
                             return name;
                         });

/** Same 4-core program on a 1x4 row and the default 2x2 mesh: the hop
 * distances (and so every queue-mode arrival cycle) differ between the
 * shapes, and the threaded stepper must reproduce each shape exactly.
 * Queue-mode-only strategies — direct-mode codegen assumes the forCores
 * geometry. */
TEST(ParallelStepperTest, MeshShapesRowAndSquare)
{
    VoltronSystem sys(build_benchmark("164.gzip", test_scale()));
    CompileOptions opts;
    opts.strategy = Strategy::TlpOnly;
    opts.numCores = 4;
    const MachineProgram &mp = sys.compile(opts);
    for (u16 threads : {u16{2}, u16{4}}) {
        check_threaded(mp, 4, threads, "2x2 mesh");
        check_threaded(mp, 4, threads, "1x4 mesh",
                       [](MachineConfig &config) {
                           config.net.rows = 1;
                           config.net.cols = 4;
                       });
    }
}

/** Adversarial networks: a single-slot receive queue makes senders
 * stall on back-pressure; a slow network stretches every in-flight
 * window. Both lean hard on the due-ness classification. */
TEST(ParallelStepperTest, AdversarialNetworks)
{
    VoltronSystem sys(build_benchmark("197.parser", test_scale()));
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 4;
    const MachineProgram &mp = sys.compile(opts);
    for (u16 threads : {u16{2}, u16{4}}) {
        check_threaded(mp, 4, threads, "qcap1",
                       [](MachineConfig &config) {
                           config.net.queueCapacity = 1;
                       });
        check_threaded(mp, 4, threads, "slownet",
                       [](MachineConfig &config) {
                           config.net.queueCapacity = 2;
                           config.net.queueBaseLatency = 3;
                           config.net.hopLatency = 3;
                       });
    }
}

/** A zero-latency network (send arrives the same cycle) invalidates the
 * conservative window; run() must fall back to the sequential stepper
 * and still produce identical results. */
TEST(ParallelStepperTest, ZeroLatencyNetworkFallsBackSequential)
{
    VoltronSystem sys(build_benchmark("164.gzip", test_scale()));
    CompileOptions opts;
    opts.strategy = Strategy::TlpOnly;
    opts.numCores = 4;
    const MachineProgram &mp = sys.compile(opts);
    check_threaded(mp, 4, 4, "zerolat", [](MachineConfig &config) {
        config.net.queueBaseLatency = 0;
        config.net.hopLatency = 0;
    });
}

/** TM-abort-heavy: DOALL-forced fuzz programs drive speculative
 * iterations through XBEGIN/XVALIDATE, where conflict resolution and
 * abort rollback are pure shared-state steps. */
TEST(ParallelStepperTest, TmAbortHeavyFuzzPrograms)
{
    for (u64 seed : {0x7a110001ull, 0x7a110002ull, 0x7a110003ull}) {
        const Program prog = generate_fuzz_program(seed);
        VoltronSystem sys(prog);
        CompileOptions opts;
        opts.strategy = Strategy::LlpOnly;
        opts.numCores = 4;
        opts.minOpsPerActivation = 1;
        opts.minDoallTrip = 1.0;
        const MachineProgram &mp = sys.compile(opts);
        std::ostringstream what;
        what << "tm-fuzz seed 0x" << std::hex << seed;
        check_threaded(mp, 4, 4, what.str());
    }
}

/** Traced runs: the merged per-cycle trace stream must be
 * event-for-event identical to the sequential emission order, and the
 * serialized .vtrace files must be byte-equal. */
TEST(ParallelStepperTest, TracedRunsProduceIdenticalStreams)
{
    VoltronSystem sys(build_benchmark("052.alvinn", test_scale()));
    CompileOptions opts;
    opts.strategy = Strategy::Hybrid;
    opts.numCores = 4;
    const MachineProgram &mp = sys.compile(opts);

    RingBufferTraceSink seq_ring;
    MachineConfig seq_config = MachineConfig::forCores(4);
    seq_config.traceSink = &seq_ring;
    Machine seq_machine(mp, seq_config);
    MachineResult seq = seq_machine.run();

    RingBufferTraceSink par_ring;
    MachineConfig par_config = MachineConfig::forCores(4);
    par_config.traceSink = &par_ring;
    par_config.stepperThreads = 4;
    Machine par_machine(mp, par_config);
    MachineResult par = par_machine.run();

    expect_identical(par, seq, "traced hybrid c4");

    const std::vector<TraceEvent> seq_events = seq_ring.events();
    const std::vector<TraceEvent> par_events = par_ring.events();
    ASSERT_EQ(par_events.size(), seq_events.size());
    EXPECT_EQ(par_ring.dropped(), seq_ring.dropped());
    for (size_t i = 0; i < seq_events.size(); ++i)
        ASSERT_TRUE(par_events[i] == seq_events[i]) << "event " << i;
    EXPECT_EQ(event_stream_hash(par_events),
              event_stream_hash(seq_events));

    // Serialize both and compare the files byte-for-byte.
    auto write_and_read = [&](const char *name, const Machine &,
                              const MachineResult &result,
                              const RingBufferTraceSink &ring,
                              const std::vector<TraceEvent> &events) {
        TraceHeader header;
        header.numCores = 4;
        header.totalCycles = result.cycles;
        header.totalEvents = ring.total();
        header.dropped = ring.dropped();
        header.label = "parallel-stepper-test";
        const std::string path =
            testing::TempDir() + "/" + name + ".vtrace";
        EXPECT_TRUE(write_trace(path, header, events));
        std::ifstream in(path, std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        std::remove(path.c_str());
        return bytes.str();
    };
    const std::string seq_bytes =
        write_and_read("seq", seq_machine, seq, seq_ring, seq_events);
    const std::string par_bytes =
        write_and_read("par", par_machine, par, par_ring, par_events);
    ASSERT_FALSE(seq_bytes.empty());
    EXPECT_EQ(par_bytes, seq_bytes);
}

/** The deadlock watchdog must fire identically under the threaded
 * stepper — a wedged RECV is re-classified Shared only when its message
 * is due, so the serial section sees the same no-progress cycles. */
TEST(ParallelStepperTest, WatchdogFiresThreaded)
{
    ProgramBuilder b("wedge");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(7));
    b.endFunction();
    Program prog = b.take();
    GoldenRun golden = run_golden(prog);
    CompileOptions opts;
    opts.strategy = Strategy::SerialOnly;
    opts.numCores = 2;
    MachineProgram mp = compile_program(prog, golden.profile, opts);
    BasicBlock &bb = mp.perCore[0].functions[0].blocks[0];
    bb.ops.insert(bb.ops.begin(), ops::recv(1, gpr(30)));

    for (u16 threads : {u16{0}, u16{2}}) {
        MachineConfig config = MachineConfig::forCores(2);
        config.watchdogCycles = 2000;
        config.stepperThreads = threads;
        Machine machine(mp, config);
        try {
            machine.run();
            FAIL() << "expected a deadlock fatal (threads=" << threads
                   << ")";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("deadlock"),
                      std::string::npos)
                << e.what();
        }
    }
}

/** Fixed-seed fuzz batch through the full differential sweep with the
 * threaded stepper — the smoke-sized version of the voltron-fuzz
 * --stepper-threads acceptance run. */
TEST(ParallelStepperTest, FuzzSweepBitIdentityBatch)
{
    std::vector<voltron::SweepPoint> sweep = default_sweep();
    for (voltron::SweepPoint &point : sweep)
        point.stepperThreads = 2;
    for (u32 i = 0; i < 10; ++i) {
        const u64 seed = 0x5eed'2026'0000ull + i;
        const Program prog = generate_fuzz_program(seed);
        auto div = diff_program(prog, sweep);
        if (div) {
            FAIL() << "seed 0x" << std::hex << seed << " diverged at "
                   << div->point << ": " << div->message;
        }
    }
}

} // namespace
} // namespace voltron
