/** @file Unit tests for the IR: builder, CFG, dominators, loops,
 * liveness, SCC, verifier. */

#include <gtest/gtest.h>

#include <cstring>

#include "ir/builder.hh"
#include "ir/cfg.hh"
#include "ir/dom.hh"
#include "ir/liveness.hh"
#include "ir/loops.hh"
#include "ir/scc.hh"
#include "ir/verifier.hh"
#include "support/rng.hh"

namespace voltron {
namespace {

/** A small diamond: entry -> (then|else) -> join -> halt. */
Program
diamond_program()
{
    ProgramBuilder b("diamond");
    b.beginFunction("main");
    RegId x = b.emitImm(5);
    RegId p = b.newPr();
    b.emit(ops::cmpi(CmpCond::GT, p, x, 3));
    RegId y = b.newGpr();
    IfHandles handles = b.beginIf(p, true);
    b.emit(ops::movi(y, 1));
    b.elseBranch(handles);
    b.emit(ops::movi(y, 2));
    b.endIf(handles);
    b.emitHalt(y);
    b.endFunction();
    return b.take();
}

Program
loop_program(i64 bound = 10)
{
    ProgramBuilder b("loop");
    b.beginFunction("main");
    RegId sum = b.emitImm(0);
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, bound);
    b.emit(ops::add(sum, sum, i));
    b.endCountedLoop(loop);
    b.emitHalt(sum);
    b.endFunction();
    return b.take();
}

TEST(Builder, DiamondShape)
{
    Program prog = diamond_program();
    ASSERT_EQ(prog.functions.size(), 1u);
    const Function &fn = prog.functions[0];
    EXPECT_EQ(fn.blocks.size(), 4u); // entry, then, else, join
    EXPECT_TRUE(verify_program(prog).ok());
}

TEST(Builder, LoopShape)
{
    Program prog = loop_program();
    const Function &fn = prog.functions[0];
    // entry, header, body, latch, exit
    EXPECT_EQ(fn.blocks.size(), 5u);
    EXPECT_TRUE(verify_program(prog).ok()) << verify_program(prog).joined();
}

TEST(Builder, DataAllocationIsDisjointAndAligned)
{
    ProgramBuilder b("data");
    Addr a = b.allocData("a", 100, 16);
    Addr c = b.allocData("c", 64);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_GE(c, a + 100);
    EXPECT_NE(b.symbolOf("a"), b.symbolOf("c"));
    EXPECT_EQ(b.addrOf("a"), a);
}

TEST(Builder, ArrayInitBytes)
{
    ProgramBuilder b("arr");
    b.allocArrayI64("xs", {1, -2, 3});
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    Program prog = b.take();
    ASSERT_EQ(prog.data.size(), 1u);
    EXPECT_EQ(prog.data[0].init.size(), 24u);
    i64 second;
    std::memcpy(&second, prog.data[0].init.data() + 8, 8);
    EXPECT_EQ(second, -2);
}

TEST(Builder, SeqIdsAreUniqueAndMonotonic)
{
    Program prog = loop_program();
    std::set<u32> ids;
    for (const auto &bb : prog.functions[0].blocks)
        for (const auto &op : bb.ops) {
            EXPECT_TRUE(ids.insert(op.seqId).second);
            EXPECT_GT(op.seqId, 0u);
        }
}

TEST(Builder, CallMarshalsArguments)
{
    ProgramBuilder b("call");
    b.beginFunction("main");
    // Forward-declare callee by building it after main is not possible;
    // build callee first in a separate builder usage pattern:
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    FuncId callee = b.beginFunction("f", 2, true);
    b.emit(ops::add(gpr(0), gpr(1), gpr(2)));
    b.emit(ops::ret());
    b.endFunction();
    b.beginFunction("g");
    RegId a = b.emitImm(1), c = b.emitImm(2);
    RegId r = b.emitCall(callee, {a, c});
    EXPECT_TRUE(r.valid());
    b.emitHalt(r);
    b.endFunction();
    Program prog = b.take();
    EXPECT_TRUE(verify_program(prog).ok()) << verify_program(prog).joined();
}

TEST(Cfg, DiamondEdges)
{
    Program prog = diamond_program();
    Cfg cfg(prog.functions[0]);
    EXPECT_EQ(cfg.succs(0).size(), 2u);
    EXPECT_EQ(cfg.preds(3).size(), 2u);
    EXPECT_TRUE(cfg.flow(3).exits);
    for (BlockId b = 0; b < 4; ++b)
        EXPECT_TRUE(cfg.reachable(b));
}

TEST(Cfg, RpoStartsAtEntry)
{
    Program prog = loop_program();
    Cfg cfg(prog.functions[0]);
    ASSERT_FALSE(cfg.rpo().empty());
    EXPECT_EQ(cfg.rpo()[0], 0u);
    // RPO visits every reachable block exactly once.
    std::set<BlockId> seen(cfg.rpo().begin(), cfg.rpo().end());
    EXPECT_EQ(seen.size(), cfg.rpo().size());
}

TEST(Cfg, ResolveBranchTarget)
{
    Program prog = loop_program();
    const Function &fn = prog.functions[0];
    bool found = false;
    for (const auto &bb : fn.blocks) {
        for (size_t i = 0; i < bb.ops.size(); ++i) {
            if (bb.ops[i].op == Opcode::BR) {
                EXPECT_NE(resolve_branch_target(bb, i), kNoBlock);
                found = true;
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(Dom, EntryDominatesAll)
{
    Program prog = diamond_program();
    Cfg cfg(prog.functions[0]);
    DomTree dom(cfg);
    for (BlockId b = 0; b < 4; ++b)
        EXPECT_TRUE(dom.dominates(0, b));
}

TEST(Dom, ArmsDoNotDominateJoin)
{
    Program prog = diamond_program();
    Cfg cfg(prog.functions[0]);
    DomTree dom(cfg);
    EXPECT_FALSE(dom.dominates(1, 3));
    EXPECT_FALSE(dom.dominates(2, 3));
    EXPECT_EQ(dom.idom(3), 0u);
}

TEST(Loops, CountedLoopRecognised)
{
    Program prog = loop_program(17);
    const Function &fn = prog.functions[0];
    Cfg cfg(fn);
    DomTree dom(cfg);
    LoopForest forest(fn, cfg, dom);
    ASSERT_EQ(forest.loops().size(), 1u);
    const Loop &loop = forest.loops()[0];
    EXPECT_EQ(loop.depth, 1u);
    EXPECT_EQ(loop.latches.size(), 1u);
    EXPECT_EQ(loop.exitTargets.size(), 1u);
    ASSERT_TRUE(loop.counted.valid());
    EXPECT_EQ(loop.counted.step, 1);
    EXPECT_EQ(loop.counted.boundImm, 17);
    EXPECT_FALSE(loop.counted.boundReg.valid());
}

TEST(Loops, NestedLoopsHaveDepths)
{
    ProgramBuilder b("nest");
    b.beginFunction("main");
    RegId sum = b.emitImm(0);
    RegId i = b.newGpr();
    LoopHandles outer = b.forLoop(i, 0, 4, 1, "outer");
    RegId j = b.newGpr();
    LoopHandles inner = b.forLoop(j, 0, 4, 1, "inner");
    b.emit(ops::add(sum, sum, j));
    b.endCountedLoop(inner);
    b.endCountedLoop(outer);
    b.emitHalt(sum);
    b.endFunction();
    Program prog = b.take();

    const Function &fn = prog.functions[0];
    Cfg cfg(fn);
    DomTree dom(cfg);
    LoopForest forest(fn, cfg, dom);
    ASSERT_EQ(forest.loops().size(), 2u);
    u32 max_depth = 0;
    int outer_count = 0;
    for (const Loop &loop : forest.loops()) {
        max_depth = std::max(max_depth, loop.depth);
        if (loop.parent < 0)
            outer_count++;
    }
    EXPECT_EQ(max_depth, 2u);
    EXPECT_EQ(outer_count, 1);
    EXPECT_EQ(forest.outermost().size(), 1u);
}

TEST(Loops, NonCanonicalLoopNotCounted)
{
    // A loop whose induction variable is redefined twice.
    ProgramBuilder b("odd");
    b.beginFunction("main");
    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, 10);
    b.emit(ops::addi(i, i, 0)); // extra def of i in the body
    b.endCountedLoop(loop);
    b.emitHalt(i);
    b.endFunction();
    Program prog = b.take();
    const Function &fn = prog.functions[0];
    Cfg cfg(fn);
    DomTree dom(cfg);
    LoopForest forest(fn, cfg, dom);
    ASSERT_EQ(forest.loops().size(), 1u);
    EXPECT_FALSE(forest.loops()[0].counted.valid());
}

TEST(Liveness, LoopCarriedValueLiveAtHeader)
{
    Program prog = loop_program();
    const Function &fn = prog.functions[0];
    Cfg cfg(fn);
    Liveness live(prog, fn, cfg);
    // sum (defined in entry, used in body, live out of the loop).
    // Find header: block 1 by construction.
    bool found_loop_carried = false;
    for (RegId r : live.liveIn(1))
        if (r.cls == RegClass::GPR)
            found_loop_carried = true;
    EXPECT_TRUE(found_loop_carried);
}

TEST(Liveness, DeadAfterLastUse)
{
    ProgramBuilder b("dead");
    b.beginFunction("main");
    RegId x = b.emitImm(1);
    RegId y = b.newGpr();
    b.emit(ops::addi(y, x, 1));
    BlockId next = b.newBlock("next");
    b.fallthroughTo(next);
    b.emitHalt(y);
    b.endFunction();
    Program prog = b.take();
    const Function &fn = prog.functions[0];
    Cfg cfg(fn);
    Liveness live(prog, fn, cfg);
    EXPECT_TRUE(live.liveIn(next).count(y));
    EXPECT_FALSE(live.liveIn(next).count(x));
}

TEST(Liveness, CallUsesArgumentRegisters)
{
    ProgramBuilder b("callargs");
    FuncId callee;
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    callee = b.beginFunction("f", 1, true);
    b.emit(ops::mov(gpr(0), gpr(1)));
    b.emit(ops::ret());
    b.endFunction();
    b.beginFunction("g", 0, false);
    RegId v = b.emitImm(42);
    b.emitCall(callee, {v});
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    Program prog = b.take();
    const Function &g = prog.functions[2];
    Cfg cfg(g);
    Liveness live(prog, g, cfg);
    // r1 must be live somewhere before the call (op_effects exposes it).
    const BasicBlock &bb = g.blocks[0];
    bool call_uses_r1 = false;
    for (size_t i = 0; i < bb.ops.size(); ++i) {
        if (bb.ops[i].op == Opcode::CALL) {
            OpEffects fx = op_effects(prog, g, bb, i);
            for (RegId u : fx.uses)
                if (u == gpr(1))
                    call_uses_r1 = true;
        }
    }
    EXPECT_TRUE(call_uses_r1);
}

TEST(Scc, LinearChainIsAllSingletons)
{
    std::vector<std::vector<u32>> adj{{1}, {2}, {}};
    SccResult scc = tarjan_scc(adj);
    EXPECT_EQ(scc.numComponents, 3u);
    EXPECT_NE(scc.componentOf[0], scc.componentOf[1]);
}

TEST(Scc, CycleMerges)
{
    std::vector<std::vector<u32>> adj{{1}, {2}, {0}, {0}};
    SccResult scc = tarjan_scc(adj);
    EXPECT_EQ(scc.numComponents, 2u);
    EXPECT_EQ(scc.componentOf[0], scc.componentOf[1]);
    EXPECT_EQ(scc.componentOf[1], scc.componentOf[2]);
    EXPECT_NE(scc.componentOf[3], scc.componentOf[0]);
}

TEST(Scc, TopoOrderRespectsEdges)
{
    // 0 -> 1 -> 2, plus cycle {3,4} -> 2.
    std::vector<std::vector<u32>> adj{{1}, {2}, {}, {4, 2}, {3}};
    SccResult scc = tarjan_scc(adj);
    auto topo = scc.componentsInTopoOrder();
    std::vector<u32> pos(scc.numComponents);
    for (u32 i = 0; i < topo.size(); ++i)
        pos[topo[i]] = i;
    for (u32 node = 0; node < adj.size(); ++node)
        for (u32 succ : adj[node])
            if (scc.componentOf[node] != scc.componentOf[succ])
                EXPECT_LT(pos[scc.componentOf[node]],
                          pos[scc.componentOf[succ]]);
}

TEST(SccProperty, RandomGraphsComponentsConsistent)
{
    Rng rng(55);
    for (int trial = 0; trial < 25; ++trial) {
        const u32 n = 2 + static_cast<u32>(rng.below(30));
        std::vector<std::vector<u32>> adj(n);
        for (u32 i = 0; i < n; ++i)
            for (u32 j = 0; j < n; ++j)
                if (i != j && rng.chance(0.15))
                    adj[i].push_back(j);
        SccResult scc = tarjan_scc(adj);
        EXPECT_GE(scc.numComponents, 1u);
        EXPECT_LE(scc.numComponents, n);
        // Mutual reachability check on a sampled pair in the same SCC.
        auto reach = [&](u32 from, u32 to) {
            std::vector<bool> seen(n, false);
            std::vector<u32> work{from};
            seen[from] = true;
            while (!work.empty()) {
                u32 x = work.back();
                work.pop_back();
                if (x == to)
                    return true;
                for (u32 s : adj[x])
                    if (!seen[s]) {
                        seen[s] = true;
                        work.push_back(s);
                    }
            }
            return false;
        };
        for (u32 i = 0; i < n; ++i) {
            for (u32 j = i + 1; j < n; ++j) {
                const bool same = scc.componentOf[i] == scc.componentOf[j];
                const bool mutual = reach(i, j) && reach(j, i);
                EXPECT_EQ(same, mutual)
                    << "nodes " << i << "," << j << " trial " << trial;
            }
        }
    }
}

TEST(Verifier, AcceptsWellFormed)
{
    EXPECT_TRUE(verify_program(diamond_program()).ok());
    EXPECT_TRUE(verify_program(loop_program()).ok());
}

TEST(Verifier, RejectsCommOpsInSequentialMode)
{
    ProgramBuilder b("bad");
    b.beginFunction("main");
    b.emit(ops::send(1, gpr(0)));
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    Program prog = b.take();
    EXPECT_FALSE(verify_program(prog, VerifyMode::Sequential).ok());
    EXPECT_TRUE(verify_program(prog, VerifyMode::PerCore).ok());
}

TEST(Verifier, RejectsWrongOperandClass)
{
    ProgramBuilder b("bad2");
    b.beginFunction("main");
    Operation op = ops::add(gpr(1), gpr(2), gpr(3));
    op.src0 = pr(0); // wrong class
    b.emit(op);
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    Program prog = b.take();
    EXPECT_FALSE(verify_program(prog).ok());
}

TEST(Verifier, RejectsDanglingBlock)
{
    ProgramBuilder b("bad3");
    b.beginFunction("main");
    b.emitImm(1); // block neither terminates nor falls through
    b.endFunction();
    Program prog = b.take();
    EXPECT_FALSE(verify_program(prog).ok());
}

TEST(Verifier, RejectsBranchWithoutLocalPbr)
{
    ProgramBuilder b("bad4");
    b.beginFunction("main");
    Operation br = ops::br(pr(0), btr(0)); // btr(0) never defined here
    b.emit(br);
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    Program prog = b.take();
    EXPECT_FALSE(verify_program(prog).ok());
}

TEST(Verifier, RejectsBadMemSize)
{
    ProgramBuilder b("bad5");
    b.beginFunction("main");
    Operation load = ops::load(gpr(1), gpr(2), 0, 3); // size 3 invalid
    b.emit(load);
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    Program prog = b.take();
    EXPECT_FALSE(verify_program(prog).ok());
}

TEST(Verifier, RejectsOverlappingData)
{
    Program prog = diamond_program();
    DataObject a, c;
    a.name = "a";
    a.base = 0x1000;
    a.size = 64;
    c.name = "c";
    c.base = 0x1020;
    c.size = 64;
    prog.data.push_back(a);
    prog.data.push_back(c);
    EXPECT_FALSE(verify_program(prog).ok());
}

TEST(Verifier, RejectsUnreachableBlock)
{
    ProgramBuilder b("bad6");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    BlockId orphan = b.newBlock("orphan");
    b.setBlock(orphan);
    b.emitHalt(b.emitImm(1));
    b.endFunction();
    Program prog = b.take();
    EXPECT_FALSE(verify_program(prog).ok());
}

TEST(Verifier, RejectsSelfRecursion)
{
    // DESIGN.md §6: recursion is unsupported — a recursive CALL used to
    // pass verification and grow the register stack unboundedly at run
    // time instead of failing at compile time.
    ProgramBuilder b("rec");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    FuncId f = b.beginFunction("spin", 0, false);
    {
        RegId bt = b.newBtr();
        b.emit(ops::pbr(bt, CodeRef::to_function(f)));
        b.emit(ops::call(bt));
        b.emit(ops::ret());
    }
    b.endFunction();
    Program prog = b.take();
    VerifyResult result = verify_program(prog);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.joined().find("recursive call graph"),
              std::string::npos)
        << result.joined();
}

TEST(Verifier, RejectsMutualRecursion)
{
    // A two-function cycle reached through a non-recursive entry chain:
    // main -> even -> odd -> even.
    ProgramBuilder b("mutrec");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    // Declare both functions first so the PBRs can reference them. The
    // builder only emits into one open function at a time, so patch the
    // call into "even" after both bodies exist.
    FuncId even = b.beginFunction("even", 0, false);
    b.emit(ops::ret());
    b.endFunction();
    FuncId odd = b.beginFunction("odd", 0, false);
    {
        RegId bt = b.newBtr();
        b.emit(ops::pbr(bt, CodeRef::to_function(even)));
        b.emit(ops::call(bt));
        b.emit(ops::ret());
    }
    b.endFunction();
    Program prog = b.take();
    // Patch even: call odd before its RET.
    Function &efn = prog.function(even);
    RegId bt = efn.freshReg(RegClass::BTR);
    BasicBlock &ebb = efn.block(0);
    ebb.ops.clear();
    ebb.append(ops::pbr(bt, CodeRef::to_function(odd)));
    ebb.append(ops::call(bt));
    ebb.append(ops::ret());
    // Call even from main so the cycle is reachable from the entry.
    Function &mfn = prog.function(0);
    BasicBlock &mbb = mfn.block(0);
    mbb.ops.clear();
    RegId mbt = mfn.freshReg(RegClass::BTR);
    mbb.append(ops::pbr(mbt, CodeRef::to_function(even)));
    mbb.append(ops::call(mbt));
    mbb.append(ops::movi(gpr(16), 0));
    mbb.append(ops::halt(gpr(16)));

    VerifyResult result = verify_program(prog);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.joined().find("recursive call graph"),
              std::string::npos)
        << result.joined();
}

TEST(Verifier, AcceptsDiamondCallGraph)
{
    // Sharing a callee (main -> a -> c, main -> b -> c) is NOT recursion;
    // the check must only reject genuine cycles.
    ProgramBuilder b("dag");
    b.beginFunction("main");
    b.emitHalt(b.emitImm(0));
    b.endFunction();
    FuncId c = b.beginFunction("c", 0, false);
    b.emit(ops::ret());
    b.endFunction();
    FuncId fa = b.beginFunction("a", 0, false);
    b.emitCall(c, {});
    b.emit(ops::ret());
    b.endFunction();
    FuncId fb = b.beginFunction("b", 0, false);
    b.emitCall(c, {});
    b.emit(ops::ret());
    b.endFunction();
    Program prog = b.take();
    Function &mfn = prog.function(0);
    BasicBlock &mbb = mfn.block(0);
    mbb.ops.clear();
    for (FuncId callee : {fa, fb}) {
        RegId bt = mfn.freshReg(RegClass::BTR);
        mbb.append(ops::pbr(bt, CodeRef::to_function(callee)));
        mbb.append(ops::call(bt));
    }
    mbb.append(ops::movi(gpr(16), 0));
    mbb.append(ops::halt(gpr(16)));
    EXPECT_TRUE(verify_program(prog).ok()) << verify_program(prog).joined();
}

TEST(Printer, FunctionDumpMentionsBlocksAndOps)
{
    Program prog = loop_program();
    std::ostringstream os;
    print_program(os, prog);
    EXPECT_NE(os.str().find("loop.header"), std::string::npos);
    EXPECT_NE(os.str().find("halt"), std::string::npos);
}

} // namespace
} // namespace voltron
