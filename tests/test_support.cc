/** @file Unit tests for the support library. */

#include <gtest/gtest.h>

#include "support/error.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace voltron {
namespace {

TEST(Error, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
}

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config ", "x"), FatalError);
}

TEST(Error, PanicMessageContainsArguments)
{
    try {
        panic("value=", 17, " name=", "abc");
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value=17 name=abc"),
                  std::string::npos);
    }
}

TEST(Error, PanicIfNotPassesWhenTrue)
{
    EXPECT_NO_THROW(panic_if_not(true, "should not throw"));
    EXPECT_THROW(panic_if_not(false, "should throw"), PanicError);
}

TEST(Error, FatalIfNotPassesWhenTrue)
{
    EXPECT_NO_THROW(fatal_if_not(true, "should not throw"));
    EXPECT_THROW(fatal_if_not(false, "should throw"), FatalError);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        i64 v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsBias)
{
    Rng rng(13);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.03);
}

TEST(Stats, DefaultsToZero)
{
    StatSet stats;
    EXPECT_EQ(stats.get("missing"), 0u);
    EXPECT_FALSE(stats.has("missing"));
}

TEST(Stats, AddAccumulates)
{
    StatSet stats;
    stats.add("x");
    stats.add("x", 4);
    EXPECT_EQ(stats.get("x"), 5u);
    EXPECT_TRUE(stats.has("x"));
}

TEST(Stats, SetOverwrites)
{
    StatSet stats;
    stats.add("x", 10);
    stats.set("x", 3);
    EXPECT_EQ(stats.get("x"), 3u);
}

TEST(Stats, MergeSums)
{
    StatSet a, b;
    a.add("x", 1);
    a.add("y", 2);
    b.add("x", 10);
    b.add("z", 5);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 11u);
    EXPECT_EQ(a.get("y"), 2u);
    EXPECT_EQ(a.get("z"), 5u);
}

TEST(Stats, ClearEmpties)
{
    StatSet stats;
    stats.add("x", 2);
    stats.clear();
    EXPECT_FALSE(stats.has("x"));
}

TEST(Stats, DumpContainsEntries)
{
    StatSet stats;
    stats.add("a.b", 7);
    std::ostringstream os;
    stats.dump(os, "p.");
    EXPECT_EQ(os.str(), "p.a.b = 7\n");
}

} // namespace
} // namespace voltron
