/**
 * @file
 * Profiler tests: the attributed-cycle invariant (per-core buckets and
 * region intervals tile the run exactly), agreement between the
 * trace-derived profile and the machine's own counters, critical-path
 * bounds, stream-mode independence (fast-forward vs naive stepping
 * profiles identically), the traced-vs-untraced bit-identity guarantee
 * under the profiling sink, and termination of the adaptive
 * measured-feedback loop across the whole suite.
 */

#include <gtest/gtest.h>

#include "core/voltron.hh"
#include "sim/machine.hh"
#include "trace/profiler.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace voltron {
namespace {

/** Small scale keeps the profiled sweeps fast. */
SuiteScale
test_scale()
{
    SuiteScale scale;
    scale.targetOps = 20'000;
    return scale;
}

/** The benchmarks × strategies the agreement tests sweep: one per
 * execution mode family so every attribution path is exercised. */
const char *const kWorkloads[] = {"epic", "179.art", "gsmencode"};
const Strategy kStrategies[] = {Strategy::SerialOnly, Strategy::IlpOnly,
                                Strategy::TlpOnly, Strategy::Hybrid};

CompileOptions
options_for(Strategy strategy, u16 cores)
{
    CompileOptions options;
    options.strategy = strategy;
    options.numCores = cores;
    return options;
}

void
expect_identical(const MachineResult &a, const MachineResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.exitValue, b.exitValue) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.dynamicOps, b.dynamicOps) << what;
    EXPECT_EQ(a.regionCycles, b.regionCycles) << what;
    ASSERT_EQ(a.issued.size(), b.issued.size()) << what;
    for (CoreId c = 0; c < a.issued.size(); ++c) {
        EXPECT_EQ(a.issued[c], b.issued[c]) << what << " core " << c;
        EXPECT_EQ(a.idleCycles[c], b.idleCycles[c]) << what << " core "
                                                    << c;
        EXPECT_EQ(a.stalls[c], b.stalls[c]) << what << " core " << c;
    }
}

/** Per-core buckets and region intervals must tile [0, totalCycles)
 * exactly — the profiler's hard invariant, re-asserted here from the
 * outside (Profiler::finish also panics internally on violation). */
void
expect_tiles(const TraceProfile &profile, const std::string &what)
{
    ASSERT_TRUE(profile.lossless) << what;
    ASSERT_EQ(profile.cores.size(), profile.numCores) << what;
    for (size_t c = 0; c < profile.cores.size(); ++c) {
        const CoreProfile &core = profile.cores[c];
        EXPECT_EQ(core.issueCycles + core.stallSum() + core.idleCycles +
                      core.slackCycles,
                  profile.totalCycles)
            << what << " core " << c;
    }
    u64 region_sum = 0, core_cycle_sum = 0;
    for (const auto &[id, row] : profile.regions) {
        region_sum += row.cycles;
        core_cycle_sum += row.issueCycles + row.stallSum() +
                          row.idleCycles + row.slackCycles;
    }
    EXPECT_EQ(region_sum, profile.totalCycles) << what;
    EXPECT_EQ(core_cycle_sum,
              static_cast<u64>(profile.totalCycles) * profile.numCores)
        << what;
}

TEST(ProfilerNames, RegionModeNameAgreesWithExecModeName)
{
    EXPECT_STREQ(region_mode_name(0), "?");
    for (u8 m = 0; m <= static_cast<u8>(ExecMode::Doall); ++m)
        EXPECT_STREQ(region_mode_name(static_cast<u8>(m + 1)),
                     exec_mode_name(static_cast<ExecMode>(m)))
            << static_cast<int>(m);
}

TEST(ProfilerInvariants, BucketsTileTotalCyclesAcrossSweep)
{
    for (const char *name : kWorkloads) {
        VoltronSystem sys(build_benchmark(name, test_scale()));
        for (Strategy strategy : kStrategies) {
            const u16 cores = strategy == Strategy::SerialOnly ? 1 : 4;
            TraceProfile profile;
            const RunOutcome outcome = sys.runProfiled(
                options_for(strategy, cores), profile);
            const std::string what = std::string(name) + "/" +
                                     strategy_name(strategy);
            ASSERT_TRUE(outcome.correct()) << what;
            EXPECT_EQ(profile.totalCycles, outcome.result.cycles) << what;
            expect_tiles(profile, what);
        }
    }
}

TEST(ProfilerAgreement, MatchesMachineResultCounters)
{
    for (const char *name : kWorkloads) {
        VoltronSystem sys(build_benchmark(name, test_scale()));
        for (Strategy strategy : kStrategies) {
            const u16 cores = strategy == Strategy::SerialOnly ? 1 : 4;
            TraceProfile profile;
            const RunOutcome outcome = sys.runProfiled(
                options_for(strategy, cores), profile);
            const std::string what = std::string(name) + "/" +
                                     strategy_name(strategy);
            ASSERT_TRUE(outcome.correct()) << what;
            const MachineResult &result = outcome.result;

            // Per-core: ops, stalls by category, and idle must agree
            // with the machine's own accounting exactly.
            ASSERT_EQ(profile.cores.size(), result.issued.size()) << what;
            u64 ops = 0;
            for (CoreId c = 0; c < result.issued.size(); ++c) {
                const CoreProfile &core = profile.cores[c];
                EXPECT_EQ(core.issuedOps, result.issued[c])
                    << what << " core " << c;
                EXPECT_EQ(core.idleCycles, result.idleCycles[c])
                    << what << " core " << c;
                EXPECT_EQ(core.stalls, result.stalls[c])
                    << what << " core " << c;
                ops += core.issuedOps;
            }
            EXPECT_EQ(ops, result.dynamicOps) << what;

            // Region slices: every machine-attributed region matches,
            // and the profiler attributes no real region the machine
            // did not (the glue row under kNoRegion absorbs the rest).
            for (const auto &[id, row] : profile.regions) {
                if (id == kNoRegion)
                    continue;
                auto it = result.regionCycles.find(id);
                const u64 machine_cycles =
                    it == result.regionCycles.end() ? 0 : it->second;
                EXPECT_EQ(row.cycles, machine_cycles)
                    << what << " region " << id;
            }
            for (const auto &[id, cycles] : result.regionCycles) {
                const RegionProfile *row = profile.region(id);
                ASSERT_NE(row, nullptr) << what << " region " << id;
                EXPECT_EQ(row->cycles, cycles) << what << " region " << id;
            }
        }
    }
}

TEST(ProfilerAgreement, CriticalPathAndHistogramsBounded)
{
    VoltronSystem sys(build_benchmark("epic", test_scale()));
    TraceProfile profile;
    const RunOutcome outcome =
        sys.runProfiled(options_for(Strategy::Hybrid, 4), profile);
    ASSERT_TRUE(outcome.correct());

    EXPECT_LE(profile.criticalPathCycles, profile.totalCycles);
    EXPECT_LE(profile.criticalPathHops, profile.messages);
    EXPECT_GT(profile.messages, 0u);
    EXPECT_EQ(profile.hopLatency.count(), profile.messages);

    for (const Histogram *hist :
         {&profile.hopLatency, &profile.queueDepth, &profile.recvWait}) {
        EXPECT_LE(hist->min(), hist->p50());
        EXPECT_LE(hist->p50(), hist->p95());
        EXPECT_LE(hist->p95(), hist->p99());
        EXPECT_LE(hist->p99(), hist->max());
    }
}

TEST(ProfilerAgreement, ProfiledRunBitIdenticalToUntraced)
{
    for (const char *name : kWorkloads) {
        VoltronSystem sys(build_benchmark(name, test_scale()));
        const CompileOptions options = options_for(Strategy::Hybrid, 4);
        const RunOutcome untraced = sys.run(options);
        TraceProfile profile;
        const RunOutcome profiled = sys.runProfiled(options, profile);
        expect_identical(untraced.result, profiled.result,
                         std::string(name) + " profiled-vs-untraced");
    }
}

TEST(ProfilerAgreement, FastForwardAndNaiveSteppingProfileIdentically)
{
    VoltronSystem sys(build_benchmark("179.art", test_scale()));
    const MachineProgram &mp =
        sys.compile(options_for(Strategy::Hybrid, 4));

    TraceProfile profiles[2];
    MachineResult results[2];
    for (int naive = 0; naive < 2; ++naive) {
        RingBufferTraceSink ring(size_t{1} << 21);
        MachineConfig config = MachineConfig::forCores(4);
        config.traceSink = &ring;
        config.forceNaiveStepping = naive != 0;
        Machine machine(mp, config);
        results[naive] = machine.run();
        ASSERT_EQ(ring.dropped(), 0u);

        TraceHeader header;
        header.numCores = 4;
        header.totalCycles = results[naive].cycles;
        header.totalEvents = ring.total();
        profiles[naive] = profile_trace(header, ring.events());
    }
    expect_identical(results[0], results[1], "fast-forward vs naive");

    EXPECT_EQ(profiles[0].totalCycles, profiles[1].totalCycles);
    EXPECT_EQ(profiles[0].totalEvents, profiles[1].totalEvents);
    EXPECT_EQ(profiles[0].criticalPathCycles,
              profiles[1].criticalPathCycles);
    for (size_t c = 0; c < 4; ++c) {
        EXPECT_EQ(profiles[0].cores[c].issuedOps,
                  profiles[1].cores[c].issuedOps)
            << c;
        EXPECT_EQ(profiles[0].cores[c].stalls, profiles[1].cores[c].stalls)
            << c;
    }
    ASSERT_EQ(profiles[0].regions.size(), profiles[1].regions.size());
    for (const auto &[id, row] : profiles[0].regions) {
        const RegionProfile *other = profiles[1].region(id);
        ASSERT_NE(other, nullptr) << id;
        EXPECT_EQ(row.cycles, other->cycles) << id;
        EXPECT_EQ(row.mode, other->mode) << id;
    }
}

TEST(Adaptive, TerminatesWithinBoundAndNeverLosesAcrossSuite)
{
    for (const std::string &name : benchmark_names()) {
        VoltronSystem sys(build_benchmark(name, test_scale()));
        CompileOptions options = options_for(Strategy::Adaptive, 4);
        AdaptiveReport report;
        const RunOutcome outcome = sys.runAdaptive(options, &report);
        ASSERT_TRUE(outcome.correct()) << name;
        EXPECT_LE(report.evaluations, options.maxAdaptiveRounds) << name;
        EXPECT_TRUE(report.converged ||
                    report.evaluations == options.maxAdaptiveRounds)
            << name;
        EXPECT_LE(report.finalCycles, report.hybridCycles) << name;
        EXPECT_EQ(outcome.result.cycles, report.finalCycles) << name;
        // The same region can be accepted twice (e.g. dswp -> coupled
        // -> strands), so the override map can be smaller than the
        // accepted list, but every accepted region must end up in it.
        EXPECT_LE(report.overrides.size(), report.accepted.size()) << name;
        for (const ModeSuggestion &s : report.accepted)
            EXPECT_TRUE(report.overrides.count(s.region))
                << name << " region " << s.region;

        // A strategy-level Adaptive run must reach the same fixed
        // point through the dispatching entry point.
        const RunOutcome via_run = sys.run(options);
        ASSERT_TRUE(via_run.correct()) << name;
        EXPECT_EQ(via_run.result.cycles, report.finalCycles) << name;
    }
}

} // namespace
} // namespace voltron
