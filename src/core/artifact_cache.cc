#include "core/artifact_cache.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>

#include <unistd.h>

#include "ir/serialize.hh"
#include "support/error.hh"
#include "support/log.hh"
#include "trace/metrics.hh"

namespace voltron {

namespace {

/** Encode/decode payloads. Kept private to the cache: the payload byte
 * layout is an implementation detail guarded by kCacheFormatVersion. */

void
encode_selection(ByteWriter &w, const SelectionReport &report)
{
    w.u64v(report.entries.size());
    for (const SelectionReport::Entry &e : report.entries) {
        w.u32v(e.region);
        w.u32v(e.func);
        w.u8v(static_cast<u8>(e.kind));
        w.u8v(static_cast<u8>(e.mode));
        w.u64v(e.profiledOps);
        w.f64v(e.dswpEstimate);
        w.f64v(e.missFraction);
    }
}

bool
decode_selection(ByteReader &r, SelectionReport &report)
{
    const u64 n = r.count(34);
    report.entries.clear();
    report.entries.reserve(n);
    for (u64 i = 0; i < n && r.ok(); ++i) {
        SelectionReport::Entry e;
        e.region = r.u32v();
        e.func = r.u32v();
        e.kind = static_cast<RegionKind>(r.u8v());
        e.mode = static_cast<ExecMode>(r.u8v());
        e.profiledOps = r.u64v();
        e.dswpEstimate = r.f64v();
        e.missFraction = r.f64v();
        report.entries.push_back(e);
    }
    return r.ok();
}

std::vector<u8>
encode_golden(const GoldenArtifact &artifact)
{
    ByteWriter w;
    serialize(w, artifact.result);
    serialize(w, artifact.profile);
    serialize(w, artifact.image);
    return w.take();
}

bool
decode_golden(const std::vector<u8> &payload, GoldenArtifact &artifact)
{
    ByteReader r(payload);
    return deserialize(r, artifact.result) &&
           deserialize(r, artifact.profile) &&
           deserialize(r, artifact.image) && r.atEnd();
}

std::vector<u8>
encode_machine(const MachineArtifact &artifact)
{
    ByteWriter w;
    serialize(w, artifact.program);
    encode_selection(w, artifact.selection);
    return w.take();
}

bool
decode_machine(const std::vector<u8> &payload, MachineArtifact &artifact)
{
    ByteReader r(payload);
    return deserialize(r, artifact.program) &&
           decode_selection(r, artifact.selection) && r.atEnd();
}

std::string
hex16(u64 v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
print_stats_at_exit()
{
    const ArtifactCacheStats stats = ArtifactCache::instance().stats();
    std::fprintf(stderr,
                 "voltron-cache-stats: mem_hits=%llu disk_hits=%llu "
                 "misses=%llu stores=%llu corrupt=%llu\n",
                 static_cast<unsigned long long>(stats.memHits()),
                 static_cast<unsigned long long>(stats.diskHits()),
                 static_cast<unsigned long long>(stats.misses()),
                 static_cast<unsigned long long>(stats.stores()),
                 static_cast<unsigned long long>(stats.corrupt));
}

} // namespace

const char *
artifact_kind_name(ArtifactKind kind)
{
    switch (kind) {
      case ArtifactKind::Golden: return "golden";
      case ArtifactKind::Machine: return "machine";
      case ArtifactKind::Baseline: return "baseline";
      default: return "unknown";
    }
}

u64
options_hash(const CompileOptions &options)
{
    ByteWriter w;
    w.u16v(options.numCores);
    // The *resolved* shape, so explicit-default and implicit-default
    // requests share one cache line (they compile identically).
    const MeshShape shape = options.meshShape();
    w.u16v(shape.rows);
    w.u16v(shape.cols);
    w.u8v(static_cast<u8>(options.strategy));
    w.u64v(options.minOpsPerActivation);
    w.f64v(options.minDoallTrip);
    w.f64v(options.dswpThreshold);
    w.f64v(options.missStallFraction);
    w.u32v(options.missPenalty);
    w.boolean(options.reassociate);
    w.boolean(options.allowCrossCoreMemDep);
    w.u16v(options.partition.numCores);
    w.u32v(options.partition.transferCost);
    w.boolean(options.partition.enhanced);
    w.f64v(options.partition.missThreshold);
    w.u32v(options.partition.missEdgeWeight);
    w.boolean(options.partition.pinAliasClasses);
    w.u32v(options.partition.memImbalancePenalty);
    // Adaptive fields. std::map iterates sorted, so the encoding is
    // canonical; each override set gets its own cache line, which is
    // what makes re-running a converged adaptive loop free.
    w.u64v(options.modeOverrides.size());
    for (const auto &[region, mode] : options.modeOverrides) {
        w.u32v(region);
        w.u8v(static_cast<u8>(mode));
    }
    w.u32v(options.maxAdaptiveRounds);
    return fnv1a(w.bytes());
}

u64
ArtifactCacheStats::memHits() const
{
    u64 sum = 0;
    for (const Line &l : byKind)
        sum += l.memHits;
    return sum;
}

u64
ArtifactCacheStats::diskHits() const
{
    u64 sum = 0;
    for (const Line &l : byKind)
        sum += l.diskHits;
    return sum;
}

u64
ArtifactCacheStats::misses() const
{
    u64 sum = 0;
    for (const Line &l : byKind)
        sum += l.misses;
    return sum;
}

u64
ArtifactCacheStats::stores() const
{
    u64 sum = 0;
    for (const Line &l : byKind)
        sum += l.stores;
    return sum;
}

std::string
cache_entry_filename(ArtifactKind kind, u64 key)
{
    return std::string(artifact_kind_name(kind)) + "-" + hex16(key) +
           ".vcache";
}

std::string
cache_shard_name(size_t shard)
{
    static const char digits[] = "0123456789abcdef";
    return std::string(1, digits[shard & 0xf]);
}

void
for_each_cache_file(
    const std::string &dir,
    const std::function<void(const std::filesystem::directory_entry &)>
        &visit)
{
    std::error_code ec;
    for (const auto &de : std::filesystem::directory_iterator(dir, ec)) {
        if (de.is_regular_file()) {
            visit(de);
            continue;
        }
        if (!de.is_directory())
            continue;
        const std::string name = de.path().filename().string();
        if (name.size() != 1 ||
            std::string("0123456789abcdef").find(name[0]) ==
                std::string::npos)
            continue;
        std::error_code sec;
        for (const auto &se :
             std::filesystem::directory_iterator(de.path(), sec))
            if (se.is_regular_file())
                visit(se);
    }
}

bool
is_cache_temp_name(const std::string &filename)
{
    static const std::string marker = ".vcache.tmp";
    const size_t pos = filename.find(marker);
    if (pos == std::string::npos || pos + marker.size() >= filename.size())
        return false;
    for (size_t i = pos + marker.size(); i < filename.size(); ++i)
        if (filename[i] < '0' || filename[i] > '9')
            return false;
    return true;
}

size_t
sweep_cache_temps(const std::string &dir, u64 min_age_seconds)
{
    size_t removed = 0;
    const auto cutoff = std::filesystem::file_time_type::clock::now() -
                        std::chrono::seconds(min_age_seconds);
    for_each_cache_file(dir, [&](const auto &de) {
        if (!is_cache_temp_name(de.path().filename().string()))
            return;
        std::error_code ec;
        if (min_age_seconds != 0) {
            const auto mtime =
                std::filesystem::last_write_time(de.path(), ec);
            if (ec || mtime > cutoff)
                return; // fresh: likely a live store being published
        }
        if (std::filesystem::remove(de.path(), ec) && !ec)
            ++removed;
    });
    return removed;
}

CacheEvictionReport
evict_cache_to_size(const std::string &dir, u64 max_bytes,
                    u64 temp_age_seconds)
{
    CacheEvictionReport report;
    report.orphanTemps = sweep_cache_temps(dir, temp_age_seconds);

    struct Victim
    {
        std::filesystem::path path;
        std::filesystem::file_time_type mtime;
        u64 bytes = 0;
        u64 key = 0;
        bool keyKnown = false;
    };
    std::vector<Victim> victims;
    for_each_cache_file(dir, [&](const auto &de) {
        if (de.path().extension() != ".vcache")
            return;
        std::error_code ec;
        Victim v;
        v.path = de.path();
        v.bytes = de.file_size(ec);
        if (ec)
            return; // unlinked by a concurrent evictor
        v.mtime = std::filesystem::last_write_time(de.path(), ec);
        if (ec)
            return;
        // Shard attribution comes from the filename's hex key, so a
        // corrupt (unreadable-header) entry still counts somewhere.
        const std::string stem = de.path().stem().string();
        const size_t dash = stem.rfind('-');
        if (dash != std::string::npos && stem.size() - dash - 1 == 16) {
            v.key = std::strtoull(stem.c_str() + dash + 1, nullptr, 16);
            v.keyKnown = true;
        }
        report.scannedEntries++;
        report.scannedBytes += v.bytes;
        victims.push_back(std::move(v));
    });

    std::sort(victims.begin(), victims.end(),
              [](const Victim &a, const Victim &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });

    u64 total = report.scannedBytes;
    for (const Victim &v : victims) {
        if (total <= max_bytes)
            break;
        std::error_code ec;
        if (!std::filesystem::remove(v.path, ec) || ec)
            continue; // lost a race with another evictor: its problem now
        total -= std::min(total, v.bytes);
        report.evictedEntries++;
        report.evictedBytes += v.bytes;
        if (v.keyKnown)
            report.evictedByShard[cache_shard_of(v.key)]++;
    }
    report.remainingBytes = total;
    return report;
}

bool
read_cache_entry(const std::string &path, CacheEntryHeader &header,
                 std::vector<u8> *payload)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    u8 raw[36];
    is.read(reinterpret_cast<char *>(raw), sizeof(raw));
    if (!is)
        return false;
    ByteReader r(raw, sizeof(raw));
    header.magic = r.u32v();
    header.version = r.u32v();
    header.kind = r.u32v();
    header.key = r.u64v();
    header.payloadSize = r.u64v();
    header.payloadHash = r.u64v();
    if (header.magic != kCacheMagic || header.version != kCacheFormatVersion)
        return false;
    if (header.kind >= static_cast<u32>(ArtifactKind::NumKinds))
        return false;
    if (!payload)
        return true;
    // Guard against a corrupt size before allocating.
    is.seekg(0, std::ios::end);
    const auto file_size = static_cast<u64>(is.tellg());
    if (file_size < sizeof(raw) ||
        header.payloadSize != file_size - sizeof(raw))
        return false;
    is.seekg(sizeof(raw), std::ios::beg);
    payload->resize(header.payloadSize);
    is.read(reinterpret_cast<char *>(payload->data()),
            static_cast<std::streamsize>(header.payloadSize));
    if (!is)
        return false;
    return fnv1a(*payload) == header.payloadHash;
}

ArtifactCache &
ArtifactCache::instance()
{
    static ArtifactCache cache;
    // Registered after the singleton's construction so the handler runs
    // before its destruction.
    static const bool stats_hook = [] {
        if (const char *env = std::getenv("VOLTRON_CACHE_STATS")) {
            if (env[0] != '\0' && env[0] != '0')
                std::atexit(&print_stats_at_exit);
        }
        return true;
    }();
    (void)stats_hook;
    return cache;
}

std::string
ArtifactCache::diskDir() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (dirOverride_)
        return *dirOverride_;
    const char *env = std::getenv("VOLTRON_CACHE_DIR");
    return env ? env : "";
}

void
ArtifactCache::setDiskDir(std::optional<std::string> dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    dirOverride_ = std::move(dir);
}

/**
 * First touch of a cache dir in this process: clear out store temps old
 * enough to be orphans of a killed process. Runs at most once per dir
 * so a hot loop of loads pays only the swept-set lookup.
 */
void
ArtifactCache::sweepTempsOnce(const std::string &dir)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (std::find(sweptDirs_.begin(), sweptDirs_.end(), dir) !=
            sweptDirs_.end())
            return;
        sweptDirs_.push_back(dir);
    }
    sweep_cache_temps(dir, kCacheTempSweepAgeSeconds);
}

std::vector<u8>
ArtifactCache::loadDisk(ArtifactKind kind, u64 key)
{
    const std::string dir = diskDir();
    if (dir.empty())
        return {};
    sweepTempsOnce(dir);
    const size_t shard = cache_shard_of(key);
    const std::string name = cache_entry_filename(kind, key);
    std::string path = dir + "/" + cache_shard_name(shard) + "/" + name;
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        // Legacy flat entry, written before the shard fan-out.
        path = dir + "/" + name;
        if (!std::filesystem::exists(path, ec)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.byShard[shard].misses;
            return {};
        }
    }
    CacheEntryHeader header;
    std::vector<u8> payload;
    if (!read_cache_entry(path, header, &payload) || header.key != key ||
        header.kind != static_cast<u32>(kind)) {
        log_warn("cache.disk", "corrupt entry", {{"path", path}});
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.corrupt;
        ++stats_.byShard[shard].misses;
        return {};
    }
    log_trace("cache.disk", "hit",
              {{"kind", artifact_kind_name(kind)},
               {"key", hex16(key)},
               {"bytes", static_cast<u64>(payload.size())}});
    // LRU is use-recency: a hit touches the entry so budget eviction
    // (oldest mtime first) spares the hot set.
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.byShard[shard].diskHits;
    return payload;
}

void
ArtifactCache::storeDisk(ArtifactKind kind, u64 key,
                         const std::vector<u8> &payload)
{
    const std::string dir = diskDir();
    if (dir.empty())
        return;
    sweepTempsOnce(dir);
    const size_t shard = cache_shard_of(key);
    const std::string shard_dir = dir + "/" + cache_shard_name(shard);
    std::error_code ec;
    std::filesystem::create_directories(shard_dir, ec);
    if (ec)
        return; // persistent level unavailable; in-process level suffices

    // One store at a time per process: budget enforcement scans the
    // tier, and overlapped scans from bench threads would multiply the
    // cost for no benefit.
    std::lock_guard<std::mutex> disk_lock(diskMutex_);
    const u64 entry_bytes = payload.size() + 36; // header is 36 bytes
    const u64 budget = diskBudget();
    if (budget != 0)
        makeRoom(dir, budget, entry_bytes);

    const std::string path =
        shard_dir + "/" + cache_entry_filename(kind, key);
    const std::string tmp =
        path + ".tmp" + std::to_string(::getpid());
    {
        ByteWriter header;
        header.u32v(kCacheMagic);
        header.u32v(kCacheFormatVersion);
        header.u32v(static_cast<u32>(kind));
        header.u64v(key);
        header.u64v(payload.size());
        header.u64v(fnv1a(payload));
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return;
        os.write(reinterpret_cast<const char *>(header.bytes().data()),
                 static_cast<std::streamsize>(header.size()));
        os.write(reinterpret_cast<const char *>(payload.data()),
                 static_cast<std::streamsize>(payload.size()));
        if (!os.good()) {
            os.close();
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    // Atomic publish; concurrent writers of the same key race benignly
    // (identical content).
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return;
    }
    log_trace("cache.disk", "store",
              {{"kind", artifact_kind_name(kind)},
               {"key", hex16(key)},
               {"bytes", static_cast<u64>(payload.size())}});
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.byShard[shard].stores;
}

void
ArtifactCache::setDiskBudget(std::optional<u64> max_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    budgetOverride_ = max_bytes;
}

u64
ArtifactCache::diskBudget() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (budgetOverride_)
        return *budgetOverride_;
    if (const char *env = std::getenv("VOLTRON_CACHE_MAX_BYTES"))
        return std::strtoull(env, nullptr, 10);
    return 0;
}

void
ArtifactCache::makeRoom(const std::string &dir, u64 budget, u64 incoming)
{
    // Shrink to (budget - incoming) so the tier, observed at any point
    // around the store — temp write included — stays under budget.
    const u64 target = budget > incoming ? budget - incoming : 0;
    noteEviction(evict_cache_to_size(dir, target));
}

CacheEvictionReport
ArtifactCache::enforceBudget()
{
    const std::string dir = diskDir();
    const u64 budget = diskBudget();
    if (dir.empty() || budget == 0)
        return {};
    std::lock_guard<std::mutex> disk_lock(diskMutex_);
    CacheEvictionReport report = evict_cache_to_size(dir, budget);
    noteEviction(report);
    return report;
}

void
ArtifactCache::noteEviction(const CacheEvictionReport &report)
{
    if (report.evictedEntries == 0)
        return;
    log_debug("cache.evict", "evicted",
              {{"entries", report.evictedEntries},
               {"bytes", report.evictedBytes},
               {"remainingBytes", report.remainingBytes}});
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.evictions += report.evictedEntries;
    stats_.evictedBytes += report.evictedBytes;
    for (size_t s = 0; s < kCacheShards; ++s)
        stats_.byShard[s].evicted += report.evictedByShard[s];
}

std::shared_ptr<const GoldenArtifact>
ArtifactCache::getGolden(u64 key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = golden_.find(key);
        if (it != golden_.end()) {
            ++line(ArtifactKind::Golden).memHits;
            return it->second;
        }
    }
    const std::vector<u8> payload = loadDisk(ArtifactKind::Golden, key);
    if (!payload.empty()) {
        auto artifact = std::make_shared<GoldenArtifact>();
        if (decode_golden(payload, *artifact)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++line(ArtifactKind::Golden).diskHits;
            golden_.emplace(key, artifact);
            return artifact;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.corrupt;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++line(ArtifactKind::Golden).misses;
    return nullptr;
}

void
ArtifactCache::putGolden(u64 key,
                         std::shared_ptr<const GoldenArtifact> artifact)
{
    storeDisk(ArtifactKind::Golden, key, encode_golden(*artifact));
    std::lock_guard<std::mutex> lock(mutex_);
    golden_[key] = std::move(artifact);
    ++line(ArtifactKind::Golden).stores;
}

std::shared_ptr<const MachineArtifact>
ArtifactCache::getMachine(u64 key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = machine_.find(key);
        if (it != machine_.end()) {
            ++line(ArtifactKind::Machine).memHits;
            return it->second;
        }
    }
    const std::vector<u8> payload = loadDisk(ArtifactKind::Machine, key);
    if (!payload.empty()) {
        auto artifact = std::make_shared<MachineArtifact>();
        if (decode_machine(payload, *artifact)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++line(ArtifactKind::Machine).diskHits;
            machine_.emplace(key, artifact);
            return artifact;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.corrupt;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++line(ArtifactKind::Machine).misses;
    return nullptr;
}

void
ArtifactCache::putMachine(u64 key,
                          std::shared_ptr<const MachineArtifact> artifact)
{
    storeDisk(ArtifactKind::Machine, key, encode_machine(*artifact));
    std::lock_guard<std::mutex> lock(mutex_);
    machine_[key] = std::move(artifact);
    ++line(ArtifactKind::Machine).stores;
}

std::optional<Cycle>
ArtifactCache::getBaseline(u64 key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = baseline_.find(key);
        if (it != baseline_.end()) {
            ++line(ArtifactKind::Baseline).memHits;
            return it->second;
        }
    }
    const std::vector<u8> payload = loadDisk(ArtifactKind::Baseline, key);
    if (payload.size() == 8) {
        ByteReader r(payload);
        const Cycle cycles = r.u64v();
        std::lock_guard<std::mutex> lock(mutex_);
        ++line(ArtifactKind::Baseline).diskHits;
        baseline_[key] = cycles;
        return cycles;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (!payload.empty())
        ++stats_.corrupt;
    ++line(ArtifactKind::Baseline).misses;
    return std::nullopt;
}

void
ArtifactCache::putBaseline(u64 key, Cycle cycles)
{
    ByteWriter w;
    w.u64v(cycles);
    storeDisk(ArtifactKind::Baseline, key, w.bytes());
    std::lock_guard<std::mutex> lock(mutex_);
    baseline_[key] = cycles;
    ++line(ArtifactKind::Baseline).stores;
}

void
ArtifactCache::clearMemory()
{
    std::lock_guard<std::mutex> lock(mutex_);
    golden_.clear();
    machine_.clear();
    baseline_.clear();
}

ArtifactCacheStats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ArtifactCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = ArtifactCacheStats{};
}

void
collect_cache_metrics(MetricsRegistry &metrics)
{
    ArtifactCache &cache = ArtifactCache::instance();
    const ArtifactCacheStats stats = cache.stats();

    metrics.set("cache.memHits", stats.memHits());
    metrics.set("cache.diskHits", stats.diskHits());
    metrics.set("cache.hits", stats.hits());
    metrics.set("cache.misses", stats.misses());
    metrics.set("cache.stores", stats.stores());
    metrics.set("cache.corrupt", stats.corrupt);
    metrics.set("cache.evictions", stats.evictions);
    metrics.set("cache.evictedBytes", stats.evictedBytes);

    for (size_t k = 0; k < static_cast<size_t>(ArtifactKind::NumKinds);
         ++k) {
        const ArtifactCacheStats::Line &l = stats.byKind[k];
        const std::string prefix =
            std::string("cache.") +
            artifact_kind_name(static_cast<ArtifactKind>(k)) + ".";
        metrics.set(prefix + "memHits", l.memHits);
        metrics.set(prefix + "diskHits", l.diskHits);
        metrics.set(prefix + "misses", l.misses);
        metrics.set(prefix + "stores", l.stores);
    }

    for (size_t s = 0; s < kCacheShards; ++s) {
        const ArtifactCacheStats::Shard &sh = stats.byShard[s];
        if (sh.diskHits == 0 && sh.misses == 0 && sh.stores == 0 &&
            sh.evicted == 0)
            continue; // untouched shards would be 64 lines of zeros
        const std::string prefix =
            "cache.shard" + cache_shard_name(s) + ".";
        metrics.set(prefix + "diskHits", sh.diskHits);
        metrics.set(prefix + "misses", sh.misses);
        metrics.set(prefix + "stores", sh.stores);
        metrics.set(prefix + "evicted", sh.evicted);
    }

    metrics.set("cache.disk.enabled", cache.diskEnabled() ? 1 : 0);
    metrics.set("cache.disk.budget", cache.diskBudget());
}

} // namespace voltron
