#include "core/voltron.hh"

#include <sstream>

#include "support/error.hh"

namespace voltron {

VoltronSystem::VoltronSystem(Program prog)
    : prog_(std::move(prog)), golden_(run_golden(prog_))
{
}

std::string
VoltronSystem::cacheKey(const CompileOptions &options)
{
    std::ostringstream os;
    os << strategy_name(options.strategy) << "/" << options.numCores << "/"
       << options.minOpsPerActivation << "/" << options.minDoallTrip << "/"
       << options.dswpThreshold << "/" << options.missStallFraction << "/"
       << options.allowCrossCoreMemDep << "/" << options.reassociate << "/"
       << options.partition.transferCost << "/"
       << options.partition.missThreshold << "/"
       << options.partition.missEdgeWeight << "/"
       << options.partition.pinAliasClasses << "/"
       << options.partition.memImbalancePenalty;
    return os.str();
}

const MachineProgram &
VoltronSystem::compile(const CompileOptions &options, SelectionReport *report)
{
    const std::string key = cacheKey(options);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        SelectionReport sel;
        auto mp = std::make_unique<MachineProgram>(
            compile_program(prog_, golden_.profile, options, &sel));
        it = cache_.emplace(key, std::move(mp)).first;
        selectionCache_[key] = std::move(sel);
    }
    if (report)
        *report = selectionCache_[key];
    return *it->second;
}

bool
VoltronSystem::memoryMatchesGolden(const MemoryImage &mem) const
{
    for (const DataObject &obj : prog_.data) {
        std::vector<u8> golden_bytes(obj.size), run_bytes(obj.size);
        golden_.memory->readBytes(obj.base, golden_bytes.data(), obj.size);
        mem.readBytes(obj.base, run_bytes.data(), obj.size);
        if (golden_bytes != run_bytes)
            return false;
    }
    return true;
}

RunOutcome
VoltronSystem::run(const CompileOptions &options,
                   std::optional<MachineConfig> config)
{
    RunOutcome outcome;
    const MachineProgram &mp = compile(options, &outcome.selection);
    MachineConfig mc =
        config ? *config : MachineConfig::forCores(options.numCores);
    Machine machine(mp, mc);
    outcome.result = machine.run();
    outcome.exitMatches =
        outcome.result.exitValue == golden_.result.exitValue;
    outcome.memoryMatches = memoryMatchesGolden(machine.memory());
    return outcome;
}

RunOutcome
VoltronSystem::run(Strategy s, u16 cores)
{
    CompileOptions options;
    options.strategy = s;
    options.numCores = cores;
    return run(options);
}

Cycle
VoltronSystem::baselineCycles()
{
    if (!baseline_) {
        RunOutcome outcome = run(Strategy::SerialOnly, 1);
        fatal_if_not(outcome.correct(),
                     "serial baseline diverged from the golden model");
        baseline_ = outcome.result.cycles;
    }
    return *baseline_;
}

double
VoltronSystem::speedup(const RunOutcome &outcome)
{
    return static_cast<double>(baselineCycles()) /
           static_cast<double>(outcome.result.cycles);
}

} // namespace voltron
