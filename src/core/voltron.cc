#include "core/voltron.hh"

#include "ir/serialize.hh"
#include "support/error.hh"

namespace voltron {

namespace {

/** Build the golden artifact the cold way: run the interpreter. */
std::shared_ptr<const GoldenArtifact>
cold_golden(const Program &prog)
{
    GoldenRun run = run_golden(prog);
    auto artifact = std::make_shared<GoldenArtifact>();
    artifact->result = run.result;
    artifact->profile = std::move(run.profile);
    artifact->image = extract_golden_image(prog, *run.memory);
    return artifact;
}

} // namespace

VoltronSystem::VoltronSystem(Program prog) : prog_(std::move(prog))
{
    progHash_ = program_content_hash(prog_);
    ArtifactCache &cache = ArtifactCache::instance();
    golden_ = cache.getGolden(progHash_);
    // A hit must describe this very data segment; anything else means a
    // key collision or stale entry — fall back to the cold path.
    if (golden_ && golden_->image.size() != prog_.data.size())
        golden_ = nullptr;
    if (!golden_) {
        auto fresh = cold_golden(prog_);
        cache.putGolden(progHash_, fresh);
        golden_ = std::move(fresh);
    }
}

std::shared_ptr<const MachineArtifact>
VoltronSystem::acquire(const CompileOptions &options)
{
    const u64 key = hash_combine(progHash_, options_hash(options));
    std::lock_guard<std::mutex> lock(compileMutex_);
    auto it = machines_.find(key);
    if (it == machines_.end()) {
        ArtifactCache &cache = ArtifactCache::instance();
        std::shared_ptr<const MachineArtifact> artifact =
            cache.getMachine(key);
        if (artifact && artifact->program.numCores != options.numCores)
            artifact = nullptr; // collision/stale guard: never simulate it
        if (!artifact) {
            auto fresh = std::make_shared<MachineArtifact>();
            fresh->program = compile_program(prog_, golden_->profile,
                                             options, &fresh->selection);
            cache.putMachine(key, fresh);
            artifact = std::move(fresh);
        }
        it = machines_.emplace(key, std::move(artifact)).first;
    }
    return it->second;
}

const MachineProgram &
VoltronSystem::compile(const CompileOptions &options, SelectionReport *report)
{
    const std::shared_ptr<const MachineArtifact> artifact =
        acquire(options);
    if (report)
        *report = artifact->selection;
    return artifact->program;
}

size_t
VoltronSystem::compiledVariants() const
{
    std::lock_guard<std::mutex> lock(compileMutex_);
    return machines_.size();
}

bool
VoltronSystem::memoryMatchesGolden(const MemoryImage &mem) const
{
    for (size_t i = 0; i < prog_.data.size(); ++i) {
        const DataObject &obj = prog_.data[i];
        std::vector<u8> run_bytes(obj.size);
        mem.readBytes(obj.base, run_bytes.data(), obj.size);
        if (golden_->image[i] != run_bytes)
            return false;
    }
    return true;
}

RunOutcome
VoltronSystem::run(const CompileOptions &options,
                   std::optional<MachineConfig> config,
                   MetricsRegistry *metrics)
{
    RunOutcome outcome;
    const std::shared_ptr<const MachineArtifact> artifact =
        acquire(options);
    outcome.selection = artifact->selection;
    MachineConfig mc =
        config ? *config : MachineConfig::forCores(options.numCores);
    Machine machine(artifact->program, mc);
    outcome.result = machine.run();
    outcome.exitMatches =
        outcome.result.exitValue == golden_->result.exitValue;
    outcome.memoryMatches = memoryMatchesGolden(machine.memory());
    if (metrics)
        *metrics = collect_metrics(machine, outcome.result);
    return outcome;
}

RunOutcome
VoltronSystem::run(Strategy s, u16 cores)
{
    CompileOptions options;
    options.strategy = s;
    options.numCores = cores;
    return run(options);
}

Cycle
VoltronSystem::baselineCycles()
{
    std::lock_guard<std::mutex> lock(baselineMutex_);
    if (!baseline_) {
        CompileOptions options;
        options.strategy = Strategy::SerialOnly;
        options.numCores = 1;
        const u64 key = hash_combine(progHash_, options_hash(options));
        ArtifactCache &cache = ArtifactCache::instance();
        if (std::optional<Cycle> cached = cache.getBaseline(key)) {
            baseline_ = *cached;
        } else {
            RunOutcome outcome = run(options);
            fatal_if_not(outcome.correct(),
                         "serial baseline diverged from the golden model");
            baseline_ = outcome.result.cycles;
            cache.putBaseline(key, *baseline_);
        }
    }
    return *baseline_;
}

double
VoltronSystem::speedup(const RunOutcome &outcome)
{
    return static_cast<double>(baselineCycles()) /
           static_cast<double>(outcome.result.cycles);
}

} // namespace voltron
