#include "core/voltron.hh"

#include <set>
#include <utility>

#include "ir/serialize.hh"
#include "support/error.hh"
#include "support/phase.hh"

namespace voltron {

namespace {

/** Build the golden artifact the cold way: run the interpreter. */
std::shared_ptr<const GoldenArtifact>
cold_golden(const Program &prog)
{
    GoldenRun run = run_golden(prog);
    auto artifact = std::make_shared<GoldenArtifact>();
    artifact->result = run.result;
    artifact->profile = std::move(run.profile);
    artifact->image = extract_golden_image(prog, *run.memory);
    return artifact;
}

} // namespace

VoltronSystem::VoltronSystem(Program prog) : prog_(std::move(prog))
{
    progHash_ = program_content_hash(prog_);
    ArtifactCache &cache = ArtifactCache::instance();
    phase_mark(Phase::CacheProbe);
    golden_ = cache.getGolden(progHash_);
    // A hit must describe this very data segment; anything else means a
    // key collision or stale entry — fall back to the cold path.
    if (golden_ && golden_->image.size() != prog_.data.size())
        golden_ = nullptr;
    if (!golden_) {
        phase_mark(Phase::GoldenRun);
        auto fresh = cold_golden(prog_);
        cache.putGolden(progHash_, fresh);
        golden_ = std::move(fresh);
    }
}

std::shared_ptr<const MachineArtifact>
VoltronSystem::acquire(const CompileOptions &options)
{
    const u64 key = hash_combine(progHash_, options_hash(options));
    std::lock_guard<std::mutex> lock(compileMutex_);
    auto it = machines_.find(key);
    if (it == machines_.end()) {
        ArtifactCache &cache = ArtifactCache::instance();
        phase_mark(Phase::CacheProbe);
        std::shared_ptr<const MachineArtifact> artifact =
            cache.getMachine(key);
        if (artifact && artifact->program.numCores != options.numCores)
            artifact = nullptr; // collision/stale guard: never simulate it
        if (!artifact) {
            phase_mark(Phase::Compile);
            auto fresh = std::make_shared<MachineArtifact>();
            fresh->program = compile_program(prog_, golden_->profile,
                                             options, &fresh->selection);
            cache.putMachine(key, fresh);
            artifact = std::move(fresh);
        }
        it = machines_.emplace(key, std::move(artifact)).first;
    }
    return it->second;
}

const MachineProgram &
VoltronSystem::compile(const CompileOptions &options, SelectionReport *report)
{
    const std::shared_ptr<const MachineArtifact> artifact =
        acquire(options);
    if (report)
        *report = artifact->selection;
    return artifact->program;
}

size_t
VoltronSystem::compiledVariants() const
{
    std::lock_guard<std::mutex> lock(compileMutex_);
    return machines_.size();
}

bool
VoltronSystem::memoryMatchesGolden(const MemoryImage &mem) const
{
    for (size_t i = 0; i < prog_.data.size(); ++i) {
        const DataObject &obj = prog_.data[i];
        std::vector<u8> run_bytes(obj.size);
        mem.readBytes(obj.base, run_bytes.data(), obj.size);
        if (golden_->image[i] != run_bytes)
            return false;
    }
    return true;
}

RunOutcome
VoltronSystem::runConcrete(const CompileOptions &options,
                           const std::optional<MachineConfig> &config,
                           MetricsRegistry *metrics, TraceProfile *profile)
{
    RunOutcome outcome;
    const std::shared_ptr<const MachineArtifact> artifact =
        acquire(options);
    outcome.selection = artifact->selection;
    const MeshShape shape = options.meshShape();
    MachineConfig mc =
        config ? *config : MachineConfig::forMesh(shape.rows, shape.cols);
    std::optional<ProfilingTraceSink> sink;
    if (profile) {
        fatal_if_not(mc.traceSink == nullptr,
                     "runProfiled cannot stack on a caller trace sink");
        sink.emplace(artifact->program.numCores);
        mc.traceSink = &*sink;
    }
    phase_mark(Phase::Simulate);
    Machine machine(artifact->program, mc);
    outcome.result = machine.run();
    outcome.exitMatches =
        outcome.result.exitValue == golden_->result.exitValue;
    outcome.memoryMatches = memoryMatchesGolden(machine.memory());
    if (metrics) {
        *metrics = collect_metrics(machine, outcome.result);
        // The process-wide cache.* counters ride along so server
        // responses and bench JSONs report hit rates for free.
        collect_cache_metrics(*metrics);
    }
    if (profile)
        *profile = sink->finish(outcome.result.cycles);
    return outcome;
}

RunOutcome
VoltronSystem::run(const CompileOptions &options,
                   std::optional<MachineConfig> config,
                   MetricsRegistry *metrics)
{
    // An Adaptive request without a decided override set *is* the loop;
    // with one it is a concrete variant (the loop's own inner runs and
    // any caller replaying a converged selection land here).
    if (options.strategy == Strategy::Adaptive &&
        options.modeOverrides.empty())
        return runAdaptive(options, nullptr, config, metrics);
    return runConcrete(options, config, metrics);
}

RunOutcome
VoltronSystem::runProfiled(const CompileOptions &options,
                           TraceProfile &profile,
                           std::optional<MachineConfig> config)
{
    return runConcrete(options, config, nullptr, &profile);
}

RunOutcome
VoltronSystem::runAdaptive(const CompileOptions &options,
                           AdaptiveReport *report,
                           std::optional<MachineConfig> config,
                           MetricsRegistry *metrics)
{
    AdaptiveReport local;
    AdaptiveReport &rep = report ? *report : local;
    rep = AdaptiveReport{};

    CompileOptions best = options;
    best.strategy = Strategy::Adaptive;
    best.modeOverrides.clear();

    // Round 0: the static §4.2 selection (empty override set compiles
    // byte-identically to Hybrid), measured under the profiling sink.
    TraceProfile bestProfile;
    RunOutcome bestOutcome = runConcrete(best, config, nullptr,
                                         &bestProfile);
    fatal_if_not(bestOutcome.correct(),
                 "adaptive round 0 (static hybrid) diverged from the "
                 "golden model");
    rep.hybridCycles = bestOutcome.result.cycles;

    // Greedy with rollback: kept only on a strict, still-correct
    // improvement. Because acceptance is strictly monotone from the
    // Hybrid starting point, the final selection can never lose to
    // static Hybrid. Candidates whose regions' measured timeline hulls
    // are pairwise disjoint never ran concurrently, so their effects
    // compose; such a set is batched into one evaluation, with the
    // single-candidate trial as the fallback when a batch fails (a
    // failed batch is remembered by its signature and never re-tried).
    std::set<std::pair<RegionId, ExecMode>> tried;
    std::set<std::vector<std::pair<RegionId, ExecMode>>> failedBatches;
    while (rep.evaluations < options.maxAdaptiveRounds) {
        const std::vector<ModeSuggestion> suggestions =
            suggest_overrides(bestProfile, &bestOutcome.selection);
        std::vector<const ModeSuggestion *> eligible;
        for (const ModeSuggestion &s : suggestions) {
            if (tried.count({s.region, s.to}))
                continue;
            auto it = best.modeOverrides.find(s.region);
            if (it != best.modeOverrides.end() && it->second == s.to)
                continue;
            eligible.push_back(&s);
        }
        if (eligible.empty()) {
            rep.converged = true;
            break;
        }

        // Assemble a batch, hottest-first: each joining candidate's
        // hull must be disjoint from every member already in.
        std::vector<const ModeSuggestion *> batch;
        for (const ModeSuggestion *s : eligible) {
            const RegionProfile *row = bestProfile.region(s->region);
            if (!row || row->lastCycle <= row->firstCycle)
                continue; // no measured hull to reason about
            bool disjoint = true;
            for (const ModeSuggestion *member : batch) {
                const RegionProfile *other =
                    bestProfile.region(member->region);
                if (row->firstCycle < other->lastCycle &&
                    other->firstCycle < row->lastCycle) {
                    disjoint = false;
                    break;
                }
            }
            if (disjoint)
                batch.push_back(s);
        }

        if (batch.size() >= 2) {
            std::vector<std::pair<RegionId, ExecMode>> signature;
            for (const ModeSuggestion *s : batch)
                signature.emplace_back(s->region, s->to);
            std::sort(signature.begin(), signature.end());
            if (!failedBatches.count(signature)) {
                CompileOptions trial = best;
                for (const ModeSuggestion *s : batch)
                    trial.modeOverrides[s->region] = s->to;
                TraceProfile trialProfile;
                RunOutcome trialOutcome = runConcrete(trial, config,
                                                      nullptr,
                                                      &trialProfile);
                rep.evaluations++;
                rep.batchEvaluations++;
                if (trialOutcome.correct() &&
                    trialOutcome.result.cycles <
                        bestOutcome.result.cycles) {
                    rep.batchAccepts++;
                    for (const ModeSuggestion *s : batch) {
                        tried.insert({s->region, s->to});
                        rep.accepted.push_back(*s);
                    }
                    best = std::move(trial);
                    bestOutcome = std::move(trialOutcome);
                    bestProfile = std::move(trialProfile);
                    continue;
                }
                // Some member hurt (or broke correctness): remember the
                // set and fall through to single-candidate trials, which
                // isolate the bad member over the following rounds.
                failedBatches.insert(std::move(signature));
                if (rep.evaluations >= options.maxAdaptiveRounds)
                    break;
            }
        }

        const ModeSuggestion *pick = eligible.front();
        tried.insert({pick->region, pick->to});

        CompileOptions trial = best;
        trial.modeOverrides[pick->region] = pick->to;
        TraceProfile trialProfile;
        RunOutcome trialOutcome = runConcrete(trial, config, nullptr,
                                              &trialProfile);
        rep.evaluations++;
        if (trialOutcome.correct() &&
            trialOutcome.result.cycles < bestOutcome.result.cycles) {
            rep.accepted.push_back(*pick);
            best = std::move(trial);
            bestOutcome = std::move(trialOutcome);
            bestProfile = std::move(trialProfile);
        } else {
            rep.rejected.push_back(*pick);
        }
    }

    rep.finalCycles = bestOutcome.result.cycles;
    rep.overrides = best.modeOverrides;
    if (metrics)
        return runConcrete(best, config, metrics);
    return bestOutcome;
}

RunOutcome
VoltronSystem::run(Strategy s, u16 cores)
{
    CompileOptions options;
    options.strategy = s;
    options.numCores = cores;
    return run(options);
}

Cycle
VoltronSystem::baselineCycles()
{
    std::lock_guard<std::mutex> lock(baselineMutex_);
    if (!baseline_) {
        CompileOptions options;
        options.strategy = Strategy::SerialOnly;
        options.numCores = 1;
        const u64 key = hash_combine(progHash_, options_hash(options));
        ArtifactCache &cache = ArtifactCache::instance();
        phase_mark(Phase::CacheProbe);
        if (std::optional<Cycle> cached = cache.getBaseline(key)) {
            baseline_ = *cached;
        } else {
            RunOutcome outcome = run(options);
            fatal_if_not(outcome.correct(),
                         "serial baseline diverged from the golden model");
            baseline_ = outcome.result.cycles;
            cache.putBaseline(key, *baseline_);
        }
    }
    return *baseline_;
}

double
VoltronSystem::speedup(const RunOutcome &outcome)
{
    return static_cast<double>(baselineCycles()) /
           static_cast<double>(outcome.result.cycles);
}

} // namespace voltron
