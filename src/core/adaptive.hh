/**
 * @file
 * Measured-feedback mode selection: rules that turn a TraceProfile into
 * per-region ExecMode override candidates, and the report type the
 * VoltronSystem adaptive loop fills in.
 *
 * The static §4.2 selector guesses from the interpreter profile; these
 * rules read what the machine actually did. Each rule keys off the
 * *measured* mode (RegionEnter's arg8) and the region's attributed
 * stall mix, so the same code serves the closed loop
 * (VoltronSystem::runAdaptive) and the advisory tool (`voltron-prof
 * suggest`), which has only the trace. Suggestions are candidates, not
 * commands: compile_program clamps infeasible ones, and the loop only
 * keeps an override set when it strictly lowers measured cycles.
 */

#ifndef VOLTRON_CORE_ADAPTIVE_HH_
#define VOLTRON_CORE_ADAPTIVE_HH_

#include <map>
#include <string>
#include <vector>

#include "compiler/compile.hh"
#include "trace/profiler.hh"

namespace voltron {

/** One candidate re-selection for one region. */
struct ModeSuggestion
{
    RegionId region = kNoRegion;
    ExecMode from = ExecMode::Serial; //!< measured mode
    ExecMode to = ExecMode::Serial;   //!< proposed replacement
    std::string reason;               //!< human-readable rule firing
};

/**
 * Rank override candidates from a measured profile, hottest region
 * first, at most one per region. @p selection (when available — the
 * closed loop has it, a bare trace does not) filters regions the
 * compiler could never parallelize (Glue), saving wasted evaluations.
 */
std::vector<ModeSuggestion>
suggest_overrides(const TraceProfile &profile,
                  const SelectionReport *selection);

/** What the adaptive loop did (VoltronSystem::runAdaptive). */
struct AdaptiveReport
{
    Cycle hybridCycles = 0; //!< round 0: the static §4.2 selection
    Cycle finalCycles = 0;  //!< best accepted (== hybrid if none won)
    u32 evaluations = 0;    //!< measured candidate runs
    bool converged = false; //!< candidate list drained before the bound
    /** Batched evaluations: candidates whose regions' profiled timeline
     * hulls are pairwise disjoint are tried as one override set in a
     * single measured run; a batch accept lands every member at the cost
     * of one evaluation. These count the batch trials (each also counts
     * once in @ref evaluations) and the ones that were kept. */
    u32 batchEvaluations = 0;
    u32 batchAccepts = 0;
    std::map<RegionId, ExecMode> overrides; //!< the accepted set
    std::vector<ModeSuggestion> accepted;
    std::vector<ModeSuggestion> rejected;

    double
    improvement() const
    {
        return hybridCycles == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(finalCycles) /
                             static_cast<double>(hybridCycles);
    }
};

} // namespace voltron

#endif // VOLTRON_CORE_ADAPTIVE_HH_
