/**
 * @file
 * Content-hashed artifact cache for the expensive front-end passes.
 *
 * The pipeline in front of the cycle-level simulator — the golden
 * interpreter run, the compiler, and the serial-baseline measurement —
 * is deterministic: its outputs depend only on the Program IR and the
 * CompileOptions. The cache therefore keys every artifact by the FNV-1a
 * hash of those inputs' canonical serialization (support/serialize.hh)
 * and keeps two levels:
 *
 *  - an in-process level holding deserialized artifacts behind
 *    shared_ptr<const ...>, shared by every VoltronSystem in the process
 *    (the fig* harnesses construct one system per benchmark point; the
 *    second point for the same program pays nothing);
 *  - a persistent on-disk level under $VOLTRON_CACHE_DIR (disabled when
 *    unset), one file per artifact, shared across processes — the six
 *    fig* binaries re-use each other's golden runs and compiles.
 *
 * Every disk entry carries a format version and the FNV-1a hash of its
 * payload; a corrupted, truncated, or version-mismatched entry is
 * counted and treated as a miss (cold recompute), never a crash or a
 * wrong figure. Set VOLTRON_CACHE_STATS=1 to print hit/miss counters to
 * stderr at process exit.
 *
 * The disk level is sharded: entries fan out into kCacheShards
 * subdirectories keyed by the top nibble of the entry hash, so a
 * long-lived server's cache directory never accumulates one giant flat
 * listing and eviction scans touch shards independently. Legacy flat
 * entries (written before sharding) are still found on load. A disk
 * budget (setDiskBudget / $VOLTRON_CACHE_MAX_BYTES) bounds the tier
 * with LRU-by-mtime eviction — disk hits touch the entry's mtime — and
 * the same library routine (evict_cache_to_size) backs `cachectl evict
 * --max-bytes` and the sweep server's background eviction. Eviction is
 * safe under the multi-process `.vcache.tmp` publish protocol: it only
 * unlinks published entries and aged orphan temps, and a concurrent
 * rename simply resurfaces the entry for the next pass.
 */

#ifndef VOLTRON_CORE_ARTIFACT_CACHE_HH_
#define VOLTRON_CORE_ARTIFACT_CACHE_HH_

#include <array>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "compiler/compile.hh"
#include "interp/serialize.hh"
#include "sim/machineprog.hh"

namespace voltron {

/** What a cache entry holds. */
enum class ArtifactKind : u8 {
    Golden = 0,   //!< Profile + InterpResult + golden data image
    Machine = 1,  //!< MachineProgram + SelectionReport
    Baseline = 2, //!< serial single-core cycle count
    NumKinds,
};

const char *artifact_kind_name(ArtifactKind kind);

/** Cached result of the golden interpreter pass. */
struct GoldenArtifact
{
    InterpResult result;
    Profile profile;
    GoldenImage image; //!< data-segment bytes, per Program::data object
};

/** Cached result of one compile. */
struct MachineArtifact
{
    MachineProgram program;
    SelectionReport selection;
};

/** Stable content hash of a CompileOptions (covers *every* field —
 * including missPenalty, which the old string key dropped). */
u64 options_hash(const CompileOptions &options);

/** Disk-level shard fan-out: entries land in dir/<nibble>/ keyed by
 * the top nibble of the entry hash. */
inline constexpr size_t kCacheShards = 16;

/** Shard index of a cache key (top nibble — the first character of the
 * entry's hex name, so listings and shards agree). */
inline constexpr size_t
cache_shard_of(u64 key)
{
    return static_cast<size_t>(key >> 60);
}

/** Subdirectory name of shard @p shard ("0".."f"). */
std::string cache_shard_name(size_t shard);

/**
 * Visit every regular file of the cache tier at @p dir: the directory
 * itself (legacy flat entries, orphan temps) plus its single-hex-char
 * shard subdirectories. Unknown subdirectories are not descended into —
 * the cache only owns its own fan-out. Shared by the runtime cache,
 * evict_cache_to_size, and cachectl so all three agree on the layout.
 */
void for_each_cache_file(
    const std::string &dir,
    const std::function<void(const std::filesystem::directory_entry &)>
        &visit);

/** Hit/miss counters, per artifact kind. */
struct ArtifactCacheStats
{
    struct Line
    {
        u64 memHits = 0;  //!< served from the in-process level
        u64 diskHits = 0; //!< deserialized from $VOLTRON_CACHE_DIR
        u64 misses = 0;   //!< cold recompute
        u64 stores = 0;   //!< entries written
    };
    /** Per-shard disk-tier counters (for server dashboards). */
    struct Shard
    {
        u64 diskHits = 0;
        u64 misses = 0;
        u64 stores = 0;
        u64 evicted = 0; //!< entries this process evicted from the shard
    };
    std::array<Line, static_cast<size_t>(ArtifactKind::NumKinds)> byKind;
    std::array<Shard, kCacheShards> byShard;
    u64 corrupt = 0; //!< disk entries rejected (bad magic/version/hash)
    u64 evictions = 0;    //!< entries evicted by budget enforcement
    u64 evictedBytes = 0; //!< bytes reclaimed by budget enforcement

    const Line &of(ArtifactKind k) const
    {
        return byKind[static_cast<size_t>(k)];
    }
    u64 memHits() const;
    u64 diskHits() const;
    u64 hits() const { return memHits() + diskHits(); }
    u64 misses() const;
    u64 stores() const;
};

/** On-disk entry header (exposed for tools/cachectl). */
struct CacheEntryHeader
{
    u32 magic = 0;
    u32 version = 0;
    u32 kind = 0;
    u64 key = 0;
    u64 payloadSize = 0;
    u64 payloadHash = 0;
};

inline constexpr u32 kCacheMagic = 0x31414356; // "VCA1", little-endian
// v2: MachineProgram gained mesh geometry fields (meshRows/meshCols);
// older entries decode shifted and must fall back to a cold pass.
inline constexpr u32 kCacheFormatVersion = 2;

/** Filename of the entry for (kind, key) within the cache dir. */
std::string cache_entry_filename(ArtifactKind kind, u64 key);

/**
 * True when @p filename is an unpublished store temp
 * ("<entry>.vcache.tmp<pid>"). Stores write the temp then rename it
 * over the entry, so a process killed mid-publish leaves one behind;
 * the runtime never reads them, but they accumulate until swept.
 */
bool is_cache_temp_name(const std::string &filename);

/**
 * Remove orphaned store temps from @p dir (and its shard
 * subdirectories); returns how many. With @p min_age_seconds nonzero
 * only temps whose mtime is at least that old are removed — a
 * concurrent process's in-flight store (written then renamed within
 * milliseconds) is never touched.
 */
size_t sweep_cache_temps(const std::string &dir, u64 min_age_seconds = 0);

/** Age threshold for the automatic startup sweep: any temp this stale
 * is an orphan from a killed process, not an in-flight store. */
inline constexpr u64 kCacheTempSweepAgeSeconds = 3600;

/** What one evict_cache_to_size pass saw and did. */
struct CacheEvictionReport
{
    u64 scannedEntries = 0; //!< published entries found
    u64 scannedBytes = 0;   //!< their total size
    u64 evictedEntries = 0;
    u64 evictedBytes = 0;
    u64 orphanTemps = 0;   //!< aged .vcache.tmp orphans removed
    u64 remainingBytes = 0; //!< scannedBytes - evictedBytes
    /** Per-shard evicted-entry counts (legacy flat entries count
     * against the shard their key hashes to). */
    std::array<u64, kCacheShards> evictedByShard{};
};

/**
 * Shrink the disk tier at @p dir to at most @p max_bytes, evicting
 * published entries in LRU order (oldest mtime first; disk hits touch
 * mtime, so recency is use-recency, not write-recency). Aged orphan
 * temps are swept first and never counted against the bound; temps
 * younger than @p temp_age_seconds — a concurrent writer's in-flight
 * publish — are left alone. @p max_bytes == 0 evicts every published
 * entry. Races with concurrent put/get are benign: an entry renamed
 * into place after the scan is picked up by the next pass, and a
 * concurrently-unlinked file is skipped.
 */
CacheEvictionReport
evict_cache_to_size(const std::string &dir, u64 max_bytes,
                    u64 temp_age_seconds = kCacheTempSweepAgeSeconds);

/**
 * Read a cache entry file. Returns false when the file is unreadable or
 * its header is malformed. With @p payload non-null the payload is read
 * and verified against the header hash (verification failure returns
 * false with header still filled in).
 */
bool read_cache_entry(const std::string &path, CacheEntryHeader &header,
                      std::vector<u8> *payload);

/** The process-wide two-level cache. */
class ArtifactCache
{
  public:
    static ArtifactCache &instance();

    std::shared_ptr<const GoldenArtifact> getGolden(u64 key);
    void putGolden(u64 key, std::shared_ptr<const GoldenArtifact> artifact);

    std::shared_ptr<const MachineArtifact> getMachine(u64 key);
    void putMachine(u64 key, std::shared_ptr<const MachineArtifact> artifact);

    std::optional<Cycle> getBaseline(u64 key);
    void putBaseline(u64 key, Cycle cycles);

    /** Drop the in-process level (tests; disk-level remains). */
    void clearMemory();

    ArtifactCacheStats stats() const;
    void resetStats();

    /**
     * Override the disk directory: a path enables it there, "" disables
     * the disk level, nullopt (default) defers to $VOLTRON_CACHE_DIR.
     * The directory is created on first store.
     */
    void setDiskDir(std::optional<std::string> dir);
    std::string diskDir() const;
    bool diskEnabled() const { return !diskDir().empty(); }

    /**
     * Bound the disk tier to @p max_bytes (0 — the default — leaves it
     * unbounded; nullopt defers to $VOLTRON_CACHE_MAX_BYTES). With a
     * budget set, every store first makes room: the tier is evicted
     * (LRU by mtime) until the incoming payload fits, so the on-disk
     * footprint never exceeds the budget at any observable point.
     */
    void setDiskBudget(std::optional<u64> max_bytes);
    u64 diskBudget() const;

    /** Run one eviction pass against the current budget now (server
     * background sweeps; no-op when unbounded or disk-disabled). */
    CacheEvictionReport enforceBudget();

  private:
    ArtifactCache() = default;

    std::vector<u8> loadDisk(ArtifactKind kind, u64 key);
    void storeDisk(ArtifactKind kind, u64 key, const std::vector<u8> &payload);
    void sweepTempsOnce(const std::string &dir);
    void makeRoom(const std::string &dir, u64 budget, u64 incoming);
    void noteEviction(const CacheEvictionReport &report);

    ArtifactCacheStats::Line &line(ArtifactKind k)
    {
        return stats_.byKind[static_cast<size_t>(k)];
    }

    mutable std::mutex mutex_;
    std::map<u64, std::shared_ptr<const GoldenArtifact>> golden_;
    std::map<u64, std::shared_ptr<const MachineArtifact>> machine_;
    std::map<u64, Cycle> baseline_;
    ArtifactCacheStats stats_;
    std::optional<std::string> dirOverride_;
    std::optional<u64> budgetOverride_;
    std::vector<std::string> sweptDirs_; //!< dirs already auto-swept
    /** Serializes this process's stores + budget eviction so two bench
     * threads don't both scan the tier; cross-process races stay
     * benign (see evict_cache_to_size). */
    std::mutex diskMutex_;
};

class MetricsRegistry;

/**
 * Publish the process-wide cache counters into @p metrics under the
 * dotted "cache." namespace: cache.memHits / diskHits / hits / misses /
 * stores / corrupt / evictions / evictedBytes, per-kind lines
 * (cache.golden.*, cache.machine.*, cache.baseline.*), and per-shard
 * disk-tier lines (cache.shard<x>.{diskHits,misses,stores,evicted}
 * with <x> the shard's hex digit, zero shards skipped). Every
 * collect_metrics document carries these, so server dashboards and
 * BENCH_server.json report hit rates without parsing cachectl output.
 */
void collect_cache_metrics(MetricsRegistry &metrics);

} // namespace voltron

#endif // VOLTRON_CORE_ARTIFACT_CACHE_HH_
