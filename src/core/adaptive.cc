#include "core/adaptive.hh"

#include <algorithm>
#include <cstdio>

namespace voltron {

namespace {

/** RegionEnter's arg8 is ExecMode + 1; 0 means the mode is unknown. */
bool
measured_mode(u8 byte, ExecMode &mode)
{
    if (byte == 0 || byte > static_cast<u8>(ExecMode::Doall) + 1)
        return false;
    mode = static_cast<ExecMode>(byte - 1);
    return true;
}

std::string
pct_reason(const char *what, double frac)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s %.0f%%", what, 100.0 * frac);
    return buf;
}

} // namespace

std::vector<ModeSuggestion>
suggest_overrides(const TraceProfile &profile,
                  const SelectionReport *selection)
{
    std::vector<const RegionProfile *> rows;
    for (const auto &[id, row] : profile.regions)
        if (id != kNoRegion)
            rows.push_back(&row);
    std::sort(rows.begin(), rows.end(),
              [](const RegionProfile *a, const RegionProfile *b) {
                  return a->cycles > b->cycles;
              });

    std::vector<ModeSuggestion> out;
    const u16 cores = profile.numCores;
    for (const RegionProfile *row : rows) {
        // Cold regions cannot repay a re-run, and their stall fractions
        // are noise.
        if (row->cycles * 50 < profile.totalCycles || row->cycles < 64)
            continue;

        ExecMode mode;
        if (!measured_mode(row->mode, mode))
            continue;

        const SelectionReport::Entry *entry = nullptr;
        if (selection) {
            for (const SelectionReport::Entry &e : selection->entries)
                if (e.region == row->id) {
                    entry = &e;
                    break;
                }
            if (entry && entry->kind == RegionKind::Glue)
                continue; // the compiler will clamp it anyway
        }

        auto frac = [&](StallCat cat) {
            return row->stallFrac(cat, cores);
        };
        const double occ = row->occupancy(cores);

        ModeSuggestion s;
        s.region = row->id;
        s.from = mode;
        switch (mode) {
          case ExecMode::Dswp: {
            // Queue-full/recv-bound pipeline: the stages are unbalanced,
            // so the decoupling buys latency instead of overlap.
            const double comm = frac(StallCat::SendFull) +
                                frac(StallCat::RecvData) +
                                frac(StallCat::RecvPred);
            if (comm > 0.20) {
                s.to = ExecMode::Strands;
                s.reason = pct_reason("pipeline comm stalls", comm);
            } else if (occ < 0.25) {
                s.to = ExecMode::Coupled;
                s.reason = pct_reason("occupancy only", occ);
            } else {
                continue;
            }
            break;
          }
          case ExecMode::Doall: {
            const double violations =
                row->tmResolves == 0
                    ? 0.0
                    : static_cast<double>(row->tmViolations) /
                          static_cast<double>(row->tmResolves);
            if (violations > 0.25) {
                s.to = ExecMode::Coupled;
                s.reason = pct_reason("speculation re-executes", violations);
            } else if (occ < 0.25) {
                s.to = ExecMode::Coupled;
                s.reason = pct_reason("occupancy only", occ);
            } else {
                continue;
            }
            break;
          }
          case ExecMode::Strands: {
            const double wait =
                frac(StallCat::RecvData) + frac(StallCat::RecvPred) +
                frac(StallCat::JoinSync) + frac(StallCat::MemSync) +
                frac(StallCat::SendFull);
            if (wait > 0.30) {
                s.to = ExecMode::Coupled;
                s.reason = pct_reason("cross-strand waits", wait);
            } else if (occ < 0.15) {
                s.to = ExecMode::Serial;
                s.reason = pct_reason("occupancy only", occ);
            } else {
                continue;
            }
            break;
          }
          case ExecMode::Coupled: {
            // A coupled group freezes whole on one core's miss; a
            // miss-heavy region decouples better (paper §4.2's own
            // argument, now with the measured fraction).
            const double dcache = frac(StallCat::DCache);
            const double barrier = frac(StallCat::Barrier);
            if (dcache > 0.25) {
                s.to = ExecMode::Strands;
                s.reason = pct_reason("lockstep dcache stalls", dcache);
            } else if (barrier > 0.30) {
                s.to = ExecMode::Serial;
                s.reason = pct_reason("group formation overhead", barrier);
            } else {
                continue;
            }
            break;
          }
          case ExecMode::Serial: {
            // The static activation gate rejected it, but it is hot in
            // practice — worth one measured try at ILP.
            if (row->cycles * 10 >= profile.totalCycles) {
                s.to = ExecMode::Coupled;
                s.reason = "hot serial region";
            } else {
                continue;
            }
            break;
          }
          default:
            continue;
        }
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace voltron
