/**
 * @file
 * VoltronSystem — the library's top-level façade.
 *
 * Wraps the full paper pipeline for one input program:
 *
 *   1. run the reference interpreter once to collect the golden result
 *      and the training profile;
 *   2. compile for a machine configuration and strategy (§4);
 *   3. simulate on the cycle-level multicore (§3);
 *   4. verify the run against the golden memory image and exit value.
 *
 * Examples and the figure harnesses are thin layers over this class.
 */

#ifndef VOLTRON_CORE_VOLTRON_HH_
#define VOLTRON_CORE_VOLTRON_HH_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "compiler/compile.hh"
#include "interp/interp.hh"
#include "sim/machine.hh"

namespace voltron {

/** Outcome of one simulated run. */
struct RunOutcome
{
    MachineResult result;
    bool exitMatches = false;
    bool memoryMatches = false;
    SelectionReport selection;

    bool correct() const { return exitMatches && memoryMatches; }
};

/** The façade. */
class VoltronSystem
{
  public:
    /** Takes ownership of @p prog; immediately runs the golden pass. */
    explicit VoltronSystem(Program prog);

    const Program &program() const { return prog_; }
    const Profile &profile() const { return golden_.profile; }
    const InterpResult &goldenResult() const { return golden_.result; }

    /** Compile with @p options (cached per strategy+cores). */
    const MachineProgram &compile(const CompileOptions &options,
                                  SelectionReport *report = nullptr);

    /**
     * Compile + simulate + verify. Uses MachineConfig::forCores unless
     * @p config is given.
     */
    RunOutcome run(const CompileOptions &options,
                   std::optional<MachineConfig> config = std::nullopt);

    /** Convenience: run strategy @p s on @p cores cores. */
    RunOutcome run(Strategy s, u16 cores);

    /** Serial single-core baseline cycle count (cached). */
    Cycle baselineCycles();

    /** Speedup of @p outcome over the serial baseline. */
    double speedup(const RunOutcome &outcome);

    /** Compare @p mem against the golden data segment. */
    bool memoryMatchesGolden(const MemoryImage &mem) const;

  private:
    Program prog_;
    GoldenRun golden_;
    std::map<std::string, std::unique_ptr<MachineProgram>> cache_;
    std::map<std::string, SelectionReport> selectionCache_;
    std::optional<Cycle> baseline_;

    static std::string cacheKey(const CompileOptions &options);
};

} // namespace voltron

#endif // VOLTRON_CORE_VOLTRON_HH_
