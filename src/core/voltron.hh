/**
 * @file
 * VoltronSystem — the library's top-level façade.
 *
 * Wraps the full paper pipeline for one input program:
 *
 *   1. run the reference interpreter once to collect the golden result
 *      and the training profile;
 *   2. compile for a machine configuration and strategy (§4);
 *   3. simulate on the cycle-level multicore (§3);
 *   4. verify the run against the golden memory image and exit value.
 *
 * Examples and the figure harnesses are thin layers over this class.
 *
 * Steps 1, 2, and the serial-baseline measurement are served through the
 * content-hashed ArtifactCache (core/artifact_cache.hh): the program is
 * hashed once at construction and every artifact is keyed by that hash
 * (combined with the CompileOptions hash where relevant), so repeated
 * points over the same benchmark — within a process or across harness
 * binaries via $VOLTRON_CACHE_DIR — skip the redundant front-end work.
 * An instance is thread-safe: concurrent run()/compile()/speedup() calls
 * from a bench thread pool are serialized only on cache bookkeeping.
 */

#ifndef VOLTRON_CORE_VOLTRON_HH_
#define VOLTRON_CORE_VOLTRON_HH_

#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "core/adaptive.hh"
#include "core/artifact_cache.hh"
#include "sim/machine.hh"
#include "trace/profiler.hh"

namespace voltron {

/** Outcome of one simulated run. */
struct RunOutcome
{
    MachineResult result;
    bool exitMatches = false;
    bool memoryMatches = false;
    SelectionReport selection;

    bool correct() const { return exitMatches && memoryMatches; }
};

/** The façade. */
class VoltronSystem
{
  public:
    /** Takes ownership of @p prog; immediately runs (or recalls) the
     * golden pass. */
    explicit VoltronSystem(Program prog);

    const Program &program() const { return prog_; }
    const Profile &profile() const { return golden_->profile; }
    const InterpResult &goldenResult() const { return golden_->result; }

    /** Content hash of the program IR (the cache key root). */
    u64 programHash() const { return progHash_; }

    /** Compile with @p options (cached by content hash). */
    const MachineProgram &compile(const CompileOptions &options,
                                  SelectionReport *report = nullptr);

    /**
     * Compile + simulate + verify. Uses MachineConfig::forCores unless
     * @p config is given. To trace the run, pass a config whose
     * traceSink is set. When @p metrics is non-null it receives the
     * unified counter namespace (collect_metrics) for the run — opt-in,
     * so hot bench loops pay nothing for it.
     *
     * Strategy::Adaptive with an empty override map dispatches to
     * runAdaptive; with overrides present it runs that concrete variant.
     */
    RunOutcome run(const CompileOptions &options,
                   std::optional<MachineConfig> config = std::nullopt,
                   MetricsRegistry *metrics = nullptr);

    /** Convenience: run strategy @p s on @p cores cores. */
    RunOutcome run(Strategy s, u16 cores);

    /**
     * The measured-feedback loop (Strategy::Adaptive): compile with the
     * static §4.2 Hybrid heuristic, simulate under a profiling sink,
     * then evaluate suggest_overrides candidates one at a time —
     * keeping an override set only when it strictly lowers cycles and
     * stays golden-correct — until the candidate list drains or
     * maxAdaptiveRounds measured runs are spent. Greedy with rollback,
     * so the result never loses to static Hybrid. Recompiles are
     * content-hashed (each override set is its own ArtifactCache line),
     * so a converged loop re-runs nearly free.
     */
    RunOutcome runAdaptive(const CompileOptions &options,
                           AdaptiveReport *report = nullptr,
                           std::optional<MachineConfig> config =
                               std::nullopt,
                           MetricsRegistry *metrics = nullptr);

    /**
     * run() under a live profiling sink; fills @p profile with the
     * attributed per-region breakdown. Bit-identical to the untraced
     * run (the sink is observational).
     */
    RunOutcome runProfiled(const CompileOptions &options,
                           TraceProfile &profile,
                           std::optional<MachineConfig> config =
                               std::nullopt);

    /** Serial single-core baseline cycle count (cached). */
    Cycle baselineCycles();

    /** Speedup of @p outcome over the serial baseline. */
    double speedup(const RunOutcome &outcome);

    /** Compare @p mem against the golden data segment. */
    bool memoryMatchesGolden(const MemoryImage &mem) const;

    /** Number of distinct compiled variants held by this instance. */
    size_t compiledVariants() const;

  private:
    std::shared_ptr<const MachineArtifact>
    acquire(const CompileOptions &options);

    /** run() without the Adaptive dispatch (the loop's inner step). */
    RunOutcome runConcrete(const CompileOptions &options,
                           const std::optional<MachineConfig> &config,
                           MetricsRegistry *metrics,
                           TraceProfile *profile = nullptr);

    Program prog_;
    u64 progHash_ = 0;
    std::shared_ptr<const GoldenArtifact> golden_;
    std::map<u64, std::shared_ptr<const MachineArtifact>> machines_;
    std::optional<Cycle> baseline_;
    mutable std::mutex compileMutex_;
    std::mutex baselineMutex_;
};

} // namespace voltron

#endif // VOLTRON_CORE_VOLTRON_HH_
