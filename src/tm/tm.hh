/**
 * @file
 * Low-cost transactional memory for speculative statistical-DOALL loops.
 *
 * Lazy-versioning, ordered-commit design. Each core opens a transaction
 * (XBEGIN) with a *chunk ordinal* giving its position in the loop's serial
 * iteration order. Speculative stores are buffered byte-granular in a
 * write log; speculative loads see the core's own log first, then shared
 * memory. Read and write sets are tracked at cache-line granularity (so
 * false sharing can abort, as with a real coherence-based detector).
 *
 * When the master core executes XVALIDATE after every chunk has closed
 * (XCOMMIT), the transactions are resolved in chunk order: a violation
 * exists iff an earlier chunk's write set intersects a later chunk's read
 * set — the later chunk read a stale value. On success all write logs are
 * applied to memory in chunk order (byte-exact, so write-write overlaps
 * resolve exactly as the serial loop would); on violation everything is
 * discarded and XVALIDATE reports failure so the compiler's serial
 * recovery loop re-executes the region.
 */

#ifndef VOLTRON_TM_TM_HH_
#define VOLTRON_TM_TM_HH_

#include <map>
#include <set>
#include <vector>

#include "mem/memimage.hh"
#include "support/stats.hh"
#include "support/types.hh"
#include "trace/trace.hh"

namespace voltron {

/** Outcome of resolving a speculative region. */
struct TmResolution
{
    bool violated = false;
    u64 linesCommitted = 0; //!< distinct lines written (commit bandwidth)
    u64 chunks = 0;
};

/** The transactional memory. */
class TransactionalMemory
{
  public:
    TransactionalMemory(u16 num_cores, u32 line_bytes = 64);

    /** Open a transaction on @p core with serial position @p ordinal. */
    void begin(CoreId core, u64 ordinal);

    /** Close @p core's transaction (commit deferred to resolve()). */
    void close(CoreId core);

    /** Software abort: discard @p core's transaction. */
    void abort(CoreId core);

    /** True while @p core has an open (begun, not closed) transaction. */
    bool active(CoreId core) const;

    /** True if @p core has a transaction in any state (open or closed). */
    bool inFlight(CoreId core) const;

    /**
     * Speculative read: @p size bytes at @p addr, own-log bytes take
     * precedence over @p mem. Records the read set.
     */
    u64 read(CoreId core, MemoryImage &mem, Addr addr, u8 size, bool sign);

    /** Speculative write: buffered in the log. Records the write set. */
    void write(CoreId core, Addr addr, u64 value, u8 size);

    /**
     * Resolve every in-flight transaction in chunk order (all must be
     * closed). Applies logs to @p mem on success; discards them on
     * violation. Clears all transactions either way.
     */
    TmResolution resolve(MemoryImage &mem);

    const StatSet &stats() const { return stats_; }

    /**
     * Emit TmBegin/TmCommit/TmAbort/TmResolve events to @p sink. The TM
     * API carries no cycle parameter, so the owner also passes @p now —
     * a pointer to its live cycle counter (the Machine's now_) read at
     * emission time. Both nullptr disable tracing.
     */
    void
    setTraceSink(TraceSink *sink, const Cycle *now)
    {
        trace_ = sink;
        traceNow_ = now;
    }

  private:
    struct Txn
    {
        bool open = false;
        bool closed = false;
        u64 ordinal = 0;
        std::set<Addr> readLines, writeLines;
        std::map<Addr, u8> writeLog; //!< byte address -> value
    };

    u16 numCores_;
    u32 lineBytes_;
    std::vector<Txn> txns_;
    StatSet stats_;
    TraceSink *trace_ = nullptr;
    const Cycle *traceNow_ = nullptr;

    void
    traceEmit(TraceEventKind kind, CoreId core, u64 arg64 = 0,
              u32 arg32 = 0, u8 arg8 = 0) const
    {
        TraceEvent ev;
        ev.cycle = *traceNow_;
        ev.core = core;
        ev.kind = kind;
        ev.arg64 = arg64;
        ev.arg32 = arg32;
        ev.arg8 = arg8;
        trace_->emit(ev);
    }

    Addr lineOf(Addr addr) const { return addr & ~static_cast<Addr>(
                                              lineBytes_ - 1); }
};

} // namespace voltron

#endif // VOLTRON_TM_TM_HH_
