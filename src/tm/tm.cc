#include "tm/tm.hh"

#include <algorithm>

#include "support/error.hh"

namespace voltron {

TransactionalMemory::TransactionalMemory(u16 num_cores, u32 line_bytes)
    : numCores_(num_cores), lineBytes_(line_bytes)
{
    fatal_if_not((line_bytes & (line_bytes - 1)) == 0,
                 "TM line size must be a power of two");
    txns_.resize(num_cores);
}

void
TransactionalMemory::begin(CoreId core, u64 ordinal)
{
    Txn &txn = txns_.at(core);
    panic_if_not(!txn.open && !txn.closed,
                 "XBEGIN with a transaction already in flight on core ",
                 core);
    txn = Txn{};
    txn.open = true;
    txn.ordinal = ordinal;
    stats_.add("tm.begins");
    if (trace_ && traceNow_)
        traceEmit(TraceEventKind::TmBegin, core, ordinal);
}

void
TransactionalMemory::close(CoreId core)
{
    Txn &txn = txns_.at(core);
    panic_if_not(txn.open, "XCOMMIT without an open transaction on core ",
                 core);
    txn.open = false;
    txn.closed = true;
    if (trace_ && traceNow_)
        traceEmit(TraceEventKind::TmCommit, core, txn.ordinal);
}

void
TransactionalMemory::abort(CoreId core)
{
    txns_.at(core) = Txn{};
    stats_.add("tm.aborts");
    if (trace_ && traceNow_)
        traceEmit(TraceEventKind::TmAbort, core);
}

bool
TransactionalMemory::active(CoreId core) const
{
    return txns_.at(core).open;
}

bool
TransactionalMemory::inFlight(CoreId core) const
{
    const Txn &txn = txns_.at(core);
    return txn.open || txn.closed;
}

u64
TransactionalMemory::read(CoreId core, MemoryImage &mem, Addr addr, u8 size,
                          bool sign)
{
    Txn &txn = txns_.at(core);
    panic_if_not(txn.open, "speculative read outside a transaction");
    for (Addr a = lineOf(addr); a <= lineOf(addr + size - 1); a += lineBytes_)
        txn.readLines.insert(a);

    u64 raw = 0;
    auto *bytes = reinterpret_cast<u8 *>(&raw);
    for (u8 i = 0; i < size; ++i) {
        auto it = txn.writeLog.find(addr + i);
        bytes[i] = it != txn.writeLog.end()
                       ? it->second
                       : static_cast<u8>(mem.read(addr + i, 1));
    }
    if (sign && size < 8) {
        const u64 shift = 64 - 8 * size;
        raw = static_cast<u64>(static_cast<i64>(raw << shift) >> shift);
    }
    return raw;
}

void
TransactionalMemory::write(CoreId core, Addr addr, u64 value, u8 size)
{
    Txn &txn = txns_.at(core);
    panic_if_not(txn.open, "speculative write outside a transaction");
    for (Addr a = lineOf(addr); a <= lineOf(addr + size - 1); a += lineBytes_)
        txn.writeLines.insert(a);
    const auto *bytes = reinterpret_cast<const u8 *>(&value);
    for (u8 i = 0; i < size; ++i)
        txn.writeLog[addr + i] = bytes[i];
}

TmResolution
TransactionalMemory::resolve(MemoryImage &mem)
{
    TmResolution result;

    // Gather in-flight transactions ordered by chunk ordinal.
    std::vector<Txn *> order;
    for (Txn &txn : txns_) {
        panic_if_not(!txn.open, "XVALIDATE with a still-open transaction");
        if (txn.closed)
            order.push_back(&txn);
    }
    std::sort(order.begin(), order.end(),
              [](const Txn *a, const Txn *b) { return a->ordinal < b->ordinal; });
    result.chunks = order.size();

    // Violation: an earlier chunk wrote a line a later chunk read.
    for (size_t i = 0; i < order.size() && !result.violated; ++i) {
        for (size_t j = i + 1; j < order.size() && !result.violated; ++j) {
            for (Addr line : order[i]->writeLines) {
                if (order[j]->readLines.count(line)) {
                    result.violated = true;
                    break;
                }
            }
        }
    }

    if (!result.violated) {
        std::set<Addr> lines;
        for (Txn *txn : order) {
            for (const auto &[addr, byte] : txn->writeLog) {
                mem.write(addr, byte, 1);
                lines.insert(lineOf(addr));
            }
        }
        result.linesCommitted = lines.size();
        stats_.add("tm.commits", order.size());
        stats_.add("tm.linesCommitted", result.linesCommitted);
    } else {
        stats_.add("tm.violations");
    }

    for (Txn &txn : txns_)
        txn = Txn{};
    if (trace_ && traceNow_) {
        // XVALIDATE runs on the master core by contract (the simulator
        // panics otherwise), so the event is pinned to core 0.
        traceEmit(TraceEventKind::TmResolve, 0, result.linesCommitted,
                  static_cast<u32>(result.chunks),
                  result.violated ? 1 : 0);
    }
    return result;
}

} // namespace voltron
