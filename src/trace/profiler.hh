/**
 * @file
 * Trace profiler — folds a TraceEvent stream into an attributed
 * per-region / per-core cycle profile.
 *
 * The machine's own counters (MachineResult, collect_metrics) answer
 * "how many cycles went where" for a whole run; the profiler answers
 * the *attributed* version — which region was the master in when core 3
 * spent 4k cycles in sendFull back-pressure — by replaying the event
 * stream against the region timeline the RegionEnter events describe.
 * It consumes either a `.vtrace` file (profile_trace) or a live sink
 * (ProfilingTraceSink) and needs nothing but the stream: region modes
 * ride in RegionEnter's arg8, so the compiled program is not required.
 *
 * Accounting model (mirrors sim/machine.cc exactly; test_profiler.cc
 * holds the two sides together):
 *
 *  - Every cycle of every core lands in exactly one bucket: *issue*
 *    (>= 1 Issue event that cycle), *stall* (inside a StallBegin/End
 *    span), *idle* (asleep between Sleep/SpawnWake), or *slack* — the
 *    uncharged remainder (coupled-mode no-op slots, spawn wake-up
 *    cycles, post-halt workers). The hard invariant, enforced by
 *    finish() on lossless streams:
 *
 *        issue + stalls + idle + slack == totalCycles,  slack >= 0
 *
 *    per core, and region interval lengths tile [0, totalCycles).
 *
 *  - Stall spans arrive as StallEnd carrying the span length and cover
 *    [end - len, end); idle spans are reconstructed from Sleep /
 *    SpawnWake (workers start idle at cycle 0, the wake cycle itself is
 *    slack); spans crossing a region boundary are split across it.
 *
 *  - An Issue at cycle t can precede the RegionEnter that reassigns
 *    cycle t (the master emits RegionEnter after stepping), so per-cycle
 *    attribution is staged per cycle and flushed when the stream moves
 *    past it.
 *
 * The SEND->RECV critical path is a DP over the FIFO-matched message
 * graph: each core carries the earliest origin cycle and hop count of
 * the longest chain it has absorbed; a RECV extends the chain and the
 * longest closed span (recv cycle - origin + 1) is reported. It bounds
 * how much of the run is serialized through the operand network.
 */

#ifndef VOLTRON_TRACE_PROFILER_HH_
#define VOLTRON_TRACE_PROFILER_HH_

#include <array>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/types.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace voltron {

/** Attributed activity of one region (or of un-regioned glue time,
 * under id == kNoRegion). */
struct RegionProfile
{
    static constexpr size_t kNumCats = static_cast<size_t>(StallCat::NumCats);

    RegionId id = kNoRegion;
    u8 mode = 0; //!< ExecMode + 1 (region_mode_name); 0 = unknown
    u64 entries = 0;
    u64 cycles = 0; //!< master-attributed cycles (== regionCycles slice)

    /**
     * Timeline hull: the half-open cycle range [firstCycle, lastCycle)
     * spanning every interval attributed to this region. Two regions
     * whose hulls are disjoint never overlapped during the measured run
     * — the adaptive loop batches their override candidates into one
     * evaluation. Empty (lastCycle <= firstCycle) when the region never
     * held the timeline.
     */
    Cycle firstCycle = 0;
    Cycle lastCycle = 0;

    // All-core buckets inside this region's intervals. Denominator for
    // occupancy is cycles * numCores.
    u64 issueCycles = 0;
    u64 issuedOps = 0;
    u64 idleCycles = 0;
    u64 slackCycles = 0;
    std::array<u64, kNumCats> stalls{};

    u64 netSends = 0;
    u64 netRecvs = 0;
    u64 recvWaitCycles = 0; //!< buffered-wait sum over RECVs here

    u64 tmResolves = 0;
    u64 tmViolations = 0; //!< resolves that re-executed serially

    u64
    stallSum() const
    {
        u64 sum = 0;
        for (u64 v : stalls)
            sum += v;
        return sum;
    }

    /** Dominant stall category (None when nothing stalled). */
    StallCat topStall() const;

    /** Fraction of this region's core-cycles in @p cat, in [0, 1]. */
    double stallFrac(StallCat cat, u16 num_cores) const;

    /** Fraction of this region's core-cycles that issued, in [0, 1]. */
    double occupancy(u16 num_cores) const;
};

/** Whole-run per-core buckets (cross-checked against MachineResult). */
struct CoreProfile
{
    u64 issueCycles = 0; //!< cycles with >= 1 issue
    u64 issuedOps = 0;   //!< ops (== MachineResult::issued)
    u64 idleCycles = 0;
    u64 slackCycles = 0;
    std::array<u64, RegionProfile::kNumCats> stalls{};

    u64
    stallSum() const
    {
        u64 sum = 0;
        for (u64 v : stalls)
            sum += v;
        return sum;
    }
};

/** Everything the profiler extracts from one stream. */
struct TraceProfile
{
    Cycle totalCycles = 0;
    u16 numCores = 0;
    u64 totalEvents = 0;
    u64 droppedEvents = 0;
    /** False when the ring dropped events; the span-sum invariant and
     * MachineResult agreement only hold on lossless streams. */
    bool lossless = true;

    std::vector<CoreProfile> cores;
    /** Keyed by region id; the kNoRegion entry collects glue time. */
    std::map<RegionId, RegionProfile> regions;

    u64 criticalPathCycles = 0; //!< longest SEND->RECV chain span
    u64 criticalPathHops = 0;   //!< messages on that chain

    Histogram hopLatency; //!< per-message send-to-arrival cycles
    Histogram queueDepth; //!< receiver depth after each enqueue
    Histogram recvWait;   //!< cycles each message sat buffered

    u64 messages = 0;
    u64 spawns = 0; //!< SpawnSend count
    u64 wakes = 0;  //!< SpawnWake count
    u64 sleeps = 0;

    u64 tmBegins = 0;
    u64 tmCommits = 0;
    u64 tmAborts = 0;
    u64 tmResolves = 0;
    u64 tmViolations = 0;

    /** Region row or nullptr. */
    const RegionProfile *region(RegionId id) const;

    /** Whole-run issue occupancy across all cores, in [0, 1]. */
    double occupancy() const;
};

/**
 * Streaming profile builder. Feed events in emission order (cycles
 * nondecreasing — what every sink receives and read_trace returns),
 * then call finish() exactly once.
 */
class Profiler
{
  public:
    explicit Profiler(u16 num_cores);

    void add(const TraceEvent &event);

    /**
     * Finalize: close idle tails at @p total_cycles, set stream-loss
     * metadata, and — when @p dropped is zero — panic unless every
     * core's buckets tile [0, totalCycles) exactly.
     */
    TraceProfile finish(Cycle total_cycles, u64 total_events, u64 dropped);

  private:
    struct Interval
    {
        Cycle start = 0;
        RegionId region = kNoRegion;
    };

    struct ChainState
    {
        std::optional<Cycle> origin;
        u64 hops = 0;
    };

    struct InFlight
    {
        Cycle origin = 0;
        u64 hops = 0;
    };

    void flushCycle();
    void processEvent(const TraceEvent &event);
    RegionProfile &regionAt(Cycle cycle);
    RegionProfile &regionRow(RegionId id);
    void closeIdle(CoreId core, Cycle end);

    /** Split [begin, end) across region intervals; @p apply is called
     * once per piece with (row, length). */
    template <typename Fn>
    void attributeSpan(Cycle begin, Cycle end, Fn &&apply);

    u16 numCores_;
    TraceProfile out_;

    std::vector<Interval> timeline_{{0, kNoRegion}};
    std::map<RegionId, u8> regionModes_;

    Cycle curCycle_ = 0;
    std::vector<TraceEvent> curEvents_;

    std::vector<Cycle> lastIssueCycle_;
    std::vector<std::optional<Cycle>> idleSince_;
    std::vector<ChainState> chain_;
    /** FIFO in-flight messages keyed (sender, receiver, isSpawn). */
    std::map<std::tuple<CoreId, CoreId, bool>, std::deque<InFlight>>
        inFlight_;
};

/** Profile an in-memory stream under its header's metadata. */
TraceProfile profile_trace(const TraceHeader &header,
                           const std::vector<TraceEvent> &events);

/** read_trace + profile_trace; false on I/O or format failure. */
bool profile_trace_file(const std::string &path, TraceProfile &out);

/** Live sink: profiles as the machine runs, storing no events. */
class ProfilingTraceSink final : public TraceSink
{
  public:
    explicit ProfilingTraceSink(u16 num_cores)
        : profiler_(num_cores)
    {
    }

    void
    emit(const TraceEvent &event) override
    {
        profiler_.add(event);
        ++total_;
    }

    /** Call once, after Machine::run returns its cycle count. */
    TraceProfile
    finish(Cycle total_cycles)
    {
        return profiler_.finish(total_cycles, total_, 0);
    }

  private:
    Profiler profiler_;
    u64 total_ = 0;
};

/**
 * Render the per-region table (id, mode, cycles, occupancy, top stall)
 * shared by `voltron-trace summarize` and `voltron-prof report`.
 */
std::string format_region_table(const TraceProfile &profile);

} // namespace voltron

#endif // VOLTRON_TRACE_PROFILER_HH_
