/**
 * @file
 * Per-cycle trace-event ordering mux for the parallel stepper.
 *
 * The sequential stepper emits a decoupled cycle's events core-major:
 * every event of core 0's step, then core 1's, ..., then the events of
 * the post-step serial work (coupled-group formation, region
 * attribution). The parallel stepper steps cores concurrently, so its
 * raw emission order is nondeterministic. This sink restores the exact
 * sequential order by buffering a cycle's events per core and flushing
 * them downstream in core-id order once the cycle's serial section
 * completes.
 *
 * Modes (driven by the Machine, which owns all transitions — every
 * setMode/flushCycle call happens in a serial section, so the mode
 * field needs no synchronization; concurrent emit() calls only occur in
 * PerCore mode and write disjoint per-core buffers):
 *
 *   PerCore  route by TraceEvent::core into that core's buffer. Used
 *            while cores step (parallel phases and the deferred serial
 *            steps) — every component tags its events with the stepping
 *            core, so ev.core identifies the emitting step.
 *   Serial   append to a post buffer flushed after all core buffers.
 *            Used for the cycle's post-step work, whose events the
 *            sequential stepper emits after every core has stepped.
 *   Direct   forward immediately. Used for coupled-lockstep cycles and
 *            the halt epilogue, which run single-threaded in the exact
 *            sequential order (their emission interleaves cores within
 *            a cycle, so buffering would reorder them).
 */

#ifndef VOLTRON_TRACE_MUX_HH_
#define VOLTRON_TRACE_MUX_HH_

#include <vector>

#include "trace/trace.hh"

namespace voltron {

/** Order-restoring fan-in sink in front of a downstream TraceSink. */
class CycleTraceMux final : public TraceSink
{
  public:
    enum class Mode : u8 { PerCore, Serial, Direct };

    CycleTraceMux(TraceSink *downstream, u16 num_cores)
        : downstream_(downstream), coreBufs_(num_cores)
    {
    }

    void
    emit(const TraceEvent &ev) override
    {
        switch (mode_) {
          case Mode::PerCore:
            coreBufs_[ev.core].push_back(ev);
            break;
          case Mode::Serial:
            postBuf_.push_back(ev);
            break;
          case Mode::Direct:
            downstream_->emit(ev);
            break;
        }
    }

    void setMode(Mode mode) { mode_ = mode; }

    /** Forward the buffered cycle: core buffers in id order, then the
     * post buffer — the sequential stepper's emission order. */
    void
    flushCycle()
    {
        for (auto &buf : coreBufs_) {
            for (const TraceEvent &ev : buf)
                downstream_->emit(ev);
            buf.clear();
        }
        for (const TraceEvent &ev : postBuf_)
            downstream_->emit(ev);
        postBuf_.clear();
    }

  private:
    TraceSink *downstream_;
    Mode mode_ = Mode::PerCore;
    std::vector<std::vector<TraceEvent>> coreBufs_;
    std::vector<TraceEvent> postBuf_;
};

} // namespace voltron

#endif // VOLTRON_TRACE_MUX_HH_
