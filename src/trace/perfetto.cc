#include "trace/perfetto.hh"

#include <array>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "trace/profiler.hh"

namespace voltron {

namespace {

void
json_string(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Emits one trace-event object per line, comma-separating from the
 * second record on. */
class EventWriter
{
  public:
    explicit EventWriter(std::ostream &os) : os_(os) {}

    std::ostream &
    begin()
    {
        if (any_)
            os_ << ",\n";
        any_ = true;
        os_ << "  ";
        return os_;
    }

  private:
    std::ostream &os_;
    bool any_ = false;
};

void
meta_event(EventWriter &w, u16 tid, const char *field,
           const std::string &name)
{
    std::ostream &os = w.begin();
    os << R"({"ph":"M","pid":0,"tid":)" << tid << R"(,"name":")" << field
       << R"(","args":{"name":)";
    json_string(os, name);
    os << "}}";
}

void
complete_slice(EventWriter &w, u16 tid, Cycle ts, u64 dur,
               const std::string &name, const char *cat)
{
    std::ostream &os = w.begin();
    os << R"({"ph":"X","pid":0,"tid":)" << tid << R"(,"ts":)" << ts
       << R"(,"dur":)" << dur << R"(,"cat":")" << cat << R"(","name":)";
    json_string(os, name);
    os << "}";
}

void
instant(EventWriter &w, u16 tid, Cycle ts, const std::string &name,
        const char *cat, const std::string &args_json = "")
{
    std::ostream &os = w.begin();
    os << R"({"ph":"i","s":"t","pid":0,"tid":)" << tid << R"(,"ts":)" << ts
       << R"(,"cat":")" << cat << R"(","name":)";
    json_string(os, name);
    if (!args_json.empty())
        os << R"(,"args":)" << args_json;
    os << "}";
}

void
flow(EventWriter &w, char phase, u64 id, u16 tid, Cycle ts)
{
    std::ostream &os = w.begin();
    os << R"({"ph":")" << phase << R"(","id":)" << id
       << R"(,"pid":0,"tid":)" << tid << R"(,"ts":)" << ts
       << R"(,"cat":"netflow","name":"msg")";
    if (phase == 'f')
        os << R"(,"bp":"e")";
    os << "}";
}

std::string
region_name(u32 region)
{
    return region == kNoRegion ? "unattributed"
                               : "region " + std::to_string(region);
}

} // namespace

void
export_chrome_trace(std::ostream &os, const TraceHeader &header,
                    const std::vector<TraceEvent> &events,
                    const ChromeTraceOptions &opts)
{
    os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    EventWriter w(os);

    meta_event(w, 0, "process_name",
               "voltron" +
                   (header.label.empty() ? "" : " " + header.label));
    for (u16 c = 0; c < header.numCores; ++c)
        meta_event(w, c, "thread_name", "core " + std::to_string(c));
    const u16 region_tid = header.numCores;
    meta_event(w, region_tid, "thread_name", "regions");

    // Flow arrows need matched send/recv pairs. The network delivers
    // FIFO per (sender, receiver, class), so pairing sends to recvs in
    // stream order per key reproduces the actual message identity.
    std::map<std::tuple<u16, u16, u8>, std::vector<const TraceEvent *>>
        unmatched_sends;
    std::map<const TraceEvent *, u64> flow_ids;
    u64 next_flow_id = 1;
    for (const TraceEvent &ev : events) {
        if (ev.kind == TraceEventKind::NetSend) {
            unmatched_sends[{ev.core, ev.arg16, ev.arg8}].push_back(&ev);
        } else if (ev.kind == TraceEventKind::NetRecv) {
            auto &queue = unmatched_sends[{ev.arg16, ev.core, ev.arg8}];
            if (!queue.empty()) {
                const TraceEvent *send = queue.front();
                queue.erase(queue.begin());
                const u64 id = next_flow_id++;
                flow_ids[send] = id;
                flow_ids[&ev] = id;
            }
        }
    }

    Cycle region_since = 0;
    u32 region_open = kNoRegion;
    bool region_any = false;

    for (const TraceEvent &ev : events) {
        switch (ev.kind) {
          case TraceEventKind::StallEnd:
            complete_slice(w, ev.core, ev.cycle - ev.arg64, ev.arg64,
                           std::string("stall:") +
                               stall_cat_name(
                                   static_cast<StallCat>(ev.arg8)),
                           "stall");
            break;
          case TraceEventKind::ModeEnd:
            complete_slice(w, ev.core, ev.cycle - ev.arg64, ev.arg64,
                           "coupled", "mode");
            break;
          case TraceEventKind::RegionEnter:
            if (region_any)
                complete_slice(w, region_tid, region_since,
                               ev.cycle - region_since,
                               region_name(region_open), "region");
            region_open = ev.arg32;
            region_since = ev.cycle;
            region_any = true;
            break;
          case TraceEventKind::NetSend: {
            complete_slice(w, ev.core, ev.cycle, 1,
                           std::string(ev.arg8 ? "spawn->" : "send->") +
                               std::to_string(ev.arg16),
                           "net");
            auto it = flow_ids.find(&ev);
            if (it != flow_ids.end())
                flow(w, 's', it->second, ev.core, ev.cycle);
            break;
          }
          case TraceEventKind::NetRecv: {
            std::ostringstream args;
            args << R"({"waited":)" << ev.arg64 << R"(,"depth":)"
                 << ev.arg32 << "}";
            std::ostream &slice = w.begin();
            slice << R"({"ph":"X","pid":0,"tid":)" << ev.core
                  << R"(,"ts":)" << ev.cycle
                  << R"(,"dur":1,"cat":"net","name":)";
            json_string(slice, std::string(ev.arg8 ? "spawn<-" : "recv<-") +
                                   std::to_string(ev.arg16));
            slice << R"(,"args":)" << args.str() << "}";
            auto it = flow_ids.find(&ev);
            if (it != flow_ids.end())
                flow(w, 'f', it->second, ev.core, ev.cycle);
            break;
          }
          case TraceEventKind::SpawnSend:
            instant(w, ev.core, ev.cycle,
                    "SPAWN->" + std::to_string(ev.arg16), "spawn");
            break;
          case TraceEventKind::SpawnWake:
            instant(w, ev.core, ev.cycle, "wake", "spawn");
            break;
          case TraceEventKind::Sleep:
            instant(w, ev.core, ev.cycle, "SLEEP", "spawn");
            break;
          case TraceEventKind::CacheMiss: {
            const char *level = ev.arg8 == kMissMemory ? "mem"
                                : ev.arg8 == kMissCacheToCache ? "c2c"
                                                               : "l2";
            std::ostringstream args;
            args << R"({"latency":)" << ev.arg32 << R"(,"addr":)"
                 << ev.arg64 << "}";
            instant(w, ev.core, ev.cycle,
                    std::string(ev.arg16 & 2 ? "imiss:" : "dmiss:") + level,
                    "mem", args.str());
            break;
          }
          case TraceEventKind::TmBegin:
            instant(w, ev.core, ev.cycle,
                    "XBEGIN #" + std::to_string(ev.arg64), "tm");
            break;
          case TraceEventKind::TmCommit:
            instant(w, ev.core, ev.cycle, "XCOMMIT", "tm");
            break;
          case TraceEventKind::TmAbort:
            instant(w, ev.core, ev.cycle, "XABORT", "tm");
            break;
          case TraceEventKind::TmResolve: {
            std::ostringstream args;
            args << R"({"violated":)" << (ev.arg8 ? "true" : "false")
                 << R"(,"chunks":)" << ev.arg32 << R"(,"lines":)"
                 << ev.arg64 << "}";
            instant(w, ev.core, ev.cycle,
                    ev.arg8 ? "XVALIDATE:violated" : "XVALIDATE:ok", "tm",
                    args.str());
            break;
          }
          case TraceEventKind::Issue:
            if (opts.issueInstants)
                instant(w, ev.core, ev.cycle, "issue", "issue");
            break;
          default:
            break; // StallBegin/ModeBegin/NetPut/NetGet/NetBcast:
                   // covered by their span/summary representations.
        }
    }
    if (region_any)
        complete_slice(w, region_tid, region_since,
                       header.totalCycles > region_since
                           ? header.totalCycles - region_since
                           : 1,
                       region_name(region_open), "region");

    os << "\n]\n}\n";
}

bool
export_chrome_trace_file(const std::string &path, const TraceHeader &header,
                         const std::vector<TraceEvent> &events,
                         const ChromeTraceOptions &opts)
{
    std::ofstream os(path);
    if (!os)
        return false;
    export_chrome_trace(os, header, events, opts);
    return os.good();
}

void
summarize_trace(std::ostream &os, const TraceHeader &header,
                const std::vector<TraceEvent> &events)
{
    os << "trace: " << header.label << "\n"
       << "  cores " << header.numCores << ", " << header.totalCycles
       << " cycles, " << events.size() << " events retained ("
       << header.totalEvents << " emitted, " << header.dropped
       << " dropped)\n"
       << "  stream hash 0x" << std::hex << event_stream_hash(events)
       << std::dec << "\n";

    std::array<u64, static_cast<size_t>(TraceEventKind::NumKinds)>
        by_kind{};
    std::map<CoreId,
             std::array<u64, static_cast<size_t>(StallCat::NumCats)>>
        stall_cycles;
    u64 coupled_cycles = 0;
    for (const TraceEvent &ev : events) {
        by_kind[static_cast<size_t>(ev.kind)]++;
        if (ev.kind == TraceEventKind::StallEnd)
            stall_cycles[ev.core][ev.arg8] += ev.arg64;
        if (ev.kind == TraceEventKind::ModeEnd && ev.core == 0)
            coupled_cycles += ev.arg64;
    }

    os << "  events by kind:";
    for (size_t k = 0; k < by_kind.size(); ++k) {
        if (by_kind[k])
            os << " "
               << trace_event_kind_name(static_cast<TraceEventKind>(k))
               << "=" << by_kind[k];
    }
    os << "\n  coupled cycles (from mode spans): " << coupled_cycles
       << "\n";
    for (const auto &[core, cats] : stall_cycles) {
        os << "  core " << core << " stall cycles:";
        for (size_t c = 0; c < cats.size(); ++c) {
            if (cats[c])
                os << " " << stall_cat_name(static_cast<StallCat>(c))
                   << "=" << cats[c];
        }
        os << "\n";
    }

    // Per-region attribution via the profiler — the same aggregation
    // voltron-prof reports, so the two tools can never disagree.
    os << "  regions:\n" << format_region_table(profile_trace(header, events));
}

// --- JSON validation ------------------------------------------------------

namespace {

struct JsonParser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &what)
    {
        error = "at byte " + std::to_string(pos) + ": " + what;
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos) {
            if (pos >= text.size() || text[pos] != *p)
                return fail(std::string("expected '") + word + "'");
        }
        return true;
    }

    bool
    string()
    {
        if (text[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < text.size() && text[pos] != '"') {
            if (static_cast<unsigned char>(text[pos]) < 0x20)
                return fail("unescaped control character in string");
            if (text[pos] == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("truncated escape");
                const char c = text[pos];
                if (c == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= text.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(text[pos])))
                            return fail("bad \\u escape");
                    }
                } else if (!std::strchr("\"\\/bfnrt", c)) {
                    return fail("bad escape character");
                }
            }
            ++pos;
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos;
        return true;
    }

    bool
    number()
    {
        const size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos == start || (pos == start + 1 && text[start] == '-'))
            return fail("expected number");
        return true;
    }

    bool
    value(u32 depth)
    {
        if (depth > 256)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                skipWs();
                if (pos >= text.size() || !string())
                    return false;
                skipWs();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                if (!value(depth + 1))
                    return false;
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                if (!value(depth + 1))
                    return false;
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }
};

} // namespace

bool
validate_json(const std::string &text, std::string *error)
{
    JsonParser parser{text, 0, {}};
    if (!parser.value(0)) {
        if (error)
            *error = parser.error;
        return false;
    }
    parser.skipWs();
    if (parser.pos != text.size()) {
        if (error)
            *error = "trailing garbage at byte " +
                     std::to_string(parser.pos);
        return false;
    }
    return true;
}

bool
validate_json_file(const std::string &path, std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return validate_json(text, error);
}

} // namespace voltron
