#include "trace/profiler.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "support/error.hh"

namespace voltron {

StallCat
RegionProfile::topStall() const
{
    size_t best = 0;
    for (size_t s = 1; s < kNumCats; ++s)
        if (stalls[s] > stalls[best])
            best = s;
    return stalls[best] == 0 ? StallCat::None : static_cast<StallCat>(best);
}

double
RegionProfile::stallFrac(StallCat cat, u16 num_cores) const
{
    const u64 denom = cycles * num_cores;
    return denom == 0 ? 0.0
                      : static_cast<double>(
                            stalls[static_cast<size_t>(cat)]) /
                            static_cast<double>(denom);
}

double
RegionProfile::occupancy(u16 num_cores) const
{
    const u64 denom = cycles * num_cores;
    return denom == 0 ? 0.0
                      : static_cast<double>(issueCycles) /
                            static_cast<double>(denom);
}

const RegionProfile *
TraceProfile::region(RegionId id) const
{
    auto it = regions.find(id);
    return it == regions.end() ? nullptr : &it->second;
}

double
TraceProfile::occupancy() const
{
    const u64 denom = static_cast<u64>(totalCycles) * numCores;
    if (denom == 0)
        return 0.0;
    u64 issue = 0;
    for (const CoreProfile &core : cores)
        issue += core.issueCycles;
    return static_cast<double>(issue) / static_cast<double>(denom);
}

namespace {
constexpr Cycle kNoCycle = ~static_cast<Cycle>(0);
} // namespace

Profiler::Profiler(u16 num_cores) : numCores_(num_cores)
{
    panic_if_not(num_cores >= 1, "profiler needs at least one core");
    out_.numCores = num_cores;
    out_.cores.resize(num_cores);
    lastIssueCycle_.assign(num_cores, kNoCycle);
    idleSince_.resize(num_cores);
    chain_.resize(num_cores);
    // Workers boot idle and poll for a spawn; the master boots running.
    for (u16 c = 1; c < num_cores; ++c)
        idleSince_[c] = 0;
}

RegionProfile &
Profiler::regionRow(RegionId id)
{
    RegionProfile &row = out_.regions[id];
    row.id = id;
    return row;
}

RegionProfile &
Profiler::regionAt(Cycle cycle)
{
    // Last interval with start <= cycle. The timeline always holds a
    // cycle-0 interval, so the search cannot underflow.
    auto it = std::upper_bound(
        timeline_.begin(), timeline_.end(), cycle,
        [](Cycle c, const Interval &iv) { return c < iv.start; });
    return regionRow(std::prev(it)->region);
}

template <typename Fn>
void
Profiler::attributeSpan(Cycle begin, Cycle end, Fn &&apply)
{
    if (begin >= end)
        return;
    auto it = std::upper_bound(
        timeline_.begin(), timeline_.end(), begin,
        [](Cycle c, const Interval &iv) { return c < iv.start; });
    --it;
    for (; it != timeline_.end() && it->start < end; ++it) {
        const Cycle lo = std::max(begin, it->start);
        const Cycle hi = std::next(it) == timeline_.end()
                             ? end
                             : std::min(end, std::next(it)->start);
        if (lo < hi)
            apply(regionRow(it->region), hi - lo);
    }
}

void
Profiler::closeIdle(CoreId core, Cycle end)
{
    if (!idleSince_[core])
        return;
    const Cycle since = *idleSince_[core];
    idleSince_[core].reset();
    if (end <= since)
        return;
    out_.cores[core].idleCycles += end - since;
    attributeSpan(since, end, [](RegionProfile &row, u64 len) {
        row.idleCycles += len;
    });
}

void
Profiler::add(const TraceEvent &event)
{
    panic_if_not(event.cycle >= curCycle_,
                 "trace stream went backwards: cycle ", event.cycle,
                 " after ", curCycle_);
    if (event.cycle != curCycle_) {
        flushCycle();
        curCycle_ = event.cycle;
    }
    curEvents_.push_back(event);
}

void
Profiler::flushCycle()
{
    // The master emits RegionEnter *after* stepping, so Issue/StallEnd
    // events at the same cycle precede it in the stream yet belong to
    // the region it names. Apply the timeline update first, then
    // attribute the cycle's events against the settled timeline.
    for (const TraceEvent &ev : curEvents_) {
        if (ev.kind != TraceEventKind::RegionEnter)
            continue;
        const RegionId region = ev.arg32;
        if (timeline_.back().start == curCycle_)
            timeline_.back().region = region;
        else
            timeline_.push_back({curCycle_, region});
        if (region != kNoRegion) {
            RegionProfile &row = regionRow(region);
            row.entries++;
            if (ev.arg8 != 0)
                row.mode = ev.arg8;
        }
    }
    for (const TraceEvent &ev : curEvents_)
        processEvent(ev);
    curEvents_.clear();
}

void
Profiler::processEvent(const TraceEvent &ev)
{
    const CoreId c = ev.core;
    panic_if_not(c < numCores_, "trace event from unknown core ", c);
    CoreProfile &core = out_.cores[c];

    switch (ev.kind) {
      case TraceEventKind::Issue:
        core.issuedOps++;
        regionAt(curCycle_).issuedOps++;
        if (lastIssueCycle_[c] != curCycle_) {
            lastIssueCycle_[c] = curCycle_;
            core.issueCycles++;
            regionAt(curCycle_).issueCycles++;
        }
        break;

      case TraceEventKind::StallEnd: {
        // Span covers [cycle + arg16 - len, cycle + arg16) — arg16 marks
        // the end-inclusive close at coupled-group formation.
        const u64 len = ev.arg64;
        const size_t cat = static_cast<size_t>(ev.arg8);
        panic_if_not(cat < RegionProfile::kNumCats,
                     "StallEnd with bad category ", cat);
        if (len != 0) {
            const Cycle end = curCycle_ + (ev.arg16 != 0 ? 1 : 0);
            panic_if_not(len <= end, "stall span longer than the run");
            core.stalls[cat] += len;
            attributeSpan(end - len, end,
                          [cat](RegionProfile &row, u64 piece) {
                              row.stalls[cat] += piece;
                          });
        }
        break;
      }

      case TraceEventKind::SpawnSend:
        out_.spawns++;
        break;

      case TraceEventKind::SpawnWake:
        out_.wakes++;
        closeIdle(c, curCycle_);
        break;

      case TraceEventKind::Sleep:
        out_.sleeps++;
        // The SLEEP op itself issued this cycle; idle starts next.
        idleSince_[c] = curCycle_ + 1;
        break;

      case TraceEventKind::NetSend: {
        out_.messages++;
        out_.hopLatency.record(ev.arg64 - ev.cycle);
        out_.queueDepth.record(ev.arg32);
        regionAt(curCycle_).netSends++;
        // Critical path: the message carries the origin of the longest
        // chain its sender has absorbed so far (or starts a new chain).
        InFlight msg;
        msg.origin = chain_[c].origin.value_or(curCycle_);
        msg.hops = chain_[c].hops + 1;
        inFlight_[{c, static_cast<CoreId>(ev.arg16), ev.arg8 != 0}]
            .push_back(msg);
        break;
      }

      case TraceEventKind::NetRecv: {
        out_.recvWait.record(ev.arg64);
        RegionProfile &row = regionAt(curCycle_);
        row.netRecvs++;
        row.recvWaitCycles += ev.arg64;
        auto it = inFlight_.find({static_cast<CoreId>(ev.arg16), c,
                                  ev.arg8 != 0});
        if (it == inFlight_.end() || it->second.empty())
            break; // lossy stream: the matching send was dropped
        const InFlight msg = it->second.front();
        it->second.pop_front();
        const u64 span = curCycle_ - msg.origin + 1;
        if (span > out_.criticalPathCycles ||
            (span == out_.criticalPathCycles &&
             msg.hops > out_.criticalPathHops)) {
            out_.criticalPathCycles = span;
            out_.criticalPathHops = msg.hops;
        }
        ChainState &chain = chain_[c];
        chain.origin = std::min(chain.origin.value_or(msg.origin),
                                msg.origin);
        chain.hops = std::max(chain.hops, msg.hops);
        break;
      }

      case TraceEventKind::TmBegin:
        out_.tmBegins++;
        break;
      case TraceEventKind::TmCommit:
        out_.tmCommits++;
        break;
      case TraceEventKind::TmAbort:
        out_.tmAborts++;
        break;
      case TraceEventKind::TmResolve: {
        out_.tmResolves++;
        RegionProfile &row = regionAt(curCycle_);
        row.tmResolves++;
        if (ev.arg8 != 0) {
            out_.tmViolations++;
            row.tmViolations++;
        }
        break;
      }

      // Timeline bookkeeping handled in flushCycle; the remaining kinds
      // carry no cycle attribution.
      case TraceEventKind::RegionEnter:
      case TraceEventKind::StallBegin:
      case TraceEventKind::ModeBegin:
      case TraceEventKind::ModeEnd:
      case TraceEventKind::NetPut:
      case TraceEventKind::NetGet:
      case TraceEventKind::NetBcast:
      case TraceEventKind::CacheMiss:
      default:
        break;
    }
}

TraceProfile
Profiler::finish(Cycle total_cycles, u64 total_events, u64 dropped)
{
    flushCycle();
    for (u16 c = 0; c < numCores_; ++c)
        closeIdle(c, total_cycles);

    out_.totalCycles = total_cycles;
    out_.totalEvents = total_events;
    out_.droppedEvents = dropped;
    out_.lossless = dropped == 0;

    // Master-attributed region cycles: the timeline tiles
    // [0, totalCycles) by construction.
    for (size_t i = 0; i < timeline_.size(); ++i) {
        const Cycle start = timeline_[i].start;
        const Cycle end = i + 1 < timeline_.size() ? timeline_[i + 1].start
                                                   : total_cycles;
        if (end > start) {
            RegionProfile &row = regionRow(timeline_[i].region);
            if (row.cycles == 0 || start < row.firstCycle)
                row.firstCycle = start;
            if (end > row.lastCycle)
                row.lastCycle = end;
            row.cycles += end - start;
        }
    }

    // Close the books: the uncharged remainder of every bucket set is
    // slack, and on a lossless stream it must be non-negative — a core
    // cannot be attributed more cycles than the machine ran. This is the
    // profiler's hard invariant; tripping it means the machine's event
    // emission and its counters disagree.
    for (u16 c = 0; c < numCores_; ++c) {
        CoreProfile &core = out_.cores[c];
        const u64 attributed =
            core.issueCycles + core.stallSum() + core.idleCycles;
        if (out_.lossless)
            panic_if_not(attributed <= total_cycles,
                         "profiler invariant violated: core ", c,
                         " has ", attributed,
                         " attributed cycles in a ", total_cycles,
                         "-cycle run");
        core.slackCycles =
            attributed <= total_cycles ? total_cycles - attributed : 0;
    }
    for (auto &[id, row] : out_.regions) {
        const u64 capacity = row.cycles * numCores_;
        const u64 attributed =
            row.issueCycles + row.stallSum() + row.idleCycles;
        if (out_.lossless)
            panic_if_not(attributed <= capacity,
                         "profiler invariant violated: region ", id,
                         " has ", attributed, " attributed core-cycles in ",
                         capacity, " of capacity");
        row.slackCycles = attributed <= capacity ? capacity - attributed : 0;
    }
    return out_;
}

TraceProfile
profile_trace(const TraceHeader &header,
              const std::vector<TraceEvent> &events)
{
    Profiler prof(header.numCores);
    for (const TraceEvent &ev : events)
        prof.add(ev);
    return prof.finish(header.totalCycles, header.totalEvents,
                       header.dropped);
}

bool
profile_trace_file(const std::string &path, TraceProfile &out)
{
    TraceHeader header;
    std::vector<TraceEvent> events;
    if (!read_trace(path, header, events))
        return false;
    out = profile_trace(header, events);
    return true;
}

std::string
format_region_table(const TraceProfile &profile)
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "%8s %-8s %7s %12s %6s %6s %s\n",
                  "region", "mode", "entries", "cycles", "%run", "occ%",
                  "top stall");
    out += line;

    // Hottest first; the glue bucket (kNoRegion) sorts by cycles like
    // any other row but renders as "-".
    std::vector<const RegionProfile *> rows;
    for (const auto &[id, row] : profile.regions)
        rows.push_back(&row);
    std::sort(rows.begin(), rows.end(),
              [](const RegionProfile *a, const RegionProfile *b) {
                  return a->cycles != b->cycles ? a->cycles > b->cycles
                                                : a->id < b->id;
              });

    for (const RegionProfile *row : rows) {
        char id_buf[16];
        if (row->id == kNoRegion)
            std::snprintf(id_buf, sizeof(id_buf), "-");
        else
            std::snprintf(id_buf, sizeof(id_buf), "%u", row->id);
        const double pct_run =
            profile.totalCycles == 0
                ? 0.0
                : 100.0 * static_cast<double>(row->cycles) /
                      static_cast<double>(profile.totalCycles);
        const StallCat top = row->topStall();
        char stall_buf[48];
        if (top == StallCat::None)
            std::snprintf(stall_buf, sizeof(stall_buf), "-");
        else
            std::snprintf(stall_buf, sizeof(stall_buf), "%s %.1f%%",
                          stall_cat_name(top),
                          100.0 * row->stallFrac(top, profile.numCores));
        std::snprintf(line, sizeof(line),
                      "%8s %-8s %7" PRIu64 " %12" PRIu64
                      " %5.1f%% %5.1f%% %s\n",
                      id_buf,
                      row->id == kNoRegion ? "-"
                                           : region_mode_name(row->mode),
                      row->entries, row->cycles, pct_run,
                      100.0 * row->occupancy(profile.numCores), stall_buf);
        out += line;
    }
    return out;
}

} // namespace voltron
