#include "trace/metrics.hh"

#include <algorithm>
#include <fstream>

#include "support/error.hh"

namespace voltron {

u64
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the requested sample, 1-based; walk the buckets until the
    // cumulative count reaches it.
    const double rank = q * static_cast<double>(count_ - 1) + 1.0;
    u64 below = 0;
    for (size_t b = 0; b < buckets_.size(); ++b) {
        if (buckets_[b] == 0)
            continue;
        if (static_cast<double>(below + buckets_[b]) < rank) {
            below += buckets_[b];
            continue;
        }
        // Interpolate inside [lo, hi), the value range of bucket b.
        const u64 lo = b == 0 ? 0 : u64{1} << (b - 1);
        const u64 hi = b == 0 ? 1 : u64{1} << b;
        const double into =
            (rank - static_cast<double>(below)) /
            static_cast<double>(buckets_[b]);
        const u64 est =
            lo + static_cast<u64>(static_cast<double>(hi - lo - 1) * into);
        return std::clamp(est, min_, max_);
    }
    return max_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (size_t b = 0; b < buckets_.size(); ++b)
        buckets_[b] += other.buckets_[b];
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
}

void
MetricsRegistry::addHistogram(const std::string &name,
                              const Histogram &hist)
{
    const std::pair<const char *, u64> derived[] = {
        {".count", hist.count()},
        {".sum", hist.sum()},
        {".min", hist.min()},
        {".max", hist.max()},
        {".mean", static_cast<u64>(hist.mean() + 0.5)},
        {".p50", hist.p50()},
        {".p95", hist.p95()},
        {".p99", hist.p99()},
    };
    for (const auto &[suffix, value] : derived) {
        const std::string key = name + suffix;
        panic_if_not(counters_.count(key) == 0,
                     "duplicate metric name '", key,
                     "' — histogram registered twice or colliding with "
                     "a scalar counter");
        counters_[key] = value;
    }
}

namespace {

/** Counter names are ASCII identifiers with dots, but escape anyway so
 * a future name can never produce invalid JSON. */
void
write_json_string(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\n";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  ";
        write_json_string(os, name);
        os << ": " << value;
    }
    os << "\n}\n";
}

bool
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeJson(os);
    return os.good();
}

} // namespace voltron
