#include "trace/metrics.hh"

#include <fstream>

namespace voltron {

namespace {

/** Counter names are ASCII identifiers with dots, but escape anyway so
 * a future name can never produce invalid JSON. */
void
write_json_string(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\n";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  ";
        write_json_string(os, name);
        os << ": " << value;
    }
    os << "\n}\n";
}

bool
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeJson(os);
    return os.good();
}

} // namespace voltron
