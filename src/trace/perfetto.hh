/**
 * @file
 * Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing)
 * plus a textual trace summary and a minimal JSON syntax validator.
 *
 * Mapping from the Voltron event stream to the trace-event format:
 *
 *  - one process (pid 0, named after the trace label); one thread per
 *    core (tid = core id, "core N") plus one extra track
 *    (tid = numCores, "regions") carrying the master's region timeline;
 *  - StallEnd events become complete ("X") slices of category "stall"
 *    covering [cycle - length, cycle) — the end event carries its span
 *    length, so no begin/end pairing is needed on export;
 *  - ModeEnd events become "X" slices of category "mode" ("coupled");
 *  - RegionEnter events close the previous region slice on the regions
 *    track (the final slice closes at totalCycles);
 *  - matched NetSend/NetRecv pairs (FIFO per sender/receiver/class, the
 *    network's own delivery order) become 1-cycle "X" slices on both
 *    tracks joined by a flow arrow ("s"/"f" with a shared id);
 *  - SpawnSend/SpawnWake/Sleep/Tm* and CacheMiss become instant ("i")
 *    events; per-op Issue events are summarized into the slice-free
 *    tracks only when opts.issueInstants is set (they dominate event
 *    counts).
 *
 * Timestamps are cycles written as integer microseconds (1 cycle = 1 us
 * of trace time); Perfetto's units are cosmetic for a simulator.
 */

#ifndef VOLTRON_TRACE_PERFETTO_HH_
#define VOLTRON_TRACE_PERFETTO_HH_

#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace voltron {

struct ChromeTraceOptions
{
    /** Emit one instant event per Issue (large; off by default). */
    bool issueInstants = false;
};

/** Write @p events as Chrome trace-event JSON. */
void export_chrome_trace(std::ostream &os, const TraceHeader &header,
                         const std::vector<TraceEvent> &events,
                         const ChromeTraceOptions &opts = {});

/** export_chrome_trace to @p path; false on I/O failure. */
bool export_chrome_trace_file(const std::string &path,
                              const TraceHeader &header,
                              const std::vector<TraceEvent> &events,
                              const ChromeTraceOptions &opts = {});

/** Human-readable digest: event counts by kind, per-core stall time by
 * category, coupled time, network traffic, and the stream hash. */
void summarize_trace(std::ostream &os, const TraceHeader &header,
                     const std::vector<TraceEvent> &events);

/**
 * Minimal strict JSON syntax check (objects, arrays, strings, numbers,
 * true/false/null; no trailing garbage). Exists so CI can validate
 * exported traces without a system JSON tool. On failure @p error (if
 * non-null) receives a byte offset + description.
 */
bool validate_json(const std::string &text, std::string *error = nullptr);

/** validate_json over a file's contents; false on I/O failure too. */
bool validate_json_file(const std::string &path,
                        std::string *error = nullptr);

} // namespace voltron

#endif // VOLTRON_TRACE_PERFETTO_HH_
