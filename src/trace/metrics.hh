/**
 * @file
 * MetricsRegistry — one named-counter namespace for a whole run — and
 * Histogram, the fixed log-bucket distribution accumulator behind the
 * namespace's quantile counters.
 *
 * The machine's counters historically lived in four places: the three
 * component StatSets (memStats/netStats/tmStats) and the MachineResult
 * stall/issue/idle arrays. The registry folds all of them behind dotted
 * names under a single map, so harnesses, tools, and CI consume one
 * JSON document instead of stitching four sources:
 *
 *   sim.cycles, sim.dynamicOps, sim.coupledCycles, sim.decoupledCycles
 *   sim.core<N>.issued / .idleCycles / .stall.<cat>
 *   sim.region<R>.cycles
 *   mem.core<N>.l1d.misses ... (every MemHierarchy counter)
 *   net.messages, net.receives ... (every OperandNetwork counter)
 *   net.hopLatency.p50 / .p95 / .p99 ... (registered histograms)
 *   tm.begins, tm.commits ...     (every TransactionalMemory counter)
 *
 * The sim.* names come from collect_metrics (sim/machine.hh), which is
 * the single authority for the unified namespace.
 */

#ifndef VOLTRON_TRACE_METRICS_HH_
#define VOLTRON_TRACE_METRICS_HH_

#include <array>
#include <bit>
#include <map>
#include <ostream>
#include <string>

#include "support/stats.hh"
#include "support/types.hh"

namespace voltron {

/**
 * Fixed log-bucket distribution accumulator.
 *
 * Bucket i holds values whose bit width is i (bucket 0: the value 0,
 * bucket i >= 1: values in [2^(i-1), 2^i)), so recording is one
 * bit_width and one increment — cheap enough for per-message hot paths
 * — and the memory footprint is constant (65 u64 buckets) no matter
 * how many samples arrive. Quantiles are estimated by linear
 * interpolation inside the bucket the requested rank lands in; the
 * exact min/max are tracked separately so the tails never report a
 * value outside the observed range.
 */
class Histogram
{
  public:
    static constexpr size_t kBuckets = 65;

    void
    record(u64 value)
    {
        buckets_[bucketOf(value)]++;
        count_++;
        sum_ += value;
        min_ = count_ == 1 ? value : std::min(min_, value);
        max_ = count_ == 1 ? value : std::max(max_, value);
    }

    u64 count() const { return count_; }
    u64 sum() const { return sum_; }
    u64 min() const { return count_ ? min_ : 0; }
    u64 max() const { return count_ ? max_ : 0; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Estimated value at quantile @p q in [0, 1] (0 when empty). */
    u64 quantile(double q) const;

    u64 p50() const { return quantile(0.50); }
    u64 p95() const { return quantile(0.95); }
    u64 p99() const { return quantile(0.99); }

    /** Sum another histogram into this one (bench aggregation). */
    void merge(const Histogram &other);

    const std::array<u64, kBuckets> &buckets() const { return buckets_; }

    static size_t
    bucketOf(u64 value)
    {
        return static_cast<size_t>(std::bit_width(value));
    }

  private:
    std::array<u64, kBuckets> buckets_{};
    u64 count_ = 0;
    u64 sum_ = 0;
    u64 min_ = 0;
    u64 max_ = 0;
};

/** A named scalar-counter namespace, JSON-serializable. */
class MetricsRegistry
{
  public:
    void add(const std::string &name, u64 delta) { counters_[name] += delta; }
    void set(const std::string &name, u64 value) { counters_[name] = value; }

    u64
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    bool has(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    /** Fold a component StatSet in under @p prefix (summing). */
    void
    addStatSet(const std::string &prefix, const StatSet &stats)
    {
        for (const auto &[name, value] : stats.counters())
            counters_[prefix + name] += value;
    }

    /**
     * Register @p hist's summary counters under @p name (".count",
     * ".sum", ".min", ".max", ".mean", ".p50", ".p95", ".p99").
     * Histogram names are claims on a namespace subtree, not additive
     * counters, so colliding with any existing dotted name panics —
     * two components silently folding distributions into the same
     * slot would corrupt both.
     */
    void addHistogram(const std::string &name, const Histogram &hist);

    /** Sum another registry into this one (bench aggregation). */
    void
    merge(const MetricsRegistry &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
    }

    size_t size() const { return counters_.size(); }
    const std::map<std::string, u64> &counters() const { return counters_; }

    /** One flat JSON object, keys sorted (std::map order). */
    void writeJson(std::ostream &os) const;

    /** writeJson to @p path; false on I/O failure. */
    bool writeJsonFile(const std::string &path) const;

  private:
    std::map<std::string, u64> counters_;
};

} // namespace voltron

#endif // VOLTRON_TRACE_METRICS_HH_
