/**
 * @file
 * MetricsRegistry — one named-counter namespace for a whole run.
 *
 * The machine's counters historically lived in four places: the three
 * component StatSets (memStats/netStats/tmStats) and the MachineResult
 * stall/issue/idle arrays. The registry folds all of them behind dotted
 * names under a single map, so harnesses, tools, and CI consume one
 * JSON document instead of stitching four sources:
 *
 *   sim.cycles, sim.dynamicOps, sim.coupledCycles, sim.decoupledCycles
 *   sim.core<N>.issued / .idleCycles / .stall.<cat>
 *   sim.region<R>.cycles
 *   mem.core<N>.l1d.misses ... (every MemHierarchy counter)
 *   net.messages, net.receives ... (every OperandNetwork counter)
 *   tm.begins, tm.commits ...     (every TransactionalMemory counter)
 *
 * The sim.* names come from collect_metrics (sim/machine.hh), which is
 * the single authority for the unified namespace.
 */

#ifndef VOLTRON_TRACE_METRICS_HH_
#define VOLTRON_TRACE_METRICS_HH_

#include <map>
#include <ostream>
#include <string>

#include "support/stats.hh"
#include "support/types.hh"

namespace voltron {

/** A named scalar-counter namespace, JSON-serializable. */
class MetricsRegistry
{
  public:
    void add(const std::string &name, u64 delta) { counters_[name] += delta; }
    void set(const std::string &name, u64 value) { counters_[name] = value; }

    u64
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    bool has(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    /** Fold a component StatSet in under @p prefix (summing). */
    void
    addStatSet(const std::string &prefix, const StatSet &stats)
    {
        for (const auto &[name, value] : stats.counters())
            counters_[prefix + name] += value;
    }

    /** Sum another registry into this one (bench aggregation). */
    void
    merge(const MetricsRegistry &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
    }

    size_t size() const { return counters_.size(); }
    const std::map<std::string, u64> &counters() const { return counters_; }

    /** One flat JSON object, keys sorted (std::map order). */
    void writeJson(std::ostream &os) const;

    /** writeJson to @p path; false on I/O failure. */
    bool writeJsonFile(const std::string &path) const;

  private:
    std::map<std::string, u64> counters_;
};

} // namespace voltron

#endif // VOLTRON_TRACE_METRICS_HH_
