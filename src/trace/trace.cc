#include "trace/trace.hh"

#include <fstream>

#include "support/serialize.hh"

namespace voltron {

const char *
stall_cat_name(StallCat cat)
{
    switch (cat) {
      case StallCat::None: return "none";
      case StallCat::IFetch: return "ifetch";
      case StallCat::DCache: return "dcache";
      case StallCat::Latency: return "latency";
      case StallCat::RecvData: return "recvData";
      case StallCat::RecvPred: return "recvPred";
      case StallCat::JoinSync: return "joinSync";
      case StallCat::MemSync: return "memSync";
      case StallCat::SendFull: return "sendFull";
      case StallCat::Barrier: return "barrier";
      case StallCat::TmResolve: return "tmResolve";
      default: return "?";
    }
}

const char *
region_mode_name(u8 mode_plus_one)
{
    // Mirrors ExecMode (sim/machineprog.hh) shifted by one; 0 means the
    // trace predates the mode byte or the region id was out of range.
    switch (mode_plus_one) {
      case 0: return "?";
      case 1: return "serial";
      case 2: return "coupled";
      case 3: return "strands";
      case 4: return "dswp";
      case 5: return "doall";
      default: return "?";
    }
}

StallCat
stall_cat_from_name(const std::string &name)
{
    for (size_t i = 0; i < static_cast<size_t>(StallCat::NumCats); ++i) {
        const StallCat cat = static_cast<StallCat>(i);
        if (name == stall_cat_name(cat))
            return cat;
    }
    return StallCat::NumCats;
}

const char *
trace_event_kind_name(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::Issue: return "issue";
      case TraceEventKind::StallBegin: return "stallBegin";
      case TraceEventKind::StallEnd: return "stallEnd";
      case TraceEventKind::ModeBegin: return "modeBegin";
      case TraceEventKind::ModeEnd: return "modeEnd";
      case TraceEventKind::RegionEnter: return "regionEnter";
      case TraceEventKind::SpawnSend: return "spawnSend";
      case TraceEventKind::SpawnWake: return "spawnWake";
      case TraceEventKind::Sleep: return "sleep";
      case TraceEventKind::NetSend: return "netSend";
      case TraceEventKind::NetRecv: return "netRecv";
      case TraceEventKind::NetPut: return "netPut";
      case TraceEventKind::NetGet: return "netGet";
      case TraceEventKind::NetBcast: return "netBcast";
      case TraceEventKind::CacheMiss: return "cacheMiss";
      case TraceEventKind::TmBegin: return "tmBegin";
      case TraceEventKind::TmCommit: return "tmCommit";
      case TraceEventKind::TmAbort: return "tmAbort";
      case TraceEventKind::TmResolve: return "tmResolve";
      default: return "?";
    }
}

TraceEventKind
trace_event_kind_from_name(const std::string &name)
{
    for (size_t i = 0; i < static_cast<size_t>(TraceEventKind::NumKinds);
         ++i) {
        const TraceEventKind kind = static_cast<TraceEventKind>(i);
        if (name == trace_event_kind_name(kind))
            return kind;
    }
    return TraceEventKind::NumKinds;
}

RingBufferTraceSink::RingBufferTraceSink(size_t capacity)
{
    size_t cap = 16;
    while (cap < capacity)
        cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
}

std::vector<TraceEvent>
RingBufferTraceSink::events() const
{
    std::vector<TraceEvent> out;
    const size_t kept =
        writeIdx_ < slots_.size() ? static_cast<size_t>(writeIdx_)
                                  : slots_.size();
    out.reserve(kept);
    const u64 first = writeIdx_ - kept;
    for (u64 i = first; i < writeIdx_; ++i)
        out.push_back(slots_[i & mask_]);
    return out;
}

namespace {

void
encode_event(ByteWriter &w, const TraceEvent &ev)
{
    w.u64v(ev.cycle);
    w.u64v(ev.arg64);
    w.u32v(ev.arg32);
    w.u16v(ev.core);
    w.u16v(ev.arg16);
    w.u8v(static_cast<u8>(ev.kind));
    w.u8v(ev.arg8);
}

bool
decode_event(ByteReader &r, TraceEvent &ev)
{
    ev.cycle = r.u64v();
    ev.arg64 = r.u64v();
    ev.arg32 = r.u32v();
    ev.core = r.u16v();
    ev.arg16 = r.u16v();
    const u8 kind = r.u8v();
    ev.arg8 = r.u8v();
    if (kind >= static_cast<u8>(TraceEventKind::NumKinds))
        return false;
    ev.kind = static_cast<TraceEventKind>(kind);
    return r.ok();
}

constexpr u64 kEventEncodedBytes = 8 + 8 + 4 + 2 + 2 + 1 + 1;

} // namespace

u64
event_stream_hash(const std::vector<TraceEvent> &events)
{
    ByteWriter w;
    for (const TraceEvent &ev : events)
        encode_event(w, ev);
    return fnv1a(w.bytes());
}

bool
write_trace(const std::string &path, const TraceHeader &header,
            const std::vector<TraceEvent> &events)
{
    ByteWriter w;
    w.u32v(kTraceMagic);
    w.u32v(kTraceFormatVersion);
    w.u16v(header.numCores);
    w.u64v(header.totalCycles);
    w.u64v(header.totalEvents);
    w.u64v(header.dropped);
    w.str(header.label);
    w.u64v(events.size());
    for (const TraceEvent &ev : events)
        encode_event(w, ev);

    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    os.write(reinterpret_cast<const char *>(w.bytes().data()),
             static_cast<std::streamsize>(w.size()));
    return os.good();
}

bool
read_trace(const std::string &path, TraceHeader &header,
           std::vector<TraceEvent> &events)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::vector<u8> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
    ByteReader r(bytes);
    if (r.u32v() != kTraceMagic || r.u32v() != kTraceFormatVersion)
        return false;
    header.numCores = r.u16v();
    header.totalCycles = r.u64v();
    header.totalEvents = r.u64v();
    header.dropped = r.u64v();
    header.label = r.str();
    const u64 n = r.count(kEventEncodedBytes);
    events.clear();
    events.reserve(n);
    for (u64 i = 0; i < n; ++i) {
        TraceEvent ev;
        if (!decode_event(r, ev))
            return false;
        events.push_back(ev);
    }
    return r.ok() && r.atEnd();
}

} // namespace voltron
