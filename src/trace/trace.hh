/**
 * @file
 * Cycle-accurate event tracing for the Voltron machine.
 *
 * Every timing-relevant component (Machine, OperandNetwork, MemHierarchy,
 * TransactionalMemory) emits typed TraceEvents into a TraceSink when one
 * is configured (MachineConfig::traceSink). Tracing is strictly
 * observational: no component reads sink state, so a traced run produces
 * a bit-identical MachineResult to an untraced one (tests/test_trace.cc
 * asserts it). With the sink pointer null — the default — every emission
 * site reduces to one predicted-not-taken branch on a cached member.
 *
 * Events are emitted on *state changes and actions only*, never
 * per-cycle: a stall opens one StallBegin when the category is first
 * charged and one StallEnd when the core next issues (or the category
 * changes). This is what makes the stream identical under the
 * event-driven fast-forward and naive per-cycle stepping — the
 * fast-forward skips exactly the cycles in which no tracked state
 * changes (tests/test_trace.cc hashes both streams).
 *
 * Event field usage by kind (unused fields are zero):
 *
 *   Issue       core issued an op; arg8=Opcode
 *   StallBegin  arg8=StallCat
 *   StallEnd    arg8=StallCat, arg64=span length in cycles; arg16=1
 *               when the span includes the event cycle itself (close at
 *               coupled-group formation, which charged its own cycle) —
 *               the span covers [cycle+arg16-arg64, cycle+arg16)
 *   ModeBegin   coupled-lockstep entry; one event per core; arg8=mode
 *   ModeEnd     coupled-lockstep exit; arg8=mode, arg64=span length
 *   RegionEnter master's attributed region changed; arg32=RegionId
 *               (kNoRegion when leaving attributed code); arg8=the
 *               region's ExecMode + 1 (0 = unknown), so tools can name
 *               modes without the compiled program (region_mode_name)
 *   SpawnSend   core issued SPAWN; arg16=target core
 *   SpawnWake   idle core woke on a spawn; arg64=raw CodeRef value
 *   Sleep       core issued SLEEP and went idle
 *   NetSend     queue-mode enqueue; core=sender, arg16=receiver,
 *               arg8=isSpawn, arg32=receiver queue depth after enqueue,
 *               arg64=arrival cycle (hop latency = arrival - cycle)
 *   NetRecv     queue-mode dequeue; core=receiver, arg16=sender,
 *               arg8=isSpawn, arg32=queue depth after dequeue,
 *               arg64=cycles the message waited buffered
 *   NetPut      direct-mode link drive; arg8=Dir
 *   NetGet      direct-mode link read; arg8=Dir, arg16=1 for broadcast
 *   NetBcast    branch-condition broadcast
 *   CacheMiss   L1 miss; arg8=miss level (kMissL2Hit/kMissMemory/
 *               kMissCacheToCache), arg16=bit0 write | bit1 ifetch,
 *               arg32=added latency, arg64=address
 *   TmBegin     XBEGIN; arg64=chunk ordinal
 *   TmCommit    XCOMMIT (close; the commit happens at resolve)
 *   TmAbort     software abort
 *   TmResolve   XVALIDATE resolution (master core); arg8=violated,
 *               arg32=chunks resolved, arg64=lines committed
 */

#ifndef VOLTRON_TRACE_TRACE_HH_
#define VOLTRON_TRACE_TRACE_HH_

#include <string>
#include <vector>

#include "support/types.hh"

namespace voltron {

/**
 * Why a core did not issue in a given cycle. Defined here (not in
 * sim/machine.hh) so the trace layer can name stall spans without
 * depending on the simulator; the simulator re-exports it.
 */
enum class StallCat : u8 {
    None = 0,
    IFetch,    //!< instruction-cache miss
    DCache,    //!< data-cache miss (blocking)
    Latency,   //!< in-order scoreboard interlock
    RecvData,  //!< RECV waiting on a data value
    RecvPred,  //!< RECV waiting on a branch predicate
    JoinSync,  //!< RECV waiting on a worker-done token (call/return sync)
    MemSync,   //!< RECV waiting on a memory-dependence token
    SendFull,  //!< SEND back-pressure
    Barrier,   //!< waiting at a coupled-mode entry barrier
    TmResolve, //!< transaction validation/commit
    NumCats,
};

const char *stall_cat_name(StallCat cat);

/** Inverse of stall_cat_name; NumCats for an unknown name. */
StallCat stall_cat_from_name(const std::string &name);

/** What a TraceEvent records. See the file comment for field usage. */
enum class TraceEventKind : u8 {
    Issue = 0,
    StallBegin,
    StallEnd,
    ModeBegin,
    ModeEnd,
    RegionEnter,
    SpawnSend,
    SpawnWake,
    Sleep,
    NetSend,
    NetRecv,
    NetPut,
    NetGet,
    NetBcast,
    CacheMiss,
    TmBegin,
    TmCommit,
    TmAbort,
    TmResolve,
    NumKinds,
};

const char *trace_event_kind_name(TraceEventKind kind);

/** Inverse of trace_event_kind_name; NumKinds for an unknown name. */
TraceEventKind trace_event_kind_from_name(const std::string &name);

/** Execution-mode values carried in Mode* events' arg8. */
inline constexpr u8 kTraceModeCoupled = 0;
inline constexpr u8 kTraceModeDecoupled = 1;

/**
 * Name the ExecMode+1 byte carried in RegionEnter's arg8. Lives here
 * (not sim/machineprog.hh) so trace-only tools can label regions from
 * the stream alone; tests assert it agrees with exec_mode_name.
 */
const char *region_mode_name(u8 mode_plus_one);

/** CacheMiss levels carried in arg8. */
inline constexpr u8 kMissL2Hit = 1;        //!< L1 miss served by the L2
inline constexpr u8 kMissMemory = 2;       //!< L1+L2 miss, main memory
inline constexpr u8 kMissCacheToCache = 3; //!< supplied by a peer L1

/** One trace record. Plain data, 32 bytes, trivially copyable. */
struct TraceEvent
{
    Cycle cycle = 0;
    u64 arg64 = 0;
    u32 arg32 = 0;
    CoreId core = 0;
    u16 arg16 = 0;
    TraceEventKind kind = TraceEventKind::Issue;
    u8 arg8 = 0;

    bool
    operator==(const TraceEvent &o) const
    {
        return cycle == o.cycle && arg64 == o.arg64 && arg32 == o.arg32 &&
               core == o.core && arg16 == o.arg16 && kind == o.kind &&
               arg8 == o.arg8;
    }
};

/** Where emitted events go. Implementations must not throw from emit. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const TraceEvent &event) = 0;
};

/**
 * Discards everything. Functionally identical to passing no sink at
 * all (traceSink == nullptr, which skips even the virtual call); this
 * exists so overhead can be measured with the call in place.
 */
class NullTraceSink final : public TraceSink
{
  public:
    void emit(const TraceEvent &) override {}
};

/**
 * Bounded single-producer ring buffer. The simulator is single-threaded,
 * so "lock-free-ish" here means: no locks, no allocation after
 * construction, a monotone write cursor into a power-of-two slot array.
 * When full it overwrites the oldest slot and counts the drop — a trace
 * always holds the *last* capacity() events, which is what post-mortem
 * debugging wants.
 */
class RingBufferTraceSink final : public TraceSink
{
  public:
    /** @p capacity is rounded up to a power of two (min 16). */
    explicit RingBufferTraceSink(size_t capacity = size_t{1} << 20);

    void
    emit(const TraceEvent &event) override
    {
        slots_[writeIdx_ & mask_] = event;
        ++writeIdx_;
    }

    size_t capacity() const { return slots_.size(); }

    /** Events ever offered (kept + dropped). */
    u64 total() const { return writeIdx_; }

    /** Events overwritten because the ring was full. */
    u64
    dropped() const
    {
        return writeIdx_ > slots_.size() ? writeIdx_ - slots_.size() : 0;
    }

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    void clear() { writeIdx_ = 0; }

  private:
    std::vector<TraceEvent> slots_;
    size_t mask_ = 0;
    u64 writeIdx_ = 0;
};

/**
 * Order-sensitive FNV-1a hash over the canonical encoding of every
 * event. Two runs of the same program under the same config must
 * produce the same hash (trace determinism; tests/test_trace.cc).
 */
u64 event_stream_hash(const std::vector<TraceEvent> &events);

// --- .vtrace files --------------------------------------------------------

inline constexpr u32 kTraceMagic = 0x31525456; // "VTR1", little-endian
inline constexpr u32 kTraceFormatVersion = 1;

/** Run metadata stored with a recorded event stream. */
struct TraceHeader
{
    u16 numCores = 0;
    Cycle totalCycles = 0;
    u64 totalEvents = 0; //!< offered to the sink, including dropped
    u64 dropped = 0;     //!< overwritten in the ring before the dump
    std::string label;   //!< benchmark/point description
};

/** Write header + events to @p path; false on I/O failure. */
bool write_trace(const std::string &path, const TraceHeader &header,
                 const std::vector<TraceEvent> &events);

/** Read a .vtrace file; false on I/O failure, bad magic/version, or a
 * corrupt payload. */
bool read_trace(const std::string &path, TraceHeader &header,
                std::vector<TraceEvent> &events);

} // namespace voltron

#endif // VOLTRON_TRACE_TRACE_HH_
