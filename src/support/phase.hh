/**
 * @file
 * Request-phase attribution hooks.
 *
 * A request travelling through voltron-served crosses layers that know
 * nothing about each other: the connection loop parses and classifies,
 * the executor queues, and deep inside VoltronSystem the artifact cache
 * is probed, the golden interpreter runs, the compiler compiles, and
 * the machine simulates. To attribute a request's wall time to those
 * stages without threading a timer object through every signature, the
 * server installs a PhaseProbe on the thread that executes the request;
 * the lower layers call phase_mark() at each stage transition and the
 * probe timestamps it. With no probe installed (every non-server
 * harness, and the simulator's own worker threads) a mark is one
 * thread-local load and a branch — nothing.
 *
 * Marks are *transitions*, not bracketed begin/end pairs: each mark
 * closes the span opened by the previous one. A recorder built on this
 * contract produces spans that tile the observed window with no gaps
 * and no overlaps by construction (server/timeline.hh).
 */

#ifndef VOLTRON_SUPPORT_PHASE_HH_
#define VOLTRON_SUPPORT_PHASE_HH_

#include "support/types.hh"

namespace voltron {

/** The phases a server request's lifetime divides into. */
enum class Phase : u8 {
    Accept = 0, //!< taking the request line off the wire
    Parse,      //!< JSON parse + building the program from its source
    Classify,   //!< dedup lookup: cached / follower / cold
    QueueWait,  //!< leader waiting for an executor slot, follower
                //!< sleeping on its leader's condvar
    CacheProbe, //!< artifact-cache lookups (golden/machine/baseline)
    GoldenRun,  //!< cold golden interpreter pass
    Compile,    //!< cold compile
    Simulate,   //!< the cycle-level machine run (incl. verification)
    Serialize,  //!< rendering the response body / writing .vtrace
    Reply,      //!< sending the response line back
    NumPhases,
};

inline constexpr size_t kNumPhases =
    static_cast<size_t>(Phase::NumPhases);

inline const char *
phase_name(Phase p)
{
    switch (p) {
      case Phase::Accept: return "accept";
      case Phase::Parse: return "parse";
      case Phase::Classify: return "classify";
      case Phase::QueueWait: return "queueWait";
      case Phase::CacheProbe: return "cacheProbe";
      case Phase::GoldenRun: return "goldenRun";
      case Phase::Compile: return "compile";
      case Phase::Simulate: return "simulate";
      case Phase::Serialize: return "serialize";
      case Phase::Reply: return "reply";
      default: return "unknown";
    }
}

/** Receiver of phase transitions for the current thread's request. */
class PhaseProbe
{
  public:
    virtual ~PhaseProbe() = default;
    /** The request just entered @p phase (closing the previous one). */
    virtual void mark(Phase phase) = 0;
};

namespace detail {
inline thread_local PhaseProbe *t_phase_probe = nullptr;
} // namespace detail

/** Install @p probe for this thread; returns the previous one so
 * nested scopes can restore it. */
inline PhaseProbe *
set_phase_probe(PhaseProbe *probe)
{
    PhaseProbe *prev = detail::t_phase_probe;
    detail::t_phase_probe = probe;
    return prev;
}

inline PhaseProbe *
phase_probe()
{
    return detail::t_phase_probe;
}

/** Mark a phase transition on whatever probe the thread carries. */
inline void
phase_mark(Phase phase)
{
    if (PhaseProbe *probe = detail::t_phase_probe)
        probe->mark(phase);
}

/** RAII: install a probe for a scope, restore the previous on exit. */
class ScopedPhaseProbe
{
  public:
    explicit ScopedPhaseProbe(PhaseProbe *probe)
        : prev_(set_phase_probe(probe))
    {
    }
    ~ScopedPhaseProbe() { set_phase_probe(prev_); }

    ScopedPhaseProbe(const ScopedPhaseProbe &) = delete;
    ScopedPhaseProbe &operator=(const ScopedPhaseProbe &) = delete;

  private:
    PhaseProbe *prev_;
};

} // namespace voltron

#endif // VOLTRON_SUPPORT_PHASE_HH_
