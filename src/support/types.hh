/**
 * @file
 * Fundamental integer typedefs and small identifiers used across Voltron.
 */

#ifndef VOLTRON_SUPPORT_TYPES_HH_
#define VOLTRON_SUPPORT_TYPES_HH_

#include <cstdint>
#include <limits>

namespace voltron {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulated memory address (byte granular). */
using Addr = u64;

/** Simulation time in core clock cycles. */
using Cycle = u64;

/** Index of a core in the multicore mesh (row-major). */
using CoreId = u16;

/** Sentinel for "no core". */
inline constexpr CoreId kNoCore = std::numeric_limits<CoreId>::max();

/** Index of a basic block within its function. */
using BlockId = u32;

/** Sentinel for "no block". */
inline constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();

/** Index of a function within its program. */
using FuncId = u32;

/** Sentinel for "no function". */
inline constexpr FuncId kNoFunc = std::numeric_limits<FuncId>::max();

/** Identifier of a compiler region (loop or acyclic region). */
using RegionId = u32;

/** Sentinel for "no region". */
inline constexpr RegionId kNoRegion = std::numeric_limits<RegionId>::max();

/** Largest core count any mesh may carry. */
inline constexpr u16 kMaxCores = 64;

/** A 2-D mesh geometry (cores are numbered row-major). */
struct MeshShape
{
    u16 rows = 1;
    u16 cols = 1;

    u16 cores() const { return static_cast<u16>(rows * cols); }
    bool operator==(const MeshShape &o) const
    {
        return rows == o.rows && cols == o.cols;
    }
    bool operator!=(const MeshShape &o) const { return !(*this == o); }
};

/**
 * The default mesh for a core count. The historical shapes (1x1, 1x2,
 * 2x2, 4x2, 8x2) are pinned so existing configs stay bit-identical;
 * other counts fold as close to square as their divisors allow, with
 * rows >= cols (tall meshes, matching the 4x2/8x2 convention). Every
 * count in [1, kMaxCores] has a shape — primes degrade to an Nx1
 * column.
 */
inline MeshShape
default_mesh_shape(u16 cores)
{
    switch (cores) {
      case 1: return {1, 1};
      case 2: return {1, 2};
      case 4: return {2, 2};
      case 8: return {4, 2};
      case 16: return {8, 2};
      default: break;
    }
    u16 cols = 1;
    for (u16 c = 2; c * c <= cores; ++c)
        if (cores % c == 0)
            cols = c;
    return {static_cast<u16>(cores / cols), cols};
}

} // namespace voltron

#endif // VOLTRON_SUPPORT_TYPES_HH_
