/**
 * @file
 * Fundamental integer typedefs and small identifiers used across Voltron.
 */

#ifndef VOLTRON_SUPPORT_TYPES_HH_
#define VOLTRON_SUPPORT_TYPES_HH_

#include <cstdint>
#include <limits>

namespace voltron {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulated memory address (byte granular). */
using Addr = u64;

/** Simulation time in core clock cycles. */
using Cycle = u64;

/** Index of a core in the multicore mesh (row-major). */
using CoreId = u16;

/** Sentinel for "no core". */
inline constexpr CoreId kNoCore = std::numeric_limits<CoreId>::max();

/** Index of a basic block within its function. */
using BlockId = u32;

/** Sentinel for "no block". */
inline constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();

/** Index of a function within its program. */
using FuncId = u32;

/** Sentinel for "no function". */
inline constexpr FuncId kNoFunc = std::numeric_limits<FuncId>::max();

/** Identifier of a compiler region (loop or acyclic region). */
using RegionId = u32;

/** Sentinel for "no region". */
inline constexpr RegionId kNoRegion = std::numeric_limits<RegionId>::max();

} // namespace voltron

#endif // VOLTRON_SUPPORT_TYPES_HH_
