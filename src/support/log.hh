/**
 * @file
 * Structured logging for long-lived processes (the voltron-served
 * daemon foremost): levels, dotted subsystems, steady+wall timestamps,
 * and an optional JSON-lines mode so the daemon's behavior is both
 * greppable and machine-parseable.
 *
 * Every line carries a level, a dotted subsystem name ("server.request",
 * "cache.disk", "server.executor"), a message, and zero or more typed
 * key=value fields. Text mode renders
 *
 *   [     12.345678] INFO  server.request: done id=r1 totalUs=532
 *
 * (the bracket is seconds since process start on the steady clock);
 * JSON-lines mode renders one strict-JSON object per line
 *
 *   {"t":12345678,"wall":1691580000000000,"level":"info",
 *    "sub":"server.request","msg":"done","id":"r1","totalUs":532}
 *
 * with "t" steady microseconds since process start and "wall" epoch
 * microseconds, so lines from restarts interleave correctly.
 *
 * Filtering is per-subsystem: a spec like
 *
 *   info,server=debug,cache.disk=trace,json
 *
 * sets the default level, overrides whole dotted subtrees (the longest
 * matching prefix at a '.' boundary wins), and flips the output mode.
 * The daemon reads the spec from --log or $VOLTRON_LOG.
 *
 * Thread-safe: lines are formatted outside the lock and emitted whole
 * under it, so concurrent writers never interleave bytes.
 */

#ifndef VOLTRON_SUPPORT_LOG_HH_
#define VOLTRON_SUPPORT_LOG_HH_

#include <atomic>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "support/types.hh"

namespace voltron {

enum class LogLevel : u8 { Trace = 0, Debug, Info, Warn, Error, Off };

const char *log_level_name(LogLevel level);

/** Parse "trace|debug|info|warn|error|off"; false on anything else. */
bool parse_log_level(std::string_view name, LogLevel &out);

/** One typed key=value attachment on a log line. */
struct LogField
{
    std::string key;
    std::string value;
    bool quoted; //!< true: JSON string; false: raw number/bool token

    LogField(std::string k, const char *v)
        : key(std::move(k)), value(v), quoted(true)
    {
    }
    LogField(std::string k, const std::string &v)
        : key(std::move(k)), value(v), quoted(true)
    {
    }
    LogField(std::string k, u64 v)
        : key(std::move(k)), value(std::to_string(v)), quoted(false)
    {
    }
    LogField(std::string k, i64 v)
        : key(std::move(k)), value(std::to_string(v)), quoted(false)
    {
    }
    LogField(std::string k, int v)
        : LogField(std::move(k), static_cast<i64>(v))
    {
    }
    LogField(std::string k, double v);
    LogField(std::string k, bool v)
        : key(std::move(k)), value(v ? "true" : "false"), quoted(false)
    {
    }
};

class Logger
{
  public:
    /** The process-wide logger; first use applies $VOLTRON_LOG. */
    static Logger &instance();

    /**
     * Apply a filter spec: comma-separated tokens, each a default level
     * ("debug"), a subtree override ("cache.disk=trace"), or an output
     * mode ("json" / "text"). Replaces all previous overrides. False
     * with a message in @p err on an unknown token.
     */
    bool configure(const std::string &spec, std::string *err = nullptr);

    /** Redirect output (default: std::cerr). Pass nullptr to restore
     * the default. Tests capture through an ostringstream. */
    void setSink(std::ostream *os);

    void setJsonMode(bool json) { json_.store(json); }
    bool jsonMode() const { return json_.load(); }

    /** Effective level for @p subsystem (longest-prefix override). */
    LogLevel levelFor(std::string_view subsystem) const;

    bool
    enabled(LogLevel level, std::string_view subsystem) const
    {
        return level != LogLevel::Off && level >= levelFor(subsystem);
    }

    /** Emit one line (if enabled). Fields render as key=value in text
     * mode and as extra members in JSON mode. */
    void write(LogLevel level, std::string_view subsystem,
               std::string_view message,
               const std::vector<LogField> &fields = {});

    /** Lines actually emitted (post-filter) — tests and stats. */
    u64 linesWritten() const { return linesWritten_.load(); }

  private:
    Logger();

    mutable std::mutex mutex_; //!< overrides + sink + emission
    std::atomic<u8> defaultLevel_{
        static_cast<u8>(LogLevel::Info)};
    std::atomic<bool> json_{false};
    std::vector<std::pair<std::string, LogLevel>> overrides_;
    std::ostream *sink_ = nullptr; //!< nullptr = std::cerr
    std::atomic<u64> linesWritten_{0};
    i64 steadyEpochUs_ = 0; //!< steady-clock us at construction
};

/** Convenience wrappers over Logger::instance(). */
void log_line(LogLevel level, std::string_view subsystem,
              std::string_view message,
              const std::vector<LogField> &fields = {});

inline void
log_trace(std::string_view sub, std::string_view msg,
          const std::vector<LogField> &fields = {})
{
    log_line(LogLevel::Trace, sub, msg, fields);
}

inline void
log_debug(std::string_view sub, std::string_view msg,
          const std::vector<LogField> &fields = {})
{
    log_line(LogLevel::Debug, sub, msg, fields);
}

inline void
log_info(std::string_view sub, std::string_view msg,
         const std::vector<LogField> &fields = {})
{
    log_line(LogLevel::Info, sub, msg, fields);
}

inline void
log_warn(std::string_view sub, std::string_view msg,
         const std::vector<LogField> &fields = {})
{
    log_line(LogLevel::Warn, sub, msg, fields);
}

inline void
log_error(std::string_view sub, std::string_view msg,
          const std::vector<LogField> &fields = {})
{
    log_line(LogLevel::Error, sub, msg, fields);
}

} // namespace voltron

#endif // VOLTRON_SUPPORT_LOG_HH_
