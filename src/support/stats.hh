/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register scalar counters and distributions under dotted names
 * (e.g. "core0.dcache.misses"); reports can be dumped or queried by tests
 * and the figure harnesses.
 */

#ifndef VOLTRON_SUPPORT_STATS_HH_
#define VOLTRON_SUPPORT_STATS_HH_

#include <map>
#include <ostream>
#include <string>

#include "support/error.hh"
#include "support/types.hh"

namespace voltron {

/** A named bag of scalar counters. */
class StatSet
{
  public:
    /** Add @p delta to counter @p name, creating it at zero if absent. */
    void
    add(const std::string &name, u64 delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set counter @p name to @p value. */
    void
    set(const std::string &name, u64 value)
    {
        counters_[name] = value;
    }

    /** Value of counter @p name (0 if never touched). */
    u64
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** True if the counter exists. */
    bool
    has(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    /** Reset every counter to zero. */
    void
    clear()
    {
        counters_.clear();
    }

    /** Merge another set into this one (summing counters). */
    void
    merge(const StatSet &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
    }

    /** All counters, sorted by name. */
    const std::map<std::string, u64> &counters() const { return counters_; }

    /** Human-readable dump, one counter per line. */
    void
    dump(std::ostream &os, const std::string &prefix = "") const
    {
        for (const auto &[name, value] : counters_)
            os << prefix << name << " = " << value << "\n";
    }

  private:
    std::map<std::string, u64> counters_;
};

} // namespace voltron

#endif // VOLTRON_SUPPORT_STATS_HH_
