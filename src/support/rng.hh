/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic content in Voltron (workload data, synthetic address
 * streams) flows through this splitmix64-based generator so every
 * experiment regenerates bit-identically from its seed, independent of
 * the host standard library.
 */

#ifndef VOLTRON_SUPPORT_RNG_HH_
#define VOLTRON_SUPPORT_RNG_HH_

#include "support/types.hh"

namespace voltron {

/** Deterministic splitmix64 RNG. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    /** Next raw 64-bit value. */
    u64
    next()
    {
        u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    u64
    below(u64 bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    i64
    range(i64 lo, i64 hi)
    {
        return lo + static_cast<i64>(below(static_cast<u64>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    u64 state_;
};

} // namespace voltron

#endif // VOLTRON_SUPPORT_RNG_HH_
