#include "support/log.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace voltron {

namespace {

/** Escape for a JSON string body (no surrounding quotes). Kept local:
 * support sits below the server's json library in the layering. */
std::string
escape_json(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

i64
steady_us_now()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

i64
wall_us_now()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace

LogField::LogField(std::string k, double v) : key(std::move(k)), quoted(false)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    value = buf;
}

const char *
log_level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "trace";
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Off: return "off";
    }
    return "unknown";
}

bool
parse_log_level(std::string_view name, LogLevel &out)
{
    static constexpr LogLevel all[] = {
        LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
        LogLevel::Warn,  LogLevel::Error, LogLevel::Off,
    };
    for (LogLevel level : all) {
        if (name == log_level_name(level)) {
            out = level;
            return true;
        }
    }
    return false;
}

Logger::Logger() : steadyEpochUs_(steady_us_now())
{
    if (const char *spec = std::getenv("VOLTRON_LOG"); spec && *spec)
        configure(spec);
}

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

bool
Logger::configure(const std::string &spec, std::string *err)
{
    LogLevel defaultLevel = static_cast<LogLevel>(defaultLevel_.load());
    bool json = json_.load();
    std::vector<std::pair<std::string, LogLevel>> overrides;

    size_t pos = 0;
    while (pos <= spec.size()) {
        const size_t comma = spec.find(',', pos);
        const std::string token = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (token.empty())
            continue;
        if (token == "json") {
            json = true;
            continue;
        }
        if (token == "text") {
            json = false;
            continue;
        }
        const size_t eq = token.find('=');
        if (eq == std::string::npos) {
            if (!parse_log_level(token, defaultLevel)) {
                if (err)
                    *err = "unknown log level '" + token + "'";
                return false;
            }
            continue;
        }
        const std::string sub = token.substr(0, eq);
        LogLevel level;
        if (sub.empty() || !parse_log_level(token.substr(eq + 1), level)) {
            if (err)
                *err = "bad log override '" + token + "'";
            return false;
        }
        overrides.emplace_back(sub, level);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        overrides_ = std::move(overrides);
    }
    defaultLevel_.store(static_cast<u8>(defaultLevel));
    json_.store(json);
    return true;
}

void
Logger::setSink(std::ostream *os)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sink_ = os;
}

LogLevel
Logger::levelFor(std::string_view subsystem) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Longest matching dotted prefix wins: "cache.disk=trace" governs
    // "cache.disk" and "cache.disk.evict" but not "cache.diskette".
    size_t bestLen = 0;
    LogLevel best = static_cast<LogLevel>(defaultLevel_.load());
    for (const auto &[prefix, level] : overrides_) {
        if (prefix.size() > subsystem.size() ||
            subsystem.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (subsystem.size() != prefix.size() &&
            subsystem[prefix.size()] != '.')
            continue;
        if (prefix.size() >= bestLen) {
            bestLen = prefix.size();
            best = level;
        }
    }
    return best;
}

void
Logger::write(LogLevel level, std::string_view subsystem,
              std::string_view message, const std::vector<LogField> &fields)
{
    if (!enabled(level, subsystem))
        return;

    const i64 t_us = steady_us_now() - steadyEpochUs_;
    std::string line;
    line.reserve(96 + message.size());
    if (json_.load()) {
        line += "{\"t\":";
        line += std::to_string(t_us);
        line += ",\"wall\":";
        line += std::to_string(wall_us_now());
        line += ",\"level\":\"";
        line += log_level_name(level);
        line += "\",\"sub\":\"";
        line += escape_json(subsystem);
        line += "\",\"msg\":\"";
        line += escape_json(message);
        line += "\"";
        for (const LogField &f : fields) {
            line += ",\"";
            line += escape_json(f.key);
            line += "\":";
            if (f.quoted) {
                line += "\"";
                line += escape_json(f.value);
                line += "\"";
            } else {
                line += f.value;
            }
        }
        line += "}\n";
    } else {
        char tag[8] = {};
        std::snprintf(tag, sizeof(tag), "%s", log_level_name(level));
        for (char *c = tag; *c; ++c)
            *c = static_cast<char>(*c - 'a' + 'A');
        char stamp[40];
        std::snprintf(stamp, sizeof(stamp), "[%11.6f] %-5s ",
                      static_cast<double>(t_us) / 1e6, tag);
        line += stamp;
        line += subsystem;
        line += ": ";
        line += message;
        for (const LogField &f : fields) {
            line += " ";
            line += f.key;
            line += "=";
            line += f.value;
        }
        line += "\n";
    }

    std::lock_guard<std::mutex> lock(mutex_);
    std::ostream &os = sink_ ? *sink_ : std::cerr;
    os << line;
    os.flush();
    linesWritten_.fetch_add(1);
}

void
log_line(LogLevel level, std::string_view subsystem,
         std::string_view message, const std::vector<LogField> &fields)
{
    Logger::instance().write(level, subsystem, message, fields);
}

} // namespace voltron
