/**
 * @file
 * Stable byte encoding and content hashing for cacheable artifacts.
 *
 * ByteWriter/ByteReader implement a deliberately boring format: fixed-width
 * little-endian integers, length-prefixed strings and vectors, doubles as
 * raw IEEE-754 bit patterns. The encoding is the canonical form both for
 * the on-disk artifact cache payloads and for content hashing (a cache key
 * is the FNV-1a 64-bit hash of an object's serialized bytes), so it must
 * stay platform-independent and deterministic: hash-map contents are
 * emitted sorted by key.
 *
 * ByteReader never throws on malformed input — it sticks at the end of the
 * buffer and latches ok() == false, so deserializers can run to completion
 * on corrupt payloads and the caller treats the result as a cache miss.
 */

#ifndef VOLTRON_SUPPORT_SERIALIZE_HH_
#define VOLTRON_SUPPORT_SERIALIZE_HH_

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/types.hh"

namespace voltron {

/** FNV-1a 64-bit, the cache's content hash. */
inline constexpr u64 kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr u64 kFnvPrime = 0x00000100000001b3ULL;

inline u64
fnv1a(const u8 *data, size_t len, u64 seed = kFnvOffset)
{
    u64 h = seed;
    for (size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= kFnvPrime;
    }
    return h;
}

inline u64
fnv1a(const std::vector<u8> &bytes, u64 seed = kFnvOffset)
{
    return fnv1a(bytes.data(), bytes.size(), seed);
}

/** Mix a second hash into a first (order-sensitive). */
inline u64
hash_combine(u64 a, u64 b)
{
    u8 raw[8];
    std::memcpy(raw, &b, 8);
    return fnv1a(raw, 8, a);
}

/** Append-only little-endian byte sink. */
class ByteWriter
{
  public:
    const std::vector<u8> &bytes() const { return buf_; }
    std::vector<u8> take() { return std::move(buf_); }
    size_t size() const { return buf_.size(); }

    void
    raw(const void *data, size_t len)
    {
        const u8 *p = static_cast<const u8 *>(data);
        buf_.insert(buf_.end(), p, p + len);
    }

    void u8v(u8 v) { buf_.push_back(v); }
    void boolean(bool v) { u8v(v ? 1 : 0); }

    void
    u16v(u16 v)
    {
        for (int i = 0; i < 2; ++i)
            buf_.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void
    u32v(u32 v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void
    u64v(u64 v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void i64v(i64 v) { u64v(static_cast<u64>(v)); }

    void
    f64v(double v)
    {
        u64 bits;
        std::memcpy(&bits, &v, 8);
        u64v(bits);
    }

    void
    str(const std::string &s)
    {
        u64v(s.size());
        raw(s.data(), s.size());
    }

    void
    blob(const std::vector<u8> &bytes)
    {
        u64v(bytes.size());
        raw(bytes.data(), bytes.size());
    }

    /** Emit a (u64 -> V) hash map sorted by key via @p emit_value. */
    template <typename V, typename EmitValue>
    void
    u64Map(const std::unordered_map<u64, V> &map, EmitValue emit_value)
    {
        std::vector<u64> keys;
        keys.reserve(map.size());
        for (const auto &[k, v] : map)
            keys.push_back(k);
        std::sort(keys.begin(), keys.end());
        u64v(keys.size());
        for (u64 k : keys) {
            u64v(k);
            emit_value(*this, map.at(k));
        }
    }

  private:
    std::vector<u8> buf_;
};

/** Bounds-checked little-endian byte source. */
class ByteReader
{
  public:
    ByteReader(const u8 *data, size_t len) : data_(data), len_(len) {}
    explicit ByteReader(const std::vector<u8> &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {
    }

    bool ok() const { return ok_; }
    size_t remaining() const { return len_ - pos_; }
    bool atEnd() const { return pos_ == len_; }

    bool
    raw(void *out, size_t len)
    {
        if (!ok_ || len > remaining()) {
            ok_ = false;
            std::memset(out, 0, len);
            return false;
        }
        std::memcpy(out, data_ + pos_, len);
        pos_ += len;
        return true;
    }

    u8
    u8v()
    {
        u8 v = 0;
        raw(&v, 1);
        return v;
    }

    bool boolean() { return u8v() != 0; }

    u16
    u16v()
    {
        u8 b[2] = {};
        raw(b, 2);
        return static_cast<u16>(b[0] | (b[1] << 8));
    }

    u32
    u32v()
    {
        u8 b[4] = {};
        raw(b, 4);
        u32 v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | b[i];
        return v;
    }

    u64
    u64v()
    {
        u8 b[8] = {};
        raw(b, 8);
        u64 v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | b[i];
        return v;
    }

    i64 i64v() { return static_cast<i64>(u64v()); }

    double
    f64v()
    {
        const u64 bits = u64v();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    /**
     * Read an element count previously written by a length prefix. Caps
     * the answer so a corrupt length cannot drive a giant allocation:
     * each element occupies at least @p min_elem_bytes in the stream.
     */
    u64
    count(u64 min_elem_bytes = 1)
    {
        const u64 n = u64v();
        if (!ok_)
            return 0;
        if (min_elem_bytes == 0)
            min_elem_bytes = 1;
        if (n > remaining() / min_elem_bytes) {
            ok_ = false;
            return 0;
        }
        return n;
    }

    std::string
    str()
    {
        const u64 n = count(1);
        std::string s(n, '\0');
        if (n)
            raw(s.data(), n);
        return ok_ ? s : std::string();
    }

    std::vector<u8>
    blob()
    {
        const u64 n = count(1);
        std::vector<u8> bytes(n);
        if (n)
            raw(bytes.data(), n);
        if (!ok_)
            bytes.clear();
        return bytes;
    }

    /** Read a (u64 -> V) map written by ByteWriter::u64Map. */
    template <typename V, typename ReadValue>
    void
    u64Map(std::unordered_map<u64, V> &map, ReadValue read_value,
           u64 min_value_bytes = 1)
    {
        const u64 n = count(8 + min_value_bytes);
        map.reserve(n);
        for (u64 i = 0; i < n && ok_; ++i) {
            const u64 k = u64v();
            map[k] = read_value(*this);
        }
    }

  private:
    const u8 *data_;
    size_t len_;
    size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace voltron

#endif // VOLTRON_SUPPORT_SERIALIZE_HH_
