/**
 * @file
 * Error-reporting helpers in the spirit of gem5's panic()/fatal().
 *
 * panic() is for internal invariant violations (a Voltron bug); fatal() is
 * for user errors (bad configuration, malformed input programs). Both throw
 * typed exceptions so tests can assert on them.
 */

#ifndef VOLTRON_SUPPORT_ERROR_HH_
#define VOLTRON_SUPPORT_ERROR_HH_

#include <sstream>
#include <stdexcept>
#include <string>

namespace voltron {

/** Thrown on internal invariant violations — always a Voltron bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown on user/configuration errors — the simulation cannot continue. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

inline void
format_into(std::ostringstream &) {}

template <typename T, typename... Rest>
void
format_into(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    format_into(os, rest...);
}

} // namespace detail

/** Raise a PanicError built from the streamed arguments. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::format_into(os, args...);
    throw PanicError(os.str());
}

/** Raise a FatalError built from the streamed arguments. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::format_into(os, args...);
    throw FatalError(os.str());
}

/** panic() unless @p cond holds. */
template <typename... Args>
void
panic_if_not(bool cond, const Args &...args)
{
    if (!cond)
        panic(args...);
}

/** fatal() unless @p cond holds. */
template <typename... Args>
void
fatal_if_not(bool cond, const Args &...args)
{
    if (!cond)
        fatal(args...);
}

} // namespace voltron

#endif // VOLTRON_SUPPORT_ERROR_HH_
