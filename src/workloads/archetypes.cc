#include "workloads/archetypes.hh"

#include <algorithm>

#include "support/error.hh"

namespace voltron {

const char *
archetype_name(Archetype archetype)
{
    switch (archetype) {
      case Archetype::DoallStream: return "doall_stream";
      case Archetype::DoallReduction: return "doall_reduction";
      case Archetype::IlpWide: return "ilp_wide";
      case Archetype::StrandMatch: return "strand_match";
      case Archetype::DswpPipe: return "dswp_pipe";
      case Archetype::PointerChase: return "pointer_chase";
      case Archetype::BranchyIlp: return "branchy_ilp";
      default: return "?";
    }
}

namespace {

u64
pow2_at_least(u64 x)
{
    u64 p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

std::vector<i64>
random_array(Rng &rng, u64 elems, i64 lo = 0, i64 hi = 1 << 20)
{
    std::vector<i64> values(elems);
    for (auto &v : values)
        v = rng.range(lo, hi);
    return values;
}

/**
 * dst[i] = f(src[i]); sum += dst[i] — statistical DOALL with an
 * accumulator (paper Fig. 7 shape, plus accumulator expansion).
 */
FuncId
emit_doall_stream(ProgramBuilder &b, const std::string &name,
                  const PhaseParams &pp, Rng &rng)
{
    const u64 n = pp.trips;
    Addr a_src = b.allocArrayI64(name + ".src", random_array(rng, n));
    Addr a_dst = b.allocArrayI64(name + ".dst",
                                 std::vector<i64>(n, 0));
    const u32 s_src = b.symbolOf(name + ".src");
    const u32 s_dst = b.symbolOf(name + ".dst");

    FuncId f = b.beginFunction(name, 1, true);
    RegId rep = gpr(1);
    RegId base_src = b.emitImm(static_cast<i64>(a_src));
    RegId base_dst = b.emitImm(static_cast<i64>(a_dst));
    RegId sum = b.newGpr();
    b.emit(ops::movi(sum, 0));

    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, static_cast<i64>(n), 1, "stream");
    {
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, i, 3));
        RegId addr_s = b.newGpr();
        b.emit(ops::add(addr_s, base_src, off));
        RegId x = b.newGpr();
        b.emitLoad(x, addr_s, 0, s_src);
        RegId y = b.newGpr();
        b.emit(ops::alui(Opcode::MUL, y, x, 3));
        b.emit(ops::add(y, y, rep));
        RegId z = b.newGpr();
        b.emit(ops::alui(Opcode::SHR, z, y, 2));
        b.emit(ops::alu(Opcode::XOR, y, y, z));
        RegId addr_d = b.newGpr();
        b.emit(ops::add(addr_d, base_dst, off));
        b.emitStore(addr_d, 0, y, s_dst);
        b.emit(ops::add(sum, sum, y));
    }
    b.endCountedLoop(loop);

    b.emit(ops::mov(gpr(0), sum));
    b.emit(ops::ret());
    b.endFunction();
    return f;
}

/** sum += a[i] * 3 — a pure DOALL reduction. */
FuncId
emit_doall_reduction(ProgramBuilder &b, const std::string &name,
                     const PhaseParams &pp, Rng &rng)
{
    const u64 n = pp.trips;
    Addr a_src = b.allocArrayI64(name + ".a", random_array(rng, n));
    const u32 s_src = b.symbolOf(name + ".a");

    FuncId f = b.beginFunction(name, 1, true);
    RegId base = b.emitImm(static_cast<i64>(a_src));
    RegId sum = b.newGpr();
    b.emit(ops::movi(sum, 0));

    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, static_cast<i64>(n), 1, "reduce");
    {
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, i, 3));
        RegId addr = b.newGpr();
        b.emit(ops::add(addr, base, off));
        RegId x = b.newGpr();
        b.emitLoad(x, addr, 0, s_src);
        RegId y = b.newGpr();
        b.emit(ops::alui(Opcode::MUL, y, x, 3));
        b.emit(ops::add(sum, sum, y));
    }
    b.endCountedLoop(loop);

    b.emit(ops::add(gpr(0), sum, gpr(1)));
    b.emit(ops::ret());
    b.endFunction();
    return f;
}

/**
 * Wide independent chains seeded by a serial carry (paper Fig. 9 shape):
 * high ILP, hit-friendly working set, carry recurrence defeats DOALL and
 * folds everything into one SCC so DSWP cannot split it.
 */
FuncId
emit_ilp_wide(ProgramBuilder &b, const std::string &name,
              const PhaseParams &pp, Rng &rng)
{
    const u64 elems = pow2_at_least(std::max<u64>(pp.elems, 64));
    Addr a_src = b.allocArrayI64(name + ".a", random_array(rng, elems));
    const u32 s_src = b.symbolOf(name + ".a");
    const i64 mask = static_cast<i64>(elems - 1);

    FuncId f = b.beginFunction(name, 1, true);
    RegId base = b.emitImm(static_cast<i64>(a_src));
    RegId carry = b.newGpr();
    b.emit(ops::mov(carry, gpr(1)));

    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, static_cast<i64>(pp.trips), 1,
                                 "wide");
    {
        RegId z = b.newGpr();
        b.emit(ops::movi(z, 0));
        RegId iw = b.newGpr();
        b.emit(ops::alui(Opcode::MUL, iw, i, pp.width));
        // Mix the carry into the gather index: the loads join the
        // recurrence SCC (like the paper's Fig. 9 loop), so DSWP cannot
        // pipeline this region — its parallelism is pure ILP.
        RegId cmix = b.newGpr();
        b.emit(ops::alui(Opcode::AND, cmix, carry, 63));
        b.emit(ops::add(iw, iw, cmix));
        for (u32 k = 0; k < pp.width; ++k) {
            RegId idx = b.newGpr();
            b.emit(ops::addi(idx, iw, k));
            b.emit(ops::alui(Opcode::AND, idx, idx, mask));
            b.emit(ops::alui(Opcode::SHL, idx, idx, 3));
            RegId addr = b.newGpr();
            b.emit(ops::add(addr, base, idx));
            RegId x = b.newGpr();
            b.emitLoad(x, addr, 0, s_src);
            RegId t = b.newGpr();
            b.emit(ops::add(t, x, carry));
            b.emit(ops::alui(Opcode::MUL, t, t, 3));
            RegId u = b.newGpr();
            b.emit(ops::alui(Opcode::SHR, u, t, 7));
            b.emit(ops::alu(Opcode::XOR, t, t, u));
            b.emit(ops::add(z, z, t));
        }
        // carry = (carry >> 1) + z — two defs, so not an accumulator.
        RegId half = b.newGpr();
        b.emit(ops::alui(Opcode::SHR, half, carry, 1));
        b.emit(ops::add(carry, half, z));
    }
    b.endCountedLoop(loop);

    b.emit(ops::mov(gpr(0), carry));
    b.emit(ops::ret());
    b.endFunction();
    return f;
}

/**
 * Two miss-heavy streams merged by compares with a data-dependent exit
 * (paper Fig. 8, 164.gzip): an uncounted loop that suits eBUG strands.
 * The arrays agree on the first pp.trips elements and differ after, so
 * the trip count is deterministic.
 */
FuncId
emit_strand_match(ProgramBuilder &b, const std::string &name,
                  const PhaseParams &pp, Rng &rng)
{
    const u64 n = pp.trips + 1;
    std::vector<i64> scan = random_array(rng, n);
    std::vector<i64> match = scan;
    match[n - 1] ^= 0x5a5a;
    Addr a_scan = b.allocArrayI64(name + ".scan", scan);
    Addr a_match = b.allocArrayI64(name + ".match", match);
    const u32 s_scan = b.symbolOf(name + ".scan");
    const u32 s_match = b.symbolOf(name + ".match");

    FuncId f = b.beginFunction(name, 1, true);
    RegId base_s = b.emitImm(static_cast<i64>(a_scan));
    RegId base_m = b.emitImm(static_cast<i64>(a_match));
    RegId acc = b.newGpr();
    b.emit(ops::mov(acc, gpr(1)));
    RegId i = b.newGpr();
    b.emit(ops::movi(i, 0));

    BlockId header = b.newBlock("match.header");
    BlockId cont = b.newBlock("match.cont");
    BlockId exit = b.newBlock("match.exit");
    b.fallthroughTo(header);

    // header: load `width` elements of both streams (the paper's loop
    // compares r1..r4 against r5..r8 per iteration), accumulate, and
    // exit when any pair mismatches.
    const u32 unroll = std::max<u32>(pp.width / 2, 1);
    {
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, i, 3));
        RegId addr_s = b.newGpr();
        b.emit(ops::add(addr_s, base_s, off));
        RegId addr_m = b.newGpr();
        b.emit(ops::add(addr_m, base_m, off));
        RegId diff = b.newGpr();
        b.emit(ops::movi(diff, 0));
        for (u32 k = 0; k < unroll; ++k) {
            RegId a = b.newGpr();
            b.emitLoad(a, addr_s, static_cast<i64>(8 * k), s_scan);
            RegId m = b.newGpr();
            b.emitLoad(m, addr_m, static_cast<i64>(8 * k), s_match);
            RegId s = b.newGpr();
            b.emit(ops::add(s, a, m));
            b.emit(ops::alu(Opcode::XOR, acc, acc, s));
            RegId d = b.newGpr();
            b.emit(ops::sub(d, a, m));
            b.emit(ops::alu(Opcode::OR, diff, diff, d));
        }
        RegId ne = b.newPr();
        b.emit(ops::cmpi(CmpCond::NE, ne, diff, 0));
        b.emitBranch(ne, exit);
        b.fallthroughTo(cont);
    }
    // cont: stop after the known match length (safety bound).
    {
        b.emit(ops::addi(i, i, static_cast<i64>(unroll)));
        RegId done = b.newPr();
        b.emit(ops::cmpi(CmpCond::GE, done, i,
                         static_cast<i64>(pp.trips)));
        b.emitBranch(done, exit);
        b.emitJump(header);
    }
    b.setBlock(exit);
    b.emit(ops::add(gpr(0), acc, i));
    b.emit(ops::ret());
    b.endFunction();
    return f;
}

/**
 * An LCG-driven gather feeding a compute/store stream — unidirectional
 * flow suited to DSWP; the index recurrence defeats DOALL.
 */
FuncId
emit_dswp_pipe(ProgramBuilder &b, const std::string &name,
               const PhaseParams &pp, Rng &rng)
{
    const u64 elems = pow2_at_least(std::max<u64>(pp.elems, 64));
    Addr a_src = b.allocArrayI64(name + ".a", random_array(rng, elems));
    Addr a_dst = b.allocArrayI64(
        name + ".b",
        std::vector<i64>(std::min<u64>(pp.trips, 1u << 20), 0));
    const u32 s_src = b.symbolOf(name + ".a");
    const u32 s_dst = b.symbolOf(name + ".b");
    const i64 mask = static_cast<i64>(elems - 1);

    FuncId f = b.beginFunction(name, 1, true);
    RegId base_a = b.emitImm(static_cast<i64>(a_src));
    RegId base_b = b.emitImm(static_cast<i64>(a_dst));
    RegId idx = b.newGpr();
    b.emit(ops::mov(idx, gpr(1)));
    RegId acc = b.newGpr();
    b.emit(ops::movi(acc, 0));

    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, static_cast<i64>(pp.trips), 1,
                                 "pipe");
    {
        // Stage 1: pointer-ish traversal (LCG) + gather.
        b.emit(ops::alui(Opcode::MUL, idx, idx, 1103515245));
        b.emit(ops::addi(idx, idx, 12345));
        b.emit(ops::alui(Opcode::AND, idx, idx, mask));
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, idx, 3));
        RegId addr_a = b.newGpr();
        b.emit(ops::add(addr_a, base_a, off));
        RegId x = b.newGpr();
        b.emitLoad(x, addr_a, 0, s_src);
        // Stage 2: compute + sequential store.
        RegId y = b.newGpr();
        b.emit(ops::alui(Opcode::MUL, y, x, 3));
        b.emit(ops::add(y, y, i));
        RegId t = b.newGpr();
        b.emit(ops::alui(Opcode::SHR, t, y, 5));
        b.emit(ops::alu(Opcode::XOR, y, y, t));
        RegId off_b = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off_b, i, 3));
        RegId addr_b = b.newGpr();
        b.emit(ops::add(addr_b, base_b, off_b));
        b.emitStore(addr_b, 0, y, s_dst);
        b.emit(ops::add(acc, acc, y));
    }
    b.endCountedLoop(loop);

    b.emit(ops::mov(gpr(0), acc));
    b.emit(ops::ret());
    b.endFunction();
    return f;
}

/** Serial linked traversal: idx = next[idx]; acc += vals[idx]. */
FuncId
emit_pointer_chase(ProgramBuilder &b, const std::string &name,
                   const PhaseParams &pp, Rng &rng)
{
    const u64 elems = pow2_at_least(std::max<u64>(pp.elems, 64));
    // A random permutation cycle for the next[] array.
    std::vector<i64> next(elems);
    {
        std::vector<u64> perm(elems);
        for (u64 i = 0; i < elems; ++i)
            perm[i] = i;
        for (u64 i = elems - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.below(i + 1)]);
        for (u64 i = 0; i < elems; ++i)
            next[perm[i]] = static_cast<i64>(perm[(i + 1) % elems]);
    }
    Addr a_next = b.allocArrayI64(name + ".next", next);
    Addr a_vals = b.allocArrayI64(name + ".vals", random_array(rng, elems));
    const u32 s_next = b.symbolOf(name + ".next");
    const u32 s_vals = b.symbolOf(name + ".vals");

    FuncId f = b.beginFunction(name, 1, true);
    RegId base_n = b.emitImm(static_cast<i64>(a_next));
    RegId base_v = b.emitImm(static_cast<i64>(a_vals));
    RegId idx = b.newGpr();
    b.emit(ops::alui(Opcode::AND, idx, gpr(1),
                     static_cast<i64>(elems - 1)));
    RegId acc = b.newGpr();
    b.emit(ops::movi(acc, 0));

    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, static_cast<i64>(pp.trips), 1,
                                 "chase");
    {
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, idx, 3));
        RegId addr_n = b.newGpr();
        b.emit(ops::add(addr_n, base_n, off));
        b.emitLoad(idx, addr_n, 0, s_next);
        RegId off_v = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off_v, idx, 3));
        RegId addr_v = b.newGpr();
        b.emit(ops::add(addr_v, base_v, off_v));
        RegId v = b.newGpr();
        b.emitLoad(v, addr_v, 0, s_vals);
        b.emit(ops::add(acc, acc, v));
    }
    b.endCountedLoop(loop);

    b.emit(ops::mov(gpr(0), acc));
    b.emit(ops::ret());
    b.endFunction();
    return f;
}

/**
 * If/else diamonds with moderate per-arm ILP over a small working set;
 * the wrapping store creates a (true) cross-iteration dependence that
 * defeats speculative DOALL.
 */
FuncId
emit_branchy_ilp(ProgramBuilder &b, const std::string &name,
                 const PhaseParams &pp, Rng &rng)
{
    const u64 elems = pow2_at_least(std::max<u64>(pp.elems, 64));
    Addr a_src = b.allocArrayI64(name + ".a", random_array(rng, elems));
    Addr a_dst = b.allocArrayI64(name + ".c",
                                 std::vector<i64>(elems, 0));
    const u32 s_src = b.symbolOf(name + ".a");
    const u32 s_dst = b.symbolOf(name + ".c");
    const i64 mask = static_cast<i64>(elems - 1);

    FuncId f = b.beginFunction(name, 1, true);
    RegId base_a = b.emitImm(static_cast<i64>(a_src));
    RegId base_c = b.emitImm(static_cast<i64>(a_dst));
    RegId acc = b.newGpr();
    b.emit(ops::mov(acc, gpr(1)));

    RegId i = b.newGpr();
    LoopHandles loop = b.forLoop(i, 0, static_cast<i64>(pp.trips), 1,
                                 "branchy");
    {
        RegId im = b.newGpr();
        b.emit(ops::alui(Opcode::AND, im, i, mask));
        RegId off = b.newGpr();
        b.emit(ops::alui(Opcode::SHL, off, im, 3));
        RegId addr_a = b.newGpr();
        b.emit(ops::add(addr_a, base_a, off));
        RegId x = b.newGpr();
        b.emitLoad(x, addr_a, 0, s_src);
        RegId bit = b.newGpr();
        b.emit(ops::alui(Opcode::AND, bit, x, 1));
        RegId p = b.newPr();
        b.emit(ops::cmpi(CmpCond::NE, p, bit, 0));

        RegId y = b.newGpr();
        IfHandles diamond = b.beginIf(p, /*with_else=*/true, "arm");
        {
            // then: a small independent tree.
            RegId t1 = b.newGpr(), t2 = b.newGpr();
            b.emit(ops::alui(Opcode::MUL, t1, x, 3));
            b.emit(ops::alui(Opcode::SHL, t2, x, 2));
            b.emit(ops::add(y, t1, t2));
            for (u32 k = 1; k < pp.width; ++k) {
                RegId u = b.newGpr();
                b.emit(ops::alui(Opcode::XOR, u, x, k * 0x55));
                b.emit(ops::add(y, y, u));
            }
        }
        b.elseBranch(diamond);
        {
            RegId t1 = b.newGpr();
            b.emit(ops::alui(Opcode::SHR, t1, x, 1));
            b.emit(ops::addi(y, t1, 17));
            for (u32 k = 1; k < pp.width; ++k) {
                RegId u = b.newGpr();
                b.emit(ops::alui(Opcode::ADD, u, x, k * 31));
                b.emit(ops::alu(Opcode::XOR, y, y, u));
            }
        }
        b.endIf(diamond);

        RegId addr_c = b.newGpr();
        b.emit(ops::add(addr_c, base_c, off));
        b.emitStore(addr_c, 0, y, s_dst);
        b.emit(ops::add(acc, acc, y));
    }
    b.endCountedLoop(loop);

    b.emit(ops::mov(gpr(0), acc));
    b.emit(ops::ret());
    b.endFunction();
    return f;
}

} // namespace

FuncId
emit_phase(ProgramBuilder &b, Archetype archetype, const std::string &name,
           const PhaseParams &params, Rng &rng)
{
    switch (archetype) {
      case Archetype::DoallStream:
        return emit_doall_stream(b, name, params, rng);
      case Archetype::DoallReduction:
        return emit_doall_reduction(b, name, params, rng);
      case Archetype::IlpWide:
        return emit_ilp_wide(b, name, params, rng);
      case Archetype::StrandMatch:
        return emit_strand_match(b, name, params, rng);
      case Archetype::DswpPipe:
        return emit_dswp_pipe(b, name, params, rng);
      case Archetype::PointerChase:
        return emit_pointer_chase(b, name, params, rng);
      case Archetype::BranchyIlp:
        return emit_branchy_ilp(b, name, params, rng);
      default:
        panic("unknown archetype");
    }
}

} // namespace voltron
