#include "workloads/suite.hh"

#include <algorithm>
#include <functional>
#include <map>

#include "support/error.hh"

namespace voltron {

namespace {

/** Rough static body size used to convert op budgets into trip counts. */
u64
body_ops(Archetype archetype, u32 width)
{
    switch (archetype) {
      case Archetype::DoallStream: return 13;
      case Archetype::DoallReduction: return 8;
      case Archetype::IlpWide: return 5 + 8ULL * width;
      case Archetype::StrandMatch: return 14;
      case Archetype::DswpPipe: return 16;
      case Archetype::PointerChase: return 9;
      case Archetype::BranchyIlp: return 14 + 2ULL * width;
      default: panic("unknown archetype");
    }
}

std::vector<BenchmarkSpec>
make_specs()
{
    using A = Archetype;
    // {archetype, fraction, elems, width, calls}
    std::vector<BenchmarkSpec> specs = {
        {"052.alvinn", {{A::DoallStream, .35, 512, 4, 1},
                        {A::DoallReduction, .30, 512, 4, 1},
                        {A::IlpWide, .25, 256, 6, 1},
                        {A::PointerChase, .10, 1024, 4, 1}}},
        {"056.ear", {{A::DoallStream, .30, 512, 4, 1},
                     {A::DoallReduction, .25, 512, 4, 1},
                     {A::IlpWide, .30, 256, 6, 1},
                     {A::DswpPipe, .15, 2048, 4, 1}}},
        {"132.ijpeg", {{A::IlpWide, .40, 256, 6, 1},
                       {A::DoallStream, .35, 512, 4, 1},
                       {A::StrandMatch, .25, 512, 4, 1}}},
        {"164.gzip", {{A::StrandMatch, .55, 512, 4, 1},
                      {A::IlpWide, .25, 256, 4, 1},
                      {A::PointerChase, .20, 4096, 4, 1}}},
        {"171.swim", {{A::DoallStream, .45, 512, 4, 1},
                      {A::DoallReduction, .30, 512, 4, 1},
                      {A::IlpWide, .25, 256, 8, 1}}},
        {"172.mgrid", {{A::DoallStream, .40, 512, 4, 1},
                       {A::DoallReduction, .30, 512, 4, 1},
                       {A::IlpWide, .30, 256, 8, 1}}},
        {"175.vpr", {{A::BranchyIlp, .45, 512, 4, 1},
                     {A::StrandMatch, .25, 512, 4, 1},
                     {A::PointerChase, .30, 8192, 4, 1}}},
        {"177.mesa", {{A::IlpWide, .45, 256, 8, 1},
                      {A::BranchyIlp, .20, 512, 4, 1},
                      {A::DoallStream, .20, 512, 4, 1},
                      {A::PointerChase, .15, 2048, 4, 1}}},
        {"179.art", {{A::StrandMatch, .40, 512, 4, 1},
                     {A::DswpPipe, .25, 32768, 4, 1},
                     {A::DoallStream, .20, 512, 4, 1},
                     {A::PointerChase, .15, 32768, 4, 1}}},
        {"183.equake", {{A::DoallStream, .35, 512, 4, 1},
                        {A::DoallReduction, .10, 512, 4, 1},
                        {A::DswpPipe, .30, 8192, 4, 1},
                        {A::IlpWide, .25, 256, 6, 1}}},
        {"197.parser", {{A::PointerChase, .40, 16384, 4, 1},
                        {A::BranchyIlp, .35, 512, 3, 1},
                        {A::StrandMatch, .25, 512, 4, 1}}},
        {"255.vortex", {{A::BranchyIlp, .40, 512, 5, 1},
                        {A::PointerChase, .35, 8192, 4, 1},
                        {A::DswpPipe, .25, 4096, 4, 1}}},
        {"256.bzip2", {{A::IlpWide, .35, 256, 5, 1},
                       {A::StrandMatch, .30, 512, 4, 1},
                       {A::DoallStream, .20, 512, 4, 1},
                       {A::PointerChase, .15, 4096, 4, 1}}},
        {"cjpeg", {{A::DoallStream, .40, 512, 4, 1},
                   {A::IlpWide, .35, 256, 6, 1},
                   {A::StrandMatch, .25, 512, 4, 1}}},
        {"djpeg", {{A::DoallStream, .45, 512, 4, 1},
                   {A::IlpWide, .40, 256, 6, 1},
                   {A::DswpPipe, .15, 2048, 4, 1}}},
        {"epic", {{A::DswpPipe, .50, 8192, 4, 1},
                  {A::DoallStream, .30, 512, 4, 1},
                  {A::IlpWide, .20, 256, 5, 1}}},
        {"g721decode", {{A::IlpWide, .60, 256, 6, 1},
                        {A::DswpPipe, .25, 2048, 4, 1},
                        {A::PointerChase, .15, 2048, 4, 1}}},
        {"g721encode", {{A::IlpWide, .55, 256, 6, 1},
                        {A::DswpPipe, .25, 2048, 4, 1},
                        {A::BranchyIlp, .20, 512, 4, 1}}},
        {"gsmdecode", {{A::IlpWide, .50, 256, 8, 1},
                       {A::DoallStream, .35, 512, 4, 1},
                       {A::DswpPipe, .15, 1024, 4, 1}}},
        {"gsmencode", {{A::IlpWide, .55, 256, 8, 1},
                       {A::DoallStream, .30, 512, 4, 1},
                       {A::BranchyIlp, .15, 512, 4, 1}}},
        {"mpeg2dec", {{A::DoallStream, .45, 512, 4, 1},
                      {A::IlpWide, .35, 256, 6, 1},
                      {A::DswpPipe, .20, 2048, 4, 1}}},
        {"mpeg2enc", {{A::DoallStream, .55, 512, 4, 1},
                      {A::IlpWide, .30, 256, 6, 1},
                      {A::BranchyIlp, .15, 512, 4, 1}}},
        {"rawcaudio", {{A::IlpWide, .45, 256, 5, 1},
                       {A::DoallStream, .40, 512, 4, 1},
                       {A::PointerChase, .15, 2048, 4, 1}}},
        {"rawdaudio", {{A::IlpWide, .50, 256, 5, 1},
                       {A::DoallStream, .40, 512, 4, 1},
                       {A::PointerChase, .10, 2048, 4, 1}}},
        {"unepic", {{A::DoallStream, .35, 512, 4, 1},
                    {A::IlpWide, .35, 256, 5, 1},
                    {A::DswpPipe, .30, 4096, 4, 1}}},
    };
    return specs;
}

const std::vector<BenchmarkSpec> &
all_specs()
{
    static const std::vector<BenchmarkSpec> specs = make_specs();
    return specs;
}

} // namespace

const std::vector<std::string> &
benchmark_names()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> result;
        for (const auto &spec : all_specs())
            result.push_back(spec.name);
        return result;
    }();
    return names;
}

const BenchmarkSpec &
benchmark_spec(const std::string &name)
{
    for (const auto &spec : all_specs())
        if (spec.name == name)
            return spec;
    fatal("unknown benchmark: ", name);
}

Program
build_benchmark(const std::string &name, const SuiteScale &scale)
{
    const BenchmarkSpec &spec = benchmark_spec(name);
    Rng rng(scale.seed ^ std::hash<std::string>{}(name));
    ProgramBuilder b(name);

    // Phase functions must be emitted before main() can call them; we
    // emit them first and record ids. Function 0 must be main, so emit a
    // placeholder main first.
    FuncId main_id = b.beginFunction("main");
    // main's body is filled after the phases exist; keep the builder
    // positioned by ending and re-entering is not supported, so instead
    // emit phases first via a second builder pass. Simpler: emit calls
    // after collecting ids — the builder allows interleaving functions
    // only sequentially, so we emit main LAST and swap it to slot 0.
    b.emitHalt(b.emitImm(0)); // placeholder, replaced below
    b.endFunction();

    struct Planned
    {
        FuncId func;
        u32 calls;
    };
    std::vector<Planned> planned;
    for (size_t pi = 0; pi < spec.phases.size(); ++pi) {
        const PhaseSpec &ps = spec.phases[pi];
        PhaseParams params;
        params.elems = ps.elems;
        params.width = ps.width;
        const u64 budget = static_cast<u64>(
            ps.fraction * static_cast<double>(scale.targetOps));
        params.trips = std::max<u64>(
            budget / (body_ops(ps.archetype, ps.width) *
                      std::max<u32>(ps.calls, 1)),
            4);
        params.seed = rng.next();
        FuncId f = emit_phase(b, ps.archetype,
                              std::string(archetype_name(ps.archetype)) +
                                  "_" + std::to_string(pi),
                              params, rng);
        planned.push_back({f, std::max<u32>(ps.calls, 1)});
    }

    Program prog = b.take();

    // Rebuild main (function 0) with the real calls.
    {
        Function &main_fn = prog.function(main_id);
        main_fn.blocks.clear();
        main_fn.addBlock("entry");
        BasicBlock &bb = main_fn.block(0);
        RegId acc = gpr(8);
        bb.append(ops::movi(acc, 0));
        u32 rep = 0;
        for (const Planned &p : planned) {
            for (u32 c = 0; c < p.calls; ++c) {
                bb.append(ops::movi(gpr(1), rep++));
                RegId btr_reg = main_fn.freshReg(RegClass::BTR);
                bb.append(ops::pbr(btr_reg, CodeRef::to_function(p.func)));
                bb.append(ops::call(btr_reg));
                bb.append(ops::alu(Opcode::XOR, acc, acc, gpr(0)));
            }
        }
        bb.append(ops::halt(acc));
    }
    return prog;
}

} // namespace voltron
