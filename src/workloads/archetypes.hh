/**
 * @file
 * Kernel archetypes — the building blocks of the synthetic benchmark
 * suite (the stand-in for MediaBench/SPEC; see DESIGN.md §2).
 *
 * Each archetype emits one *phase function* whose body contains a loop
 * region with a characteristic parallelism signature:
 *
 *  - DoallStream / DoallReduction: statistical-DOALL loops (LLP) —
 *    paper Fig. 7 (gsmdecode).
 *  - IlpWide: wide independent expression trees with a loop-carried
 *    memory recurrence that defeats DOALL; small working set — paper
 *    Fig. 9 (gsmdecode ILP loop).
 *  - StrandMatch: two independent miss-heavy load streams merged by
 *    compares — paper Fig. 8 (164.gzip); suits eBUG strands.
 *  - DswpPipe: a load/traverse stage feeding a compute/store stage with
 *    unidirectional flow — suits DSWP.
 *  - PointerChase: serial data-dependent traversal (no parallelism).
 *  - BranchyIlp: if/else diamonds with moderate ILP, hit-friendly.
 *
 * Every phase function takes a repetition-index argument so callers can
 * vary data offsets across invocations, and returns a checksum that the
 * benchmark accumulates into its exit value (keeping every phase
 * observable for golden-model comparison).
 */

#ifndef VOLTRON_WORKLOADS_ARCHETYPES_HH_
#define VOLTRON_WORKLOADS_ARCHETYPES_HH_

#include <string>

#include "ir/builder.hh"
#include "support/rng.hh"

namespace voltron {

/** Which archetype a phase uses. */
enum class Archetype : u8 {
    DoallStream,
    DoallReduction,
    IlpWide,
    StrandMatch,
    DswpPipe,
    PointerChase,
    BranchyIlp,
};

const char *archetype_name(Archetype archetype);

/** Parameters of one phase. */
struct PhaseParams
{
    u64 elems = 256;  //!< array elements (8-byte) — sizes the working set
    u64 trips = 256;  //!< loop trip count per invocation
    u32 width = 4;    //!< ILP width knob (IlpWide/BranchyIlp)
    u64 seed = 1;     //!< data-content seed
};

/**
 * Emit the phase function for @p archetype into @p b (allocating its data
 * objects) and return its FuncId. The function signature is
 * `phase(rep) -> checksum`.
 */
FuncId emit_phase(ProgramBuilder &b, Archetype archetype,
                  const std::string &name, const PhaseParams &params,
                  Rng &rng);

} // namespace voltron

#endif // VOLTRON_WORKLOADS_ARCHETYPES_HH_
