/**
 * @file
 * The 24-benchmark synthetic suite.
 *
 * Each benchmark is named after one of the paper's MediaBench/SPEC
 * programs and composes archetype phases whose dynamic-execution
 * fractions approximate that benchmark's published parallelism mix
 * (paper Fig. 3). main() calls each phase and folds the checksums into
 * the exit value, so every phase is observable by the golden-model
 * comparison.
 */

#ifndef VOLTRON_WORKLOADS_SUITE_HH_
#define VOLTRON_WORKLOADS_SUITE_HH_

#include <string>
#include <vector>

#include "workloads/archetypes.hh"

namespace voltron {

/** One phase of a benchmark. */
struct PhaseSpec
{
    Archetype archetype;
    /** Fraction of the benchmark's dynamic ops this phase should cover. */
    double fraction = 0.0;
    /** Working-set elements (drives the miss behaviour). */
    u64 elems = 512;
    /** ILP width knob. */
    u32 width = 4;
    /** Times main() calls the phase. */
    u32 calls = 1;
};

/** A benchmark description. */
struct BenchmarkSpec
{
    std::string name;
    std::vector<PhaseSpec> phases;
};

/** Scale knob: total dynamic ops per benchmark (approximate). */
struct SuiteScale
{
    u64 targetOps = 120'000;
    u64 seed = 0xb0157a;
};

/** Names of the 24 benchmarks, in the paper's order. */
const std::vector<std::string> &benchmark_names();

/** Spec of one benchmark. */
const BenchmarkSpec &benchmark_spec(const std::string &name);

/** Build the IR program for @p name. */
Program build_benchmark(const std::string &name,
                        const SuiteScale &scale = SuiteScale{});

} // namespace voltron

#endif // VOLTRON_WORKLOADS_SUITE_HH_
