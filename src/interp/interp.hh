/**
 * @file
 * Sequential reference interpreter (golden model).
 *
 * Executes a sequential Voltron IR program exactly — every compiled
 * multicore configuration must reproduce this run's final memory state
 * and exit value. Optionally gathers the Profile the compiler consumes
 * (attach a profile cache to estimate per-load miss rates).
 */

#ifndef VOLTRON_INTERP_INTERP_HH_
#define VOLTRON_INTERP_INTERP_HH_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "interp/profile.hh"
#include "interp/regfile.hh"
#include "ir/cfg.hh"
#include "ir/dom.hh"
#include "ir/function.hh"
#include "ir/loops.hh"
#include "mem/cache.hh"
#include "mem/memimage.hh"

namespace voltron {

/** Result of a completed interpretation. */
struct InterpResult
{
    u64 exitValue = 0;
    u64 dynamicOps = 0;
};

/** The golden-model interpreter. */
class Interpreter
{
  public:
    /**
     * @param prog The (verified, sequential) program. Must outlive the
     *             interpreter.
     * @param mem  Architectural memory; the program's data segment should
     *             already be loaded (see MemoryImage::loadProgram).
     * @param profile If non-null, gather a profile into it.
     */
    Interpreter(const Program &prog, MemoryImage &mem,
                Profile *profile = nullptr);
    ~Interpreter();

    /**
     * Run to HALT. @p max_ops bounds runaway programs (fatal on
     * exhaustion).
     */
    InterpResult run(u64 max_ops = 500'000'000);

  private:
    struct LoopActivation
    {
        int loopIdx;
        u64 iteration = 0;
        /** addr>>3 -> (iteration of last access, any write seen there). */
        std::unordered_map<u64, std::pair<u64, bool>> touched;
    };

    struct Frame
    {
        FuncId func;
        BlockId block = 0;
        size_t opIdx = 0;
        RegFile regs;
        std::vector<LoopActivation> activeLoops;
    };

    /** Cached per-function analyses for loop-aware profiling. */
    struct FuncAnalysis
    {
        std::unique_ptr<Cfg> cfg;
        std::unique_ptr<DomTree> dom;
        std::unique_ptr<LoopForest> loops;
    };

    const Program &prog_;
    MemoryImage &mem_;
    Profile *profile_;
    std::vector<Frame> stack_;
    std::vector<FuncAnalysis> analyses_;
    CacheArray profileCache_;
    u64 dynamicOps_ = 0;
    bool halted_ = false;
    u64 exitValue_ = 0;

    const FuncAnalysis &analysis(FuncId func);
    void enterBlock(Frame &frame, BlockId block);
    void profileMemAccess(Frame &frame, const Operation &op, Addr addr);
    void step();
};

/**
 * Convenience wrapper: load @p prog into a fresh memory, run, and return
 * (result, memory, profile).
 */
struct GoldenRun
{
    InterpResult result;
    std::unique_ptr<MemoryImage> memory;
    Profile profile;
};

GoldenRun run_golden(const Program &prog, u64 max_ops = 500'000'000);

} // namespace voltron

#endif // VOLTRON_INTERP_INTERP_HH_
