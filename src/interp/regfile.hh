/**
 * @file
 * Auto-growing register file holding all four register classes.
 */

#ifndef VOLTRON_INTERP_REGFILE_HH_
#define VOLTRON_INTERP_REGFILE_HH_

#include <vector>

#include "isa/reg.hh"
#include "support/error.hh"
#include "support/types.hh"

namespace voltron {

/** One register frame: raw 64-bit storage per class, grown on demand. */
class RegFile
{
  public:
    u64
    read(RegId reg) const
    {
        panic_if_not(reg.valid(), "read of invalid register");
        const auto &bank = bankFor(reg.cls);
        return reg.idx < bank.size() ? bank[reg.idx] : 0;
    }

    void
    write(RegId reg, u64 value)
    {
        panic_if_not(reg.valid(), "write of invalid register");
        auto &bank = bankFor(reg.cls);
        if (reg.idx >= bank.size())
            bank.resize(reg.idx + 1, 0);
        bank[reg.idx] = reg.cls == RegClass::PR ? (value & 1) : value;
    }

    bool readPred(RegId reg) const { return read(reg) != 0; }

  private:
    std::vector<u64> gpr_, fpr_, pr_, btr_;

    const std::vector<u64> &
    bankFor(RegClass cls) const
    {
        switch (cls) {
          case RegClass::GPR: return gpr_;
          case RegClass::FPR: return fpr_;
          case RegClass::PR: return pr_;
          case RegClass::BTR: return btr_;
          default: panic("bad register class");
        }
    }

    std::vector<u64> &
    bankFor(RegClass cls)
    {
        return const_cast<std::vector<u64> &>(
            static_cast<const RegFile *>(this)->bankFor(cls));
    }
};

} // namespace voltron

#endif // VOLTRON_INTERP_REGFILE_HH_
