/**
 * @file
 * Scalar operation semantics shared by the reference interpreter and the
 * multicore simulator, so both engines compute identical values.
 */

#ifndef VOLTRON_INTERP_SEMANTICS_HH_
#define VOLTRON_INTERP_SEMANTICS_HH_

#include <bit>

#include "isa/opcode.hh"
#include "support/error.hh"
#include "support/types.hh"

namespace voltron {

/** Integer ALU semantics: result of `a OP b` (b already imm-resolved). */
inline u64
eval_int(Opcode op, u64 a, u64 b)
{
    const i64 sa = static_cast<i64>(a);
    const i64 sb = static_cast<i64>(b);
    switch (op) {
      case Opcode::ADD: return a + b;
      case Opcode::SUB: return a - b;
      case Opcode::MUL: return a * b;
      case Opcode::DIV:
        fatal_if_not(sb != 0, "integer division by zero");
        return static_cast<u64>(sa / sb);
      case Opcode::REM:
        fatal_if_not(sb != 0, "integer remainder by zero");
        return static_cast<u64>(sa % sb);
      case Opcode::AND: return a & b;
      case Opcode::OR: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::SHL: return a << (b & 63);
      case Opcode::SHR: return a >> (b & 63);
      case Opcode::SRA: return static_cast<u64>(sa >> (b & 63));
      case Opcode::MIN: return static_cast<u64>(sa < sb ? sa : sb);
      case Opcode::MAX: return static_cast<u64>(sa > sb ? sa : sb);
      case Opcode::MOV: return a;
      default: panic("eval_int: not an integer ALU op: ", op);
    }
}

/** Integer compare semantics. */
inline bool
eval_cmp(CmpCond cond, u64 a, u64 b)
{
    const i64 sa = static_cast<i64>(a);
    const i64 sb = static_cast<i64>(b);
    switch (cond) {
      case CmpCond::EQ: return a == b;
      case CmpCond::NE: return a != b;
      case CmpCond::LT: return sa < sb;
      case CmpCond::LE: return sa <= sb;
      case CmpCond::GT: return sa > sb;
      case CmpCond::GE: return sa >= sb;
      case CmpCond::ULT: return a < b;
      case CmpCond::ULE: return a <= b;
      case CmpCond::UGT: return a > b;
      case CmpCond::UGE: return a >= b;
      default: panic("eval_cmp: bad condition");
    }
}

/** FP ALU semantics on raw double bits. */
inline u64
eval_fp(Opcode op, u64 a_bits, u64 b_bits)
{
    const double a = std::bit_cast<double>(a_bits);
    const double b = std::bit_cast<double>(b_bits);
    double result;
    switch (op) {
      case Opcode::FADD: result = a + b; break;
      case Opcode::FSUB: result = a - b; break;
      case Opcode::FMUL: result = a * b; break;
      case Opcode::FDIV: result = a / b; break;
      case Opcode::FMOV: result = a; break;
      default: panic("eval_fp: not an FP ALU op: ", op);
    }
    return std::bit_cast<u64>(result);
}

/** FP compare semantics on raw double bits. */
inline bool
eval_fcmp(CmpCond cond, u64 a_bits, u64 b_bits)
{
    const double a = std::bit_cast<double>(a_bits);
    const double b = std::bit_cast<double>(b_bits);
    switch (cond) {
      case CmpCond::EQ: return a == b;
      case CmpCond::NE: return a != b;
      case CmpCond::LT: return a < b;
      case CmpCond::LE: return a <= b;
      case CmpCond::GT: return a > b;
      case CmpCond::GE: return a >= b;
      default: panic("eval_fcmp: bad FP condition");
    }
}

} // namespace voltron

#endif // VOLTRON_INTERP_SEMANTICS_HH_
