#include "interp/interp.hh"

#include "interp/semantics.hh"
#include "isa/latencies.hh"
#include "support/error.hh"

namespace voltron {

namespace {

/** Geometry of the profile cache (matches the paper's L1 D-cache). */
CacheGeometry
profile_cache_geometry()
{
    return CacheGeometry{4096, 2, 64};
}

} // namespace

Interpreter::Interpreter(const Program &prog, MemoryImage &mem,
                         Profile *profile)
    : prog_(prog), mem_(mem), profile_(profile),
      profileCache_(profile_cache_geometry())
{
    analyses_.resize(prog.functions.size());
    Frame main_frame;
    main_frame.func = 0;
    stack_.push_back(std::move(main_frame));
    enterBlock(stack_.back(), 0);
}

Interpreter::~Interpreter() = default;

const Interpreter::FuncAnalysis &
Interpreter::analysis(FuncId func)
{
    FuncAnalysis &fa = analyses_.at(func);
    if (!fa.cfg) {
        const Function &fn = prog_.function(func);
        fa.cfg = std::make_unique<Cfg>(fn);
        fa.dom = std::make_unique<DomTree>(*fa.cfg);
        fa.loops = std::make_unique<LoopForest>(fn, *fa.cfg, *fa.dom);
    }
    return fa;
}

void
Interpreter::enterBlock(Frame &frame, BlockId block)
{
    frame.block = block;
    frame.opIdx = 0;

    if (!profile_)
        return;

    profile_->blockCount[profile_key(frame.func, block)]++;

    // Maintain the active-loop stack: pop loops that do not contain the
    // new block; then handle entering a header (new activation or next
    // iteration of the innermost matching activation).
    const FuncAnalysis &fa = analysis(frame.func);
    const auto &loops = fa.loops->loops();

    while (!frame.activeLoops.empty() &&
           !loops[frame.activeLoops.back().loopIdx].contains(block)) {
        frame.activeLoops.pop_back();
    }

    // Entering a loop header?
    for (size_t li = 0; li < loops.size(); ++li) {
        if (loops[li].header != block)
            continue;
        if (!frame.activeLoops.empty() &&
            frame.activeLoops.back().loopIdx == static_cast<int>(li)) {
            // Back edge: next iteration.
            auto &act = frame.activeLoops.back();
            act.iteration++;
            profile_->loops[profile_key(frame.func, block)].totalIterations++;
        } else {
            // Fresh activation.
            LoopActivation act;
            act.loopIdx = static_cast<int>(li);
            frame.activeLoops.push_back(std::move(act));
            auto &lp = profile_->loops[profile_key(frame.func, block)];
            lp.activations++;
            lp.totalIterations++;
        }
        break;
    }
}

void
Interpreter::profileMemAccess(Frame &frame, const Operation &op, Addr addr)
{
    if (!profile_)
        return;

    const u64 key = profile_key(frame.func, op.seqId);
    profile_->memAccess[key]++;
    if (!profileCache_.probe(addr)) {
        profile_->memMiss[key]++;
        profileCache_.fill(addr);
    }

    // Cross-iteration dependence observation at every active loop level.
    const bool is_write = is_store(op.op);
    const FuncAnalysis &fa = analysis(frame.func);
    const auto &loops = fa.loops->loops();
    const u64 word = addr >> 3;
    for (auto &act : frame.activeLoops) {
        auto [it, fresh] = act.touched.try_emplace(
            word, std::make_pair(act.iteration, is_write));
        if (!fresh) {
            auto &[last_iter, any_write] = it->second;
            if (last_iter != act.iteration && (is_write || any_write)) {
                const Loop &loop = loops[act.loopIdx];
                profile_->loops[profile_key(frame.func, loop.header)]
                    .crossIterDep = true;
            }
            if (last_iter == act.iteration) {
                any_write = any_write || is_write;
            } else {
                last_iter = act.iteration;
                any_write = is_write;
            }
        }
    }
}

void
Interpreter::step()
{
    Frame &frame = stack_.back();
    const Function &fn = prog_.function(frame.func);
    const BasicBlock &bb = fn.block(frame.block);

    if (frame.opIdx >= bb.ops.size()) {
        // Fallthrough.
        fatal_if_not(bb.fallthrough != kNoBlock,
                     "control fell off block ", bb.name, " in ", fn.name);
        enterBlock(frame, bb.fallthrough);
        return;
    }

    const Operation &op = bb.ops[frame.opIdx];
    RegFile &regs = frame.regs;
    ++dynamicOps_;
    if (profile_) {
        ++profile_->dynamicOps;
        if (!frame.activeLoops.empty()) {
            const auto &loops = analysis(frame.func).loops->loops();
            for (auto &act : frame.activeLoops) {
                const Loop &loop = loops[act.loopIdx];
                profile_->loops[profile_key(frame.func, loop.header)]
                    .dynamicOps++;
            }
        }
    }

    auto src1_value = [&](RegClass expect) -> u64 {
        (void)expect;
        return op.immSrc1 ? static_cast<u64>(op.imm) : regs.read(op.src1);
    };

    switch (op.op) {
      case Opcode::NOP:
        break;

      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SHL:
      case Opcode::SHR: case Opcode::SRA: case Opcode::MIN:
      case Opcode::MAX:
        regs.write(op.dst,
                   eval_int(op.op, regs.read(op.src0),
                            src1_value(RegClass::GPR)));
        break;
      case Opcode::MOV:
        regs.write(op.dst, regs.read(op.src0));
        break;
      case Opcode::MOVI:
        regs.write(op.dst, static_cast<u64>(op.imm));
        break;
      case Opcode::CMP:
        regs.write(op.dst,
                   eval_cmp(op.cond, regs.read(op.src0),
                            src1_value(RegClass::GPR)) ? 1 : 0);
        break;

      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV:
        regs.write(op.dst, eval_fp(op.op, regs.read(op.src0),
                                   regs.read(op.src1)));
        break;
      case Opcode::FMOV:
        regs.write(op.dst, regs.read(op.src0));
        break;
      case Opcode::FMOVI:
        regs.write(op.dst, static_cast<u64>(op.imm));
        break;
      case Opcode::FCMP:
        regs.write(op.dst, eval_fcmp(op.cond, regs.read(op.src0),
                                     regs.read(op.src1)) ? 1 : 0);
        break;
      case Opcode::ITOF:
        regs.write(op.dst,
                   std::bit_cast<u64>(static_cast<double>(
                       static_cast<i64>(regs.read(op.src0)))));
        break;
      case Opcode::FTOI:
        regs.write(op.dst,
                   static_cast<u64>(static_cast<i64>(
                       std::bit_cast<double>(regs.read(op.src0)))));
        break;

      case Opcode::LOAD: {
        const Addr addr = regs.read(op.src0) + static_cast<u64>(op.imm);
        profileMemAccess(frame, op, addr);
        regs.write(op.dst, mem_.read(addr, op.memSize, op.memSigned));
        break;
      }
      case Opcode::LOADF: {
        const Addr addr = regs.read(op.src0) + static_cast<u64>(op.imm);
        profileMemAccess(frame, op, addr);
        regs.write(op.dst, mem_.read(addr, 8));
        break;
      }
      case Opcode::STORE: {
        const Addr addr = regs.read(op.src0) + static_cast<u64>(op.imm);
        profileMemAccess(frame, op, addr);
        mem_.write(addr, regs.read(op.src1), op.memSize);
        break;
      }
      case Opcode::STOREF: {
        const Addr addr = regs.read(op.src0) + static_cast<u64>(op.imm);
        profileMemAccess(frame, op, addr);
        mem_.write(addr, regs.read(op.src1), 8);
        break;
      }

      case Opcode::PBR:
        regs.write(op.dst, static_cast<u64>(op.imm));
        break;
      case Opcode::BR: {
        const bool taken = regs.readPred(op.src0);
        if (profile_) {
            const u64 key = profile_key(frame.func, op.seqId);
            profile_->branchExec[key]++;
            if (taken)
                profile_->branchTaken[key]++;
        }
        if (taken) {
            CodeRef ref = CodeRef::decode(regs.read(op.src1));
            panic_if_not(ref.kind == CodeRef::Kind::Block,
                         "BR to non-block ref");
            enterBlock(frame, ref.block);
            return;
        }
        break;
      }
      case Opcode::BRU: {
        CodeRef ref = CodeRef::decode(regs.read(op.src0));
        panic_if_not(ref.kind == CodeRef::Kind::Block, "BRU to non-block ref");
        enterBlock(frame, ref.block);
        return;
      }
      case Opcode::CALL: {
        CodeRef ref = CodeRef::decode(regs.read(op.src0));
        panic_if_not(ref.kind == CodeRef::Kind::Function,
                     "CALL to non-function ref");
        fatal_if_not(stack_.size() < 512, "call stack overflow (recursion?)");
        const Function &callee = prog_.function(ref.func);
        Frame callee_frame;
        callee_frame.func = ref.func;
        // Marshal arguments r1..rN.
        for (u16 a = 1; a <= callee.numArgs; ++a)
            callee_frame.regs.write(gpr(a), regs.read(gpr(a)));
        frame.opIdx++; // return past the CALL
        stack_.push_back(std::move(callee_frame));
        enterBlock(stack_.back(), 0);
        return;
      }
      case Opcode::RET: {
        fatal_if_not(stack_.size() > 1, "RET from the outermost frame");
        const Function &callee_fn = prog_.function(frame.func);
        u64 result = 0;
        if (callee_fn.returnsValue)
            result = regs.read(gpr(0));
        const bool returns_value = callee_fn.returnsValue;
        stack_.pop_back();
        if (returns_value)
            stack_.back().regs.write(gpr(0), result);
        return;
      }
      case Opcode::HALT:
        exitValue_ = regs.read(op.src0);
        halted_ = true;
        return;

      default:
        panic("interpreter: sequential programs cannot execute ", op.op);
    }

    frame.opIdx++;
}

InterpResult
Interpreter::run(u64 max_ops)
{
    while (!halted_) {
        fatal_if_not(dynamicOps_ < max_ops,
                     "interpreter exceeded ", max_ops, " operations");
        step();
    }
    return InterpResult{exitValue_, dynamicOps_};
}

GoldenRun
run_golden(const Program &prog, u64 max_ops)
{
    GoldenRun golden;
    golden.memory = std::make_unique<MemoryImage>();
    golden.memory->loadProgram(prog);
    Interpreter interp(prog, *golden.memory, &golden.profile);
    golden.result = interp.run(max_ops);
    return golden;
}

} // namespace voltron
