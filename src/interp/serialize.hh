/**
 * @file
 * Serialization of golden-run artifacts: the training Profile, the
 * InterpResult, and the golden data-segment image.
 *
 * The golden image is stored as one byte vector per Program data object
 * (in data-segment order) rather than as a whole MemoryImage: the only
 * consumer is the golden-memory comparison, which reads exactly those
 * ranges. Profile hash maps are emitted sorted by key so the encoding is
 * deterministic (see support/serialize.hh).
 */

#ifndef VOLTRON_INTERP_SERIALIZE_HH_
#define VOLTRON_INTERP_SERIALIZE_HH_

#include <vector>

#include "interp/interp.hh"
#include "interp/profile.hh"
#include "support/serialize.hh"

namespace voltron {

void serialize(ByteWriter &w, const LoopProfile &lp);
void serialize(ByteWriter &w, const Profile &profile);
void serialize(ByteWriter &w, const InterpResult &result);

bool deserialize(ByteReader &r, LoopProfile &lp);
bool deserialize(ByteReader &r, Profile &profile);
bool deserialize(ByteReader &r, InterpResult &result);

/** One byte vector per Program::data object, in order. */
using GoldenImage = std::vector<std::vector<u8>>;

/** Extract the data-segment contents of @p mem for @p prog's objects. */
GoldenImage extract_golden_image(const Program &prog,
                                 const MemoryImage &mem);

void serialize(ByteWriter &w, const GoldenImage &image);
bool deserialize(ByteReader &r, GoldenImage &image);

} // namespace voltron

#endif // VOLTRON_INTERP_SERIALIZE_HH_
