#include "interp/serialize.hh"

namespace voltron {

void
serialize(ByteWriter &w, const LoopProfile &lp)
{
    w.u64v(lp.activations);
    w.u64v(lp.totalIterations);
    w.boolean(lp.crossIterDep);
    w.u64v(lp.dynamicOps);
}

bool
deserialize(ByteReader &r, LoopProfile &lp)
{
    lp.activations = r.u64v();
    lp.totalIterations = r.u64v();
    lp.crossIterDep = r.boolean();
    lp.dynamicOps = r.u64v();
    return r.ok();
}

void
serialize(ByteWriter &w, const Profile &profile)
{
    const auto emit_u64 = [](ByteWriter &out, u64 v) { out.u64v(v); };
    w.u64Map(profile.blockCount, emit_u64);
    w.u64Map(profile.branchExec, emit_u64);
    w.u64Map(profile.branchTaken, emit_u64);
    w.u64Map(profile.memAccess, emit_u64);
    w.u64Map(profile.memMiss, emit_u64);
    w.u64Map(profile.loops, [](ByteWriter &out, const LoopProfile &lp) {
        serialize(out, lp);
    });
    w.u64v(profile.dynamicOps);
}

bool
deserialize(ByteReader &r, Profile &profile)
{
    const auto read_u64 = [](ByteReader &in) { return in.u64v(); };
    r.u64Map(profile.blockCount, read_u64, 8);
    r.u64Map(profile.branchExec, read_u64, 8);
    r.u64Map(profile.branchTaken, read_u64, 8);
    r.u64Map(profile.memAccess, read_u64, 8);
    r.u64Map(profile.memMiss, read_u64, 8);
    r.u64Map(
        profile.loops,
        [](ByteReader &in) {
            LoopProfile lp;
            deserialize(in, lp);
            return lp;
        },
        25);
    profile.dynamicOps = r.u64v();
    return r.ok();
}

void
serialize(ByteWriter &w, const InterpResult &result)
{
    w.u64v(result.exitValue);
    w.u64v(result.dynamicOps);
}

bool
deserialize(ByteReader &r, InterpResult &result)
{
    result.exitValue = r.u64v();
    result.dynamicOps = r.u64v();
    return r.ok();
}

GoldenImage
extract_golden_image(const Program &prog, const MemoryImage &mem)
{
    GoldenImage image;
    image.reserve(prog.data.size());
    for (const DataObject &obj : prog.data) {
        std::vector<u8> bytes(obj.size);
        mem.readBytes(obj.base, bytes.data(), obj.size);
        image.push_back(std::move(bytes));
    }
    return image;
}

void
serialize(ByteWriter &w, const GoldenImage &image)
{
    w.u64v(image.size());
    for (const std::vector<u8> &bytes : image)
        w.blob(bytes);
}

bool
deserialize(ByteReader &r, GoldenImage &image)
{
    const u64 n = r.count(8);
    image.clear();
    image.reserve(n);
    for (u64 i = 0; i < n && r.ok(); ++i)
        image.push_back(r.blob());
    return r.ok();
}

} // namespace voltron
