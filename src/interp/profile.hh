/**
 * @file
 * Execution profile gathered by the reference interpreter.
 *
 * The compiler consumes this exactly as the paper's compiler consumes
 * Trimaran profiles: branch bias for layout decisions, per-load miss
 * rates for eBUG edge weights, block counts for region weighting, and
 * the per-loop cross-iteration-dependence observation that defines
 * *statistical DOALL* loops.
 */

#ifndef VOLTRON_INTERP_PROFILE_HH_
#define VOLTRON_INTERP_PROFILE_HH_

#include <unordered_map>

#include "support/types.hh"

namespace voltron {

/** Key helpers: (function, local id) packed into a u64. */
inline u64
profile_key(FuncId func, u64 local)
{
    return (static_cast<u64>(func) << 32) | local;
}

/** Profile of one natural loop (keyed by function + header block). */
struct LoopProfile
{
    u64 activations = 0;    //!< times the loop was entered from outside
    u64 totalIterations = 0;
    bool crossIterDep = false; //!< cross-iteration memory dependence seen
    u64 dynamicOps = 0;        //!< dynamic ops executed inside the loop
};

/** Whole-program profile. */
struct Profile
{
    /** Dynamic execution count per block: key (func, block). */
    std::unordered_map<u64, u64> blockCount;

    /** Branch execution/taken counts: key (func, seqId of the BR). */
    std::unordered_map<u64, u64> branchExec, branchTaken;

    /** Memory access/miss counts: key (func, seqId of the LOAD/STORE). */
    std::unordered_map<u64, u64> memAccess, memMiss;

    /** Loop profiles: key (func, header block). */
    std::unordered_map<u64, LoopProfile> loops;

    /** Total dynamic operations executed. */
    u64 dynamicOps = 0;

    double
    missRate(FuncId func, u32 seq_id) const
    {
        auto a = memAccess.find(profile_key(func, seq_id));
        if (a == memAccess.end() || a->second == 0)
            return 0.0;
        auto m = memMiss.find(profile_key(func, seq_id));
        const u64 misses = m == memMiss.end() ? 0 : m->second;
        return static_cast<double>(misses) / static_cast<double>(a->second);
    }

    double
    takenRate(FuncId func, u32 seq_id) const
    {
        auto e = branchExec.find(profile_key(func, seq_id));
        if (e == branchExec.end() || e->second == 0)
            return 0.0;
        auto t = branchTaken.find(profile_key(func, seq_id));
        const u64 taken = t == branchTaken.end() ? 0 : t->second;
        return static_cast<double>(taken) / static_cast<double>(e->second);
    }

    u64
    blockExecs(FuncId func, BlockId block) const
    {
        auto it = blockCount.find(profile_key(func, block));
        return it == blockCount.end() ? 0 : it->second;
    }

    const LoopProfile *
    loop(FuncId func, BlockId header) const
    {
        auto it = loops.find(profile_key(func, header));
        return it == loops.end() ? nullptr : &it->second;
    }

    /** Mean trip count of a loop (0 when never activated). */
    double
    avgTripCount(FuncId func, BlockId header) const
    {
        const LoopProfile *lp = loop(func, header);
        if (!lp || lp->activations == 0)
            return 0.0;
        return static_cast<double>(lp->totalIterations) /
               static_cast<double>(lp->activations);
    }
};

} // namespace voltron

#endif // VOLTRON_INTERP_PROFILE_HH_
