/**
 * @file
 * Natural-loop detection and counted-loop recognition.
 *
 * Loops are discovered from back edges (edge t->h where h dominates t) and
 * arranged into a forest by containment. A loop is additionally recognised
 * as *counted* when it matches the canonical shape the ProgramBuilder
 * emits: the header compares the induction variable against a
 * loop-invariant bound and exits when the compare is taken; a single latch
 * increments the variable by a constant. Counted loops are the inputs to
 * DOALL chunking.
 */

#ifndef VOLTRON_IR_LOOPS_HH_
#define VOLTRON_IR_LOOPS_HH_

#include <set>
#include <vector>

#include "ir/cfg.hh"
#include "ir/dom.hh"

namespace voltron {

/** Canonical counted-loop description (valid() iff recognised). */
struct CountedLoop
{
    RegId ivar;           //!< induction variable (GPR)
    i64 step = 0;         //!< constant per-iteration increment
    RegId boundReg;       //!< loop-invariant bound register, or invalid
    i64 boundImm = 0;     //!< immediate bound when boundReg invalid
    CmpCond exitCond = CmpCond::GE; //!< header compare (exit when true)

    bool valid() const { return step != 0; }
};

/** One natural loop. */
struct Loop
{
    BlockId header = kNoBlock;
    std::set<BlockId> blocks;          //!< all blocks, header included
    std::vector<BlockId> latches;      //!< sources of back edges
    std::vector<BlockId> exitTargets;  //!< blocks outside jumped to
    int parent = -1;                   //!< index of enclosing loop, or -1
    u32 depth = 1;                     //!< nesting depth (outermost = 1)
    CountedLoop counted;               //!< canonical shape, if recognised

    bool contains(BlockId b) const { return blocks.count(b) != 0; }
};

/** Loop forest of one function. */
class LoopForest
{
  public:
    LoopForest(const Function &fn, const Cfg &cfg, const DomTree &dom);

    const std::vector<Loop> &loops() const { return loops_; }

    /** Index of the innermost loop containing @p b, or -1. */
    int innermost(BlockId b) const { return innermost_.at(b); }

    /** Indices of outermost loops (parent == -1). */
    std::vector<int> outermost() const;

  private:
    std::vector<Loop> loops_;
    std::vector<int> innermost_;

    void recogniseCounted(const Function &fn, Loop &loop);
};

} // namespace voltron

#endif // VOLTRON_IR_LOOPS_HH_
