#include "ir/scc.hh"

#include <algorithm>

namespace voltron {

SccResult
tarjan_scc(const std::vector<std::vector<u32>> &adj)
{
    const u32 n = static_cast<u32>(adj.size());
    SccResult result;
    result.componentOf.assign(n, 0);

    std::vector<u32> index(n, 0), lowlink(n, 0);
    std::vector<bool> on_stack(n, false), visited(n, false);
    std::vector<u32> stack;
    u32 next_index = 1;

    // Iterative Tarjan with an explicit work stack of (node, child cursor).
    struct Frame { u32 node; size_t child; };
    std::vector<Frame> work;

    for (u32 start = 0; start < n; ++start) {
        if (visited[start])
            continue;
        work.push_back({start, 0});
        while (!work.empty()) {
            Frame &f = work.back();
            u32 v = f.node;
            if (f.child == 0) {
                visited[v] = true;
                index[v] = lowlink[v] = next_index++;
                stack.push_back(v);
                on_stack[v] = true;
            }
            bool descended = false;
            while (f.child < adj[v].size()) {
                u32 w = adj[v][f.child++];
                if (!visited[w]) {
                    work.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (on_stack[w])
                    lowlink[v] = std::min(lowlink[v], index[w]);
            }
            if (descended)
                continue;
            // All children done: maybe pop a component, then propagate
            // lowlink to the parent.
            if (lowlink[v] == index[v]) {
                while (true) {
                    u32 w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    result.componentOf[w] = result.numComponents;
                    if (w == v)
                        break;
                }
                ++result.numComponents;
            }
            work.pop_back();
            if (!work.empty()) {
                u32 parent = work.back().node;
                lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
            }
        }
    }
    return result;
}

} // namespace voltron
