#include "ir/function.hh"

#include "ir/cfg.hh"

namespace voltron {

void
print_function(std::ostream &os, const Function &fn)
{
    os << "func f" << fn.id << " " << fn.name << "(" << fn.numArgs
       << " args)" << (fn.returnsValue ? " -> r0" : "") << "\n";
    for (const BasicBlock &bb : fn.blocks) {
        os << "  bb" << bb.id << " <" << bb.name << ">";
        if (bb.region != kNoRegion)
            os << " region=" << bb.region;
        if (bb.scheduled())
            os << " schedLen=" << bb.schedLen;
        os << ":\n";
        for (size_t i = 0; i < bb.ops.size(); ++i) {
            os << "    ";
            if (bb.scheduled())
                os << "[" << bb.issueCycles[i] << "] ";
            os << bb.ops[i] << "\n";
        }
        if (bb.fallthrough != kNoBlock)
            os << "    -> fallthrough bb" << bb.fallthrough << "\n";
    }
}

void
print_program(std::ostream &os, const Program &prog)
{
    os << "program " << prog.name << "\n";
    for (const auto &obj : prog.data) {
        os << "  data " << obj.name << " @0x" << std::hex << obj.base
           << std::dec << " size=" << obj.size << " sym=" << obj.symbol
           << "\n";
    }
    for (const Function &fn : prog.functions)
        print_function(os, fn);
}

} // namespace voltron
