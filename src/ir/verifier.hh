/**
 * @file
 * IR verifier.
 *
 * Checks the structural invariants the rest of the system relies on:
 * block-local PBR targets, register-class correctness of operands,
 * terminator placement, fallthrough sanity, call-convention conformance,
 * memory-op well-formedness, and reachability. The verifier runs on
 * sequential input programs (no Voltron comm ops allowed) and, in
 * relaxed mode, on compiled per-core programs (comm ops allowed).
 */

#ifndef VOLTRON_IR_VERIFIER_HH_
#define VOLTRON_IR_VERIFIER_HH_

#include <string>
#include <vector>

#include "ir/function.hh"

namespace voltron {

/** Verification mode. */
enum class VerifyMode {
    Sequential, //!< input programs: Voltron comm/TM ops are errors
    PerCore,    //!< compiled per-core programs: comm/TM ops allowed
};

/** Result of verification: empty errors means the program is well formed. */
struct VerifyResult
{
    std::vector<std::string> errors;
    bool ok() const { return errors.empty(); }
    std::string joined() const;
};

/** Verify one function. */
VerifyResult verify_function(const Program &prog, const Function &fn,
                             VerifyMode mode);

/** Verify a whole program (all functions + data-segment sanity). */
VerifyResult verify_program(const Program &prog,
                            VerifyMode mode = VerifyMode::Sequential);

/** Verify and fatal() with the error list if anything is wrong. */
void verify_or_die(const Program &prog,
                   VerifyMode mode = VerifyMode::Sequential);

} // namespace voltron

#endif // VOLTRON_IR_VERIFIER_HH_
