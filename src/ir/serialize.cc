#include "ir/serialize.hh"

namespace voltron {

namespace {

void
put_reg(ByteWriter &w, const RegId &reg)
{
    w.u8v(static_cast<u8>(reg.cls));
    w.u16v(reg.idx);
}

RegId
get_reg(ByteReader &r)
{
    RegId reg;
    reg.cls = static_cast<RegClass>(r.u8v());
    reg.idx = r.u16v();
    return reg;
}

} // namespace

void
serialize(ByteWriter &w, const Operation &op)
{
    w.u8v(static_cast<u8>(op.op));
    put_reg(w, op.dst);
    put_reg(w, op.src0);
    put_reg(w, op.src1);
    w.i64v(op.imm);
    w.u8v(static_cast<u8>(op.cond));
    w.u8v(op.memSize);
    w.boolean(op.memSigned);
    w.boolean(op.immSrc1);
    w.u8v(static_cast<u8>(op.dir));
    w.u8v(static_cast<u8>(op.commTag));
    w.u32v(op.memSym);
    w.u32v(op.seqId);
}

bool
deserialize(ByteReader &r, Operation &op)
{
    op.op = static_cast<Opcode>(r.u8v());
    op.dst = get_reg(r);
    op.src0 = get_reg(r);
    op.src1 = get_reg(r);
    op.imm = r.i64v();
    op.cond = static_cast<CmpCond>(r.u8v());
    op.memSize = r.u8v();
    op.memSigned = r.boolean();
    op.immSrc1 = r.boolean();
    op.dir = static_cast<Dir>(r.u8v());
    op.commTag = static_cast<Operation::CommTag>(r.u8v());
    op.memSym = r.u32v();
    op.seqId = r.u32v();
    return r.ok();
}

void
serialize(ByteWriter &w, const BasicBlock &bb)
{
    w.u32v(bb.id);
    w.str(bb.name);
    w.u32v(bb.fallthrough);
    w.u32v(bb.region);
    w.u32v(bb.schedLen);
    w.u64v(bb.ops.size());
    for (const Operation &op : bb.ops)
        serialize(w, op);
    w.u64v(bb.issueCycles.size());
    for (u32 cycle : bb.issueCycles)
        w.u32v(cycle);
}

bool
deserialize(ByteReader &r, BasicBlock &bb)
{
    bb.id = r.u32v();
    bb.name = r.str();
    bb.fallthrough = r.u32v();
    bb.region = r.u32v();
    bb.schedLen = r.u32v();
    const u64 num_ops = r.count(/*min op size*/ 30);
    bb.ops.clear();
    bb.ops.reserve(num_ops);
    for (u64 i = 0; i < num_ops && r.ok(); ++i) {
        Operation op;
        deserialize(r, op);
        bb.ops.push_back(op);
    }
    const u64 num_cycles = r.count(4);
    bb.issueCycles.clear();
    bb.issueCycles.reserve(num_cycles);
    for (u64 i = 0; i < num_cycles && r.ok(); ++i)
        bb.issueCycles.push_back(r.u32v());
    return r.ok();
}

void
serialize(ByteWriter &w, const Function &fn)
{
    w.u32v(fn.id);
    w.str(fn.name);
    w.u16v(fn.numArgs);
    w.boolean(fn.returnsValue);
    w.u16v(fn.nextGpr);
    w.u16v(fn.nextFpr);
    w.u16v(fn.nextPr);
    w.u16v(fn.nextBtr);
    w.u64v(fn.blocks.size());
    for (const BasicBlock &bb : fn.blocks)
        serialize(w, bb);
}

bool
deserialize(ByteReader &r, Function &fn)
{
    fn.id = r.u32v();
    fn.name = r.str();
    fn.numArgs = r.u16v();
    fn.returnsValue = r.boolean();
    fn.nextGpr = r.u16v();
    fn.nextFpr = r.u16v();
    fn.nextPr = r.u16v();
    fn.nextBtr = r.u16v();
    const u64 num_blocks = r.count(/*min block size*/ 32);
    fn.blocks.clear();
    fn.blocks.reserve(num_blocks);
    for (u64 i = 0; i < num_blocks && r.ok(); ++i) {
        BasicBlock bb;
        deserialize(r, bb);
        fn.blocks.push_back(std::move(bb));
    }
    return r.ok();
}

void
serialize(ByteWriter &w, const DataObject &obj)
{
    w.str(obj.name);
    w.u64v(obj.base);
    w.u64v(obj.size);
    w.u32v(obj.symbol);
    w.blob(obj.init);
}

bool
deserialize(ByteReader &r, DataObject &obj)
{
    obj.name = r.str();
    obj.base = r.u64v();
    obj.size = r.u64v();
    obj.symbol = r.u32v();
    obj.init = r.blob();
    return r.ok();
}

void
serialize(ByteWriter &w, const Program &prog)
{
    w.str(prog.name);
    w.u64v(prog.functions.size());
    for (const Function &fn : prog.functions)
        serialize(w, fn);
    w.u64v(prog.data.size());
    for (const DataObject &obj : prog.data)
        serialize(w, obj);
    // funcByName is a sorted map already — emit verbatim.
    w.u64v(prog.funcByName.size());
    for (const auto &[name, id] : prog.funcByName) {
        w.str(name);
        w.u32v(id);
    }
}

bool
deserialize(ByteReader &r, Program &prog)
{
    prog.name = r.str();
    const u64 num_funcs = r.count(/*min function size*/ 32);
    prog.functions.clear();
    prog.functions.reserve(num_funcs);
    for (u64 i = 0; i < num_funcs && r.ok(); ++i) {
        Function fn;
        deserialize(r, fn);
        prog.functions.push_back(std::move(fn));
    }
    const u64 num_objs = r.count(/*min object size*/ 36);
    prog.data.clear();
    prog.data.reserve(num_objs);
    for (u64 i = 0; i < num_objs && r.ok(); ++i) {
        DataObject obj;
        deserialize(r, obj);
        prog.data.push_back(std::move(obj));
    }
    const u64 num_names = r.count(12);
    prog.funcByName.clear();
    for (u64 i = 0; i < num_names && r.ok(); ++i) {
        std::string name = r.str();
        const FuncId id = r.u32v();
        prog.funcByName[std::move(name)] = id;
    }
    return r.ok();
}

u64
program_content_hash(const Program &prog)
{
    ByteWriter w;
    serialize(w, prog);
    return fnv1a(w.bytes());
}

} // namespace voltron
