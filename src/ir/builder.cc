#include "ir/builder.hh"

#include <cstring>

#include "support/error.hh"

namespace voltron {

ProgramBuilder::ProgramBuilder(const std::string &program_name)
{
    prog_.name = program_name;
}

Program
ProgramBuilder::take()
{
    panic_if_not(!taken_, "ProgramBuilder::take called twice");
    panic_if_not(curFunc_ == kNoFunc,
                 "ProgramBuilder::take inside an open function");
    taken_ = true;
    return std::move(prog_);
}

Function &
ProgramBuilder::fn()
{
    panic_if_not(curFunc_ != kNoFunc, "no current function");
    return prog_.function(curFunc_);
}

BasicBlock &
ProgramBuilder::bb()
{
    panic_if_not(curBlock_ != kNoBlock, "no current block");
    return fn().block(curBlock_);
}

FuncId
ProgramBuilder::beginFunction(const std::string &name, u16 num_args,
                              bool returns_value)
{
    panic_if_not(curFunc_ == kNoFunc, "nested beginFunction");
    fatal_if_not(num_args <= 7, "at most 7 register arguments supported");
    Function &f = prog_.addFunction(name, num_args, returns_value);
    curFunc_ = f.id;
    curBlock_ = f.addBlock("entry");
    return curFunc_;
}

void
ProgramBuilder::endFunction()
{
    panic_if_not(curFunc_ != kNoFunc, "endFunction without beginFunction");
    curFunc_ = kNoFunc;
    curBlock_ = kNoBlock;
}

BlockId
ProgramBuilder::newBlock(const std::string &name)
{
    return fn().addBlock(name);
}

void
ProgramBuilder::setBlock(BlockId b)
{
    panic_if_not(b < fn().blocks.size(), "setBlock: bad block id");
    curBlock_ = b;
}

void
ProgramBuilder::fallthroughTo(BlockId next)
{
    bb().fallthrough = next;
    setBlock(next);
}

Addr
ProgramBuilder::allocData(const std::string &name, u64 size, u64 align)
{
    panic_if_not(align != 0 && (align & (align - 1)) == 0,
                 "alignment must be a power of two");
    dataCursor_ = (dataCursor_ + align - 1) & ~(align - 1);
    DataObject obj;
    obj.name = name;
    obj.base = dataCursor_;
    obj.size = size;
    obj.symbol = nextSymbol_++;
    prog_.data.push_back(std::move(obj));
    lastSymbol_ = prog_.data.back().symbol;
    dataCursor_ += size;
    // Pad objects apart by a cache line so distinct symbols never share
    // a line (keeps the alias model and the TM line-granularity honest).
    dataCursor_ += 64;
    return prog_.data.back().base;
}

Addr
ProgramBuilder::allocArrayI64(const std::string &name,
                              const std::vector<i64> &values)
{
    Addr base = allocData(name, values.size() * 8);
    DataObject &obj = prog_.data.back();
    obj.init.resize(values.size() * 8);
    std::memcpy(obj.init.data(), values.data(), obj.init.size());
    return base;
}

Addr
ProgramBuilder::allocArrayF64(const std::string &name,
                              const std::vector<double> &values)
{
    Addr base = allocData(name, values.size() * 8);
    DataObject &obj = prog_.data.back();
    obj.init.resize(values.size() * 8);
    std::memcpy(obj.init.data(), values.data(), obj.init.size());
    return base;
}

u32
ProgramBuilder::symbolOf(const std::string &name) const
{
    for (const auto &obj : prog_.data)
        if (obj.name == name)
            return obj.symbol;
    fatal("no data object named ", name);
}

Addr
ProgramBuilder::addrOf(const std::string &name) const
{
    for (const auto &obj : prog_.data)
        if (obj.name == name)
            return obj.base;
    fatal("no data object named ", name);
}

RegId
ProgramBuilder::emit(Operation op)
{
    op.seqId = nextSeqId_++;
    bb().append(op);
    return op.dst;
}

RegId
ProgramBuilder::emitLoad(RegId dst, RegId base, i64 off, u32 sym, u8 size,
                         bool sign)
{
    Operation op = ops::load(dst, base, off, size, sign);
    op.memSym = sym;
    return emit(op);
}

void
ProgramBuilder::emitStore(RegId base, i64 off, RegId value, u32 sym, u8 size)
{
    Operation op = ops::store(base, off, value, size);
    op.memSym = sym;
    emit(op);
}

RegId
ProgramBuilder::emitLoadF(RegId dst, RegId base, i64 off, u32 sym)
{
    Operation op = ops::loadf(dst, base, off);
    op.memSym = sym;
    return emit(op);
}

void
ProgramBuilder::emitStoreF(RegId base, i64 off, RegId value, u32 sym)
{
    Operation op = ops::storef(base, off, value);
    op.memSym = sym;
    emit(op);
}

RegId
ProgramBuilder::emitImm(i64 value)
{
    RegId dst = newGpr();
    emit(ops::movi(dst, value));
    return dst;
}

RegId
ProgramBuilder::emitCall(FuncId callee, const std::vector<RegId> &args)
{
    fatal_if_not(args.size() <= 7, "too many call arguments");
    const Function &target = prog_.function(callee);
    fatal_if_not(args.size() == target.numArgs,
                 "call to ", target.name, ": argument count mismatch");
    // Marshal arguments into the conventional r1..rN.
    for (size_t i = 0; i < args.size(); ++i)
        emit(ops::mov(gpr(static_cast<u16>(i + 1)), args[i]));
    RegId target_btr = newBtr();
    emit(ops::pbr(target_btr, CodeRef::to_function(callee)));
    emit(ops::call(target_btr));
    if (target.returnsValue) {
        RegId result = newGpr();
        emit(ops::mov(result, gpr(0)));
        return result;
    }
    return {};
}

void
ProgramBuilder::emitHalt(RegId exit_value)
{
    emit(ops::halt(exit_value));
}

void
ProgramBuilder::emitBranch(RegId pred, BlockId target)
{
    RegId target_btr = newBtr();
    emit(ops::pbr(target_btr, CodeRef::to_block(curFunc_, target)));
    emit(ops::br(pred, target_btr));
}

void
ProgramBuilder::emitJump(BlockId target)
{
    RegId target_btr = newBtr();
    emit(ops::pbr(target_btr, CodeRef::to_block(curFunc_, target)));
    emit(ops::bru(target_btr));
}

LoopHandles
ProgramBuilder::beginCountedLoop(RegId ivar, i64 start, RegId bound_reg,
                                 i64 bound_imm, i64 step,
                                 const std::string &tag)
{
    fatal_if_not(step != 0, "counted loop step must be non-zero");
    LoopHandles loop;
    loop.ivar = ivar;
    loop.header = newBlock(tag + ".header");
    loop.bodyEntry = newBlock(tag + ".body");
    loop.latch = newBlock(tag + ".latch");
    loop.exit = newBlock(tag + ".exit");

    // i = start in the predecessor block, then fall into the header.
    emit(ops::movi(ivar, start));
    fallthroughTo(loop.header);

    // header: p = (i >= bound) [or <= for negative step]; br p -> exit.
    RegId p = newPr();
    CmpCond cond = step > 0 ? CmpCond::GE : CmpCond::LE;
    if (bound_reg.valid())
        emit(ops::cmp(cond, p, ivar, bound_reg));
    else
        emit(ops::cmpi(cond, p, ivar, bound_imm));
    emitBranch(p, loop.exit);
    bb().fallthrough = loop.bodyEntry;
    pendingStep_[loop.header] = step;

    setBlock(loop.bodyEntry);
    return loop;
}

LoopHandles
ProgramBuilder::forLoop(RegId ivar, i64 start, i64 bound, i64 step,
                        const std::string &tag)
{
    return beginCountedLoop(ivar, start, RegId{}, bound, step, tag);
}

LoopHandles
ProgramBuilder::forLoopReg(RegId ivar, i64 start, RegId bound, i64 step,
                           const std::string &tag)
{
    return beginCountedLoop(ivar, start, bound, 0, step, tag);
}

void
ProgramBuilder::endCountedLoop(const LoopHandles &loop)
{
    // Find the loop's step by re-deriving it from the latch we emit here:
    // current (last body) block falls through to the latch, which
    // increments ivar and jumps back to the header.
    bb().fallthrough = loop.latch;
    setBlock(loop.latch);
    // The step was captured in beginCountedLoop via the header compare
    // direction; the latch increment uses the step stored there. To keep
    // the builder stateless we re-emit from the recorded handle: the step
    // is encoded in the header's compare direction and the caller's
    // original request; we stash it in the latch via latchStep_.
    panic_if_not(pendingStep_.count(loop.header),
                 "endCountedLoop without matching beginCountedLoop");
    i64 step = pendingStep_[loop.header];
    pendingStep_.erase(loop.header);
    emit(ops::addi(loop.ivar, loop.ivar, step));
    emitJump(loop.header);
    setBlock(loop.exit);
}

IfHandles
ProgramBuilder::beginIf(RegId pred, bool with_else, const std::string &tag)
{
    IfHandles handles;
    handles.thenBlock = newBlock(tag + ".then");
    if (with_else)
        handles.elseBlock = newBlock(tag + ".else");
    handles.join = newBlock(tag + ".join");

    emitBranch(pred, handles.thenBlock);
    bb().fallthrough = with_else ? handles.elseBlock : handles.join;

    setBlock(handles.thenBlock);
    return handles;
}

void
ProgramBuilder::elseBranch(const IfHandles &handles)
{
    panic_if_not(handles.elseBlock != kNoBlock, "if has no else arm");
    // Close the then arm.
    emitJump(handles.join);
    setBlock(handles.elseBlock);
}

void
ProgramBuilder::endIf(const IfHandles &handles)
{
    // Close the current arm into the join.
    bb().fallthrough = handles.join;
    setBlock(handles.join);
}

} // namespace voltron
