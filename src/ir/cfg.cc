#include "ir/cfg.hh"

#include <algorithm>

#include "support/error.hh"

namespace voltron {

BlockId
resolve_branch_target(const BasicBlock &bb, size_t op_idx)
{
    const Operation &branch = bb.ops[op_idx];
    RegId target_btr =
        branch.op == Opcode::BRU ? branch.src0 : branch.src1;
    for (size_t i = op_idx; i-- > 0;) {
        const Operation &op = bb.ops[i];
        if (op.op == Opcode::PBR && op.dst == target_btr) {
            CodeRef ref = op.codeRef();
            if (ref.kind == CodeRef::Kind::Block)
                return ref.block;
            return kNoBlock;
        }
    }
    return kNoBlock;
}

Cfg::Cfg(const Function &fn) : fn_(&fn)
{
    const size_t n = fn.blocks.size();
    flow_.resize(n);

    for (BlockId b = 0; b < n; ++b) {
        const BasicBlock &bb = fn.blocks[b];
        BlockFlow &bf = flow_[b];
        for (size_t i = 0; i < bb.ops.size(); ++i) {
            const Operation &op = bb.ops[i];
            switch (op.op) {
              case Opcode::BR:
              case Opcode::BRU: {
                BlockId target = resolve_branch_target(bb, i);
                panic_if_not(target != kNoBlock,
                             "branch in ", bb.name,
                             " has no block-local PBR target");
                bf.succs.push_back(target);
                if (op.op == Opcode::BRU)
                    bf.endsUnconditional = true;
                break;
              }
              case Opcode::RET:
              case Opcode::HALT:
              case Opcode::SLEEP:
                bf.exits = true;
                bf.endsUnconditional = true;
                break;
              default:
                break;
            }
        }
        if (!bf.endsUnconditional && bb.fallthrough != kNoBlock)
            bf.succs.push_back(bb.fallthrough);

        // Dedup while preserving order.
        std::vector<BlockId> unique;
        for (BlockId s : bf.succs)
            if (std::find(unique.begin(), unique.end(), s) == unique.end())
                unique.push_back(s);
        bf.succs = std::move(unique);
    }

    for (BlockId b = 0; b < n; ++b)
        for (BlockId s : flow_[b].succs)
            flow_[s].preds.push_back(b);

    // Reverse postorder via iterative DFS from the entry.
    rpoIndex_.assign(n, kNoBlock);
    std::vector<u8> state(n, 0); // 0 unvisited, 1 on stack, 2 done
    std::vector<std::pair<BlockId, size_t>> stack;
    std::vector<BlockId> postorder;
    if (n > 0) {
        stack.emplace_back(0, 0);
        state[0] = 1;
        while (!stack.empty()) {
            auto &[b, next] = stack.back();
            if (next < flow_[b].succs.size()) {
                BlockId s = flow_[b].succs[next++];
                if (state[s] == 0) {
                    state[s] = 1;
                    stack.emplace_back(s, 0);
                }
            } else {
                postorder.push_back(b);
                state[b] = 2;
                stack.pop_back();
            }
        }
    }
    rpo_.assign(postorder.rbegin(), postorder.rend());
    for (u32 i = 0; i < rpo_.size(); ++i)
        rpoIndex_[rpo_[i]] = i;
}

} // namespace voltron
