#include "ir/liveness.hh"

#include "ir/cfg.hh"
#include "support/error.hh"

namespace voltron {

OpEffects
op_effects(const Program &prog, const Function &fn, const BasicBlock &bb,
           size_t op_idx)
{
    const Operation &op = bb.ops[op_idx];
    OpEffects fx;
    fx.uses = op.uses();
    fx.def = op.def();

    switch (op.op) {
      case Opcode::CALL: {
        // Resolve the callee to expose argument/return registers.
        for (size_t j = op_idx; j-- > 0;) {
            const Operation &def = bb.ops[j];
            if (def.op == Opcode::PBR && def.dst == op.src0) {
                CodeRef ref = def.codeRef();
                panic_if_not(ref.kind == CodeRef::Kind::Function,
                             "call PBR is not a function ref");
                const Function &callee = prog.function(ref.func);
                for (u16 a = 1; a <= callee.numArgs; ++a)
                    fx.uses.push_back(gpr(a));
                if (callee.returnsValue)
                    fx.def = gpr(0);
                break;
            }
        }
        break;
      }
      case Opcode::RET:
        if (fn.returnsValue)
            fx.uses.push_back(gpr(0));
        break;
      default:
        break;
    }
    return fx;
}

Liveness::Liveness(const Program &prog, const Function &fn, const Cfg &cfg)
    : prog_(&prog), fn_(&fn)
{
    const size_t n = fn.blocks.size();
    liveIn_.resize(n);
    liveOut_.resize(n);

    // Per-block gen (upward-exposed uses) and kill (defs).
    std::vector<std::set<RegId>> gen(n), kill(n);
    for (BlockId b = 0; b < n; ++b) {
        const BasicBlock &bb = fn.blocks[b];
        for (size_t i = 0; i < bb.ops.size(); ++i) {
            OpEffects fx = op_effects(prog, fn, bb, i);
            for (RegId use : fx.uses)
                if (!kill[b].count(use))
                    gen[b].insert(use);
            if (fx.def.valid())
                kill[b].insert(fx.def);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate blocks backwards (reverse RPO converges fast).
        const auto &rpo = cfg.rpo();
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            BlockId b = *it;
            std::set<RegId> out;
            for (BlockId s : cfg.succs(b))
                out.insert(liveIn_[s].begin(), liveIn_[s].end());
            std::set<RegId> in = gen[b];
            for (RegId r : out)
                if (!kill[b].count(r))
                    in.insert(r);
            if (out != liveOut_[b] || in != liveIn_[b]) {
                liveOut_[b] = std::move(out);
                liveIn_[b] = std::move(in);
                changed = true;
            }
        }
    }
}

std::set<RegId>
Liveness::liveBefore(BlockId b, size_t op_idx) const
{
    const BasicBlock &bb = fn_->block(b);
    std::set<RegId> live = liveOut_.at(b);
    for (size_t i = bb.ops.size(); i-- > op_idx;) {
        OpEffects fx = op_effects(*prog_, *fn_, bb, i);
        if (fx.def.valid())
            live.erase(fx.def);
        for (RegId use : fx.uses)
            live.insert(use);
    }
    return live;
}

} // namespace voltron
