/**
 * @file
 * Dominator tree (Cooper-Harvey-Kennedy iterative algorithm).
 */

#ifndef VOLTRON_IR_DOM_HH_
#define VOLTRON_IR_DOM_HH_

#include <vector>

#include "ir/cfg.hh"

namespace voltron {

/** Dominator information for one function. */
class DomTree
{
  public:
    explicit DomTree(const Cfg &cfg);

    /** Immediate dominator of @p b (entry's idom is itself). */
    BlockId idom(BlockId b) const { return idom_.at(b); }

    /** True if @p a dominates @p b (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

  private:
    const Cfg *cfg_;
    std::vector<BlockId> idom_;
};

} // namespace voltron

#endif // VOLTRON_IR_DOM_HH_
