/**
 * @file
 * Classic backwards liveness over all four register classes.
 *
 * CALL ops implicitly use the argument registers r1..rN of the callee and
 * define r0 when the callee returns a value; RET implicitly uses r0 of a
 * value-returning function; HALT uses its exit register. This keeps the
 * call convention visible to the analysis.
 */

#ifndef VOLTRON_IR_LIVENESS_HH_
#define VOLTRON_IR_LIVENESS_HH_

#include <set>
#include <vector>

#include "ir/cfg.hh"

namespace voltron {

/** Registers an op uses/defs, with the call convention made explicit. */
struct OpEffects
{
    std::vector<RegId> uses;
    RegId def;
};

/** Effective uses/defs of @p op within @p prog (resolving call targets). */
OpEffects op_effects(const Program &prog, const Function &fn,
                     const BasicBlock &bb, size_t op_idx);

/** Per-block live-in/live-out sets. */
class Liveness
{
  public:
    Liveness(const Program &prog, const Function &fn, const Cfg &cfg);

    const std::set<RegId> &liveIn(BlockId b) const { return liveIn_.at(b); }
    const std::set<RegId> &liveOut(BlockId b) const
    {
        return liveOut_.at(b);
    }

    /** Registers live immediately *before* op @p op_idx of block @p b. */
    std::set<RegId> liveBefore(BlockId b, size_t op_idx) const;

  private:
    const Program *prog_;
    const Function *fn_;
    std::vector<std::set<RegId>> liveIn_, liveOut_;
};

} // namespace voltron

#endif // VOLTRON_IR_LIVENESS_HH_
