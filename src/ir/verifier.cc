#include "ir/verifier.hh"

#include <sstream>

#include "ir/cfg.hh"
#include "support/error.hh"

namespace voltron {

namespace {

/** Expected operand classes for an opcode; None means "slot unused". */
struct OperandSpec
{
    RegClass dst = RegClass::None;
    RegClass src0 = RegClass::None;
    RegClass src1 = RegClass::None;
};

OperandSpec
spec_for(const Operation &op)
{
    using RC = RegClass;
    switch (op.op) {
      case Opcode::NOP:
      case Opcode::RET:
      case Opcode::SLEEP:
      case Opcode::MODE_SWITCH:
      case Opcode::XBEGIN:
      case Opcode::XCOMMIT:
      case Opcode::XABORT:
        return {};
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SHL:
      case Opcode::SHR: case Opcode::SRA: case Opcode::MIN:
      case Opcode::MAX:
        return {RC::GPR, RC::GPR, op.immSrc1 ? RC::None : RC::GPR};
      case Opcode::MOV:
        return {RC::GPR, RC::GPR, RC::None};
      case Opcode::MOVI:
        return {RC::GPR, RC::None, RC::None};
      case Opcode::CMP:
        return {RC::PR, RC::GPR, op.immSrc1 ? RC::None : RC::GPR};
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV:
        return {RC::FPR, RC::FPR, RC::FPR};
      case Opcode::FMOV:
        return {RC::FPR, RC::FPR, RC::None};
      case Opcode::FMOVI:
        return {RC::FPR, RC::None, RC::None};
      case Opcode::FCMP:
        return {RC::PR, RC::FPR, RC::FPR};
      case Opcode::ITOF:
        return {RC::FPR, RC::GPR, RC::None};
      case Opcode::FTOI:
        return {RC::GPR, RC::FPR, RC::None};
      case Opcode::LOAD:
        return {RC::GPR, RC::GPR, RC::None};
      case Opcode::STORE:
        return {RC::None, RC::GPR, RC::GPR};
      case Opcode::LOADF:
        return {RC::FPR, RC::GPR, RC::None};
      case Opcode::STOREF:
        return {RC::None, RC::GPR, RC::FPR};
      case Opcode::PBR:
        return {RC::BTR, RC::None, RC::None};
      case Opcode::BR:
        return {RC::None, RC::PR, RC::BTR};
      case Opcode::BRU:
      case Opcode::CALL:
        return {RC::None, RC::BTR, RC::None};
      case Opcode::HALT:
        return {RC::None, RC::GPR, RC::None};
      // Comm ops carry any-class payloads; classes checked loosely below.
      case Opcode::PUT:
      case Opcode::BCAST:
      case Opcode::SEND:
      case Opcode::GET:
      case Opcode::RECV:
        return {};
      case Opcode::SPAWN:
        return {RC::None, RC::None, RC::BTR};
      case Opcode::XVALIDATE:
        return {RC::PR, RC::None, RC::None};
      default:
        return {};
    }
}

class Verifier
{
  public:
    Verifier(const Program &prog, const Function &fn, VerifyMode mode)
        : prog_(prog), fn_(fn), mode_(mode)
    {}

    void
    run(VerifyResult &out)
    {
        if (fn_.blocks.empty()) {
            error(kNoBlock, 0, "function has no blocks");
            out.errors = std::move(errors_);
            return;
        }
        for (const BasicBlock &bb : fn_.blocks)
            checkBlock(bb);
        checkCfg();
        out.errors.insert(out.errors.end(), errors_.begin(), errors_.end());
    }

  private:
    const Program &prog_;
    const Function &fn_;
    VerifyMode mode_;
    std::vector<std::string> errors_;

    template <typename... Args>
    void
    error(BlockId b, size_t op_idx, const Args &...args)
    {
        std::ostringstream os;
        os << fn_.name << "/bb" << b << "/op" << op_idx << ": ";
        detail::format_into(os, args...);
        errors_.push_back(os.str());
    }

    void
    checkOperandClasses(const BasicBlock &bb, size_t i)
    {
        const Operation &op = bb.ops[i];
        OperandSpec spec = spec_for(op);

        auto check = [&](const char *slot, RegId reg, RegClass want) {
            if (want == RegClass::None) {
                // Comm ops legitimately carry class-typed payloads.
                return;
            }
            if (!reg.valid())
                error(bb.id, i, op, ": missing ", slot, " operand");
            else if (reg.cls != want)
                error(bb.id, i, op, ": ", slot, " has wrong register class");
        };
        check("dst", op.dst, spec.dst);
        check("src0", op.src0, spec.src0);
        check("src1", op.src1, spec.src1);

        // Comm payload sanity: PUT/BCAST/SEND read src0; GET/RECV write dst.
        switch (op.op) {
          case Opcode::PUT:
          case Opcode::BCAST:
          case Opcode::SEND:
            if (!op.src0.valid())
                error(bb.id, i, op, ": comm op with no payload source");
            break;
          case Opcode::GET:
          case Opcode::RECV:
            if (!op.dst.valid())
                error(bb.id, i, op, ": comm op with no destination");
            break;
          default:
            break;
        }
    }

    void
    checkBlock(const BasicBlock &bb)
    {
        bool terminated = false;
        for (size_t i = 0; i < bb.ops.size(); ++i) {
            const Operation &op = bb.ops[i];

            if (terminated)
                error(bb.id, i, "operation after unconditional terminator");

            if (mode_ == VerifyMode::Sequential &&
                (is_comm(op.op) || op.op == Opcode::SPAWN ||
                 op.op == Opcode::SLEEP || op.op == Opcode::MODE_SWITCH ||
                 op.op == Opcode::XBEGIN || op.op == Opcode::XCOMMIT ||
                 op.op == Opcode::XABORT || op.op == Opcode::XVALIDATE)) {
                error(bb.id, i, op,
                      ": Voltron op illegal in sequential programs");
            }

            checkOperandClasses(bb, i);

            switch (op.op) {
              case Opcode::BR:
              case Opcode::BRU: {
                BlockId target = resolve_branch_target(bb, i);
                if (target == kNoBlock)
                    error(bb.id, i, "branch target not a block-local PBR");
                else if (target >= fn_.blocks.size())
                    error(bb.id, i, "branch target out of range");
                if (op.op == Opcode::BRU)
                    terminated = true;
                break;
              }
              case Opcode::RET:
                if (!fn_.returnsValue && fn_.name == "main")
                    error(bb.id, i, "main must HALT, not RET");
                terminated = true;
                break;
              case Opcode::HALT:
              case Opcode::SLEEP:
                terminated = true;
                break;
              case Opcode::CALL: {
                // Must resolve to a function PBR within the block.
                bool found = false;
                for (size_t j = i; j-- > 0;) {
                    const Operation &def = bb.ops[j];
                    if (def.op == Opcode::PBR && def.dst == op.src0) {
                        CodeRef ref = def.codeRef();
                        if (ref.kind != CodeRef::Kind::Function)
                            error(bb.id, i, "call target PBR not a function");
                        else if (ref.func >= prog_.functions.size())
                            error(bb.id, i, "call target out of range");
                        found = true;
                        break;
                    }
                }
                if (!found)
                    error(bb.id, i, "call target not a block-local PBR");
                break;
              }
              case Opcode::LOAD:
              case Opcode::STORE:
                if (op.memSize != 1 && op.memSize != 2 && op.memSize != 4 &&
                    op.memSize != 8) {
                    error(bb.id, i, "bad memory access size");
                }
                break;
              case Opcode::LOADF:
              case Opcode::STOREF:
                if (op.memSize != 8)
                    error(bb.id, i, "FP memory access must be 8 bytes");
                break;
              default:
                break;
            }
        }

        // Worker clones legitimately contain empty mirrors of serial
        // blocks that are never executed.
        const bool empty_mirror =
            mode_ == VerifyMode::PerCore && bb.ops.empty();
        if (!terminated && bb.fallthrough == kNoBlock && !empty_mirror)
            error(bb.id, bb.ops.size(),
                  "block neither terminates nor falls through");
        if (bb.fallthrough != kNoBlock && bb.fallthrough >= fn_.blocks.size())
            error(bb.id, bb.ops.size(), "fallthrough out of range");
    }

    void
    checkCfg()
    {
        // CFG construction itself panics on malformed branches; only run
        // it when the per-block checks passed. Per-core programs have
        // spawn-entered blocks with no CFG edge from the entry, so the
        // reachability check only applies to sequential input programs.
        if (!errors_.empty() || mode_ == VerifyMode::PerCore)
            return;
        Cfg cfg(fn_);
        for (BlockId b = 0; b < fn_.blocks.size(); ++b) {
            if (!cfg.reachable(b))
                error(b, 0, "block unreachable from entry");
        }
    }
};

} // namespace

std::string
VerifyResult::joined() const
{
    std::ostringstream os;
    for (const auto &e : errors)
        os << e << "\n";
    return os.str();
}

VerifyResult
verify_function(const Program &prog, const Function &fn, VerifyMode mode)
{
    VerifyResult result;
    Verifier(prog, fn, mode).run(result);
    return result;
}

namespace {

/** Callees of @p fn, resolved through block-local function PBRs. */
std::vector<FuncId>
callees_of(const Program &prog, const Function &fn)
{
    std::vector<FuncId> callees;
    for (const BasicBlock &bb : fn.blocks) {
        for (size_t i = 0; i < bb.ops.size(); ++i) {
            const Operation &op = bb.ops[i];
            if (op.op != Opcode::CALL)
                continue;
            for (size_t j = i; j-- > 0;) {
                const Operation &def = bb.ops[j];
                if (def.op == Opcode::PBR && def.dst == op.src0) {
                    CodeRef ref = def.codeRef();
                    if (ref.kind == CodeRef::Kind::Function &&
                        ref.func < prog.functions.size())
                        callees.push_back(ref.func);
                    break;
                }
            }
        }
    }
    return callees;
}

/**
 * Reject recursive call graphs (DESIGN.md §6: recursion is unsupported —
 * the register-stack runtime would grow a frame per activation without
 * bound, so the cycle must be a compile-time error, not a runtime hang).
 * DFS colouring; on a back edge the cycle is reported functionwise.
 */
void
check_no_recursion(const Program &prog, VerifyResult &result)
{
    enum class Colour : u8 { White, Grey, Black };
    std::vector<Colour> colour(prog.functions.size(), Colour::White);
    std::vector<FuncId> path;

    // Iterative DFS with an explicit stack of (func, next-callee index).
    for (FuncId root = 0; root < prog.functions.size(); ++root) {
        if (colour[root] != Colour::White)
            continue;
        std::vector<std::pair<FuncId, size_t>> stack;
        std::vector<std::vector<FuncId>> callees;
        stack.emplace_back(root, 0);
        callees.push_back(callees_of(prog, prog.functions[root]));
        colour[root] = Colour::Grey;
        path.push_back(root);
        while (!stack.empty()) {
            auto &[f, next] = stack.back();
            if (next < callees.back().size()) {
                FuncId callee = callees.back()[next++];
                if (colour[callee] == Colour::Grey) {
                    // Found a cycle: report it from its entry point.
                    std::string msg = "recursive call graph: ";
                    size_t start = 0;
                    while (path[start] != callee)
                        ++start;
                    for (size_t k = start; k < path.size(); ++k)
                        msg += prog.functions[path[k]].name + " -> ";
                    msg += prog.functions[callee].name;
                    result.errors.push_back(msg);
                } else if (colour[callee] == Colour::White) {
                    colour[callee] = Colour::Grey;
                    path.push_back(callee);
                    stack.emplace_back(callee, 0);
                    callees.push_back(
                        callees_of(prog, prog.functions[callee]));
                }
            } else {
                colour[f] = Colour::Black;
                path.pop_back();
                stack.pop_back();
                callees.pop_back();
            }
        }
    }
}

} // namespace

VerifyResult
verify_program(const Program &prog, VerifyMode mode)
{
    VerifyResult result;
    if (prog.functions.empty())
        result.errors.push_back("program has no functions");
    for (const Function &fn : prog.functions) {
        VerifyResult fr = verify_function(prog, fn, mode);
        result.errors.insert(result.errors.end(), fr.errors.begin(),
                             fr.errors.end());
    }
    check_no_recursion(prog, result);
    // Data objects must not overlap.
    for (size_t i = 0; i < prog.data.size(); ++i) {
        for (size_t j = i + 1; j < prog.data.size(); ++j) {
            const auto &a = prog.data[i];
            const auto &b = prog.data[j];
            if (a.base < b.base + b.size && b.base < a.base + a.size)
                result.errors.push_back("data objects " + a.name + " and " +
                                        b.name + " overlap");
        }
    }
    return result;
}

void
verify_or_die(const Program &prog, VerifyMode mode)
{
    VerifyResult result = verify_program(prog, mode);
    fatal_if_not(result.ok(), "program ", prog.name,
                 " failed verification:\n", result.joined());
}

} // namespace voltron
