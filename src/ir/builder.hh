/**
 * @file
 * ProgramBuilder — fluent construction of structured Voltron IR programs.
 *
 * The builder is the "front end" of this reproduction: workload generators
 * and tests use it in place of a C compiler. It stamps every emitted op
 * with a unique seqId (profile identity) and every memory op with the
 * alias symbol of the data object it addresses. The structured-control
 * helpers (counted loops, if/else) emit the canonical shapes that the
 * compiler analyses (CountedLoopInfo, region formation) recognise.
 */

#ifndef VOLTRON_IR_BUILDER_HH_
#define VOLTRON_IR_BUILDER_HH_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/function.hh"
#include "isa/operation.hh"
#include "support/types.hh"

namespace voltron {

/** Base address of the global data segment. */
inline constexpr Addr kDataBase = 0x100000;

/** Handles returned by ProgramBuilder::beginCountedLoop. */
struct LoopHandles
{
    BlockId header = kNoBlock;
    BlockId bodyEntry = kNoBlock;
    BlockId latch = kNoBlock;
    BlockId exit = kNoBlock;
    RegId ivar;
};

/** Handles returned by ProgramBuilder::beginIf. */
struct IfHandles
{
    BlockId thenBlock = kNoBlock;
    BlockId elseBlock = kNoBlock;
    BlockId join = kNoBlock;
};

/** Fluent builder for Programs. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(const std::string &program_name);

    /** Finish and take the program (builder becomes unusable). */
    Program take();

    const Program &program() const { return prog_; }

    // --- Functions and blocks -------------------------------------------

    /** Start a new function; the entry block is created and selected. */
    FuncId beginFunction(const std::string &name, u16 num_args = 0,
                         bool returns_value = false);

    /** Finish the current function (no structural changes, bookkeeping). */
    void endFunction();

    /** Create a new (unlinked) block in the current function. */
    BlockId newBlock(const std::string &name = "");

    /** Select the block subsequent emissions append to. */
    void setBlock(BlockId b);

    /** Currently selected block id. */
    BlockId currentBlock() const { return curBlock_; }

    /** Current function (must be inside beginFunction/endFunction). */
    Function &fn();

    /** Set the fallthrough edge of the current block and select @p next. */
    void fallthroughTo(BlockId next);

    // --- Registers -------------------------------------------------------

    RegId newGpr() { return fn().freshReg(RegClass::GPR); }
    RegId newFpr() { return fn().freshReg(RegClass::FPR); }
    RegId newPr() { return fn().freshReg(RegClass::PR); }
    RegId newBtr() { return fn().freshReg(RegClass::BTR); }

    // --- Data objects ----------------------------------------------------

    /**
     * Allocate @p size bytes in the data segment under a fresh alias
     * symbol; returns the object's base address. @p align must be a
     * power of two.
     */
    Addr allocData(const std::string &name, u64 size, u64 align = 8);

    /** Allocate and initialise an array of i64. */
    Addr allocArrayI64(const std::string &name,
                       const std::vector<i64> &values);

    /** Allocate and initialise an array of doubles. */
    Addr allocArrayF64(const std::string &name,
                       const std::vector<double> &values);

    /** Alias symbol of the most recently allocated data object. */
    u32 lastSymbol() const { return lastSymbol_; }

    /** Alias symbol of the named object; fatal if absent. */
    u32 symbolOf(const std::string &name) const;

    /** Base address of the named object; fatal if absent. */
    Addr addrOf(const std::string &name) const;

    // --- Emission --------------------------------------------------------

    /** Append @p op to the current block (stamping seqId); returns op.dst. */
    RegId emit(Operation op);

    /** Emit a load from @p sym's object: dst = mem[base + off]. */
    RegId emitLoad(RegId dst, RegId base, i64 off, u32 sym, u8 size = 8,
                   bool sign = false);

    /** Emit a store to @p sym's object: mem[base + off] = value. */
    void emitStore(RegId base, i64 off, RegId value, u32 sym, u8 size = 8);

    /** Emit an FP load from @p sym's object. */
    RegId emitLoadF(RegId dst, RegId base, i64 off, u32 sym);

    /** Emit an FP store to @p sym's object. */
    void emitStoreF(RegId base, i64 off, RegId value, u32 sym);

    /** Emit `movi dst, value` into a fresh GPR. */
    RegId emitImm(i64 value);

    /**
     * Emit a call to function @p callee with up to 7 argument registers.
     * Returns the GPR holding the return value (r0 copy) or invalid.
     */
    RegId emitCall(FuncId callee, const std::vector<RegId> &args);

    /** Emit `halt` with the given exit-value register. */
    void emitHalt(RegId exit_value);

    /** Emit a conditional branch to @p target on @p pred. */
    void emitBranch(RegId pred, BlockId target);

    /** Emit an unconditional branch to @p target. */
    void emitJump(BlockId target);

    // --- Structured control ---------------------------------------------

    /**
     * Open a canonical counted loop `for (ivar = start; ivar < bound;
     * ivar += step)`. Creates header/body/latch/exit blocks, emits the
     * ivar initialisation in the current block, and selects the body
     * block. @p bound may be a register or an immediate (boundReg valid
     * wins). The caller emits the body, then calls endCountedLoop.
     */
    LoopHandles beginCountedLoop(RegId ivar, i64 start, RegId bound_reg,
                                 i64 bound_imm, i64 step,
                                 const std::string &tag = "loop");

    /** Counted loop with immediate start and bound. */
    LoopHandles forLoop(RegId ivar, i64 start, i64 bound, i64 step = 1,
                        const std::string &tag = "loop");

    /** Counted loop with register bound. */
    LoopHandles forLoopReg(RegId ivar, i64 start, RegId bound, i64 step = 1,
                           const std::string &tag = "loop");

    /** Close a counted loop: link the body into the latch, select exit. */
    void endCountedLoop(const LoopHandles &loop);

    /**
     * Open an if/else diamond on @p pred (taken = then side). Selects the
     * then-block. Use elseBranch()/endIf() to move between arms.
     */
    IfHandles beginIf(RegId pred, bool with_else = false,
                      const std::string &tag = "if");

    /** Switch emission to the else arm. */
    void elseBranch(const IfHandles &handles);

    /** Close the diamond: both arms jump to join; join selected. */
    void endIf(const IfHandles &handles);

  private:
    Program prog_;
    FuncId curFunc_ = kNoFunc;
    BlockId curBlock_ = kNoBlock;
    Addr dataCursor_ = kDataBase;
    u32 nextSymbol_ = 1;
    u32 nextSeqId_ = 1;
    u32 lastSymbol_ = 0;
    bool taken_ = false;

    /** Step of each open counted loop, keyed by header block. */
    std::map<BlockId, i64> pendingStep_;

    BasicBlock &bb();
};

} // namespace voltron

#endif // VOLTRON_IR_BUILDER_HH_
