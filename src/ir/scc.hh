/**
 * @file
 * Generic Tarjan SCC over adjacency-list graphs (used by DSWP and the
 * dependence analyses).
 */

#ifndef VOLTRON_IR_SCC_HH_
#define VOLTRON_IR_SCC_HH_

#include <vector>

#include "support/types.hh"

namespace voltron {

/**
 * Strongly connected components of a directed graph given as adjacency
 * lists. Returns the component index of each node; components are numbered
 * in *reverse topological order* of the condensation (Tarjan property), so
 * component id A > B implies no edge from B's nodes to A's nodes... the
 * guarantee used by callers is only: nodes in the same cycle share an id,
 * and `componentsInTopoOrder` yields a topological order of the
 * condensation.
 */
struct SccResult
{
    std::vector<u32> componentOf; //!< node -> component id
    u32 numComponents = 0;

    /** Component ids in topological order of the condensation. */
    std::vector<u32>
    componentsInTopoOrder() const
    {
        // Tarjan emits components in reverse topological order, so the
        // topological order is numComponents-1 .. 0.
        std::vector<u32> order(numComponents);
        for (u32 i = 0; i < numComponents; ++i)
            order[i] = numComponents - 1 - i;
        return order;
    }
};

/** Run Tarjan's algorithm (iterative) on @p adj. */
SccResult tarjan_scc(const std::vector<std::vector<u32>> &adj);

} // namespace voltron

#endif // VOLTRON_IR_SCC_HH_
