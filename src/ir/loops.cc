#include "ir/loops.hh"

#include <algorithm>

#include "support/error.hh"

namespace voltron {

LoopForest::LoopForest(const Function &fn, const Cfg &cfg, const DomTree &dom)
{
    const size_t n = fn.blocks.size();
    innermost_.assign(n, -1);

    // Find back edges and collect each loop's body by backwards reachability
    // from the latch (standard natural-loop construction). Loops sharing a
    // header merge.
    std::vector<int> loop_of_header(n, -1);
    for (BlockId b = 0; b < n; ++b) {
        if (!cfg.reachable(b))
            continue;
        for (BlockId s : cfg.succs(b)) {
            if (!dom.dominates(s, b))
                continue; // not a back edge
            int li = loop_of_header[s];
            if (li < 0) {
                li = static_cast<int>(loops_.size());
                loops_.emplace_back();
                loops_[li].header = s;
                loops_[li].blocks.insert(s);
                loop_of_header[s] = li;
            }
            Loop &loop = loops_[li];
            loop.latches.push_back(b);
            // Backwards walk from the latch, stopping at the header.
            std::vector<BlockId> work{b};
            while (!work.empty()) {
                BlockId x = work.back();
                work.pop_back();
                if (loop.blocks.insert(x).second) {
                    for (BlockId p : cfg.preds(x))
                        work.push_back(p);
                }
            }
        }
    }

    // Containment: loop A is inside loop B iff A's header is in B's blocks
    // (and A != B). Compute parents as the smallest enclosing loop.
    for (size_t a = 0; a < loops_.size(); ++a) {
        size_t best = loops_.size();
        for (size_t b = 0; b < loops_.size(); ++b) {
            if (a == b || !loops_[b].contains(loops_[a].header))
                continue;
            if (loops_[b].blocks.size() == loops_[a].blocks.size())
                continue; // identical — impossible with distinct headers
            if (best == loops_.size() ||
                loops_[b].blocks.size() < loops_[best].blocks.size()) {
                best = b;
            }
        }
        loops_[a].parent = best == loops_.size() ? -1 : static_cast<int>(best);
    }
    for (auto &loop : loops_) {
        u32 depth = 1;
        for (int p = loop.parent; p >= 0; p = loops_[p].parent)
            ++depth;
        loop.depth = depth;
    }

    // Innermost-loop map: deepest loop wins.
    for (size_t li = 0; li < loops_.size(); ++li) {
        for (BlockId b : loops_[li].blocks) {
            int cur = innermost_[b];
            if (cur < 0 || loops_[li].depth > loops_[cur].depth)
                innermost_[b] = static_cast<int>(li);
        }
    }

    // Exit targets.
    for (auto &loop : loops_) {
        for (BlockId b : loop.blocks)
            for (BlockId s : cfg.succs(b))
                if (!loop.contains(s))
                    loop.exitTargets.push_back(s);
        std::sort(loop.exitTargets.begin(), loop.exitTargets.end());
        loop.exitTargets.erase(
            std::unique(loop.exitTargets.begin(), loop.exitTargets.end()),
            loop.exitTargets.end());
    }

    for (auto &loop : loops_)
        recogniseCounted(fn, loop);
}

std::vector<int>
LoopForest::outermost() const
{
    std::vector<int> result;
    for (size_t i = 0; i < loops_.size(); ++i)
        if (loops_[i].parent < 0)
            result.push_back(static_cast<int>(i));
    return result;
}

void
LoopForest::recogniseCounted(const Function &fn, Loop &loop)
{
    // Canonical shape (ProgramBuilder::beginCountedLoop):
    //   header: cmp.ge p, i, bound ; pbr b, exit ; br p, b ; fall body
    //   latch:  add i, i, #step   ; pbr b, header ; bru b
    if (loop.latches.size() != 1 || loop.exitTargets.size() != 1)
        return;

    const BasicBlock &header = fn.block(loop.header);
    const BasicBlock &latch = fn.block(loop.latches[0]);

    // Header: find a CMP whose predicate feeds a BR targeting the exit.
    RegId ivar, bound_reg, pred;
    i64 bound_imm = 0;
    CmpCond cond{};
    bool cmp_found = false;
    for (const Operation &op : header.ops) {
        if (op.op == Opcode::CMP) {
            ivar = op.src0;
            cond = op.cond;
            if (op.immSrc1) {
                bound_imm = op.imm;
                bound_reg = RegId{};
            } else {
                bound_reg = op.src1;
            }
            pred = op.dst;
            cmp_found = true;
        } else if (op.op == Opcode::BR && cmp_found && op.src0 == pred) {
            // fine — the branch consumes the compare
        }
    }
    if (!cmp_found || (cond != CmpCond::GE && cond != CmpCond::LE))
        return;

    // Latch: i += step, then unconditional branch to header.
    i64 step = 0;
    for (const Operation &op : latch.ops) {
        if (op.op == Opcode::ADD && op.immSrc1 && op.dst == ivar &&
            op.src0 == ivar) {
            step = op.imm;
        }
    }
    if (step == 0)
        return;
    if ((cond == CmpCond::GE && step < 0) || (cond == CmpCond::LE && step > 0))
        return;

    // The induction variable must have no other defs inside the loop, and
    // the bound register must be loop-invariant.
    for (BlockId b : loop.blocks) {
        const BasicBlock &bb = fn.block(b);
        for (size_t i = 0; i < bb.ops.size(); ++i) {
            const Operation &op = bb.ops[i];
            if (op.dst == ivar) {
                bool is_latch_step = (b == latch.id && op.op == Opcode::ADD &&
                                      op.immSrc1 && op.src0 == ivar &&
                                      op.imm == step);
                if (!is_latch_step)
                    return;
            }
            if (bound_reg.valid() && op.dst == bound_reg)
                return;
        }
    }

    loop.counted.ivar = ivar;
    loop.counted.step = step;
    loop.counted.boundReg = bound_reg;
    loop.counted.boundImm = bound_imm;
    loop.counted.exitCond = cond;
}

} // namespace voltron
