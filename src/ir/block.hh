/**
 * @file
 * Basic blocks of the Voltron IR.
 *
 * A block holds a straight-line operation list. Control transfers happen
 * through explicit BR/BRU/CALL/RET/HALT operations inside the list; if the
 * list does not end in an unconditional transfer, control falls through to
 * the block named by @ref BasicBlock::fallthrough. Branch targets are
 * static: every BTR consumed by a BR/BRU inside a block must be defined by
 * a PBR earlier in the same block (checked by the verifier), which lets
 * analyses recover the CFG without data-flow over BTR values.
 */

#ifndef VOLTRON_IR_BLOCK_HH_
#define VOLTRON_IR_BLOCK_HH_

#include <string>
#include <vector>

#include "isa/operation.hh"
#include "support/types.hh"

namespace voltron {

/** One basic block. */
struct BasicBlock
{
    BlockId id = kNoBlock;
    std::string name;

    /** Operation list, including PBR/CMP/BR terminator sequences. */
    std::vector<Operation> ops;

    /** Block control falls into when no transfer is taken (or kNoBlock). */
    BlockId fallthrough = kNoBlock;

    /** Compiler region this block belongs to (kNoRegion before analysis). */
    RegionId region = kNoRegion;

    /**
     * Issue cycle of each op relative to block entry, parallel to @ref ops.
     * Empty for unscheduled (sequential-issue) blocks; filled by the
     * coupled-mode scheduler.
     */
    std::vector<u32> issueCycles;

    /**
     * Total schedule length in cycles for coupled-mode lockstep execution
     * (0 when unscheduled). Equal across cores for mirrored blocks.
     */
    u32 schedLen = 0;

    /**
     * True when the block carries a coupled-mode schedule. Keyed on
     * schedLen (not issueCycles) so that a core with zero ops in a
     * lockstep block still counts as scheduled.
     */
    bool scheduled() const { return schedLen > 0; }

    /** Append an operation, returning its index. */
    size_t
    append(const Operation &op)
    {
        ops.push_back(op);
        return ops.size() - 1;
    }
};

} // namespace voltron

#endif // VOLTRON_IR_BLOCK_HH_
