/**
 * @file
 * Canonical byte serialization of the Voltron IR.
 *
 * Every field that influences interpretation, compilation, or simulation
 * is encoded, so the FNV-1a hash of a Program's serialized bytes is a
 * usable content key for the artifact cache: two programs with the same
 * hash compile and run identically. Deserialization is bounds-checked via
 * ByteReader; on corrupt input it returns false and leaves the output in
 * an unspecified (but destructible) state.
 */

#ifndef VOLTRON_IR_SERIALIZE_HH_
#define VOLTRON_IR_SERIALIZE_HH_

#include "ir/function.hh"
#include "support/serialize.hh"

namespace voltron {

void serialize(ByteWriter &w, const Operation &op);
void serialize(ByteWriter &w, const BasicBlock &bb);
void serialize(ByteWriter &w, const Function &fn);
void serialize(ByteWriter &w, const DataObject &obj);
void serialize(ByteWriter &w, const Program &prog);

bool deserialize(ByteReader &r, Operation &op);
bool deserialize(ByteReader &r, BasicBlock &bb);
bool deserialize(ByteReader &r, Function &fn);
bool deserialize(ByteReader &r, DataObject &obj);
bool deserialize(ByteReader &r, Program &prog);

/** FNV-1a hash of @p prog's canonical serialization. */
u64 program_content_hash(const Program &prog);

} // namespace voltron

#endif // VOLTRON_IR_SERIALIZE_HH_
