/**
 * @file
 * Functions and whole programs of the Voltron IR.
 */

#ifndef VOLTRON_IR_FUNCTION_HH_
#define VOLTRON_IR_FUNCTION_HH_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "ir/block.hh"
#include "isa/reg.hh"
#include "support/error.hh"
#include "support/types.hh"

namespace voltron {

/**
 * A function: a CFG of basic blocks with entry at block 0.
 *
 * Calling convention (register-stack style, see DESIGN.md): integer
 * arguments arrive in GPR r1..r(numArgs); the return value, if any, is
 * left in GPR r0. Each call activates a fresh register frame, so virtual
 * register numbering is function-scoped.
 */
struct Function
{
    FuncId id = kNoFunc;
    std::string name;
    std::vector<BasicBlock> blocks;
    u16 numArgs = 0;
    bool returnsValue = false;

    /** Next fresh virtual register index per class. */
    u16 nextGpr = 16, nextFpr = 16, nextPr = 16, nextBtr = 16;

    BasicBlock &block(BlockId b) { return blocks.at(b); }
    const BasicBlock &block(BlockId b) const { return blocks.at(b); }

    /** Create a new empty block and return its id. */
    BlockId
    addBlock(const std::string &block_name = "")
    {
        BasicBlock bb;
        bb.id = static_cast<BlockId>(blocks.size());
        bb.name = block_name.empty() ? ("bb" + std::to_string(bb.id))
                                     : block_name;
        blocks.push_back(std::move(bb));
        return blocks.back().id;
    }

    /** Fresh virtual register of class @p cls. */
    RegId
    freshReg(RegClass cls)
    {
        switch (cls) {
          case RegClass::GPR: return gpr(nextGpr++);
          case RegClass::FPR: return fpr(nextFpr++);
          case RegClass::PR: return pr(nextPr++);
          case RegClass::BTR: return btr(nextBtr++);
          default: panic("freshReg: bad class");
        }
    }
};

/** A named, initialised data object in the global data segment. */
struct DataObject
{
    std::string name;
    Addr base = 0;
    u64 size = 0;   //!< bytes
    u32 symbol = 0; //!< alias symbol id stamped on memory ops touching it
    std::vector<u8> init; //!< initial bytes (may be shorter than size)
};

/** A whole program: functions + data segment. Entry is function 0. */
struct Program
{
    std::string name;
    std::vector<Function> functions;
    std::vector<DataObject> data;
    std::map<std::string, FuncId> funcByName;

    Function &function(FuncId f) { return functions.at(f); }
    const Function &function(FuncId f) const { return functions.at(f); }

    /** Create a new function and return a reference (stable until next add). */
    Function &
    addFunction(const std::string &fname, u16 num_args = 0,
                bool returns_value = false)
    {
        Function fn;
        fn.id = static_cast<FuncId>(functions.size());
        fn.name = fname;
        fn.numArgs = num_args;
        fn.returnsValue = returns_value;
        functions.push_back(std::move(fn));
        funcByName[fname] = functions.back().id;
        return functions.back();
    }

    /** Look up a function id by name; fatal if absent. */
    FuncId
    findFunction(const std::string &fname) const
    {
        auto it = funcByName.find(fname);
        fatal_if_not(it != funcByName.end(), "no function named ", fname);
        return it->second;
    }
};

/** Pretty-print a function (for debugging and golden tests). */
void print_function(std::ostream &os, const Function &fn);

/** Pretty-print a whole program. */
void print_program(std::ostream &os, const Program &prog);

} // namespace voltron

#endif // VOLTRON_IR_FUNCTION_HH_
