#include "ir/dom.hh"

#include "support/error.hh"

namespace voltron {

DomTree::DomTree(const Cfg &cfg) : cfg_(&cfg)
{
    const size_t n = cfg.numBlocks();
    idom_.assign(n, kNoBlock);
    if (n == 0)
        return;

    const auto &rpo = cfg.rpo();
    idom_[0] = 0;

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (cfg.rpoIndex(a) > cfg.rpoIndex(b))
                a = idom_[a];
            while (cfg.rpoIndex(b) > cfg.rpoIndex(a))
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : rpo) {
            if (b == 0)
                continue;
            BlockId new_idom = kNoBlock;
            for (BlockId p : cfg.preds(b)) {
                if (!cfg.reachable(p) || idom_[p] == kNoBlock)
                    continue;
                new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
            }
            if (new_idom != kNoBlock && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
}

bool
DomTree::dominates(BlockId a, BlockId b) const
{
    panic_if_not(cfg_->reachable(a) && cfg_->reachable(b),
                 "dominates() on unreachable block");
    while (true) {
        if (a == b)
            return true;
        if (b == 0)
            return false;
        b = idom_[b];
    }
}

} // namespace voltron
