/**
 * @file
 * CFG recovery: successors, predecessors, and static branch targets.
 *
 * Branch targets in Voltron IR are static because every BTR consumed by a
 * BR/BRU is defined by a PBR earlier in the same block (verified). This
 * module recovers those targets and the block-level CFG used by all
 * analyses.
 */

#ifndef VOLTRON_IR_CFG_HH_
#define VOLTRON_IR_CFG_HH_

#include <vector>

#include "ir/function.hh"

namespace voltron {

/** Static control-flow facts about one block. */
struct BlockFlow
{
    /** Successor block ids (branch targets then fallthrough), deduped. */
    std::vector<BlockId> succs;

    /** Predecessor block ids. */
    std::vector<BlockId> preds;

    /** True if the block ends in RET or HALT (function/program exit). */
    bool exits = false;

    /** True if an unconditional transfer terminates the block. */
    bool endsUnconditional = false;
};

/** CFG of one function. */
class Cfg
{
  public:
    explicit Cfg(const Function &fn);

    const Function &function() const { return *fn_; }
    size_t numBlocks() const { return flow_.size(); }

    const BlockFlow &flow(BlockId b) const { return flow_.at(b); }
    const std::vector<BlockId> &succs(BlockId b) const
    {
        return flow_.at(b).succs;
    }
    const std::vector<BlockId> &preds(BlockId b) const
    {
        return flow_.at(b).preds;
    }

    /** Blocks in reverse postorder from the entry. */
    const std::vector<BlockId> &rpo() const { return rpo_; }

    /** Position of each block in the RPO (index into rpo()). */
    u32 rpoIndex(BlockId b) const { return rpoIndex_.at(b); }

    /** True if @p b is reachable from the entry. */
    bool reachable(BlockId b) const { return rpoIndex_.at(b) != kNoBlock; }

  private:
    const Function *fn_;
    std::vector<BlockFlow> flow_;
    std::vector<BlockId> rpo_;
    std::vector<u32> rpoIndex_;
};

/**
 * Resolve the static branch target of the BR/BRU at @p op_idx in @p bb by
 * scanning backwards for the defining PBR. Returns kNoBlock if the BTR is
 * not block-locally defined (verifier rejects such code).
 */
BlockId resolve_branch_target(const BasicBlock &bb, size_t op_idx);

} // namespace voltron

#endif // VOLTRON_IR_CFG_HH_
