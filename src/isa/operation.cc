#include "isa/operation.hh"

#include <bit>

#include "support/error.hh"

namespace voltron {

bool
Operation::usesSrc1() const
{
    return src1.valid() && !immSrc1;
}

std::vector<RegId>
Operation::uses() const
{
    std::vector<RegId> regs;
    if (src0.valid())
        regs.push_back(src0);
    if (usesSrc1())
        regs.push_back(src1);
    return regs;
}

std::ostream &
operator<<(std::ostream &os, const Operation &o)
{
    os << opcode_name(o.op);
    if (o.op == Opcode::CMP || o.op == Opcode::FCMP)
        os << "." << cond_name(o.cond);
    if (is_memory(o.op))
        os << static_cast<int>(o.memSize);
    if (o.op == Opcode::PUT || o.op == Opcode::GET)
        os << "." << dir_name(o.dir);

    bool first = true;
    auto sep = [&]() -> std::ostream & {
        os << (first ? " " : ", ");
        first = false;
        return os;
    };

    if (o.dst.valid())
        sep() << o.dst;
    if (o.src0.valid())
        sep() << o.src0;
    if (o.src1.valid() && !o.immSrc1)
        sep() << o.src1;

    switch (o.op) {
      case Opcode::PBR:
        sep() << o.codeRef();
        break;
      case Opcode::SPAWN:
        sep() << "core" << o.imm;
        break;
      case Opcode::MOVI:
      case Opcode::FMOVI:
      case Opcode::XBEGIN:
      case Opcode::MODE_SWITCH:
        sep() << o.imm;
        break;
      case Opcode::SEND:
      case Opcode::RECV:
        sep() << "core" << o.imm;
        break;
      case Opcode::LOAD:
      case Opcode::STORE:
      case Opcode::LOADF:
      case Opcode::STOREF:
        if (o.imm != 0)
            sep() << "+" << o.imm;
        break;
      default:
        if (o.immSrc1)
            sep() << "#" << o.imm;
        break;
    }
    return os;
}

namespace ops {

Operation
nop()
{
    return {};
}

Operation
alu(Opcode op, RegId dst, RegId a, RegId b)
{
    Operation o;
    o.op = op;
    o.dst = dst;
    o.src0 = a;
    o.src1 = b;
    return o;
}

Operation
alui(Opcode op, RegId dst, RegId a, i64 imm)
{
    Operation o;
    o.op = op;
    o.dst = dst;
    o.src0 = a;
    o.imm = imm;
    o.immSrc1 = true;
    return o;
}

Operation add(RegId dst, RegId a, RegId b) { return alu(Opcode::ADD, dst, a, b); }
Operation addi(RegId dst, RegId a, i64 imm) { return alui(Opcode::ADD, dst, a, imm); }
Operation sub(RegId dst, RegId a, RegId b) { return alu(Opcode::SUB, dst, a, b); }
Operation mul(RegId dst, RegId a, RegId b) { return alu(Opcode::MUL, dst, a, b); }

Operation
mov(RegId dst, RegId src)
{
    Operation o;
    o.op = Opcode::MOV;
    o.dst = dst;
    o.src0 = src;
    return o;
}

Operation
movi(RegId dst, i64 imm)
{
    Operation o;
    o.op = Opcode::MOVI;
    o.dst = dst;
    o.imm = imm;
    return o;
}

Operation
cmp(CmpCond cond, RegId dst_pr, RegId a, RegId b)
{
    Operation o = alu(Opcode::CMP, dst_pr, a, b);
    o.cond = cond;
    return o;
}

Operation
cmpi(CmpCond cond, RegId dst_pr, RegId a, i64 imm)
{
    Operation o = alui(Opcode::CMP, dst_pr, a, imm);
    o.cond = cond;
    return o;
}

Operation
fcmp(CmpCond cond, RegId dst_pr, RegId a, RegId b)
{
    Operation o = alu(Opcode::FCMP, dst_pr, a, b);
    o.cond = cond;
    return o;
}

Operation
falu(Opcode op, RegId dst, RegId a, RegId b)
{
    return alu(op, dst, a, b);
}

Operation
fmovi(RegId dst, double value)
{
    Operation o;
    o.op = Opcode::FMOVI;
    o.dst = dst;
    o.imm = static_cast<i64>(std::bit_cast<u64>(value));
    return o;
}

Operation
itof(RegId dst_fpr, RegId src_gpr)
{
    Operation o;
    o.op = Opcode::ITOF;
    o.dst = dst_fpr;
    o.src0 = src_gpr;
    return o;
}

Operation
ftoi(RegId dst_gpr, RegId src_fpr)
{
    Operation o;
    o.op = Opcode::FTOI;
    o.dst = dst_gpr;
    o.src0 = src_fpr;
    return o;
}

Operation
load(RegId dst, RegId base, i64 offset, u8 size, bool sign)
{
    Operation o;
    o.op = Opcode::LOAD;
    o.dst = dst;
    o.src0 = base;
    o.imm = offset;
    o.memSize = size;
    o.memSigned = sign;
    return o;
}

Operation
store(RegId base, i64 offset, RegId value, u8 size)
{
    Operation o;
    o.op = Opcode::STORE;
    o.src0 = base;
    o.src1 = value;
    o.imm = offset;
    o.memSize = size;
    return o;
}

Operation
loadf(RegId dst_fpr, RegId base, i64 offset)
{
    Operation o;
    o.op = Opcode::LOADF;
    o.dst = dst_fpr;
    o.src0 = base;
    o.imm = offset;
    o.memSize = 8;
    return o;
}

Operation
storef(RegId base, i64 offset, RegId value_fpr)
{
    Operation o;
    o.op = Opcode::STOREF;
    o.src0 = base;
    o.src1 = value_fpr;
    o.imm = offset;
    o.memSize = 8;
    return o;
}

Operation
pbr(RegId dst_btr, CodeRef target)
{
    Operation o;
    o.op = Opcode::PBR;
    o.dst = dst_btr;
    o.imm = static_cast<i64>(target.encode());
    return o;
}

Operation
br(RegId pred, RegId target_btr)
{
    Operation o;
    o.op = Opcode::BR;
    o.src0 = pred;
    o.src1 = target_btr;
    return o;
}

Operation
bru(RegId target_btr)
{
    Operation o;
    o.op = Opcode::BRU;
    o.src0 = target_btr;
    return o;
}

Operation
call(RegId target_btr)
{
    Operation o;
    o.op = Opcode::CALL;
    o.src0 = target_btr;
    return o;
}

Operation
ret()
{
    Operation o;
    o.op = Opcode::RET;
    return o;
}

Operation
halt(RegId exit_value)
{
    Operation o;
    o.op = Opcode::HALT;
    o.src0 = exit_value;
    return o;
}

Operation
put(Dir dir, RegId src)
{
    Operation o;
    o.op = Opcode::PUT;
    o.src0 = src;
    o.dir = dir;
    return o;
}

Operation
get(Dir dir, RegId dst)
{
    Operation o;
    o.op = Opcode::GET;
    o.dst = dst;
    o.dir = dir;
    return o;
}

Operation
bcast(RegId src)
{
    Operation o;
    o.op = Opcode::BCAST;
    o.src0 = src;
    return o;
}

Operation
send(CoreId target, RegId src)
{
    Operation o;
    o.op = Opcode::SEND;
    o.src0 = src;
    o.imm = target;
    return o;
}

Operation
recv(CoreId sender, RegId dst)
{
    Operation o;
    o.op = Opcode::RECV;
    o.dst = dst;
    o.imm = sender;
    return o;
}

Operation
spawn(CoreId target, RegId block_btr)
{
    Operation o;
    o.op = Opcode::SPAWN;
    o.src1 = block_btr;
    o.imm = target;
    return o;
}

Operation
sleep()
{
    Operation o;
    o.op = Opcode::SLEEP;
    return o;
}

Operation
mode_switch(bool to_decoupled)
{
    Operation o;
    o.op = Opcode::MODE_SWITCH;
    o.imm = to_decoupled ? 1 : 0;
    return o;
}

Operation
xbegin(i64 chunk_ordinal)
{
    Operation o;
    o.op = Opcode::XBEGIN;
    o.imm = chunk_ordinal;
    return o;
}

Operation
xcommit()
{
    Operation o;
    o.op = Opcode::XCOMMIT;
    return o;
}

Operation
xabort()
{
    Operation o;
    o.op = Opcode::XABORT;
    return o;
}

} // namespace ops

} // namespace voltron
