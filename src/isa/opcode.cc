#include "isa/opcode.hh"

#include "isa/reg.hh"
#include "support/error.hh"

namespace voltron {

const char *
opcode_name(Opcode op)
{
    switch (op) {
      case Opcode::NOP: return "nop";
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::REM: return "rem";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SHL: return "shl";
      case Opcode::SHR: return "shr";
      case Opcode::SRA: return "sra";
      case Opcode::MIN: return "min";
      case Opcode::MAX: return "max";
      case Opcode::MOV: return "mov";
      case Opcode::MOVI: return "movi";
      case Opcode::CMP: return "cmp";
      case Opcode::FADD: return "fadd";
      case Opcode::FSUB: return "fsub";
      case Opcode::FMUL: return "fmul";
      case Opcode::FDIV: return "fdiv";
      case Opcode::FMOV: return "fmov";
      case Opcode::FMOVI: return "fmovi";
      case Opcode::FCMP: return "fcmp";
      case Opcode::ITOF: return "itof";
      case Opcode::FTOI: return "ftoi";
      case Opcode::LOAD: return "load";
      case Opcode::STORE: return "store";
      case Opcode::LOADF: return "loadf";
      case Opcode::STOREF: return "storef";
      case Opcode::PBR: return "pbr";
      case Opcode::BR: return "br";
      case Opcode::BRU: return "bru";
      case Opcode::CALL: return "call";
      case Opcode::RET: return "ret";
      case Opcode::HALT: return "halt";
      case Opcode::PUT: return "put";
      case Opcode::GET: return "get";
      case Opcode::BCAST: return "bcast";
      case Opcode::SEND: return "send";
      case Opcode::RECV: return "recv";
      case Opcode::SPAWN: return "spawn";
      case Opcode::SLEEP: return "sleep";
      case Opcode::MODE_SWITCH: return "mode_switch";
      case Opcode::XBEGIN: return "xbegin";
      case Opcode::XCOMMIT: return "xcommit";
      case Opcode::XABORT: return "xabort";
      case Opcode::XVALIDATE: return "xvalidate";
      default: return "<bad-opcode>";
    }
}

const char *
cond_name(CmpCond cond)
{
    switch (cond) {
      case CmpCond::EQ: return "eq";
      case CmpCond::NE: return "ne";
      case CmpCond::LT: return "lt";
      case CmpCond::LE: return "le";
      case CmpCond::GT: return "gt";
      case CmpCond::GE: return "ge";
      case CmpCond::ULT: return "ult";
      case CmpCond::ULE: return "ule";
      case CmpCond::UGT: return "ugt";
      case CmpCond::UGE: return "uge";
      default: return "<bad-cond>";
    }
}

const char *
dir_name(Dir dir)
{
    switch (dir) {
      case Dir::East: return "east";
      case Dir::West: return "west";
      case Dir::North: return "north";
      case Dir::South: return "south";
      default: return "<bad-dir>";
    }
}

Dir
opposite(Dir dir)
{
    switch (dir) {
      case Dir::East: return Dir::West;
      case Dir::West: return Dir::East;
      case Dir::North: return Dir::South;
      case Dir::South: return Dir::North;
      default: panic("bad direction");
    }
}

bool
is_load(Opcode op)
{
    return op == Opcode::LOAD || op == Opcode::LOADF;
}

bool
is_store(Opcode op)
{
    return op == Opcode::STORE || op == Opcode::STOREF;
}

bool
is_control(Opcode op)
{
    switch (op) {
      case Opcode::BR:
      case Opcode::BRU:
      case Opcode::CALL:
      case Opcode::RET:
      case Opcode::HALT:
        return true;
      default:
        return false;
    }
}

bool
is_comm(Opcode op)
{
    switch (op) {
      case Opcode::PUT:
      case Opcode::GET:
      case Opcode::BCAST:
      case Opcode::SEND:
      case Opcode::RECV:
        return true;
      default:
        return false;
    }
}

bool
is_compute(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SHL:
      case Opcode::SHR: case Opcode::SRA: case Opcode::MIN:
      case Opcode::MAX: case Opcode::MOV: case Opcode::MOVI:
      case Opcode::CMP: case Opcode::FADD: case Opcode::FSUB:
      case Opcode::FMUL: case Opcode::FDIV: case Opcode::FMOV:
      case Opcode::FMOVI: case Opcode::FCMP: case Opcode::ITOF:
      case Opcode::FTOI:
        return true;
      default:
        return false;
    }
}

std::ostream &
operator<<(std::ostream &os, Opcode op)
{
    return os << opcode_name(op);
}

const char *
reg_class_prefix(RegClass cls)
{
    switch (cls) {
      case RegClass::GPR: return "r";
      case RegClass::FPR: return "f";
      case RegClass::PR: return "p";
      case RegClass::BTR: return "b";
      default: return "?";
    }
}

std::ostream &
operator<<(std::ostream &os, const RegId &reg)
{
    if (!reg.valid())
        return os << "_";
    return os << reg_class_prefix(reg.cls) << reg.idx;
}

} // namespace voltron
