/**
 * @file
 * The Operation struct — a single HPL-PD/Voltron instruction.
 *
 * Operations are small value types stored inline in basic blocks. Operand
 * roles depend on the opcode (documented per-opcode in opcode.hh); helpers
 * here expose the uses/defs uniformly for dataflow analyses and the
 * scheduler.
 */

#ifndef VOLTRON_ISA_OPERATION_HH_
#define VOLTRON_ISA_OPERATION_HH_

#include <ostream>
#include <vector>

#include "isa/coderef.hh"
#include "isa/opcode.hh"
#include "isa/reg.hh"

namespace voltron {

/** One instruction. */
struct Operation
{
    Opcode op = Opcode::NOP;
    RegId dst;  //!< defined register (invalid when none)
    RegId src0; //!< first use
    RegId src1; //!< second use
    i64 imm = 0;

    CmpCond cond = CmpCond::EQ; //!< CMP/FCMP condition
    u8 memSize = 0;             //!< LOAD/STORE access size in bytes
    bool memSigned = false;     //!< sign-extend sub-word loads
    bool immSrc1 = false;       //!< ALU: use imm instead of src1
    Dir dir = Dir::East;        //!< PUT/GET link direction

    /** Compiler-assigned role of a communication op (stall accounting). */
    enum class CommTag : u8 {
        None = 0,
        LiveIn,   //!< region live-in distribution
        LiveOut,  //!< region live-out collection
        Join,     //!< worker-done token (call/return-style sync)
        MemSync,  //!< dummy value ordering a cross-core memory dependence
        Bcast,    //!< GET paired with a BCAST (imm==1 on the GET)
    };
    CommTag commTag = CommTag::None;

    /**
     * Alias class of a memory operation. Two memory ops with different
     * non-zero symbols never alias (they touch disjoint data objects);
     * symbol 0 means "unknown — may alias anything". Set by the program
     * builder from the data-object the address is derived from; this
     * stands in for the summary-based pointer analysis the paper cites.
     */
    u32 memSym = 0;

    /**
     * Stable identity of the op within its original (sequential) function.
     * Assigned by the builder; preserved by compiler transforms so that
     * profiles (e.g. per-load miss rates) survive partitioning. Zero for
     * compiler-inserted operations.
     */
    u32 seqId = 0;

    /** Registers read by this op, in operand order. */
    std::vector<RegId> uses() const;

    /** Register written by this op (invalid RegId if none). */
    RegId def() const { return dst; }

    /** True if src1 participates (i.e. the op is binary and !immSrc1). */
    bool usesSrc1() const;

    /** CodeRef carried in imm (PBR targets). */
    CodeRef codeRef() const { return CodeRef::decode(static_cast<u64>(imm)); }
};

std::ostream &operator<<(std::ostream &os, const Operation &op);

/**
 * Factory helpers for building operations. These keep workload builders
 * and compiler passes terse and uniform.
 */
namespace ops {

Operation nop();

// Integer ALU.
Operation alu(Opcode op, RegId dst, RegId a, RegId b);
Operation alui(Opcode op, RegId dst, RegId a, i64 imm);
Operation add(RegId dst, RegId a, RegId b);
Operation addi(RegId dst, RegId a, i64 imm);
Operation sub(RegId dst, RegId a, RegId b);
Operation mul(RegId dst, RegId a, RegId b);
Operation mov(RegId dst, RegId src);
Operation movi(RegId dst, i64 imm);

// Compare.
Operation cmp(CmpCond cond, RegId dst_pr, RegId a, RegId b);
Operation cmpi(CmpCond cond, RegId dst_pr, RegId a, i64 imm);
Operation fcmp(CmpCond cond, RegId dst_pr, RegId a, RegId b);

// Floating point.
Operation falu(Opcode op, RegId dst, RegId a, RegId b);
Operation fmovi(RegId dst, double value);
Operation itof(RegId dst_fpr, RegId src_gpr);
Operation ftoi(RegId dst_gpr, RegId src_fpr);

// Memory.
Operation load(RegId dst, RegId base, i64 offset, u8 size = 8,
               bool sign = false);
Operation store(RegId base, i64 offset, RegId value, u8 size = 8);
Operation loadf(RegId dst_fpr, RegId base, i64 offset);
Operation storef(RegId base, i64 offset, RegId value_fpr);

// Control.
Operation pbr(RegId dst_btr, CodeRef target);
Operation br(RegId pred, RegId target_btr);
Operation bru(RegId target_btr);
Operation call(RegId target_btr);
Operation ret();
Operation halt(RegId exit_value);

// Voltron communication.
Operation put(Dir dir, RegId src);
Operation get(Dir dir, RegId dst);
Operation bcast(RegId src);
Operation send(CoreId target, RegId src);
Operation recv(CoreId sender, RegId dst);
Operation spawn(CoreId target, RegId block_btr);
Operation sleep();
Operation mode_switch(bool to_decoupled);

// Transactions.
Operation xbegin(i64 chunk_ordinal);
Operation xcommit();
Operation xabort();

} // namespace ops

} // namespace voltron

#endif // VOLTRON_ISA_OPERATION_HH_
