/**
 * @file
 * Opcode enumeration and static opcode traits.
 *
 * The operation set is an HPL-PD subset (integer/FP ALU, memory, unbundled
 * PBR/CMP/BR branches) extended with the Voltron operations from the paper:
 * direct-mode PUT/GET/BCAST, queue-mode SEND/RECV, thread SPAWN/SLEEP,
 * MODE_SWITCH, and the transactional XBEGIN/XCOMMIT/XABORT markers used for
 * statistical-DOALL execution.
 */

#ifndef VOLTRON_ISA_OPCODE_HH_
#define VOLTRON_ISA_OPCODE_HH_

#include <ostream>

#include "support/types.hh"

namespace voltron {

enum class Opcode : u8 {
    NOP = 0,

    // Integer ALU (dst = src0 OP src1/imm).
    ADD, SUB, MUL, DIV, REM,
    AND, OR, XOR, SHL, SHR, SRA,
    MIN, MAX,
    MOV,   //!< dst = src0
    MOVI,  //!< dst = imm

    // Compare: dst(PR) = src0 COND src1/imm.
    CMP,

    // Floating point (operands in FPRs).
    FADD, FSUB, FMUL, FDIV,
    FMOV,  //!< dst = src0
    FMOVI, //!< dst = bit pattern in imm
    FCMP,  //!< dst(PR) = src0 COND src1
    ITOF,  //!< dst(FPR) = double(src0 GPR)
    FTOI,  //!< dst(GPR) = i64(src0 FPR), truncating

    // Memory: address = src0(GPR) + imm.
    LOAD,   //!< dst(GPR) = mem[addr], memSize/memSigned qualified
    STORE,  //!< mem[addr] = src1(GPR)
    LOADF,  //!< dst(FPR) = mem[addr] (8 bytes)
    STOREF, //!< mem[addr] = src1(FPR) (8 bytes)

    // Unbundled control flow (HPL-PD style).
    PBR,  //!< dst(BTR) = encoded block/function ref in imm
    BR,   //!< if src0(PR) branch to src1(BTR)
    BRU,  //!< unconditional branch to src0(BTR)
    CALL, //!< call the function referenced by src0(BTR)
    RET,  //!< return to caller
    HALT, //!< stop the program; src0(GPR) is the exit value

    // Voltron direct-mode (coupled) communication.
    PUT,   //!< drive src0 onto the neighbour link given by dir
    GET,   //!< dst = value on the neighbour link given by dir
    BCAST, //!< broadcast src0 to every other core in the coupled group

    // Voltron queue-mode (decoupled) communication.
    SEND, //!< enqueue src0 for core imm
    RECV, //!< dst = dequeue value sent by core imm (stalls until present)

    // Fine-grain threading.
    SPAWN, //!< start core imm at the block referenced by src1(BTR)
    SLEEP, //!< finish the current fine-grain thread

    // Execution-mode control.
    MODE_SWITCH, //!< imm = 0 switch to coupled (barrier), 1 to decoupled

    // Transactional memory (statistical DOALL chunks).
    XBEGIN,  //!< open a transaction; imm = chunk ordinal for ordered commit
    XCOMMIT, //!< close the transaction (commit decided at region barrier)
    XABORT,  //!< software-requested abort
    /**
     * Resolve all closed transactions of the current speculative region in
     * chunk order (master core only, after joining every worker):
     * dst(PR) = 1 if a cross-chunk dependence violation forced a rollback
     * (the compiler then branches to the serial recovery loop), 0 if all
     * chunks committed.
     */
    XVALIDATE,

    NumOpcodes,
};

/** Comparison condition for CMP/FCMP. */
enum class CmpCond : u8 {
    EQ, NE,
    LT, LE, GT, GE,     // signed / ordered
    ULT, ULE, UGT, UGE, // unsigned (integer CMP only)
};

/** Mesh link direction for PUT/GET. */
enum class Dir : u8 { East = 0, West, North, South };

/** Opposite mesh direction (East <-> West, North <-> South). */
Dir opposite(Dir dir);

/** Printable opcode mnemonic. */
const char *opcode_name(Opcode op);

/** Printable condition name. */
const char *cond_name(CmpCond cond);

/** Printable direction name. */
const char *dir_name(Dir dir);

/** True for LOAD/LOADF. */
bool is_load(Opcode op);

/** True for STORE/STOREF. */
bool is_store(Opcode op);

/** True for any memory-accessing opcode. */
inline bool is_memory(Opcode op) { return is_load(op) || is_store(op); }

/** True for ops that may redirect control flow (BR/BRU/CALL/RET/HALT). */
bool is_control(Opcode op);

/** True for any operand-network operation (PUT/GET/BCAST/SEND/RECV). */
bool is_comm(Opcode op);

/** True for integer/FP computation ops writing a register. */
bool is_compute(Opcode op);

std::ostream &operator<<(std::ostream &os, Opcode op);

} // namespace voltron

#endif // VOLTRON_ISA_OPCODE_HH_
