/**
 * @file
 * Register identifiers for the Voltron HPL-PD-flavoured ISA.
 *
 * Four architectural register classes mirror HPL-PD: general-purpose
 * integer (GPR), floating point (FPR), single-bit predicate (PR), and
 * branch-target (BTR) registers. Register indices are virtual — the
 * compiler does not perform allocation (see DESIGN.md) — and register
 * files in the interpreter and simulator grow on demand.
 */

#ifndef VOLTRON_ISA_REG_HH_
#define VOLTRON_ISA_REG_HH_

#include <functional>
#include <ostream>

#include "support/types.hh"

namespace voltron {

/** Architectural register class. */
enum class RegClass : u8 {
    None = 0, //!< no register (unused operand slot)
    GPR,      //!< 64-bit integer
    FPR,      //!< double-precision float (stored as raw bits)
    PR,       //!< 1-bit predicate
    BTR,      //!< branch target (holds an encoded BlockRef/FuncRef)
};

/** Printable name of a register class ("r", "f", "p", "b"). */
const char *reg_class_prefix(RegClass cls);

/** A (class, index) register identifier. */
struct RegId
{
    RegClass cls = RegClass::None;
    u16 idx = 0;

    constexpr RegId() = default;
    constexpr RegId(RegClass c, u16 i) : cls(c), idx(i) {}

    constexpr bool valid() const { return cls != RegClass::None; }

    constexpr bool
    operator==(const RegId &o) const
    {
        return cls == o.cls && idx == o.idx;
    }
    constexpr bool operator!=(const RegId &o) const { return !(*this == o); }

    constexpr bool
    operator<(const RegId &o) const
    {
        if (cls != o.cls)
            return static_cast<u8>(cls) < static_cast<u8>(o.cls);
        return idx < o.idx;
    }
};

std::ostream &operator<<(std::ostream &os, const RegId &reg);

/** Convenience constructors. */
constexpr RegId gpr(u16 i) { return {RegClass::GPR, i}; }
constexpr RegId fpr(u16 i) { return {RegClass::FPR, i}; }
constexpr RegId pr(u16 i) { return {RegClass::PR, i}; }
constexpr RegId btr(u16 i) { return {RegClass::BTR, i}; }

} // namespace voltron

template <>
struct std::hash<voltron::RegId>
{
    size_t
    operator()(const voltron::RegId &r) const noexcept
    {
        return (static_cast<size_t>(r.cls) << 16) ^ r.idx;
    }
};

#endif // VOLTRON_ISA_REG_HH_
