/**
 * @file
 * Operation latency table.
 *
 * The paper assumes "the latencies of the Itanium processor"; this table
 * follows the Itanium 2 integer/FP pipeline latencies commonly used with
 * Trimaran/HPL-PD experiments. Memory latencies here are the *hit*
 * latencies of the issuing core's L1; miss penalties come from the cache
 * model at run time.
 */

#ifndef VOLTRON_ISA_LATENCIES_HH_
#define VOLTRON_ISA_LATENCIES_HH_

#include "isa/opcode.hh"
#include "support/types.hh"

namespace voltron {

/** Static issue-to-result latency of @p op in cycles (>= 1). */
inline u32
op_latency(Opcode op)
{
    switch (op) {
      case Opcode::MUL:
        return 3;
      case Opcode::DIV:
      case Opcode::REM:
        return 16;
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::ITOF:
      case Opcode::FTOI:
        return 4;
      case Opcode::FDIV:
        return 16;
      case Opcode::LOAD:
      case Opcode::LOADF:
        return 2; // L1 hit; misses add the hierarchy penalty
      default:
        return 1;
    }
}

} // namespace voltron

#endif // VOLTRON_ISA_LATENCIES_HH_
