/**
 * @file
 * Encoded code references held in branch-target (BTR) registers.
 *
 * A CodeRef names either a basic block (function + block) for branches, or
 * a function entry for calls. It packs into a u64 so BTR register files can
 * store raw values like every other class.
 */

#ifndef VOLTRON_ISA_CODEREF_HH_
#define VOLTRON_ISA_CODEREF_HH_

#include <ostream>

#include "support/error.hh"
#include "support/types.hh"

namespace voltron {

/** A reference to a block or function, storable in a BTR register. */
struct CodeRef
{
    enum class Kind : u8 { Invalid = 0, Block, Function };

    Kind kind = Kind::Invalid;
    FuncId func = kNoFunc;
    BlockId block = kNoBlock;

    constexpr CodeRef() = default;

    static constexpr CodeRef
    to_block(FuncId f, BlockId b)
    {
        CodeRef ref;
        ref.kind = Kind::Block;
        ref.func = f;
        ref.block = b;
        return ref;
    }

    static constexpr CodeRef
    to_function(FuncId f)
    {
        CodeRef ref;
        ref.kind = Kind::Function;
        ref.func = f;
        ref.block = 0;
        return ref;
    }

    constexpr bool valid() const { return kind != Kind::Invalid; }

    constexpr bool
    operator==(const CodeRef &o) const
    {
        return kind == o.kind && func == o.func && block == o.block;
    }

    /** Pack into a u64 (kind:8 | func:24 | block:24). */
    u64
    encode() const
    {
        panic_if_not(func < (1u << 24) && block < (1u << 24),
                     "CodeRef out of encodable range");
        return (static_cast<u64>(kind) << 48) |
               (static_cast<u64>(func & 0xffffffu) << 24) |
               static_cast<u64>(block & 0xffffffu);
    }

    /** Unpack from a u64 produced by encode(). */
    static CodeRef
    decode(u64 bits)
    {
        CodeRef ref;
        ref.kind = static_cast<Kind>((bits >> 48) & 0xff);
        ref.func = static_cast<FuncId>((bits >> 24) & 0xffffffu);
        ref.block = static_cast<BlockId>(bits & 0xffffffu);
        return ref;
    }
};

inline std::ostream &
operator<<(std::ostream &os, const CodeRef &ref)
{
    switch (ref.kind) {
      case CodeRef::Kind::Block:
        return os << "@f" << ref.func << ".bb" << ref.block;
      case CodeRef::Kind::Function:
        return os << "@f" << ref.func;
      default:
        return os << "@invalid";
    }
}

} // namespace voltron

#endif // VOLTRON_ISA_CODEREF_HH_
