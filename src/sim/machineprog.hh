/**
 * @file
 * MachineProgram — the compiler's output and the simulator's input.
 *
 * A machine program holds one per-core clone of every function. Clones
 * mirror the original function's block structure one-to-one on their
 * original block ids (so "the same logical block" is "the same BlockId"
 * across cores); compiler-added preamble/epilogue blocks are appended
 * after the mirrored ids and are core-private. Region metadata drives
 * per-region cycle attribution (paper Figs. 3 and 14).
 */

#ifndef VOLTRON_SIM_MACHINEPROG_HH_
#define VOLTRON_SIM_MACHINEPROG_HH_

#include <string>
#include <vector>

#include "ir/function.hh"
#include "support/serialize.hh"
#include "support/types.hh"

namespace voltron {

/** Execution technique chosen for a region (paper §4). */
enum class ExecMode : u8 {
    Serial,  //!< master core only
    Coupled, //!< lockstep DVLIW, ILP via BUG partitioning
    Strands, //!< decoupled fine-grain TLP via eBUG
    Dswp,    //!< decoupled pipeline parallelism
    Doall,   //!< speculative chunked loop on the TM
};

const char *exec_mode_name(ExecMode mode);

/** True for the modes that run decoupled. */
inline bool
is_decoupled(ExecMode mode)
{
    return mode == ExecMode::Strands || mode == ExecMode::Dswp ||
           mode == ExecMode::Doall;
}

/** Structural kind of a region. */
enum class RegionKind : u8 {
    Glue,         //!< serial-only code (calls, entry/exit blocks)
    Straightline, //!< acyclic call-free block group
    Loop,         //!< outermost call-free loop nest
};

/** Metadata of one region. */
struct RegionMeta
{
    RegionId id = kNoRegion;
    FuncId func = kNoFunc;
    BlockId entry = kNoBlock;
    RegionKind kind = RegionKind::Glue;
    ExecMode mode = ExecMode::Serial;
    u64 profiledOps = 0; //!< dynamic ops attributed by the profile
};

/** A compiled multicore program. */
struct MachineProgram
{
    std::string name;
    u16 numCores = 1;

    /** Mesh geometry the coupled-mode hop chains were routed against
     * (rows * cols == numCores). 0 means "not recorded" — hand-built
     * test programs — and skips the machine's shape-compatibility
     * check. */
    u16 meshRows = 0;
    u16 meshCols = 0;

    /** The original sequential program (data segment + golden source). */
    Program original;

    /** Per-core clones; perCore[c].functions[f] mirrors original f. */
    std::vector<Program> perCore;

    /** Region table indexed by RegionId. */
    std::vector<RegionMeta> regions;

    const RegionMeta &
    region(RegionId id) const
    {
        return regions.at(id);
    }
};

/**
 * Canonical round-trip serialization (artifact cache). Everything the
 * simulator reads is encoded; deserialization is bounds-checked and
 * returns false on corrupt input instead of throwing.
 */
void serialize(ByteWriter &w, const RegionMeta &meta);
void serialize(ByteWriter &w, const MachineProgram &mp);
bool deserialize(ByteReader &r, RegionMeta &meta);
bool deserialize(ByteReader &r, MachineProgram &mp);

} // namespace voltron

#endif // VOLTRON_SIM_MACHINEPROG_HH_
