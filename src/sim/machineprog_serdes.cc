/** @file Round-trip serialization of compiled machine programs. */

#include "ir/serialize.hh"
#include "sim/machineprog.hh"

namespace voltron {

void
serialize(ByteWriter &w, const RegionMeta &meta)
{
    w.u32v(meta.id);
    w.u32v(meta.func);
    w.u32v(meta.entry);
    w.u8v(static_cast<u8>(meta.kind));
    w.u8v(static_cast<u8>(meta.mode));
    w.u64v(meta.profiledOps);
}

bool
deserialize(ByteReader &r, RegionMeta &meta)
{
    meta.id = r.u32v();
    meta.func = r.u32v();
    meta.entry = r.u32v();
    meta.kind = static_cast<RegionKind>(r.u8v());
    meta.mode = static_cast<ExecMode>(r.u8v());
    meta.profiledOps = r.u64v();
    return r.ok();
}

void
serialize(ByteWriter &w, const MachineProgram &mp)
{
    w.str(mp.name);
    w.u16v(mp.numCores);
    w.u16v(mp.meshRows);
    w.u16v(mp.meshCols);
    serialize(w, mp.original);
    w.u64v(mp.perCore.size());
    for (const Program &core : mp.perCore)
        serialize(w, core);
    w.u64v(mp.regions.size());
    for (const RegionMeta &meta : mp.regions)
        serialize(w, meta);
}

bool
deserialize(ByteReader &r, MachineProgram &mp)
{
    mp.name = r.str();
    mp.numCores = r.u16v();
    mp.meshRows = r.u16v();
    mp.meshCols = r.u16v();
    if (!deserialize(r, mp.original))
        return false;
    const u64 num_cores = r.count(/*min program size*/ 24);
    mp.perCore.clear();
    mp.perCore.reserve(num_cores);
    for (u64 i = 0; i < num_cores && r.ok(); ++i) {
        Program core;
        deserialize(r, core);
        mp.perCore.push_back(std::move(core));
    }
    const u64 num_regions = r.count(/*region size*/ 22);
    mp.regions.clear();
    mp.regions.reserve(num_regions);
    for (u64 i = 0; i < num_regions && r.ok(); ++i) {
        RegionMeta meta;
        deserialize(r, meta);
        mp.regions.push_back(meta);
    }
    return r.ok();
}

} // namespace voltron
