#include "sim/machine.hh"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "interp/semantics.hh"
#include "isa/latencies.hh"
#include "support/error.hh"
#include "trace/mux.hh"

namespace voltron {

namespace {

/** Per-core instruction-space stride (keeps I-streams disjoint in the L2). */
constexpr Addr kCoreCodeBase = 0x40000000;
constexpr Addr kCoreCodeStride = 0x4000000;
constexpr Addr kOpBytes = 16;

/** "No pending event" sentinel for wake-up computation. */
constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

} // namespace

const char *
exec_mode_name(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Serial: return "serial";
      case ExecMode::Coupled: return "coupled";
      case ExecMode::Strands: return "strands";
      case ExecMode::Dswp: return "dswp";
      case ExecMode::Doall: return "doall";
      default: return "?";
    }
}

MachineConfig
MachineConfig::forCores(u16 cores)
{
    fatal_if_not(cores >= 1 && cores <= kMaxCores,
                 "unsupported core count ", cores, " (use 1..", kMaxCores,
                 ")");
    const MeshShape shape = default_mesh_shape(cores);
    return forMesh(shape.rows, shape.cols);
}

MachineConfig
MachineConfig::forMesh(u16 rows, u16 cols)
{
    fatal_if_not(rows >= 1 && cols >= 1, "empty mesh");
    fatal_if_not(rows * cols <= kMaxCores, "mesh ", rows, "x", cols,
                 " exceeds ", kMaxCores, " cores");
    MachineConfig config;
    config.numCores = static_cast<u16>(rows * cols);
    config.net.rows = rows;
    config.net.cols = cols;
    return config;
}

Machine::Machine(const MachineProgram &prog, const MachineConfig &config)
    : prog_(prog), config_(config), hierarchy_(config.numCores, config.mem),
      net_(config.net), tm_(config.numCores, config.mem.l1d.lineBytes)
{
    fatal_if_not(prog.numCores == config.numCores,
                 "program compiled for ", prog.numCores,
                 " cores but machine has ", config.numCores);
    fatal_if_not(config.numCores ==
                     config.net.rows * config.net.cols,
                 "mesh shape does not match core count");
    // Coupled-mode PUT/GET hop chains are routed at compile time against
    // the target geometry, so a program compiled for one mesh must not
    // run on another. Hand-built programs (tests) that never recorded a
    // shape skip the check.
    fatal_if_not(prog.meshRows == 0 ||
                     (prog.meshRows == config.net.rows &&
                      prog.meshCols == config.net.cols),
                 "program compiled for a ", prog.meshRows, "x",
                 prog.meshCols, " mesh but machine is ", config.net.rows,
                 "x", config.net.cols);

    mem_.loadProgram(prog.original);
    layoutCode();

    trace_ = config.traceSink;
    net_.setTraceSink(trace_);
    hierarchy_.setTraceSink(trace_);
    tm_.setTraceSink(trace_, &now_);

    // Size the flat per-region cycle table off the largest region id
    // any block carries (the region table itself is usually enough, but
    // scanning the blocks makes the indexing in attributeCycle safe by
    // construction).
    size_t num_regions = prog_.regions.size();
    for (const Program &cp : prog_.perCore)
        for (const Function &fn : cp.functions)
            for (const BasicBlock &bb : fn.blocks)
                if (bb.region != kNoRegion)
                    num_regions = std::max<size_t>(num_regions,
                                                   bb.region + 1);
    regionCycles_.assign(num_regions, 0);

    cores_.resize(config.numCores);
    for (u16 c = 0; c < config.numCores; ++c) {
        // Reserve the call stack up front; frames are move-heavy and the
        // master's depth is bounded (fatal at 512 — see CALL).
        cores_[c].frames.reserve(c == 0 ? 64 : 4);
        cores_[c].id = c;
        cores_[c].frames.emplace_back();
        cores_[c].frames.back().func = 0;
        cores_[c].state = c == 0 ? CoreRun::Run : CoreRun::Idle;
        bindBlock(cores_[c]);
    }
}

Machine::~Machine() = default;

void
Machine::layoutCode()
{
    blockAddr_.resize(config_.numCores);
    for (u16 c = 0; c < config_.numCores; ++c) {
        Addr cursor = kCoreCodeBase + c * kCoreCodeStride;
        const Program &cp = prog_.perCore.at(c);
        blockAddr_[c].resize(cp.functions.size());
        for (const Function &fn : cp.functions) {
            std::vector<Addr> &addrs = blockAddr_[c][fn.id];
            addrs.resize(fn.blocks.size(), 0);
            for (const BasicBlock &bb : fn.blocks) {
                addrs[bb.id] = cursor;
                cursor += std::max<u64>(bb.ops.size(), 1) * kOpBytes;
                // Align blocks to line boundaries like a real layout.
                cursor = (cursor + 63) & ~static_cast<Addr>(63);
            }
        }
    }
}

Addr
Machine::opAddr(const Core &core, size_t op_idx) const
{
    return core.blockBase + op_idx * kOpBytes;
}

void
Machine::stall(Core &core, StallCat cat)
{
    core.stalls[static_cast<size_t>(cat)]++;
    core.lastWait = cat;
    // Span transition, not a per-cycle record: the category staying the
    // same extends the open span silently, which is what keeps the event
    // stream identical under fast-forward (the skipped cycles are exactly
    // the ones in which nothing here changes).
    if (trace_ && core.traceOpenStall != cat) {
        traceCloseStall(core);
        TraceEvent ev;
        ev.cycle = now_;
        ev.core = core.id;
        ev.kind = TraceEventKind::StallBegin;
        ev.arg8 = static_cast<u8>(cat);
        trace_->emit(ev);
        core.traceOpenStall = cat;
        core.traceStallSince = now_;
    }
}

void
Machine::traceCloseStall(Core &core, bool include_now)
{
    if (core.traceOpenStall == StallCat::None)
        return;
    // Ordinarily the closing cycle was not charged to the span (the core
    // issued, or halt stamped the cycle after the last stall). A span
    // closed by coupled-group formation is the exception: the barrier
    // stall was charged in the formation cycle itself, so the span must
    // cover it — arg16 records the end-inclusivity so consumers can
    // place the span without re-deriving machine internals.
    TraceEvent ev;
    ev.cycle = now_;
    ev.core = core.id;
    ev.kind = TraceEventKind::StallEnd;
    ev.arg8 = static_cast<u8>(core.traceOpenStall);
    ev.arg16 = include_now ? 1 : 0;
    ev.arg64 = now_ - core.traceStallSince + (include_now ? 1 : 0);
    trace_->emit(ev);
    core.traceOpenStall = StallCat::None;
}

void
Machine::traceIssue(Core &core, const Operation &op)
{
    traceCloseStall(core);
    TraceEvent ev;
    ev.cycle = now_;
    ev.core = core.id;
    ev.kind = TraceEventKind::Issue;
    ev.arg8 = static_cast<u8>(op.op);
    trace_->emit(ev);
}

void
Machine::bindBlock(Core &core)
{
    const Function &fn = coreFunc(core.id, core.func);
    core.bb = &fn.block(core.block);
    core.blockBase = blockAddr_[core.id][core.func][core.block];
}

void
Machine::enterBlock(Core &core, BlockId block)
{
    const Function &fn = coreFunc(core.id, core.func);
    panic_if_not(block < fn.blocks.size(), "enterBlock out of range");
    core.block = block;
    core.opIdx = 0;
    core.fetched = false;
    core.bb = &fn.blocks[block];
    core.blockBase = blockAddr_[core.id][core.func][block];
}

u64
Machine::readSrc(Core &core, RegId reg) const
{
    return core.frames.back().regs.read(reg);
}

u64
Machine::src1Value(Core &core, const Operation &op) const
{
    return op.immSrc1 ? static_cast<u64>(op.imm) : readSrc(core, op.src1);
}

bool
Machine::operandsReady(Core &core, const Operation &op) const
{
    return operandsReadyAt(core, op) <= now_;
}

Cycle
Machine::operandsReadyAt(const Core &core, const Operation &op) const
{
    const ReadyBoard &ready = core.frames.back().ready;
    Cycle at = 0;
    if (op.src0.valid())
        at = std::max(at, ready.get(op.src0));
    if (op.usesSrc1())
        at = std::max(at, ready.get(op.src1));
    return at;
}

void
Machine::writeDst(Core &core, RegId dst, u64 value, u32 latency)
{
    Frame &frame = core.frames.back();
    frame.regs.write(dst, value);
    frame.ready.set(dst, now_ + latency);
}

u64
Machine::dataRead(Core &core, Addr addr, u8 size, bool sign)
{
    if (tm_.active(core.id))
        return tm_.read(core.id, mem_, addr, size, sign);
    return mem_.read(addr, size, sign);
}

void
Machine::dataWrite(Core &core, Addr addr, u64 value, u8 size)
{
    if (tm_.active(core.id))
        tm_.write(core.id, addr, value, size);
    else
        mem_.write(addr, value, size);
}

bool
Machine::execute(Core &core, const Operation &op)
{
    const bool lockstep = group_.active;
    const u32 lat = op_latency(op.op);

    switch (op.op) {
      case Opcode::NOP:
        break;

      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SHL:
      case Opcode::SHR: case Opcode::SRA: case Opcode::MIN:
      case Opcode::MAX:
        writeDst(core, op.dst,
                 eval_int(op.op, readSrc(core, op.src0), src1Value(core, op)),
                 lat);
        break;
      case Opcode::MOV:
        writeDst(core, op.dst, readSrc(core, op.src0), lat);
        break;
      case Opcode::MOVI:
        writeDst(core, op.dst, static_cast<u64>(op.imm), lat);
        break;
      case Opcode::CMP:
        writeDst(core, op.dst,
                 eval_cmp(op.cond, readSrc(core, op.src0),
                          src1Value(core, op)) ? 1 : 0, lat);
        break;
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV:
        writeDst(core, op.dst,
                 eval_fp(op.op, readSrc(core, op.src0),
                         readSrc(core, op.src1)), lat);
        break;
      case Opcode::FMOV:
        writeDst(core, op.dst, readSrc(core, op.src0), lat);
        break;
      case Opcode::FMOVI:
        writeDst(core, op.dst, static_cast<u64>(op.imm), lat);
        break;
      case Opcode::FCMP:
        writeDst(core, op.dst,
                 eval_fcmp(op.cond, readSrc(core, op.src0),
                           readSrc(core, op.src1)) ? 1 : 0, lat);
        break;
      case Opcode::ITOF:
        writeDst(core, op.dst,
                 std::bit_cast<u64>(static_cast<double>(
                     static_cast<i64>(readSrc(core, op.src0)))), lat);
        break;
      case Opcode::FTOI:
        writeDst(core, op.dst,
                 static_cast<u64>(static_cast<i64>(
                     std::bit_cast<double>(readSrc(core, op.src0)))), lat);
        break;

      case Opcode::LOAD:
      case Opcode::LOADF: {
        const Addr addr = readSrc(core, op.src0) + static_cast<u64>(op.imm);
        const AccessOutcome out =
            hierarchy_.access(core.id, addr, false, now_);
        const u8 size = op.op == Opcode::LOADF ? 8 : op.memSize;
        writeDst(core, op.dst, dataRead(core, addr, size, op.memSigned),
                 lat + out.latency);
        if (out.latency > 0) {
            core.busyUntil = now_ + 1 + out.latency;
            core.busyCat = StallCat::DCache;
        }
        break;
      }
      case Opcode::STORE:
      case Opcode::STOREF: {
        const Addr addr = readSrc(core, op.src0) + static_cast<u64>(op.imm);
        const AccessOutcome out = hierarchy_.access(core.id, addr, true,
                                                    now_);
        const u8 size = op.op == Opcode::STOREF ? 8 : op.memSize;
        dataWrite(core, addr, readSrc(core, op.src1), size);
        if (out.latency > 0) {
            core.busyUntil = now_ + 1 + out.latency;
            core.busyCat = StallCat::DCache;
        }
        break;
      }

      case Opcode::PBR:
        writeDst(core, op.dst, static_cast<u64>(op.imm), lat);
        break;

      case Opcode::BR:
      case Opcode::BRU: {
        if (lockstep && core.pendingTaken) {
            // An earlier branch of this block was taken; later branch
            // slots are shadowed (they would not have been fetched on a
            // real machine).
            break;
        }
        bool taken = op.op == Opcode::BRU ||
                     core.frames.back().regs.readPred(op.src0);
        if (taken) {
            const RegId target_reg =
                op.op == Opcode::BRU ? op.src0 : op.src1;
            CodeRef ref = CodeRef::decode(readSrc(core, target_reg));
            panic_if_not(ref.kind == CodeRef::Kind::Block,
                         "branch to non-block ref");
            if (lockstep) {
                core.pendingTaken = true;
                core.pendingTarget = ref.block;
            } else {
                enterBlock(core, ref.block);
            }
        }
        break;
      }

      case Opcode::CALL: {
        panic_if_not(!lockstep, "CALL inside a coupled region");
        panic_if_not(core.id == 0, "CALL on a worker core");
        CodeRef ref = CodeRef::decode(readSrc(core, op.src0));
        panic_if_not(ref.kind == CodeRef::Kind::Function,
                     "CALL to non-function ref");
        fatal_if_not(core.frames.size() < 512, "simulated stack overflow");
        const Function &callee = coreFunc(core.id, ref.func);
        Frame callee_frame;
        callee_frame.func = ref.func;
        callee_frame.retBlock = core.block;
        callee_frame.retIdx = core.opIdx + 1;
        for (u16 a = 1; a <= callee.numArgs; ++a)
            callee_frame.regs.write(gpr(a),
                                    core.frames.back().regs.read(gpr(a)));
        core.frames.push_back(std::move(callee_frame));
        core.func = ref.func;
        enterBlock(core, 0);
        break;
      }
      case Opcode::RET: {
        panic_if_not(!lockstep && core.id == 0, "RET outside master serial");
        panic_if_not(core.frames.size() > 1, "RET from outermost frame");
        const Function &callee_fn = coreFunc(core.id, core.func);
        u64 result = 0;
        const bool returns = callee_fn.returnsValue;
        if (returns)
            result = core.frames.back().regs.read(gpr(0));
        const BlockId ret_block = core.frames.back().retBlock;
        const size_t ret_idx = core.frames.back().retIdx;
        core.frames.pop_back();
        core.func = core.frames.back().func;
        if (returns)
            writeDst(core, gpr(0), result, 1);
        enterBlock(core, ret_block);
        core.opIdx = ret_idx;
        break;
      }
      case Opcode::HALT:
        panic_if_not(core.id == 0, "HALT on a worker core");
        exitValue_ = readSrc(core, op.src0);
        halted_ = true;
        break;

      case Opcode::PUT: {
        panic_if_not(lockstep, "PUT outside coupled mode");
        net_.putDirect(core.id, op.dir, readSrc(core, op.src0), now_);
        break;
      }
      case Opcode::GET: {
        panic_if_not(lockstep, "GET outside coupled mode");
        u64 value = op.imm == 1 ? net_.getBroadcast(core.id, now_)
                                : net_.getDirect(core.id, op.dir, now_);
        writeDst(core, op.dst, value, 1);
        break;
      }
      case Opcode::BCAST: {
        panic_if_not(lockstep, "BCAST outside coupled mode");
        net_.broadcast(core.id, readSrc(core, op.src0), now_);
        break;
      }

      case Opcode::SEND: {
        const CoreId target = static_cast<CoreId>(op.imm);
        if (net_.sendWouldStall(core.id, target)) {
            stall(core, StallCat::SendFull);
            return false;
        }
        net_.send(core.id, target, readSrc(core, op.src0), now_);
        break;
      }
      case Opcode::RECV: {
        const CoreId sender = static_cast<CoreId>(op.imm);
        auto value = net_.tryRecv(core.id, sender, now_);
        if (!value) {
            StallCat cat;
            switch (op.commTag) {
              case Operation::CommTag::Join:
                cat = StallCat::JoinSync;
                break;
              case Operation::CommTag::MemSync:
                cat = StallCat::MemSync;
                break;
              default:
                cat = op.dst.cls == RegClass::PR ? StallCat::RecvPred
                                                 : StallCat::RecvData;
                break;
            }
            stall(core, cat);
            return false;
        }
        writeDst(core, op.dst, *value, 1);
        break;
      }

      case Opcode::SPAWN: {
        const CoreId target = static_cast<CoreId>(op.imm);
        if (net_.sendWouldStall(core.id, target, /*is_spawn=*/true)) {
            stall(core, StallCat::SendFull);
            return false;
        }
        net_.send(core.id, target, readSrc(core, op.src1), now_,
                  /*is_spawn=*/true);
        if (trace_) {
            TraceEvent ev;
            ev.cycle = now_;
            ev.core = core.id;
            ev.kind = TraceEventKind::SpawnSend;
            ev.arg16 = target;
            trace_->emit(ev);
        }
        break;
      }
      case Opcode::SLEEP:
        core.state = CoreRun::Idle;
        if (trace_) {
            TraceEvent ev;
            ev.cycle = now_;
            ev.core = core.id;
            ev.kind = TraceEventKind::Sleep;
            trace_->emit(ev);
        }
        break;

      case Opcode::MODE_SWITCH:
        if (op.imm == 0) {
            // To coupled: barrier. The op must terminate its block.
            panic_if_not(core.opIdx + 1 == curBlock(core).ops.size(),
                         "MODE_SWITCH(coupled) must end its block");
            core.state = CoreRun::Barrier;
        }
        // To decoupled: a plain 1-cycle op (the dissolve already happened
        // at the block transition).
        break;

      case Opcode::XBEGIN:
        tm_.begin(core.id, static_cast<u64>(op.imm));
        break;
      case Opcode::XCOMMIT:
        tm_.close(core.id);
        break;
      case Opcode::XABORT:
        tm_.abort(core.id);
        break;
      case Opcode::XVALIDATE: {
        panic_if_not(core.id == 0, "XVALIDATE on a worker core");
        TmResolution res = tm_.resolve(mem_);
        writeDst(core, op.dst, res.violated ? 1 : 0, 1);
        const u32 cost = config_.tmResolveBase +
                         static_cast<u32>(res.linesCommitted) *
                             config_.tmResolvePerLine;
        core.busyUntil = now_ + 1 + cost;
        core.busyCat = StallCat::TmResolve;
        break;
      }

      default:
        panic("machine cannot execute ", op.op);
    }
    return true;
}

bool
Machine::stepDecoupled(Core &core)
{
    if (core.state == CoreRun::Halted)
        return false;

    if (core.state == CoreRun::Idle) {
        auto spawn = net_.trySpawn(core.id, now_);
        if (spawn) {
            CodeRef ref = CodeRef::decode(*spawn);
            panic_if_not(ref.kind == CodeRef::Kind::Block,
                         "spawn to non-block ref");
            core.func = ref.func;
            core.frames.back().func = ref.func;
            core.state = CoreRun::Run;
            enterBlock(core, ref.block);
            core.busyUntil = now_ + 1; // wake-up cycle
            if (trace_) {
                TraceEvent ev;
                ev.cycle = now_;
                ev.core = core.id;
                ev.kind = TraceEventKind::SpawnWake;
                ev.arg64 = *spawn;
                trace_->emit(ev);
            }
            return true;
        }
        core.idleCycles++;
        core.lastIdle = true;
        return false;
    }

    if (core.state == CoreRun::Barrier) {
        stall(core, StallCat::Barrier);
        return false;
    }

    if (core.busyUntil > now_) {
        stall(core, core.busyCat);
        return false;
    }

    // Fallthrough across (possibly empty) blocks costs nothing: it is
    // straight-line layout in the real machine.
    {
        u32 guard = 0;
        while (core.opIdx >= curBlock(core).ops.size()) {
            const BasicBlock &bb = curBlock(core);
            panic_if_not(bb.fallthrough != kNoBlock,
                         "control fell off block ", bb.name, " on core ",
                         core.id);
            enterBlock(core, bb.fallthrough);
            panic_if_not(++guard < 10000, "fallthrough cycle");
        }
    }

    const BasicBlock &bb = curBlock(core);
    const Operation &op = bb.ops[core.opIdx];

    if (!core.fetched) {
        const AccessOutcome out =
            hierarchy_.fetch(core.id, opAddr(core, core.opIdx), now_);
        core.fetched = true;
        if (out.latency > 0) {
            core.busyUntil = now_ + out.latency;
            core.busyCat = StallCat::IFetch;
            stall(core, StallCat::IFetch);
            return false;
        }
    }

    if (!operandsReady(core, op)) {
        stall(core, StallCat::Latency);
        return false;
    }

    const FuncId func0 = core.func;
    const BlockId block0 = core.block;
    const size_t idx0 = core.opIdx;
    const size_t frames0 = core.frames.size();
    const CoreRun state0 = core.state;

    if (!execute(core, op))
        return false;

    if (trace_)
        traceIssue(core, op);
    core.issued++;
    if (core.busyUntil <= now_)
        core.busyUntil = now_ + 1;
    // Advance the PC unless the op transferred control or slept.
    if (core.func == func0 && core.block == block0 && core.opIdx == idx0 &&
        core.frames.size() == frames0) {
        if (core.state == state0 || core.state == CoreRun::Barrier) {
            core.opIdx++;
            core.fetched = false;
        } else {
            // SLEEP: position is irrelevant until the next spawn.
            core.fetched = false;
        }
    } else {
        core.fetched = false;
    }
    return true;
}

bool
Machine::maybeFormGroup()
{
    for (const Core &core : cores_) {
        if (core.state != CoreRun::Barrier)
            return false;
    }
    // Everyone is at the barrier: enter lockstep at the fallthrough block.
    BlockId next = kNoBlock;
    for (Core &core : cores_) {
        const BasicBlock &bb = curBlock(core);
        panic_if_not(bb.fallthrough != kNoBlock,
                     "MODE_SWITCH(coupled) block has no fallthrough");
        enterBlock(core, bb.fallthrough);
        const BasicBlock &target = curBlock(core);
        panic_if_not(target.scheduled(),
                     "coupled region entry block is unscheduled");
        if (next == kNoBlock)
            next = core.block;
        panic_if_not(next == core.block,
                     "cores disagree on the coupled entry block");
        core.state = CoreRun::Run;
        core.pendingTaken = false;
    }
    group_.active = true;
    group_.blockCycle = 0;
    group_.stallUntil = 0;
    if (trace_) {
        traceCoupledSince_ = now_;
        for (Core &core : cores_) {
            // The Barrier span, if one is open: stall() already charged
            // the formation cycle, so the span is end-inclusive.
            traceCloseStall(core, /*include_now=*/true);
            TraceEvent ev;
            ev.cycle = now_;
            ev.core = core.id;
            ev.kind = TraceEventKind::ModeBegin;
            ev.arg8 = kTraceModeCoupled;
            trace_->emit(ev);
        }
    }
    return true;
}

void
Machine::dissolveGroup()
{
    group_.active = false;
    if (trace_) {
        for (Core &core : cores_) {
            TraceEvent ev;
            ev.cycle = now_;
            ev.core = core.id;
            ev.kind = TraceEventKind::ModeEnd;
            ev.arg8 = kTraceModeCoupled;
            ev.arg64 = now_ - traceCoupledSince_;
            trace_->emit(ev);
        }
    }
}

bool
Machine::stepGroup()
{
    if (group_.stallUntil > now_) {
        for (Core &core : cores_)
            stall(core, group_.stallCat);
        return false;
    }

    // The stall bus released this cycle: close every core's open span
    // now. Issuing cores would close theirs via traceIssue anyway, but a
    // core with no op due this schedule cycle never issues, and its span
    // would silently swallow the uncharged no-op slots until its next
    // issue — overstating the stall to any trace consumer.
    if (trace_)
        for (Core &core : cores_)
            traceCloseStall(core);

    const u32 g = group_.blockCycle;

    // Schedule-consistency check: every core is in the same logical block.
    const BlockId block = cores_[0].block;
    const FuncId func = cores_[0].func;
    u32 sched_len = 0;
    for (Core &core : cores_) {
        panic_if_not(core.block == block && core.func == func,
                     "lockstep divergence: core ", core.id, " at block ",
                     core.block, " expected ", block);
        const BasicBlock &bb = curBlock(core);
        panic_if_not(bb.scheduled(), "lockstep in unscheduled block");
        sched_len = std::max(sched_len, bb.schedLen);
    }

    // Phase 0: instruction fetch for every due op.
    u32 max_ifetch = 0;
    for (Core &core : cores_) {
        const BasicBlock &bb = curBlock(core);
        if (core.opIdx < bb.ops.size() && bb.issueCycles[core.opIdx] == g &&
            !core.fetched) {
            const AccessOutcome out =
                hierarchy_.fetch(core.id, opAddr(core, core.opIdx), now_);
            core.fetched = true;
            max_ifetch = std::max(max_ifetch, out.latency);
        }
    }
    if (max_ifetch > 0) {
        group_.stallUntil = now_ + max_ifetch;
        group_.stallCat = StallCat::IFetch;
        for (Core &core : cores_)
            stall(core, StallCat::IFetch);
        return false;
    }

    // Phase A: drive the links (PUT/BCAST) so same-cycle GETs can read.
    auto due_op = [&](Core &core) -> const Operation * {
        const BasicBlock &bb = curBlock(core);
        if (core.opIdx < bb.ops.size() && bb.issueCycles[core.opIdx] == g)
            return &bb.ops[core.opIdx];
        return nullptr;
    };

    for (Core &core : cores_) {
        const Operation *op = due_op(core);
        if (op && (op->op == Opcode::PUT || op->op == Opcode::BCAST)) {
            panic_if_not(operandsReady(core, *op),
                         "coupled schedule issued ", op->op,
                         " before its operand was ready (core ", core.id,
                         ", block cycle ", g, ")");
            execute(core, *op);
            if (trace_)
                traceIssue(core, *op);
            core.issued++;
            core.opIdx++;
            core.fetched = false;
        }
    }

    // Phase B: everything else; collect the worst data-miss stall.
    Cycle max_busy = 0;
    for (Core &core : cores_) {
        const Operation *op = due_op(core);
        if (!op)
            continue;
        panic_if_not(operandsReady(core, *op),
                     "coupled schedule issued ", op->op,
                     " before its operand was ready (core ", core.id,
                     ", block cycle ", g, ")");
        panic_if_not(execute(core, *op),
                     "op stalled inside a coupled block: ", op->op);
        if (trace_)
            traceIssue(core, *op);
        core.issued++;
        core.opIdx++;
        core.fetched = false;
        max_busy = std::max(max_busy, core.busyUntil);
        core.busyUntil = 0;
        core.busyCat = StallCat::None;
    }
    if (max_busy > now_ + 1) {
        // A core that issued a missing access is busy until max_busy; the
        // stall bus freezes the group until then (resume at max_busy).
        group_.stallUntil = max_busy;
        group_.stallCat = StallCat::DCache;
    }

    // End of block?
    if (g + 1 >= sched_len) {
        // Each core computes its own next block. Within the region all
        // cores land on the same mirrored block id; at a region exit each
        // core branches to its *own* epilogue block (unscheduled, ids may
        // differ across clones) and the group dissolves.
        std::vector<BlockId> nexts;
        for (Core &core : cores_) {
            const BasicBlock &bb = curBlock(core);
            panic_if_not(core.opIdx >= bb.ops.size(),
                         "unissued ops at the end of a coupled block (core ",
                         core.id, ")");
            BlockId my_next =
                core.pendingTaken ? core.pendingTarget : bb.fallthrough;
            panic_if_not(my_next != kNoBlock,
                         "coupled block without a successor");
            nexts.push_back(my_next);
        }
        u32 scheduled_count = 0;
        for (Core &core : cores_) {
            core.pendingTaken = false;
            enterBlock(core, nexts[core.id]);
            if (curBlock(core).scheduled())
                scheduled_count++;
        }
        if (scheduled_count == cores_.size()) {
            for (const Core &core : cores_) {
                panic_if_not(core.block == cores_[0].block,
                             "lockstep branch divergence at block ", block);
            }
            group_.blockCycle = 0;
        } else {
            panic_if_not(scheduled_count == 0,
                         "mixed scheduled/unscheduled lockstep successors");
            dissolveGroup();
        }
    } else {
        group_.blockCycle = g + 1;
    }
    return true;
}

void
Machine::attributeCycle()
{
    const Core &master = cores_[0];
    RegionId region = kNoRegion;
    if (master.state == CoreRun::Run || master.state == CoreRun::Barrier)
        region = curBlock(master).region;
    if (region != kNoRegion)
        regionCycles_[region]++;
    if (group_.active)
        coupledCycles_++;
    else
        decoupledCycles_++;
    // Region transitions only happen on stepped cycles (the master moves
    // blocks only when it steps), so emitting on change here is
    // fast-forward-safe.
    if (trace_ && region != traceRegion_) {
        TraceEvent ev;
        ev.cycle = now_;
        ev.core = 0;
        ev.kind = TraceEventKind::RegionEnter;
        ev.arg32 = region;
        if (region < prog_.regions.size())
            ev.arg8 = static_cast<u8>(prog_.regions[region].mode) + 1;
        trace_->emit(ev);
        traceRegion_ = region;
    }
}

void
Machine::fastForward()
{
    // The cycle just stepped was quiescent: nothing issued, woke, or
    // advanced, so the machine is settled — every following cycle
    // repeats the same per-core accounting until the next wake-up
    // event. Find the earliest such event and jump there in one step.
    Cycle wake = kNever;

    if (group_.active) {
        // A non-stalled group always advances, so settling implies the
        // stall bus is asserted; the group wakes when it releases.
        if (group_.stallUntil >= now_)
            wake = group_.stallUntil;
    } else {
        for (const Core &core : cores_) {
            // Idle, Barrier, SendFull and RECV-blocked cores are woken
            // by other cores' actions or by message arrivals — both
            // covered below; they contribute no event of their own.
            if (core.state != CoreRun::Run)
                continue;
            // A busy-stalled core has busyUntil >= now_ (it resumes
            // then); any smaller value is stale from an older op.
            if (core.busyUntil >= now_)
                wake = std::min(wake, core.busyUntil);
            else if (core.lastWait == StallCat::Latency)
                wake = std::min(
                    wake,
                    operandsReadyAt(core, curBlock(core).ops[core.opIdx]));
        }
    }

    // In-flight messages wake RECV-blocked runners and idle
    // spawn-listeners when they arrive.
    wake = std::min(wake, net_.nextArrival(now_ - 1));

    // Never skip past the watchdog trip or the cycle cap: both must
    // observe exactly the cycle they would under naive stepping.
    wake = std::min(wake, lastProgress_ + config_.watchdogCycles + 1);
    wake = std::min(wake, config_.maxCycles);

    if (wake <= now_)
        return;

    // Batch-replay what the naive stepper would have charged in each
    // skipped cycle: per-core, exactly one of an idle cycle or a stall
    // in the category recorded by the settled step.
    const u64 skipped = wake - now_;
    for (Core &core : cores_) {
        if (core.lastIdle)
            core.idleCycles += skipped;
        else if (core.lastWait != StallCat::None)
            core.stalls[static_cast<size_t>(core.lastWait)] += skipped;
    }
    const Core &master = cores_[0];
    if (master.state == CoreRun::Run || master.state == CoreRun::Barrier) {
        const BasicBlock &bb = curBlock(master);
        if (bb.region != kNoRegion)
            regionCycles_[bb.region] += skipped;
    }
    if (group_.active)
        coupledCycles_ += skipped;
    else
        decoupledCycles_ += skipped;
    now_ = wake;
}

u64
Machine::issuedTotal() const
{
    u64 total = 0;
    for (const Core &core : cores_)
        total += core.issued;
    return total;
}

void
Machine::watchdogTick(u64 &last_dynamic)
{
    const u64 dyn = issuedTotal();
    if (dyn != last_dynamic) {
        last_dynamic = dyn;
        lastProgress_ = now_;
        return;
    }
    if (now_ - lastProgress_ <= config_.watchdogCycles)
        return;
    auto state_name = [](CoreRun s) {
        switch (s) {
          case CoreRun::Idle: return "idle";
          case CoreRun::Run: return "running";
          case CoreRun::Barrier: return "at barrier";
          case CoreRun::Halted: return "halted";
          default: return "?";
        }
    };
    std::ostringstream os;
    for (const Core &core : cores_) {
        os << "  core " << core.id << ": " << state_name(core.state);
        if (core.state == CoreRun::Run ||
            core.state == CoreRun::Barrier) {
            const BasicBlock &bb = curBlock(core);
            os << " in f" << core.func << "/" << bb.name << " at op "
               << core.opIdx << "/" << bb.ops.size();
        }
        if (core.busyUntil > now_)
            os << ", busy until cycle " << core.busyUntil << " ("
               << stall_cat_name(core.busyCat) << ")";
        else if (core.lastWait != StallCat::None)
            os << ", waiting on " << stall_cat_name(core.lastWait);
        os << ", " << net_.queuedFor(core.id)
           << " queued message(s)\n";
    }
    if (group_.active)
        os << "  coupled group active at block cycle "
           << group_.blockCycle << "\n";
    fatal("machine deadlock: no instruction issued for ",
          config_.watchdogCycles, " cycles (at cycle ", now_,
          ")\n", os.str());
}

MachineResult
Machine::buildResult() const
{
    MachineResult result;
    result.exitValue = exitValue_;
    result.cycles = now_;
    result.dynamicOps = issuedTotal();
    result.stalls.reserve(cores_.size());
    result.issued.reserve(cores_.size());
    result.idleCycles.reserve(cores_.size());
    for (const Core &core : cores_) {
        result.stalls.push_back(core.stalls);
        result.issued.push_back(core.issued);
        result.idleCycles.push_back(core.idleCycles);
    }
    for (RegionId r = 0; r < regionCycles_.size(); ++r) {
        if (regionCycles_[r] != 0)
            result.regionCycles[r] = regionCycles_[r];
    }
    result.coupledCycles = coupledCycles_;
    result.decoupledCycles = decoupledCycles_;
    return result;
}

MachineResult
Machine::run()
{
    // The parallel stepper's one-cycle conservative window needs every
    // cross-core message to arrive at least a cycle after its send; a
    // zero-latency network (degenerate config) voids that, so it runs
    // sequentially — results are identical by construction either way.
    const u16 threads = std::min(config_.stepperThreads, config_.numCores);
    if (threads > 1 &&
        config_.net.queueBaseLatency + config_.net.hopLatency >= 1)
        return runThreaded(threads);

    lastProgress_ = 0;
    u64 last_dynamic = 0;

    while (!halted_) {
        fatal_if_not(now_ < config_.maxCycles,
                     "machine exceeded ", config_.maxCycles, " cycles");

        for (Core &core : cores_) {
            core.lastWait = StallCat::None;
            core.lastIdle = false;
        }

        bool active;
        if (group_.active) {
            active = stepGroup();
        } else {
            active = false;
            for (Core &core : cores_)
                active |= stepDecoupled(core);
            active |= maybeFormGroup();
        }

        attributeCycle();
        watchdogTick(last_dynamic);
        ++now_;

        if (!active && !halted_ && !config_.forceNaiveStepping)
            fastForward();
    }

    if (trace_) {
        // Close every span still open at halt so the exported timeline
        // has no dangling begins.
        for (Core &core : cores_)
            traceCloseStall(core);
        if (group_.active)
            dissolveGroup();
    }

    return buildResult();
}

Machine::StepClass
Machine::classifyDecoupled(const Core &core) const
{
    if (core.state == CoreRun::Halted)
        return StepClass::LocalNoMem;
    if (core.state == CoreRun::Idle) {
        // A due spawn dequeues from the network in the serial section;
        // continuing to listen only bumps the core's own idle counter.
        return net_.spawnDue(core.id, now_) ? StepClass::Shared
                                            : StepClass::LocalNoMem;
    }
    if (core.state == CoreRun::Barrier)
        return StepClass::LocalNoMem; // barrier stall: own counters only
    if (core.busyUntil > now_)
        return StepClass::LocalNoMem; // busy stall: own counters only

    // Side-effect-free mirror of stepDecoupled's fallthrough walk (the
    // real step commits it; block transitions touch only the core).
    const Function &fn = coreFunc(core.id, core.func);
    const BasicBlock *bb = core.bb;
    BlockId block = core.block;
    size_t op_idx = core.opIdx;
    u32 guard = 0;
    while (op_idx >= bb->ops.size()) {
        if (bb->fallthrough == kNoBlock || ++guard >= 10000)
            return StepClass::Shared; // let the serial step panic
        block = bb->fallthrough;
        if (block >= fn.blocks.size())
            return StepClass::Shared; // ditto (enterBlock panics)
        bb = &fn.blocks[block];
        op_idx = 0;
    }
    const Operation &op = bb->ops[op_idx];

    if (!core.fetched) {
        const Addr addr =
            blockAddr_[core.id][core.func][block] + op_idx * kOpBytes;
        if (!hierarchy_.l1iHit(core.id, addr))
            return StepClass::Shared; // ifetch miss arbitrates the bus
    }
    if (operandsReadyAt(core, op) > now_)
        return StepClass::LocalNoMem; // scoreboard stall: own counters

    switch (op.op) {
      case Opcode::NOP:
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SHL:
      case Opcode::SHR: case Opcode::SRA: case Opcode::MIN:
      case Opcode::MAX:
      case Opcode::MOV: case Opcode::MOVI: case Opcode::CMP:
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV: case Opcode::FMOV: case Opcode::FMOVI:
      case Opcode::FCMP: case Opcode::ITOF: case Opcode::FTOI:
      case Opcode::PBR:
      case Opcode::BR: case Opcode::BRU:
      case Opcode::SLEEP:
      case Opcode::MODE_SWITCH:
        return StepClass::LocalNoMem;

      case Opcode::CALL:
      case Opcode::RET:
        // Master-only by contract; on a worker the step panics, and
        // panics must fire on the serial thread in sequential order.
        return core.id == 0 ? StepClass::LocalNoMem : StepClass::Shared;

      case Opcode::LOAD:
      case Opcode::LOADF: {
        const Addr addr = core.frames.back().regs.read(op.src0) +
                          static_cast<u64>(op.imm);
        const u8 size = op.op == Opcode::LOADF ? 8 : op.memSize;
        // The timing model probes one line, but the data path reads the
        // actual bytes: an access crossing into the next line can touch
        // bytes outside the MOESI-exclusivity argument, so it defers.
        const u32 line = config_.mem.l1d.lineBytes;
        if ((addr & (line - 1)) + size > line)
            return StepClass::Shared;
        // Any valid line read-hits without touching the bus or peers.
        return hierarchy_.l1dState(core.id, addr) != Moesi::Invalid
                   ? StepClass::LocalMem
                   : StepClass::Shared;
      }
      case Opcode::STORE:
      case Opcode::STOREF: {
        const Addr addr = core.frames.back().regs.read(op.src0) +
                          static_cast<u64>(op.imm);
        const u8 size = op.op == Opcode::STOREF ? 8 : op.memSize;
        const u32 line = config_.mem.l1d.lineBytes;
        if ((addr & (line - 1)) + size > line)
            return StepClass::Shared; // line-crossing write: see LOAD
        const Moesi state = hierarchy_.l1dState(core.id, addr);
        if (state != Moesi::Modified && state != Moesi::Exclusive)
            return StepClass::Shared; // miss or S/O upgrade: bus traffic
        if (!tm_.active(core.id)) {
            // A plain store writes mem_ through; page allocation would
            // mutate the shared page table, so only already-resident
            // destinations stay local. (A transactional store goes to
            // the core's own write log instead.)
            if (!mem_.writeInPlace(addr, size))
                return StepClass::Shared;
        }
        return StepClass::LocalMem;
      }

      case Opcode::RECV:
        // A due RECV dequeues; a stalled one only bumps own counters.
        return net_.recvDue(core.id, static_cast<CoreId>(op.imm), now_)
                   ? StepClass::Shared
                   : StepClass::LocalNoMem;

      default:
        // SEND/SPAWN (enqueue), HALT, XBEGIN/XCOMMIT/XABORT/XVALIDATE,
        // PUT/GET/BCAST (decoupled-mode panic), and anything new.
        return StepClass::Shared;
    }
}

namespace {

/**
 * Phase barrier for the parallel stepper. The last thread to arrive
 * runs the serial callback inline, then releases the others. Waiters
 * spin briefly and fall back to atomic waits — the stepper must not
 * burn a host core per waiter when threads are oversubscribed.
 */
class StepBarrier
{
  public:
    explicit StepBarrier(u32 parties) : parties_(parties) {}

    template <typename Serial>
    void
    arrive(Serial &&serial)
    {
        const u64 phase = phase_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            serial();
            arrived_.store(0, std::memory_order_relaxed);
            phase_.fetch_add(1, std::memory_order_release);
            phase_.notify_all();
            return;
        }
        u32 spins = 0;
        while (phase_.load(std::memory_order_acquire) == phase) {
            if (++spins >= kSpinsBeforeWait) {
                phase_.wait(phase, std::memory_order_acquire);
                spins = 0;
            }
        }
    }

  private:
    static constexpr u32 kSpinsBeforeWait = 1024;

    const u32 parties_;
    std::atomic<u32> arrived_{0};
    std::atomic<u64> phase_{0};
};

constexpr u32 kNoSharedCore = std::numeric_limits<u32>::max();

} // namespace

MachineResult
Machine::runThreaded(u16 nthreads)
{
    // Retarget every emitter at the ordering mux so the merged stream
    // reproduces the sequential emission order exactly (restored below;
    // the mux is stack-local).
    std::optional<CycleTraceMux> mux;
    TraceSink *const downstream = trace_;
    if (downstream) {
        mux.emplace(downstream, config_.numCores);
        trace_ = &*mux;
        net_.setTraceSink(trace_);
        hierarchy_.setTraceSink(trace_);
        tm_.setTraceSink(trace_, &now_);
    }

    const u16 n = config_.numCores;
    StepBarrier barrier(nthreads);
    // Lowest core id classified Shared this cycle. Hit-path memory cores
    // above it defer to the serial section: a Shared step ahead of them
    // in sequential order may snoop their lines or commit TM state.
    std::atomic<u32> sharedMin{kNoSharedCore};
    std::vector<u8> cls(n, 0);
    std::vector<u8> stepped(n, 0);
    std::atomic<bool> failed{false};
    bool done = false;
    std::exception_ptr error;
    std::mutex error_mutex;
    u64 last_dynamic = 0;
    lastProgress_ = 0;

    auto record_error = [&]() {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error)
            error = std::current_exception();
        failed.store(true, std::memory_order_release);
    };

    // Everything the sequential loop runs after the per-core steps:
    // deferred Shared steps (in core-id order — the sequential order),
    // group formation, attribution, the watchdog, fast-forward, whole
    // coupled-lockstep episodes, and the halt epilogue.
    auto serial_section = [&]() {
        if (failed.load(std::memory_order_acquire)) {
            done = true;
            return;
        }
        try {
            bool active = false;
            for (u16 c = 0; c < n; ++c) {
                active |= stepped[c] != 0;
                stepped[c] = 0;
            }
            for (u16 c = 0; c < n; ++c)
                if (cls[c] == static_cast<u8>(StepClass::Shared))
                    active |= stepDecoupled(cores_[c]);
            // Post-step machinery emits in sequential order *after* all
            // per-core step events — route it to the post buffer.
            if (mux)
                mux->setMode(CycleTraceMux::Mode::Serial);
            active |= maybeFormGroup();
            attributeCycle();
            watchdogTick(last_dynamic);
            ++now_;
            if (!active && !halted_ && !config_.forceNaiveStepping)
                fastForward();
            if (mux) {
                mux->flushCycle();
                mux->setMode(CycleTraceMux::Mode::Direct);
            }
            // Coupled lockstep is single-owner by construction (the
            // whole group steps as one), so the episode runs here,
            // mirroring the sequential loop cycle for cycle.
            while (group_.active && !halted_) {
                fatal_if_not(now_ < config_.maxCycles,
                             "machine exceeded ", config_.maxCycles,
                             " cycles");
                for (Core &core : cores_) {
                    core.lastWait = StallCat::None;
                    core.lastIdle = false;
                }
                const bool gactive = stepGroup();
                attributeCycle();
                watchdogTick(last_dynamic);
                ++now_;
                if (!gactive && !halted_ && !config_.forceNaiveStepping)
                    fastForward();
            }
            if (halted_) {
                if (trace_) {
                    for (Core &core : cores_)
                        traceCloseStall(core);
                    if (group_.active)
                        dissolveGroup();
                }
                done = true;
            } else {
                fatal_if_not(now_ < config_.maxCycles,
                             "machine exceeded ", config_.maxCycles,
                             " cycles");
                sharedMin.store(kNoSharedCore, std::memory_order_relaxed);
                if (mux)
                    mux->setMode(CycleTraceMux::Mode::PerCore);
            }
        } catch (...) {
            record_error();
            done = true;
            if (mux) {
                // Keep whatever the cycle buffered ahead of the panic
                // (divergence repros read the trace up to the failure).
                try { mux->flushCycle(); } catch (...) {}
            }
        }
    };

    auto worker = [&](u16 tid) {
        const u16 lo = static_cast<u16>(tid * n / nthreads);
        const u16 hi = static_cast<u16>((tid + 1) * n / nthreads);
        for (;;) {
            // Pass 1: classify own cores; step the provably-local ones.
            if (!failed.load(std::memory_order_relaxed)) {
                try {
                    for (u16 c = lo; c < hi; ++c) {
                        cores_[c].lastWait = StallCat::None;
                        cores_[c].lastIdle = false;
                    }
                    for (u16 c = lo; c < hi; ++c) {
                        const StepClass k = classifyDecoupled(cores_[c]);
                        cls[c] = static_cast<u8>(k);
                        if (k == StepClass::LocalNoMem) {
                            stepped[c] = stepDecoupled(cores_[c]) ? 1 : 0;
                        } else if (k == StepClass::Shared) {
                            u32 cur =
                                sharedMin.load(std::memory_order_relaxed);
                            while (c < cur &&
                                   !sharedMin.compare_exchange_weak(
                                       cur, c, std::memory_order_relaxed)) {
                            }
                        }
                    }
                } catch (...) {
                    record_error();
                }
            }
            barrier.arrive([] {});
            // Pass 2: hit-path memory steps below the Shared horizon.
            // MOESI exclusivity makes concurrent hits conflict-free: a
            // write hit requires M/E (no peer copy), so any concurrent
            // peer access to that line would have missed — and missing
            // cores are Shared, stepped serially.
            if (!failed.load(std::memory_order_relaxed)) {
                try {
                    const u32 horizon =
                        sharedMin.load(std::memory_order_relaxed);
                    for (u16 c = lo; c < hi; ++c) {
                        if (cls[c] != static_cast<u8>(StepClass::LocalMem))
                            continue;
                        if (c < horizon)
                            stepped[c] = stepDecoupled(cores_[c]) ? 1 : 0;
                        else
                            cls[c] = static_cast<u8>(StepClass::Shared);
                    }
                } catch (...) {
                    record_error();
                }
            }
            barrier.arrive(serial_section);
            if (done)
                break;
        }
    };

    fatal_if_not(now_ < config_.maxCycles,
                 "machine exceeded ", config_.maxCycles, " cycles");

    std::vector<std::thread> pool;
    pool.reserve(nthreads - 1);
    for (u16 t = 1; t < nthreads; ++t)
        pool.emplace_back(worker, t);
    worker(0);
    for (std::thread &t : pool)
        t.join();

    if (downstream) {
        trace_ = downstream;
        net_.setTraceSink(trace_);
        hierarchy_.setTraceSink(trace_);
        tm_.setTraceSink(trace_, &now_);
    }
    if (error)
        std::rethrow_exception(error);
    return buildResult();
}

MetricsRegistry
collect_metrics(const Machine &machine, const MachineResult &result)
{
    MetricsRegistry m;
    m.set("sim.cycles", result.cycles);
    m.set("sim.dynamicOps", result.dynamicOps);
    m.set("sim.exitValue", result.exitValue);
    m.set("sim.coupledCycles", result.coupledCycles);
    m.set("sim.decoupledCycles", result.decoupledCycles);
    for (size_t c = 0; c < result.issued.size(); ++c) {
        const std::string prefix = "sim.core" + std::to_string(c) + ".";
        m.set(prefix + "issued", result.issued[c]);
        m.set(prefix + "idleCycles", result.idleCycles[c]);
        for (size_t s = 1; s < static_cast<size_t>(StallCat::NumCats);
             ++s) {
            const u64 v = result.stalls[c][s];
            if (v != 0)
                m.set(prefix + "stall." +
                          stall_cat_name(static_cast<StallCat>(s)),
                      v);
        }
    }
    for (const auto &[region, cycles] : result.regionCycles)
        m.set("sim.region" + std::to_string(region) + ".cycles", cycles);
    // Memory counters get the "mem." prefix; network and TM StatSets
    // already name their counters "net.*" / "tm.*".
    m.addStatSet("mem.", machine.memStats());
    m.addStatSet("", machine.netStats());
    m.addStatSet("", machine.tmStats());
    // Distribution summaries. Skipped when empty (serial runs send no
    // messages) so the JSON carries no all-zero noise.
    if (machine.network().hopLatency().count() != 0)
        m.addHistogram("net.hopLatency", machine.network().hopLatency());
    if (machine.network().queueDepth().count() != 0)
        m.addHistogram("net.queueDepth", machine.network().queueDepth());
    return m;
}

} // namespace voltron
