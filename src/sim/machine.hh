/**
 * @file
 * The Voltron multicore machine — a cycle-stepped simulator of N
 * single-issue in-order VLIW cores with the dual-mode operand network,
 * coherent caches, the stall bus, and the transactional memory.
 *
 * Execution model:
 *  - Core 0 (the master) runs the program skeleton start-to-finish.
 *  - Worker cores idle in a spawn-listen loop; a SPAWN message wakes one
 *    at a block of its own clone; SLEEP returns it to listening.
 *  - MODE_SWITCH(coupled) is a barrier: once every core reaches it, all
 *    cores enter lockstep and execute their (compiler-scheduled) blocks
 *    cycle-by-cycle as one wide VLIW; any core's cache-miss stall stalls
 *    the whole group (the 1-bit stall bus). Lockstep ends when the group
 *    branches into an unscheduled block (whose first op is
 *    MODE_SWITCH(decoupled)).
 *
 * The simulator *checks* the compiler's lockstep invariants at run time:
 * operands must be ready when a scheduled op issues, PUT/GET pairs must
 * meet in the same cycle, and all cores must traverse the same logical
 * block sequence. Violations panic — they are compiler bugs, never
 * silently wrong results.
 */

#ifndef VOLTRON_SIM_MACHINE_HH_
#define VOLTRON_SIM_MACHINE_HH_

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <vector>

#include "interp/regfile.hh"
#include "mem/hierarchy.hh"
#include "mem/memimage.hh"
#include "network/network.hh"
#include "sim/machineprog.hh"
#include "support/stats.hh"
#include "tm/tm.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace voltron {

// StallCat and stall_cat_name historically lived here; they moved to
// trace/trace.hh so the trace layer can name stall spans without a
// dependency on the simulator. Including trace.hh (above) re-exports
// them for every existing user of this header.

/** Machine configuration. */
struct MachineConfig
{
    u16 numCores = 4;
    NetworkConfig net;
    MemConfig mem;
    u64 maxCycles = 2'000'000'000;
    /** Cycles of XVALIDATE base cost plus per-committed-line cost. */
    u32 tmResolveBase = 20;
    u32 tmResolvePerLine = 1;
    /** Watchdog: fatal after this many cycles with no core issuing. */
    u64 watchdogCycles = 200'000;
    /**
     * Disable the idle-cycle fast-forward and step every cycle naively.
     * Results are bit-identical either way (tests/test_sim_fastforward.cc
     * asserts it); this exists for that comparison and as a debug escape
     * hatch.
     */
    bool forceNaiveStepping = false;

    /**
     * Event sink for cycle-accurate tracing (not owned; must outlive the
     * machine). nullptr — the default — disables tracing entirely; a
     * traced run's MachineResult is bit-identical to an untraced one
     * (tests/test_trace.cc).
     */
    TraceSink *traceSink = nullptr;

    /**
     * Host threads stepping this one machine's decoupled cores in
     * parallel (0 or 1 = the sequential stepper). The parallel stepper
     * is bit-identical to the sequential one — same MachineResult, same
     * trace stream (tests/test_sim_parallel.cc asserts both) — so this
     * is purely a wall-clock knob. Capped at numCores.
     */
    u16 stepperThreads = 0;

    /** Machine with the default mesh shape for @p cores (any count in
     * [1, kMaxCores]; see default_mesh_shape for the fold). */
    static MachineConfig forCores(u16 cores);

    /** Machine with an explicit @p rows x @p cols mesh. */
    static MachineConfig forMesh(u16 rows, u16 cols);
};

/** Result of a completed machine run. */
struct MachineResult
{
    u64 exitValue = 0;
    Cycle cycles = 0;
    u64 dynamicOps = 0;

    /** Per-core stall cycles by category. */
    std::vector<std::array<u64, static_cast<size_t>(StallCat::NumCats)>>
        stalls;
    /** Per-core issued-op counts. */
    std::vector<u64> issued;
    /** Per-core idle (asleep) cycles. */
    std::vector<u64> idleCycles;

    /** Cycles attributed to each region (by the master's position). */
    std::map<RegionId, u64> regionCycles;
    /** Cycles spent in coupled lockstep vs decoupled execution. */
    u64 coupledCycles = 0;
    u64 decoupledCycles = 0;

    u64
    stallSum(CoreId core) const
    {
        u64 sum = 0;
        for (u64 v : stalls.at(core))
            sum += v;
        return sum;
    }
    u64 stallOf(CoreId core, StallCat cat) const
    {
        return stalls.at(core).at(static_cast<size_t>(cat));
    }
};

/** The machine. */
class Machine
{
  public:
    Machine(const MachineProgram &prog, const MachineConfig &config);
    ~Machine();

    /** Run to master HALT; returns results. */
    MachineResult run();

    /** Architectural memory after (or during) the run. */
    MemoryImage &memory() { return mem_; }
    const MemoryImage &memory() const { return mem_; }

    /** Component statistics. */
    const StatSet &memStats() const { return hierarchy_.stats(); }
    const StatSet &netStats() const { return net_.stats(); }
    const StatSet &tmStats() const { return tm_.stats(); }

    /** The operand network (histogram accessors for collect_metrics). */
    const OperandNetwork &network() const { return net_; }

  private:
    /**
     * Flat register-ready scoreboard: one contiguous bank of ready times
     * per register class, indexed by register index and grown on demand
     * (mirrors RegFile). Replaces a per-frame hash map on the hot path.
     */
    class ReadyBoard
    {
      public:
        Cycle
        get(RegId reg) const
        {
            const auto &bank = banks_[bankIdx(reg.cls)];
            return reg.idx < bank.size() ? bank[reg.idx] : 0;
        }

        void
        set(RegId reg, Cycle at)
        {
            auto &bank = banks_[bankIdx(reg.cls)];
            if (reg.idx >= bank.size())
                bank.resize(std::max<size_t>(reg.idx + 1, 32), 0);
            bank[reg.idx] = at;
        }

      private:
        static size_t
        bankIdx(RegClass cls)
        {
            return static_cast<size_t>(cls) - 1; // None has no bank
        }

        std::array<std::vector<Cycle>, 4> banks_;
    };

    struct Frame
    {
        FuncId func = kNoFunc;
        RegFile regs;
        ReadyBoard ready;
        /** Return point in the caller (master only). */
        BlockId retBlock = kNoBlock;
        size_t retIdx = 0;
    };

    enum class CoreRun : u8 { Idle, Run, Barrier, Halted };

    struct Core
    {
        CoreId id = 0;
        CoreRun state = CoreRun::Idle;
        FuncId func = 0;
        BlockId block = 0;
        size_t opIdx = 0;
        std::vector<Frame> frames;
        Cycle busyUntil = 0;
        StallCat busyCat = StallCat::None;
        bool fetched = false;

        /** Hot-path caches, maintained by bindBlock(): the current block,
         * and its first op's instruction address. */
        const BasicBlock *bb = nullptr;
        Addr blockBase = 0;

        /** What this core charged in the cycle just stepped: exactly one
         * of an idle cycle or a stall category (or neither if it issued
         * or is halted). fastForward() replays it per skipped cycle. */
        StallCat lastWait = StallCat::None;
        bool lastIdle = false;

        /** Lockstep: branch outcome recorded for the block transition. */
        bool pendingTaken = false;
        BlockId pendingTarget = kNoBlock;

        std::array<u64, static_cast<size_t>(StallCat::NumCats)> stalls{};
        u64 issued = 0;
        u64 idleCycles = 0;

        /** Open trace stall span (None when no span is open). Only ever
         * set while a trace sink is configured. */
        StallCat traceOpenStall = StallCat::None;
        Cycle traceStallSince = 0;

        Frame &frame() { return frames.back(); }
    };

    /** The (single) coupled lockstep group. */
    struct Group
    {
        bool active = false;
        u32 blockCycle = 0;
        Cycle stallUntil = 0;
        StallCat stallCat = StallCat::None;
    };

    const MachineProgram &prog_;
    MachineConfig config_;
    MemoryImage mem_;
    MemHierarchy hierarchy_;
    OperandNetwork net_;
    TransactionalMemory tm_;
    std::vector<Core> cores_;
    Group group_;
    Cycle now_ = 0;
    bool halted_ = false;
    u64 exitValue_ = 0;
    Cycle lastProgress_ = 0;
    /** Per-region cycle counts, indexed by RegionId (bumped every
     * attributed cycle, so kept flat; folded into the result map at the
     * end of run()). */
    std::vector<u64> regionCycles_;
    u64 coupledCycles_ = 0, decoupledCycles_ = 0;

    /** Trace state (all inert when trace_ is null). */
    TraceSink *trace_ = nullptr;
    RegionId traceRegion_ = kNoRegion;
    Cycle traceCoupledSince_ = 0;

    /** Per-core, per-function, per-block instruction base address —
     * contiguous tables indexed [core][func][block]. */
    std::vector<std::vector<std::vector<Addr>>> blockAddr_;

    const Function &coreFunc(CoreId c, FuncId f) const
    {
        return prog_.perCore.at(c).functions.at(f);
    }
    const BasicBlock &curBlock(const Core &core) const { return *core.bb; }

    Addr opAddr(const Core &core, size_t op_idx) const;
    void layoutCode();

    void stall(Core &core, StallCat cat);

    /** Close @p core's open stall span (StallEnd carrying the length);
     * @p include_now extends the span over the closing cycle (coupled
     * group formation, where the barrier stall charged it). */
    void traceCloseStall(Core &core, bool include_now = false);
    /** traceCloseStall + an Issue event for @p op. */
    void traceIssue(Core &core, const Operation &op);
    void enterBlock(Core &core, BlockId block);
    /** Refresh the Core::bb / Core::blockBase caches from func/block. */
    void bindBlock(Core &core);
    bool operandsReady(Core &core, const Operation &op) const;
    /** Cycle at which every operand of @p op becomes ready. */
    Cycle operandsReadyAt(const Core &core, const Operation &op) const;
    void writeDst(Core &core, RegId dst, u64 value, u32 latency);
    u64 readSrc(Core &core, RegId reg) const;
    u64 src1Value(Core &core, const Operation &op) const;

    /** Memory access routed through the TM when a txn is open. */
    u64 dataRead(Core &core, Addr addr, u8 size, bool sign);
    void dataWrite(Core &core, Addr addr, u64 value, u8 size);

    /** One decoupled step of @p core. Returns true if it issued an op
     * (or woke on a spawn). */
    bool stepDecoupled(Core &core);

    /** Execute @p op on @p core (shared by both modes). Returns false if
     * the op could not complete (core must retry, stall recorded). */
    bool execute(Core &core, const Operation &op);

    /** One lockstep step of the whole group. Returns false when the
     * group only burned a stall cycle (nothing issued or advanced). */
    bool stepGroup();

    /** Try to form the group once every core is at the barrier.
     * Returns true if the group formed. */
    bool maybeFormGroup();

    void dissolveGroup();

    void attributeCycle();

    /**
     * How the parallel stepper may run one core's next decoupled step:
     *
     *   LocalNoMem  touches only core-private state — step it in the
     *               first parallel pass.
     *   LocalMem    an L1D hit (loads: any valid line; stores: an
     *               M/E line, so MOESI guarantees no peer holds a
     *               copy) — safe to run concurrently with other
     *               hit-path cores, but only below the lowest Shared
     *               core id (second pass).
     *   Shared      touches shared machine state (bus, network queues,
     *               TM resolution, spawn wake, HALT, or any panic
     *               path) — defer to the serial section, stepped in
     *               ascending core id, the sequential order.
     */
    enum class StepClass : u8 { LocalNoMem, LocalMem, Shared };

    /** Side-effect-free classification of @p core's next decoupled
     * step. Conservative: anything not provably core-local is Shared. */
    StepClass classifyDecoupled(const Core &core) const;

    /** The conservative-window parallel stepper (stepperThreads >= 2). */
    MachineResult runThreaded(u16 nthreads);

    /** Sum of per-core issued-op counters == the dynamic op count (every
     * issue bumps exactly one core's counter). The watchdog and the
     * result read this instead of a shared counter so parallel passes
     * never write machine-global state. */
    u64 issuedTotal() const;

    /** Progress bookkeeping + no-issue watchdog for the cycle just
     * stepped; @p last_dynamic is the caller's running issued count. */
    void watchdogTick(u64 &last_dynamic);

    /** Fold the finished run's state into a MachineResult. */
    MachineResult buildResult() const;

    /**
     * Event-driven fast path: called after a cycle in which nothing
     * issued, woke, or advanced. Computes the next wake-up time (min
     * over core busy times, operand-ready times, in-flight network
     * arrivals, and the group stall release), batch-attributes the
     * skipped cycles exactly as the naive stepper would, and jumps
     * now_ there.
     */
    void fastForward();
};

/**
 * Fold a completed run's counters — the MachineResult stall/issue/idle
 * arrays plus the three component StatSets — into one MetricsRegistry
 * namespace:
 *
 *   sim.cycles / sim.dynamicOps / sim.exitValue
 *   sim.coupledCycles / sim.decoupledCycles
 *   sim.core<N>.issued / .idleCycles / .stall.<cat>
 *   sim.region<R>.cycles
 *   mem.<StatSet name> / net.<...> / tm.<...>
 *
 * This is the single authority for the unified metric names; everything
 * that serializes run counters (bench JSON, voltron-trace) goes through
 * it.
 */
MetricsRegistry collect_metrics(const Machine &machine,
                                const MachineResult &result);

} // namespace voltron

#endif // VOLTRON_SIM_MACHINE_HH_
