#include "compiler/schedule.hh"

#include <algorithm>
#include <map>

#include "isa/latencies.hh"
#include "support/error.hh"

namespace voltron {

namespace {

struct Node
{
    u32 slot;
    CoreId core;
    const Operation *op;
    bool isBranch;
    i64 cycle = -1; //!< assigned issue cycle
};

struct Edge
{
    u32 from, to;
    u32 minDelta; //!< to.cycle >= from.cycle + minDelta
};

} // namespace

BlockSchedule
schedule_block(const std::vector<ScheduleSlot> &slots, u16 num_cores)
{
    std::vector<Node> nodes;
    nodes.reserve(slots.size());
    for (u32 i = 0; i < slots.size(); ++i) {
        const Operation &op = slots[i].op;
        nodes.push_back({i, slots[i].core, &op,
                         op.op == Opcode::BR || op.op == Opcode::BRU});
    }

    // --- Dependence edges -------------------------------------------------
    std::vector<Edge> edges;
    auto add_edge = [&](u32 from, u32 to, u32 delta) {
        if (from != to)
            edges.push_back({from, to, delta});
    };

    // Per-(core, reg) flow/anti/output edges in slot order.
    std::map<std::pair<CoreId, RegId>, u32> last_def;
    std::map<std::pair<CoreId, RegId>, std::vector<u32>> uses_since_def;
    for (u32 i = 0; i < nodes.size(); ++i) {
        const Operation &op = *nodes[i].op;
        const CoreId core = nodes[i].core;
        for (RegId use : op.uses()) {
            auto key = std::make_pair(core, use);
            auto it = last_def.find(key);
            if (it != last_def.end()) {
                add_edge(it->second, i,
                         op_latency(nodes[it->second].op->op));
            }
            uses_since_def[key].push_back(i);
        }
        RegId def = op.def();
        if (def.valid()) {
            auto key = std::make_pair(core, def);
            auto it = last_def.find(key);
            if (it != last_def.end())
                add_edge(it->second, i, 1); // WAW
            for (u32 use_node : uses_since_def[key])
                add_edge(use_node, i, 0); // WAR (same core serialises)
            uses_since_def[key].clear();
            last_def[key] = i;
        }
    }

    // Memory dependences in slot order (alias by memSym; 0 is wildcard).
    std::vector<u32> mem_nodes;
    for (u32 i = 0; i < nodes.size(); ++i)
        if (is_memory(nodes[i].op->op))
            mem_nodes.push_back(i);
    for (size_t a = 0; a < mem_nodes.size(); ++a) {
        for (size_t b = a + 1; b < mem_nodes.size(); ++b) {
            const Operation &oa = *nodes[mem_nodes[a]].op;
            const Operation &ob = *nodes[mem_nodes[b]].op;
            if (!is_store(oa.op) && !is_store(ob.op))
                continue;
            const bool alias = oa.memSym == 0 || ob.memSym == 0 ||
                               oa.memSym == ob.memSym;
            if (alias)
                add_edge(mem_nodes[a], mem_nodes[b], 1);
        }
    }

    // --- Transfer groups ---------------------------------------------------
    // Group id -> member node indices (must share an issue cycle).
    std::map<u32, std::vector<u32>> groups;
    std::vector<u32> group_of(nodes.size());
    {
        u32 next_singleton = 0;
        std::map<u32, u32> by_transfer;
        std::vector<std::vector<u32>> group_list;
        for (u32 i = 0; i < nodes.size(); ++i) {
            const Operation &op = *nodes[i].op;
            if (is_comm(op.op) && op.seqId >= kTransferIdBase) {
                auto [it, fresh] =
                    by_transfer.try_emplace(op.seqId, next_singleton);
                if (fresh) {
                    group_list.emplace_back();
                    next_singleton++;
                }
                group_of[i] = it->second;
                group_list[it->second].push_back(i);
            } else {
                group_of[i] = next_singleton;
                group_list.emplace_back();
                group_list[next_singleton].push_back(i);
                next_singleton++;
            }
        }
        for (u32 gi = 0; gi < group_list.size(); ++gi)
            groups[gi] = group_list[gi];
    }

    // Incoming edges per group; group heights for priority.
    std::map<u32, std::vector<Edge>> in_edges;
    for (const Edge &e : edges)
        in_edges[group_of[e.to]].push_back(e);

    std::vector<u64> height(nodes.size(), 0);
    for (size_t i = nodes.size(); i-- > 0;) {
        for (const Edge &e : edges) {
            if (e.from != i)
                continue;
            height[i] = std::max(height[i],
                                 height[e.to] + std::max(e.minDelta, 1u));
        }
    }
    auto group_height = [&](u32 gi) {
        u64 h = 0;
        for (u32 m : groups[gi])
            h = std::max(h, height[m]);
        return h;
    };

    // --- List scheduling ---------------------------------------------------
    std::vector<bool> group_done(groups.size(), false);
    std::map<std::pair<CoreId, u32>, bool> core_busy; // (core, cycle)
    u32 remaining = 0;
    for (auto &[gi, members] : groups) {
        bool branch_group = false;
        for (u32 m : members)
            if (nodes[m].isBranch)
                branch_group = true;
        if (branch_group) {
            group_done[gi] = true; // placed at the end
            panic_if_not(members.size() == 1,
                         "branch op inside a transfer group");
        } else {
            remaining++;
        }
    }

    // The broadcast wire is a single shared bus: at most one BCAST may
    // issue per cycle machine-wide, or same-cycle broadcasts would
    // overwrite each other in the wire latch.
    auto group_broadcasts = [&](u32 gi) {
        for (u32 m : groups[gi])
            if (nodes[m].op->op == Opcode::BCAST)
                return true;
        return false;
    };

    u32 cycle = 0;
    const u32 kScheduleCap = 200000;
    while (remaining > 0) {
        panic_if_not(cycle < kScheduleCap, "scheduler failed to converge");
        bool bcast_busy = false;
        // Collect groups ready at this cycle, sorted by priority.
        std::vector<u32> ready;
        for (auto &[gi, members] : groups) {
            if (group_done[gi])
                continue;
            bool ok = true;
            for (const Edge &e : in_edges[gi]) {
                const Node &from = nodes[e.from];
                if (from.cycle < 0 ||
                    from.cycle + static_cast<i64>(e.minDelta) >
                        static_cast<i64>(cycle)) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                continue;
            for (u32 m : members) {
                if (core_busy[{nodes[m].core, cycle}]) {
                    ok = false;
                    break;
                }
            }
            if (ok)
                ready.push_back(gi);
        }
        std::stable_sort(ready.begin(), ready.end(), [&](u32 a, u32 b) {
            return group_height(a) > group_height(b);
        });
        for (u32 gi : ready) {
            if (group_done[gi])
                continue;
            if (group_broadcasts(gi) && bcast_busy)
                continue;
            bool free = true;
            for (u32 m : groups[gi])
                if (core_busy[{nodes[m].core, cycle}])
                    free = false;
            if (!free)
                continue;
            for (u32 m : groups[gi]) {
                nodes[m].cycle = cycle;
                core_busy[{nodes[m].core, cycle}] = true;
            }
            if (group_broadcasts(gi))
                bcast_busy = true;
            group_done[gi] = true;
            remaining--;
        }
        cycle++;
    }

    // --- Branch placement and schedule length -------------------------------
    i64 max_issue = -1, max_completion = 0;
    for (const Node &node : nodes) {
        if (node.isBranch)
            continue;
        max_issue = std::max(max_issue, node.cycle);
        max_completion =
            std::max(max_completion,
                     node.cycle + static_cast<i64>(op_latency(node.op->op)));
    }

    // Branches go last, in original order, one cycle each. Each core's
    // replicas appear in the same slot order, so "the j-th branch" lands
    // on the same cycle on every core. A taken branch shadows the later
    // ones (the simulator ignores branch ops once a transfer is pending).
    bool has_branch = false;
    i64 branch_ready = 0;
    u32 branches_per_core = 0;
    {
        std::map<CoreId, u32> per_core;
        for (u32 i = 0; i < nodes.size(); ++i) {
            if (!nodes[i].isBranch)
                continue;
            has_branch = true;
            per_core[nodes[i].core]++;
            for (const Edge &e : edges) {
                if (e.to != i)
                    continue;
                branch_ready = std::max(
                    branch_ready,
                    nodes[e.from].cycle + static_cast<i64>(e.minDelta));
            }
        }
        for (const auto &[core, count] : per_core)
            branches_per_core = std::max(branches_per_core, count);
    }

    u32 sched_len;
    if (has_branch) {
        const i64 branch_base =
            std::max({max_issue + 1, max_completion - 1, branch_ready,
                      static_cast<i64>(0)});
        std::map<CoreId, u32> seen;
        for (Node &node : nodes) {
            if (!node.isBranch)
                continue;
            node.cycle = branch_base + seen[node.core]++;
        }
        sched_len = static_cast<u32>(branch_base + branches_per_core);
    } else {
        sched_len = static_cast<u32>(
            std::max({max_issue + 1, max_completion, static_cast<i64>(1)}));
    }

    // --- Emit ---------------------------------------------------------------
    BlockSchedule result;
    result.perCore.resize(num_cores);
    result.schedLen = sched_len;

    std::vector<u32> order_idx;
    for (u32 i = 0; i < nodes.size(); ++i)
        order_idx.push_back(i);
    std::stable_sort(order_idx.begin(), order_idx.end(), [&](u32 a, u32 b) {
        return nodes[a].cycle < nodes[b].cycle;
    });
    for (u32 i : order_idx) {
        const Node &node = nodes[i];
        panic_if_not(node.cycle >= 0, "unscheduled op");
        CoreSchedule &cs = result.perCore.at(node.core);
        cs.ops.push_back(*node.op);
        cs.issueCycles.push_back(static_cast<u32>(node.cycle));
    }

    // Sanity: one op per core per cycle.
    for (const CoreSchedule &cs : result.perCore) {
        for (size_t i = 1; i < cs.issueCycles.size(); ++i)
            panic_if_not(cs.issueCycles[i] > cs.issueCycles[i - 1],
                         "core double-issued in a cycle");
    }
    return result;
}

} // namespace voltron
