/**
 * @file
 * The Voltron compiler driver: profiles, regions, technique selection
 * (paper §4.2), partitioning, and code generation.
 */

#ifndef VOLTRON_COMPILER_COMPILE_HH_
#define VOLTRON_COMPILER_COMPILE_HH_

#include <map>

#include "compiler/codegen.hh"
#include "compiler/partition.hh"
#include "interp/profile.hh"
#include "sim/machineprog.hh"

namespace voltron {

/** Which parallelism the compilation is allowed to exploit. */
enum class Strategy : u8 {
    SerialOnly, //!< baseline: everything on one core
    IlpOnly,    //!< coupled-mode BUG everywhere (paper Fig. 10/11 "ILP")
    TlpOnly,    //!< DSWP + strands ("fine-grain TLP")
    LlpOnly,    //!< statistical DOALL only ("LLP")
    Hybrid,     //!< paper §4.2 selection (Fig. 13)
    /**
     * Hybrid selection, then per-region overrides measured from traced
     * runs (VoltronSystem::runAdaptive drives the loop). The static
     * heuristic guesses from the interpreter profile; Adaptive replaces
     * the guess with what the machine actually did.
     */
    Adaptive,
};

const char *strategy_name(Strategy strategy);

/** Compilation options. */
struct CompileOptions
{
    u16 numCores = 4;
    Strategy strategy = Strategy::Hybrid;

    /**
     * Target mesh geometry (rows * cols must equal numCores when set).
     * 0/0 — the default — compiles for default_mesh_shape(numCores).
     * Codegen routes coupled-mode PUT/GET hop chains against this
     * shape, so it is part of the compiled artifact's identity (the
     * cache hashes it) and is stamped into the MachineProgram for the
     * simulator's compatibility check.
     */
    u16 meshRows = 0;
    u16 meshCols = 0;

    /** The resolved geometry this compilation targets. */
    MeshShape
    meshShape() const
    {
        if (meshRows != 0 || meshCols != 0)
            return {meshRows, meshCols};
        return default_mesh_shape(numCores);
    }

    /** Regions with fewer profiled ops per entry run serially. */
    u64 minOpsPerActivation = 48;

    /** DOALL needs at least this mean trip count (paper: a threshold). */
    double minDoallTrip = 8.0;

    /** DSWP estimated-speedup gate (paper: 1.25). */
    double dswpThreshold = 1.25;

    /** Regions whose miss-stall fraction exceeds this use strands. */
    double missStallFraction = 0.15;

    /** Miss penalty estimate for the fraction above (cycles). */
    u32 missPenalty = 30;

    /** Rebalance integer accumulation chains (ILP height reduction). */
    bool reassociate = true;

    PartitionOptions partition;

    /** Ablation: permit decoupled cross-core memory deps (sync tokens). */
    bool allowCrossCoreMemDep = false;

    /**
     * Adaptive only: measured per-region mode replacements, applied
     * after §4.2 selection and clamped to what the region can actually
     * support (DOALL needs the speculation plan, DSWP the feasible
     * pipeline; an infeasible request keeps the heuristic's choice).
     * Region ids are stable across recompiles of the same program —
     * form_regions does not depend on the strategy — so the map is
     * meaningful from one adaptive round to the next.
     */
    std::map<RegionId, ExecMode> modeOverrides;

    /** Adaptive only: bound on measure-and-recompile rounds. */
    u32 maxAdaptiveRounds = 4;
};

/** Per-region selection record (for reports and Fig. 3-style output). */
struct SelectionReport
{
    struct Entry
    {
        RegionId region;
        FuncId func;
        RegionKind kind;
        ExecMode mode;
        u64 profiledOps;
        double dswpEstimate;
        double missFraction;
    };
    std::vector<Entry> entries;
};

/**
 * Compile @p prog for a Voltron machine. @p profile must come from a
 * training run of the reference interpreter.
 */
MachineProgram compile_program(const Program &prog, const Profile &profile,
                               const CompileOptions &options,
                               SelectionReport *report = nullptr);

} // namespace voltron

#endif // VOLTRON_COMPILER_COMPILE_HH_
