#include <algorithm>

#include "compiler/partition.hh"
#include "ir/scc.hh"
#include "isa/latencies.hh"
#include "support/error.hh"

namespace voltron {

namespace {

/** Skip list: ops codegen replicates rather than assigns. */
bool
is_replicated(const Operation &op)
{
    return op.op == Opcode::BR || op.op == Opcode::BRU ||
           op.op == Opcode::PBR;
}

/** Height (critical-path length to any sink) per node, longest first. */
std::vector<u64>
compute_heights(const DepGraph &g)
{
    // Heights over forward edges only (ignore cycles by capping passes).
    std::vector<u64> height(g.nodes.size(), 0);
    bool changed = true;
    u32 passes = 0;
    while (changed && passes < 64) {
        changed = false;
        passes++;
        for (size_t i = g.nodes.size(); i-- > 0;) {
            u64 h = 0;
            for (const DepEdge &e : g.succs[i]) {
                if (e.kind != DepKind::RegFlow)
                    continue;
                if (!(g.nodes[i].ref < g.nodes[e.to].ref))
                    continue; // skip loop-carried back edges
                h = std::max(h, height[e.to] +
                                    op_latency(g.nodes[e.to].op->op));
            }
            if (h > height[i]) {
                height[i] = h;
                changed = true;
            }
        }
    }
    return height;
}

} // namespace

Assignment
partition_bug(const DepGraph &g, const PartitionOptions &opts)
{
    fatal_if_not(opts.numCores >= 1, "partitioning for zero cores");
    Assignment result;
    if (g.nodes.empty())
        return result;

    const std::vector<u64> height = compute_heights(g);

    // Visit order: program order refined by height (critical paths first
    // among independent ops) — the estimate-driven greedy of BUG.
    std::vector<u32> order;
    for (u32 i = 0; i < g.nodes.size(); ++i)
        order.push_back(i);
    std::stable_sort(order.begin(), order.end(), [&](u32 a, u32 b) {
        if (g.nodes[a].ref.block != g.nodes[b].ref.block)
            return g.nodes[a].ref.block < g.nodes[b].ref.block;
        return g.nodes[a].ref.idx < g.nodes[b].ref.idx;
    });

    // Greedy state.
    struct ValueHome
    {
        CoreId core = 0;
        u64 ready = 0;
        std::set<CoreId> copies; //!< cores holding a transferred copy
    };
    std::vector<u64> core_free(opts.numCores, 0);   // next free issue slot
    std::vector<u64> mem_count(opts.numCores, 0);   // memory ops per core
    u64 total_mem = 0;
    std::map<RegId, ValueHome> home;                // reg -> location info
    std::map<u32, CoreId> class_home;               // alias class -> core
    std::vector<CoreId> assigned(g.nodes.size(), kNoCore);

    for (u32 node_idx : order) {
        const DepNode &node = g.nodes[node_idx];
        const Operation &op = *node.op;
        if (is_replicated(op))
            continue;

        // Alias-class pinning (eBUG, decoupled correctness discipline).
        CoreId forced = kNoCore;
        if (opts.enhanced && opts.pinAliasClasses && node.aliasClass != 0) {
            auto it = class_home.find(node.aliasClass);
            if (it != class_home.end())
                forced = it->second;
        }

        CoreId best = 0;
        u64 best_cost = ~0ULL;
        u64 best_start = 0;
        for (CoreId c = 0; c < opts.numCores; ++c) {
            if (forced != kNoCore && c != forced)
                continue;
            // Operand arrival estimate. A copy already transferred to c
            // (for an earlier consumer) costs nothing extra — the codegen
            // sends each def to each using core once. eBUG edge weights
            // are *placement penalties*: they steer the choice but must
            // not inflate the schedule-time estimates (core_free/ready),
            // or one weighted edge poisons every later decision.
            u64 arrival = 0;
            u64 penalty = 0;
            for (RegId use : op.uses()) {
                auto it = home.find(use);
                if (it == home.end())
                    continue; // live-in: available everywhere via setup
                const auto &[home_core, ready, copies] = it->second;
                u64 when = ready;
                if (home_core != c && !copies.count(c)) {
                    when += opts.transferCost;
                    if (opts.enhanced) {
                        // Likely-missing-load edge weight: breaking the
                        // load->consumer edge couples both cores' stalls.
                        for (const DepEdge &e : g.preds[node_idx]) {
                            if (e.kind != DepKind::RegFlow)
                                continue;
                            const DepNode &pred = g.nodes[e.to];
                            if (pred.op->def() == use &&
                                is_load(pred.op->op) &&
                                pred.missRate > opts.missThreshold) {
                                penalty += opts.missEdgeWeight;
                            }
                        }
                    }
                }
                arrival = std::max(arrival, when);
            }
            const u64 start = std::max(arrival, core_free[c]);
            u64 cost = start + penalty;
            if (opts.enhanced && is_memory(op.op) && total_mem > 0 &&
                mem_count[c] * 2 > total_mem) {
                cost += opts.memImbalancePenalty;
            }
            if (cost < best_cost ||
                (cost == best_cost && core_free[c] < core_free[best])) {
                best_cost = cost;
                best_start = start;
                best = c;
            }
        }

        assigned[node_idx] = best;
        result[node.ref] = best;
        const u64 start = best_start;
        core_free[best] = start + 1;
        // Record the transfers this placement implies.
        for (RegId use : op.uses()) {
            auto it = home.find(use);
            if (it != home.end() && it->second.core != best)
                it->second.copies.insert(best);
        }
        if (op.def().valid()) {
            ValueHome vh;
            vh.core = best;
            vh.ready = start + op_latency(op.op);
            home[op.def()] = vh;
        }
        if (is_memory(op.op)) {
            mem_count[best]++;
            total_mem++;
            if (opts.enhanced && opts.pinAliasClasses &&
                node.aliasClass != 0) {
                class_home.emplace(node.aliasClass, best);
            }
        }
    }

    return result;
}

DswpResult
partition_dswp(const DepGraph &g, const PartitionOptions &opts)
{
    DswpResult result;
    if (g.nodes.empty())
        return result;

    const SccResult scc = tarjan_scc(g.adjacency());

    // Condensation weights and topological order.
    std::vector<u64> scc_weight(scc.numComponents, 0);
    for (u32 i = 0; i < g.nodes.size(); ++i)
        scc_weight[scc.componentOf[i]] += g.nodes[i].weight;

    const std::vector<u32> topo = scc.componentsInTopoOrder();

    // Greedy stage fill: walk the condensation in topo order, cutting a
    // new stage when the running weight exceeds the per-core target.
    const u64 total = g.totalWeight();
    const u64 target = (total + opts.numCores - 1) / opts.numCores;
    std::vector<u32> stage_of(scc.numComponents, 0);
    u32 stage = 0;
    u64 fill = 0;
    for (u32 comp : topo) {
        if (fill > 0 && fill + scc_weight[comp] > target &&
            stage + 1 < opts.numCores) {
            stage++;
            fill = 0;
        }
        stage_of[comp] = stage;
        fill += scc_weight[comp];
    }
    result.stagesUsed = stage + 1;

    // Per-stage weights -> estimated pipeline speedup.
    std::vector<u64> stage_weight(result.stagesUsed, 0);
    for (u32 comp = 0; comp < scc.numComponents; ++comp)
        stage_weight[stage_of[comp]] += scc_weight[comp];
    const u64 max_stage =
        *std::max_element(stage_weight.begin(), stage_weight.end());
    if (max_stage == 0)
        return result;

    // Per-iteration cross-stage communication burdens the pipeline: each
    // register value crossing stages costs a SEND slot on the producer
    // and a RECV slot on the consumer, every iteration. Charge one def's
    // dynamic execution count per (def, remote stage) pair against the
    // bottleneck stage — this is what rejects "pipelines" that would
    // spend their win shipping operands (the paper's compiler makes the
    // same profitability call before committing to DSWP).
    u64 comm_weight = 0;
    {
        std::set<std::pair<u32, u32>> charged; // (node, remote stage)
        for (u32 i = 0; i < g.nodes.size(); ++i) {
            for (const DepEdge &e : g.succs[i]) {
                if (e.kind != DepKind::RegFlow)
                    continue;
                const u32 s_from = stage_of[scc.componentOf[i]];
                const u32 s_to = stage_of[scc.componentOf[e.to]];
                if (s_from == s_to)
                    continue;
                if (charged.insert({i, s_to}).second)
                    comm_weight += g.nodes[i].execs;
            }
        }
    }
    result.estimatedSpeedup =
        static_cast<double>(total) /
        static_cast<double>(max_stage + comm_weight);
    result.feasible = result.stagesUsed >= 2;

    for (u32 i = 0; i < g.nodes.size(); ++i) {
        const Operation &op = *g.nodes[i].op;
        if (is_replicated(op))
            continue;
        result.assignment[g.nodes[i].ref] =
            static_cast<CoreId>(stage_of[scc.componentOf[i]]);
    }
    return result;
}

} // namespace voltron
