#include "compiler/regions.hh"

#include <algorithm>

#include "support/error.hh"

namespace voltron {

namespace {

/** True if the block contains an op that forces serial execution. */
bool
has_serial_op(const BasicBlock &bb)
{
    for (const Operation &op : bb.ops) {
        switch (op.op) {
          case Opcode::CALL:
          case Opcode::RET:
          case Opcode::HALT:
            return true;
          default:
            break;
        }
    }
    return false;
}

} // namespace

FuncAnalyses::FuncAnalyses(const Function &f) : fn(&f)
{
    cfg = std::make_unique<Cfg>(f);
    dom = std::make_unique<DomTree>(*cfg);
    loops = std::make_unique<LoopForest>(f, *cfg, *dom);
}

std::vector<CompilerRegion>
form_regions(const Function &fn, const FuncAnalyses &fa)
{
    const size_t n = fn.blocks.size();
    const Cfg &cfg = *fa.cfg;
    const auto &loops = fa.loops->loops();

    std::vector<int> region_of(n, -1);
    std::vector<CompilerRegion> regions;

    auto new_region = [&](RegionKind kind) -> CompilerRegion & {
        CompilerRegion region;
        region.func = fn.id;
        region.kind = kind;
        regions.push_back(std::move(region));
        return regions.back();
    };

    // 1. A loop is a candidate iff it and all nested blocks are call-free
    //    and it does not contain the function entry block.
    auto loop_is_candidate = [&](const Loop &loop) {
        if (loop.contains(0))
            return false;
        for (BlockId b : loop.blocks) {
            if (has_serial_op(fn.block(b)))
                return false;
        }
        return true;
    };

    // Maximal candidate loops: an outermost loop if candidate; otherwise
    // recurse into its immediate children.
    std::vector<int> work = fa.loops->outermost();
    std::vector<int> chosen;
    while (!work.empty()) {
        int li = work.back();
        work.pop_back();
        if (loop_is_candidate(loops[li])) {
            chosen.push_back(li);
        } else {
            for (size_t child = 0; child < loops.size(); ++child)
                if (loops[child].parent == li)
                    work.push_back(static_cast<int>(child));
        }
    }
    std::sort(chosen.begin(), chosen.end());
    for (int li : chosen) {
        CompilerRegion &region = new_region(RegionKind::Loop);
        region.loopIdx = li;
        region.blocks = loops[li].blocks;
        region.entry = loops[li].header;
        for (BlockId b : region.blocks)
            region_of[b] = static_cast<int>(regions.size()) - 1;
    }

    // 2. Remaining blocks: maximal runs of consecutive ids that are
    //    call-free, not the entry block, and reachable.
    BlockId b = 0;
    while (b < n) {
        if (region_of[b] >= 0 || has_serial_op(fn.block(b)) || b == 0 ||
            !cfg.reachable(b)) {
            b++;
            continue;
        }
        BlockId run_end = b;
        while (run_end + 1 < n && region_of[run_end + 1] < 0 &&
               !has_serial_op(fn.block(run_end + 1)) &&
               cfg.reachable(run_end + 1)) {
            run_end++;
        }
        CompilerRegion &region = new_region(RegionKind::Straightline);
        for (BlockId x = b; x <= run_end; ++x) {
            region.blocks.insert(x);
            region_of[x] = static_cast<int>(regions.size()) - 1;
        }
        region.entry = b;
        b = run_end + 1;
    }

    // Demote straightline regions that are not single-entry (an edge from
    // outside reaching a non-entry block) or that contain a back edge
    // (cycle not recognised as a candidate loop) to glue.
    for (auto &region : regions) {
        if (region.kind != RegionKind::Straightline)
            continue;
        bool ok = true;
        for (BlockId x : region.blocks) {
            if (x == region.entry)
                continue;
            for (BlockId p : cfg.preds(x)) {
                if (!region.contains(p)) {
                    ok = false;
                    break;
                }
            }
        }
        // Entry itself must not be a loop header of an unchosen loop.
        for (BlockId x : region.blocks) {
            for (BlockId s : cfg.succs(x)) {
                if (region.contains(s) && s <= x) {
                    // Conservative cycle check within the run.
                    if (fa.dom->dominates(s, x))
                        ok = false;
                }
            }
        }
        if (!ok)
            region.kind = RegionKind::Glue;
    }

    // 3. Glue regions for everything else: group leftover blocks into
    //    per-block glue regions (serial execution makes their grouping
    //    immaterial).
    for (BlockId x = 0; x < n; ++x) {
        if (region_of[x] >= 0)
            continue;
        CompilerRegion &region = new_region(RegionKind::Glue);
        region.blocks.insert(x);
        region.entry = x;
        region_of[x] = static_cast<int>(regions.size()) - 1;
    }

    // Exit edges.
    for (auto &region : regions) {
        for (BlockId x : region.blocks) {
            if (!cfg.reachable(x))
                continue;
            for (BlockId s : cfg.succs(x)) {
                if (!region.contains(s))
                    region.exitEdges.emplace_back(x, s);
            }
        }
    }

    return regions;
}

} // namespace voltron
