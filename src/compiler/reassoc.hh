/**
 * @file
 * Reassociation of integer accumulation chains.
 *
 * A block-local chain `r = r OP x1; ...; r = r OP xk` (OP associative and
 * commutative over the integers: ADD/MUL/AND/OR/XOR/MIN/MAX) serialises k
 * operations. Rewriting it as a balanced reduction tree shortens the
 * dependence height from k to ceil(log2 k) + 1, which is what lets the
 * coupled-mode (VLIW) scheduler spread the chain across cores — standard
 * ILP-compiler machinery the paper gets from Trimaran.
 *
 * Exact for the integer ops involved, so golden-model equivalence is
 * preserved bit-for-bit (the pass never touches FP).
 */

#ifndef VOLTRON_COMPILER_REASSOC_HH_
#define VOLTRON_COMPILER_REASSOC_HH_

#include "ir/function.hh"

namespace voltron {

/** Statistics of one pass run (for tests/reports). */
struct ReassocStats
{
    u32 chainsRewritten = 0;
    u32 opsRebalanced = 0;
};

/** Rewrite all eligible chains in @p fn. */
ReassocStats reassociate_function(Function &fn);

/** Rewrite all eligible chains in every function of @p prog. */
ReassocStats reassociate_program(Program &prog);

} // namespace voltron

#endif // VOLTRON_COMPILER_REASSOC_HH_
